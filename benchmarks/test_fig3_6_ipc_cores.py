"""Fig. 3.6 — absolute IPC of every benchmark at 10/15/20/30 SMs."""

from repro.analysis import render_table
from repro.gpusim import Application, simulate
from repro.workloads import RODINIA_SPECS

SM_POINTS = (10, 15, 20, 30)


def test_fig3_6_ipc_with_different_cores(lab, benchmark):
    def compute():
        table = {}
        for name, spec in RODINIA_SPECS.items():
            ipcs = []
            for sms in SM_POINTS:
                cfg = lab.config.with_sms(sms)
                res = simulate(cfg, [Application(name, spec)])
                ipcs.append(res.app_stats[0].ipc(res.cycles))
            table[name] = ipcs
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    headers = ["bench"] + [f"{n} cores" for n in SM_POINTS]
    rows = [[name] + vals for name, vals in table.items()]
    text = render_table(headers, rows, ndigits=1,
                        title="Fig 3.6: IPC with different numbers of cores")
    lab.save("fig3_6_ipc_cores", text)

    for name, ipcs in table.items():
        assert all(v > 0 for v in ipcs), name
    # GUPS has the lowest IPC at every core count (the paper's most
    # memory-bound benchmark), HS among the highest at 30 cores.
    for i in range(len(SM_POINTS)):
        assert min(table, key=lambda n: table[n][i]) == "GUPS"
    top3 = sorted(table, key=lambda n: table[n][-1], reverse=True)[:3]
    assert "HS" in top3 or "SAD" in top3

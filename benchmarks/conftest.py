"""Shared state for the benchmark harness.

Each ``test_*`` file regenerates one table or figure of the paper.  The
session-scoped :class:`Lab` memoizes the expensive shared inputs (solo
profiles, the Fig. 3.4 interference matrix, queue outcomes reused across
figures) so the full suite stays in the minutes range.  Every bench
prints its rows/series and also writes them to
``benchmarks/results/<name>.txt`` so the output survives pytest's
capture.
"""

import pathlib

import pytest

from repro.core import (EvenPolicy, FCFSPolicy, ILPPolicy, ILPSMRAPolicy,
                        ProfileBasedPolicy, SerialPolicy, SMRAParams,
                        make_context, run_queue, shared_profiler)
from repro.gpusim import gtx480
from repro.runtime import make_executor, workers_from_env
from repro.workloads import (RODINIA_SPECS, distribution_queue, paper_queue,
                             paper_queue_three)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

POLICIES = {
    "Serial": lambda nc: SerialPolicy(),
    "Even": EvenPolicy,
    "FCFS": FCFSPolicy,
    "Profile-based": ProfileBasedPolicy,
    "ILP": ILPPolicy,
    "ILP-SMRA": ILPSMRAPolicy,
}


class Lab:
    """Memoized experiment state shared by the whole bench session."""

    def __init__(self):
        self.config = gtx480()
        self.suite = dict(RODINIA_SPECS)
        self._ctx = None
        self._outcomes = {}
        #: REPRO_WORKERS=N fans the interference co-runs and the queue
        #: groups across N worker processes (identical results, less
        #: wall clock); unset/1 keeps the serial seed behavior.  Bad
        #: values fail fast with the variable named in the message.
        self.executor = make_executor(workers_from_env())

    @property
    def ctx(self):
        if self._ctx is None:
            self._ctx = make_context(
                self.config, suite=self.suite, need_interference=True,
                samples_per_pair=2, smra_params=SMRAParams(),
                executor=self.executor)
        return self._ctx

    @property
    def profiler(self):
        return shared_profiler(self.config)

    def profiles(self):
        return {name: self.profiler.profile(name, spec)
                for name, spec in self.suite.items()}

    def queue_for(self, kind, nc=2, length=20, seed=42):
        if kind == "paper":
            return paper_queue() if nc == 2 else paper_queue_three()
        return distribution_queue(kind, length=length, seed=seed)

    def outcome(self, kind, policy_name, nc=2, length=20, seed=42):
        """Run (and memoize) one queue × policy experiment."""
        key = (kind, policy_name, nc, length, seed)
        if key not in self._outcomes:
            queue = self.queue_for(kind, nc=nc, length=length, seed=seed)
            policy = POLICIES[policy_name](nc)
            self._outcomes[key] = run_queue(queue, policy, self.ctx,
                                            executor=self.executor)
        return self._outcomes[key]

    def save(self, name, text):
        """Persist a rendered figure and echo it (visible with -s)."""
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")


@pytest.fixture(scope="session")
def lab():
    return Lab()

"""Fig. 4.10 — cycles of each co-executed application triple vs the
triple's serial execution time, for (a) ILP and (b) FCFS selection.
"""

from repro.analysis import render_table


def triple_rows(lab, policy):
    serial = lab.outcome("paper", "Serial", nc=3)
    co = lab.outcome("paper", policy, nc=3)
    rows = []
    for group in co.groups:
        serial_sum = sum(serial.app_finish_cycles(n) for n in group.members)
        rows.append(("-".join(group.members), group.cycles, serial_sum,
                     group.cycles / serial_sum))
    return rows


def test_fig4_10a_ilp_triples(lab, benchmark):
    rows = benchmark.pedantic(lambda: triple_rows(lab, "ILP"),
                              rounds=1, iterations=1)
    text = render_table(["triple", "co cycles", "serial cycles", "ratio"],
                        rows, ndigits=2,
                        title="Fig 4.10(a): ILP triples vs serial execution")
    lab.save("fig4_10a_ilp_triples", text)
    assert len(rows) == 4
    assert min(r[3] for r in rows) < 0.75


def test_fig4_10b_fcfs_triples(lab, benchmark):
    rows = benchmark.pedantic(lambda: triple_rows(lab, "FCFS"),
                              rounds=1, iterations=1)
    text = render_table(["triple", "co cycles", "serial cycles", "ratio"],
                        rows, ndigits=2,
                        title="Fig 4.10(b): FCFS triples vs serial execution")
    lab.save("fig4_10b_fcfs_triples", text)
    assert len(rows) == 4
    ilp_best = min(r[3] for r in triple_rows(lab, "ILP"))
    fcfs_best = min(r[3] for r in rows)
    assert ilp_best <= fcfs_best * 1.1

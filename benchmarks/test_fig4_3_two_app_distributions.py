"""Fig. 4.3 — two-app throughput across the five queue distributions for
Even, Profile-based, ILP, and ILP-SMRA (normalized to Even).

Paper: ILP gains on average ~19 % over Even and ILP-SMRA ~36 %; the
reproduction checks the ordering and positive average gains (magnitudes
are compressed by the simulator substitution — see EXPERIMENTS.md).
"""

import pytest

from repro.analysis import geometric_mean, render_grouped_bars
from repro.workloads import DISTRIBUTIONS

POLICIES = ("Even", "Profile-based", "ILP", "ILP-SMRA")


def test_fig4_3_two_app_distributions(lab, benchmark):
    def compute():
        table = {}
        for dist in sorted(DISTRIBUTIONS):
            even = lab.outcome(dist, "Even", nc=2).device_throughput
            table[dist] = {
                policy: lab.outcome(dist, policy, nc=2).device_throughput / even
                for policy in POLICIES
            }
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    text = render_grouped_bars(
        table, series_order=list(POLICIES), ndigits=3,
        title="Fig 4.3: two-app throughput by queue distribution "
              "(normalized to Even)")
    lab.save("fig4_3_two_app_distributions", text)

    avg = {p: geometric_mean([table[d][p] for d in table]) for p in POLICIES}
    assert avg["ILP"] > 1.0, "ILP must beat Even on average"
    assert avg["ILP-SMRA"] >= avg["ILP"] * 0.99, \
        "SMRA must not hurt the ILP grouping"
    assert avg["ILP-SMRA"] > 1.0

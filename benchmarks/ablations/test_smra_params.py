"""Ablation — SMRA reallocation aggressiveness (nr) and interval (TC).

Sweeps Algorithm 1's step size and decision period on a donor/receiver
pair (LUD can only use 12 SMs; 3DS can use the rest).
"""

from repro.analysis import render_table
from repro.core import SMRAController, SMRAParams
from repro.gpusim import Application, GPU
from repro.workloads import RODINIA_SPECS


def run_with(lab, params):
    gpu = GPU(lab.config)
    gpu.launch([Application("3DS", RODINIA_SPECS["3DS"]),
                Application("LUD", RODINIA_SPECS["LUD"])])
    callbacks = ()
    controller = None
    if params is not None:
        controller = SMRAController(params)
        callbacks = (controller.callback(),)
    res = gpu.run(callbacks=callbacks)
    moves = controller.total_migrations if controller else 0
    return res.cycles, moves


def test_smra_parameter_sweep(lab, benchmark):
    def compute():
        rows = [("off", "-", *run_with(lab, None))]
        for nr in (1, 2, 4):
            for interval in (1500, 3000, 6000):
                cycles, moves = run_with(
                    lab, SMRAParams(interval=interval, nr=nr))
                rows.append((nr, interval, cycles, moves))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = render_table(["nr", "TC", "pair cycles", "migrations"],
                        rows, ndigits=0,
                        title="Ablation: SMRA nr x TC sweep on 3DS+LUD")
    lab.save("ablation_smra_params", text)

    baseline = rows[0][2]
    best = min(r[2] for r in rows[1:])
    # In this substrate a launch's blocks all fit on the initial split,
    # so extra SMs only pay off at launch boundaries and SMRA is close
    # to neutral (see EXPERIMENTS.md).  The contract checked here is the
    # rollback guard: no setting may be materially worse than SMRA off,
    # and the best setting must be essentially at parity.
    assert best <= baseline * 1.02
    assert max(r[2] for r in rows[1:]) < baseline * 1.15
    assert any(r[3] > 0 for r in rows[1:]), "sweep must exercise migrations"

"""Ablation — GTO (Table 4.1's scheduler) vs loose round-robin."""

from dataclasses import replace

from repro.analysis import render_table
from repro.gpusim import Application, simulate
from repro.workloads import RODINIA_SPECS

BENCHES = ("BP", "HS", "SPMV", "GUPS")


def test_gto_vs_lrr(lab, benchmark):
    def compute():
        rows = []
        for name in BENCHES:
            spec = RODINIA_SPECS[name]
            gto = simulate(lab.config, [Application(name, spec)]).cycles
            lrr_cfg = replace(lab.config, scheduler="lrr")
            lrr = simulate(lrr_cfg, [Application(name, spec)]).cycles
            rows.append((name, gto, lrr, lrr / gto))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = render_table(["bench", "GTO cyc", "LRR cyc", "LRR/GTO"],
                        rows, ndigits=3,
                        title="Ablation: warp scheduler GTO vs LRR")
    lab.save("ablation_warp_scheduler", text)

    # Both schedulers must complete; in this trace-driven model the two
    # are close — the check is that neither collapses.
    for _name, gto, lrr, ratio in rows:
        assert 0.7 < ratio < 1.4

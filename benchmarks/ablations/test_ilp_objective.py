"""Ablation — the ILP objective: inverse slowdowns (Eq. 3.3/3.4) vs the
naive alternative of minimizing the summed slowdowns.

The paper maximizes Σ e_i·L_i with e = mean(1/S); an obvious variant
minimizes Σ mean(S).  This bench compares the groupings and their
realized throughput on the 14-app queue.
"""

from repro.analysis import render_table
from repro.core import (GroupingPlan, enumerate_patterns, optimize_grouping,
                        realize_groups)
from repro.core.contention import build_grouping_model
from repro.core.policies import PlannedGroup
from repro.core.scheduler import run_group


def grouping_with_negative_slowdown(queue_classified, interference):
    """Solve the same ILP with e'_k = -mean slowdown of the pattern."""
    patterns = enumerate_patterns(2)
    coeffs = []
    for p in patterns:
        members = p.classes
        total = 0.0
        for i, victim in enumerate(members):
            others = list(members[:i] + members[i + 1:])
            total += interference.group_slowdown(victim, others)
        coeffs.append(-total / len(members))
    classes = [cls for _n, cls in queue_classified]
    model, patterns = build_grouping_model(classes, 2, coeffs, patterns)
    sol = model.solve()
    counts = {p: int(round(sol[f"L{i}"])) for i, p in enumerate(patterns)
              if round(sol[f"L{i}"]) > 0}
    groups, leftovers = realize_groups(queue_classified, counts, 2)
    return GroupingPlan(2, counts, sol.objective, groups, leftovers)


def realized_cycles(lab, groups, specs):
    total = 0
    for members in groups:
        planned = PlannedGroup(members=[(n, specs[n]) for n in members])
        total += run_group(planned, lab.config).cycles
    return total


def test_objective_variants(lab, benchmark):
    queue = lab.queue_for("paper", nc=2)
    specs = dict(queue)

    def compute():
        classified = lab.ctx.classify_queue(queue)
        paper_plan = optimize_grouping(classified, 2, lab.ctx.interference)
        naive_plan = grouping_with_negative_slowdown(
            classified, lab.ctx.interference)
        return (realized_cycles(lab, paper_plan.all_groups, specs),
                realized_cycles(lab, naive_plan.all_groups, specs),
                paper_plan, naive_plan)

    paper_cycles, naive_cycles, paper_plan, naive_plan = benchmark.pedantic(
        compute, rounds=1, iterations=1)

    rows = [
        ["inverse slowdown (paper)", paper_cycles,
         "; ".join(p.label for p in paper_plan.pattern_counts)],
        ["negative slowdown", naive_cycles,
         "; ".join(p.label for p in naive_plan.pattern_counts)],
    ]
    text = render_table(["objective", "queue cycles", "patterns"], rows,
                        title="Ablation: ILP objective variants "
                              "(14-app queue, NC=2)")
    lab.save("ablation_ilp_objective", text)

    # Both must produce full groupings; the paper objective must be
    # competitive (within 10 %) with the variant.
    assert paper_cycles <= naive_cycles * 1.10

"""Ablation — FR-FCFS vs FCFS memory scheduling.

The paper attributes class M's dominance to the default FR-FCFS
scheduler prioritizing row-buffer hits (§3.2.2).  Removing the
prioritization (FCFS charges every request the blended cost) must
specifically hurt the row-locality-rich class M streams.
"""

from dataclasses import replace

from repro.analysis import render_table
from repro.gpusim import Application, simulate
from repro.workloads import RODINIA_SPECS

BENCHES = ("BLK", "GUPS", "HS", "BFS2")


def test_frfcfs_vs_fcfs(lab, benchmark):
    def compute():
        rows = []
        for name in BENCHES:
            spec = RODINIA_SPECS[name]
            frfcfs = simulate(lab.config,
                              [Application(name, spec)]).cycles
            fcfs_cfg = replace(lab.config, mem_scheduler="fcfs")
            fcfs = simulate(fcfs_cfg, [Application(name, spec)]).cycles
            rows.append((name, frfcfs, fcfs, fcfs / frfcfs))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = render_table(["bench", "FR-FCFS cyc", "FCFS cyc", "slowdown"],
                        rows, ndigits=2,
                        title="Ablation: FCFS memory scheduling vs FR-FCFS")
    lab.save("ablation_memory_scheduler", text)

    by_name = {r[0]: r[3] for r in rows}
    # Removing row-hit prioritization hurts the row-locality-rich stream
    # (BLK, ~95 % row hits) and *helps* the row-miss-dominated random
    # workload (GUPS pays the blended cost instead of full misses) —
    # precisely the asymmetry FR-FCFS introduces in favour of class M.
    assert by_name["BLK"] > 1.0
    assert by_name["GUPS"] < 1.0
    assert by_name["BLK"] > by_name["GUPS"]
    # The L2-resident benchmark barely cares either way.
    assert 0.9 < by_name["BFS2"] < 1.2

"""Ablation — L2 insertion policy (BIP vs classic LRU).

With plain LRU insertion a streaming co-runner washes a cache-resident
victim out of the shared L2; bimodal insertion protects the victim's
reuse set.  The victim here is SPMV (class C, L2-resident) co-running
with BLK (class M streaming).
"""

from dataclasses import replace

from repro.analysis import render_table
from repro.gpusim import Application, simulate
from repro.workloads import RODINIA_SPECS


def run_pair(cfg):
    res = simulate(cfg, [Application("BLK", RODINIA_SPECS["BLK"]),
                         Application("SPMV", RODINIA_SPECS["SPMV"])])
    victim = res.app_stats[1]
    l2_rate = victim.l2_hits / max(1, victim.mem_transactions)
    return victim.finish_cycle, l2_rate


def test_bip_protects_cache_victims(lab, benchmark):
    def compute():
        bip = run_pair(lab.config)
        lru = run_pair(replace(lab.config, l2_insertion="lru"))
        return bip, lru

    (bip_cycles, bip_l2), (lru_cycles, lru_l2) = benchmark.pedantic(
        compute, rounds=1, iterations=1)

    text = render_table(
        ["L2 insertion", "SPMV finish", "SPMV L2 hit frac"],
        [["bip", bip_cycles, bip_l2], ["lru", lru_cycles, lru_l2]],
        ndigits=3,
        title="Ablation: SPMV co-running with BLK under BIP vs LRU L2")
    lab.save("ablation_l2_insertion", text)

    assert bip_l2 >= lru_l2, "BIP must retain at least as much of the victim"
    assert bip_cycles <= lru_cycles * 1.05

"""Micro-benchmark package for the gpusim engine.

Times representative solo / two-app / three-app simulations on the
paper's GTX-480 configuration and writes ``BENCH_gpusim.json`` at the
repo root — the persistent perf trajectory every engine-perf PR is
judged against.  See ``benchmarks/README.md`` and run with::

    python benchmarks/perf/run_bench.py [--quick] [--ab] [--out PATH]
"""

from .harness import (BENCH_PATH, SEED_COMMIT, WORKLOADS, bench_workloads,
                      main, run_workload)

__all__ = ["BENCH_PATH", "SEED_COMMIT", "WORKLOADS", "bench_workloads",
           "main", "run_workload"]

#!/usr/bin/env python
"""Fleet bench: placement-policy comparison + parallel fleet drain.

Drains one Poisson arrival stream across a fleet of simulated devices
and writes ``BENCH_fleet.json`` at the repo root with two scenarios:

* ``placement_comparison`` — the same stream under round-robin,
  least-loaded, and interference-aware placement: fleet ANTT/STP,
  utilization, load imbalance, and wall clock per policy (the data a
  fleet-sizing or placement-ablation study starts from);
* ``parallel_drain`` — the least-loaded drain through the
  :class:`SerialExecutor` vs the :class:`ParallelExecutor` (same-instant
  group launches fan across workers), asserting assignments, makespan,
  per-device busy cycles, and group timelines are identical — the
  executor may only change wall clock, never results;
* ``fault_drain`` — the same stream with MTBF/MTTR churn and
  queue-cap admission: the fault-bookkeeping overhead of the event
  loop, reported as the same ``events_per_sec`` figure so the
  regression gate tracks it next to the healthy drains.
* ``speculative_drain`` — a busy (backlogged) stream on one device and
  the 4-device fleet drain, each with speculation ``full`` vs off:
  events/s, speedup, and the speculation hit rate, asserting the
  speculative results are identical to the plain path.
* ``telemetry_overhead`` — the least-loaded drain with telemetry off
  vs ``full`` (tracing + metrics + profiling): events/s both ways, the
  per-phase wall-clock breakdown from the profiling hooks, and the
  identical-results assertion (the script refuses to write the bench
  file unless the traced drain's results match the plain ones).  The
  ``events_per_sec`` figure is the telemetry-**off** drain, so the
  regression gate pins the cost of carrying the instrumentation
  disabled (the PR's <= 2% contract) against the committed baseline.

The speedup tracks how often devices launch simultaneously (bursts, and
the stream head where the whole fleet fills at once); ``cores`` is
recorded so a 1-core container's ≤1× is not mistaken for a regression —
``speculative_drain`` embeds it too, making the single-core note
machine-checkable next to its own speedups.

Usage::

    python benchmarks/perf/run_fleet_bench.py            # full
    python benchmarks/perf/run_fleet_bench.py --quick    # CI smoke
    python benchmarks/perf/run_fleet_bench.py --devices 8 --workers 8
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "BENCH_fleet.json"
SCHEMA_VERSION = 1

sys.path.insert(0, str(REPO_ROOT / "src"))


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _fleet_fingerprint(outcome):
    """Everything a worker count could conceivably change."""
    return {
        "assignments": dict(outcome.assignments),
        "makespan": outcome.makespan,
        "busy": [d.busy_cycles for d in outcome.devices],
        "groups": [[(g.start_cycle, tuple(g.outcome.members),
                     g.outcome.cycles) for g in d.groups]
                   for d in outcome.devices],
        "instructions": outcome.total_instructions,
    }


def _fleet_events(outcome) -> int:
    """Simulation events processed across every served group."""
    return sum(g.outcome.result.events
               for d in outcome.devices for g in d.groups)


def run_bench(devices: int, workers: int, quick: bool) -> dict:
    from repro.analysis import summarize_fleet
    from repro.cluster import placement_policy, run_fleet
    from repro.core import make_context, warm_profiles
    from repro.gpusim import gtx480
    from repro.runtime import OnlineFCFS, ParallelExecutor, SerialExecutor
    from repro.workloads import benchmark_spec, poisson_arrivals, stream_queue

    config = gtx480()
    if quick:
        apps, scale, mean_gap = 10, 0.15, 1500.0
        suite_names = ["BLK", "GUPS", "BP", "BFS2", "HS", "NN"]
        samples = 1
    else:
        apps, scale, mean_gap = 40, 0.3, 3000.0
        from repro.workloads import RODINIA_SPECS
        suite_names = list(RODINIA_SPECS)
        samples = 2

    # Interference-aware placement needs the Fig. 3.4 matrix; measure it
    # from a (scaled) suite once — the disk caches absorb repeat runs.
    suite = {n: benchmark_spec(n, scale) for n in suite_names}
    with ParallelExecutor(workers) as pool:
        ctx = make_context(config, suite=suite, need_interference=True,
                           samples_per_pair=samples, executor=pool)
        queue = stream_queue(apps, seed=42, synthetic_fraction=0.5,
                             scale=scale)
        arrivals = poisson_arrivals(queue, mean_gap, seed=42)
        warm_profiles(ctx.profiler, pool,
                      [(a.name, a.spec) for a in arrivals])
    solo = {a.name: ctx.profiler.profile(a.name, a.spec).solo_cycles
            for a in arrivals}

    def drain(placement_key, executor):
        return run_fleet(arrivals, placement_policy(placement_key),
                         lambda _i: OnlineFCFS(2), ctx,
                         num_devices=devices, executor=executor)

    comparison = {}
    serial_s = serial_out = None
    for key in ("round-robin", "least-loaded", "interference"):
        wall, outcome = _timed(lambda: drain(key, SerialExecutor()))
        if key == "least-loaded":
            # Reused as the serial side of parallel_drain below.
            serial_s, serial_out = wall, outcome
        s = summarize_fleet(outcome, solo)
        comparison[key] = {
            "wall_s": round(wall, 3),
            "events_per_sec": round(_fleet_events(outcome) / wall, 1),
            "antt": round(s.antt, 4),
            "stp": round(s.stp, 4),
            "makespan": s.makespan,
            "utilization": round(s.utilization, 4),
            "load_imbalance": round(s.load_imbalance, 4),
            "wait_p99": round(s.wait_p99, 1),
        }

    with ParallelExecutor(workers) as pool:
        parallel_s, parallel_out = _timed(lambda: drain("least-loaded",
                                                        pool))
    parallel_drain = {
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3),
        "identical": (_fleet_fingerprint(serial_out) ==
                      _fleet_fingerprint(parallel_out)),
        "devices": devices,
    }

    # Fault-bookkeeping overhead: the same drain with MTBF churn plus
    # queue-cap admission.  Events/s counts only retired groups, so
    # the figure also absorbs the cycles lost to cancelled attempts.
    from repro.cluster import QueueCapAdmission, mtbf_plan
    horizon = max(1, serial_out.makespan)
    plan = mtbf_plan(devices, mtbf=horizon / 2.0, mttr=horizon / 8.0,
                     horizon=horizon, fail_prob=0.05, seed=7)
    fault_wall, fault_out = _timed(lambda: run_fleet(
        arrivals, placement_policy("least-loaded"),
        lambda _i: OnlineFCFS(2), ctx, num_devices=devices,
        executor=SerialExecutor(), faults=plan,
        admission=QueueCapAdmission(queue_cap=4 * devices)))
    fault_drain = {
        "wall_s": round(fault_wall, 3),
        "events_per_sec": round(_fleet_events(fault_out) / fault_wall, 1),
        "served": len(fault_out.records),
        "rejected": len(fault_out.rejected),
        "fault_events": len(fault_out.fault_events),
        "lost_cycles": sum(d.lost_cycles for d in fault_out.devices),
        "overhead_vs_healthy": round(fault_wall / serial_s, 3),
    }
    return {
        "placement_comparison": comparison,
        "parallel_drain": parallel_drain,
        "fault_drain": fault_drain,
        "speculative_drain": _speculative_drain(
            arrivals, ctx, devices, workers, serial_s, serial_out),
        "telemetry_overhead": _telemetry_overhead(arrivals, ctx, devices),
        "apps": apps,
        "scale": scale,
    }


def _stream_events(outcome) -> int:
    return sum(g.outcome.result.events for g in outcome.groups)


def _stream_fingerprint(outcome):
    return {
        "makespan": outcome.makespan,
        "busy": outcome.busy_cycles,
        "groups": [(g.start_cycle, tuple(g.outcome.members),
                    g.outcome.cycles) for g in outcome.groups],
    }


def _speculative_drain(arrivals, ctx, devices, workers,
                       fleet_serial_s, fleet_serial_out) -> dict:
    """Speculation ``full`` vs off: a busy 1-device stream + the fleet.

    The stream side keeps one device backlogged (every app arrives at
    cycle 0), so predicted next groups pre-simulate on idle workers
    while the clock blocks on the in-flight one; the fleet side adds
    run-ahead windows.  Both assert the speculative result is
    identical to the plain path — the speedup is only a speedup.
    """
    from repro.api.registry import REGISTRY
    from repro.cluster import placement_policy, run_fleet
    from repro.runtime import (OnlineFCFS, ParallelExecutor, SerialExecutor,
                               make_speculation, run_stream)
    from repro.runtime.engine import Arrival

    cores = os.cpu_count() or 1
    strategy = REGISTRY.create("speculation", "full")

    # -- busy 1-stream: all arrivals at cycle 0, one device ----------------
    busy = [Arrival(cycle=0, name=a.name, spec=a.spec) for a in arrivals]
    stream_plain_s, stream_plain = _timed(
        lambda: run_stream(busy, OnlineFCFS(2), ctx))
    with ParallelExecutor(workers) as pool:
        speculation = make_speculation(strategy, pool)
        stream_spec_s, stream_spec = _timed(
            lambda: run_stream(busy, OnlineFCFS(2), ctx,
                               speculation=speculation))
    stream_counters = speculation.counters
    stream_identical = (_stream_fingerprint(stream_plain)
                        == _stream_fingerprint(stream_spec))

    # -- fleet drain: run-ahead windows + prediction ------------------------
    with ParallelExecutor(workers) as pool:
        speculation = make_speculation(strategy, pool)
        fleet_spec_s, fleet_spec_out = _timed(lambda: run_fleet(
            arrivals, placement_policy("least-loaded"),
            lambda _i: OnlineFCFS(2), ctx, num_devices=devices,
            executor=pool, speculation=speculation))
    fleet_counters = speculation.counters
    fleet_identical = (_fleet_fingerprint(fleet_serial_out)
                       == _fleet_fingerprint(fleet_spec_out))

    return {
        #: embedded so the single-core "speedup <= 1 is expected" note
        #: is machine-checkable against this scenario alone.
        "cores": cores,
        "stream": {
            "plain_s": round(stream_plain_s, 3),
            "speculative_s": round(stream_spec_s, 3),
            "speedup": round(stream_plain_s / stream_spec_s, 3),
            "events_per_sec": round(
                _stream_events(stream_spec) / stream_spec_s, 1),
            "hit_rate": round(stream_counters.hit_rate, 4),
            "hits": stream_counters.hits,
            "misses": stream_counters.misses,
            "identical": stream_identical,
        },
        "fleet": {
            "plain_s": round(fleet_serial_s, 3),
            "speculative_s": round(fleet_spec_s, 3),
            "speedup": round(fleet_serial_s / fleet_spec_s, 3),
            "events_per_sec": round(
                _fleet_events(fleet_spec_out) / fleet_spec_s, 1),
            "hit_rate": round(fleet_counters.hit_rate, 4),
            "windows": fleet_counters.windows,
            "rollbacks": fleet_counters.rollbacks,
            "ahead_events": fleet_counters.ahead_events,
            "identical": fleet_identical,
        },
    }


def _telemetry_overhead(arrivals, ctx, devices) -> dict:
    """Telemetry off vs ``full`` over the same serial drain.

    The off drain is re-timed here (not reused from the comparison) so
    both sides run back-to-back under the same cache conditions — the
    overhead fraction is wall-clock noise otherwise.
    """
    from repro.cluster import placement_policy, run_fleet
    from repro.obs import make_telemetry
    from repro.runtime import OnlineFCFS, SerialExecutor

    def drain(telemetry=None):
        return run_fleet(arrivals, placement_policy("least-loaded"),
                         lambda _i: OnlineFCFS(2), ctx,
                         num_devices=devices, executor=SerialExecutor(),
                         telemetry=telemetry)

    off_s, off_out = _timed(drain)
    telemetry = make_telemetry("full")
    on_s, on_out = _timed(lambda: drain(telemetry))
    phases = {name: entry["total_s"]
              for name, entry in telemetry.profiler.to_dict().items()}
    return {
        "off_s": round(off_s, 3),
        "on_s": round(on_s, 3),
        #: the gated figure (--require-entry scenarios.telemetry_overhead):
        #: events/s with telemetry OFF — what carrying the disabled
        #: instrumentation costs, pinned against the committed baseline.
        "events_per_sec": round(_fleet_events(off_out) / off_s, 1),
        "events_per_sec_traced": round(_fleet_events(on_out) / on_s, 1),
        "overhead_frac": round(max(0.0, on_s / off_s - 1.0), 4),
        "trace_events": len(telemetry.events),
        "phase_wall_s": phases,
        "identical": (_fleet_fingerprint(off_out)
                      == _fleet_fingerprint(on_out)),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller stream / scaled kernels (CI smoke)")
    parser.add_argument("--devices", type=int, default=4,
                        help="fleet size (default 4)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size (default: CPU count)")
    parser.add_argument("--out", type=pathlib.Path, default=BENCH_PATH)
    args = parser.parse_args(argv)
    # No `or`-coercion: 0 must reach the executor's validation, not
    # silently become the CPU count.
    workers = args.workers if args.workers is not None \
        else (os.cpu_count() or 1)

    scenarios = run_bench(args.devices, workers, args.quick)
    if not scenarios["parallel_drain"]["identical"]:
        raise RuntimeError(
            "parallel_drain: parallel fleet results differ from serial — "
            "run_fleet must be deterministic in the worker count")
    for side in ("stream", "fleet"):
        if not scenarios["speculative_drain"][side]["identical"]:
            raise RuntimeError(
                f"speculative_drain: the {side} result with speculation "
                f"differs from the plain path — speculation must never "
                f"change results")
    if not scenarios["telemetry_overhead"]["identical"]:
        raise RuntimeError(
            "telemetry_overhead: the traced fleet results differ from "
            "the plain drain — telemetry must observe, never steer")

    cores = os.cpu_count() or 1
    doc = {
        "schema_version": SCHEMA_VERSION,
        "bench": "fleet",
        "config": "gtx480",
        "quick": args.quick,
        "cores": cores,
        "workers": workers,
        "devices": args.devices,
        "python": sys.version.split()[0],
        "scenarios": scenarios,
    }
    if cores < 2:
        doc["note"] = (
            "single-core host: the process pool is pure overhead here, so "
            "speedup <= 1 is expected; the identical-results check is the "
            "signal. Re-run on >= 4 cores (CI does) for the wall-clock win.")
    args.out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(json.dumps(doc, indent=1, sort_keys=True))
    print(f"\n[written to {args.out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

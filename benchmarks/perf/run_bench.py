#!/usr/bin/env python
"""Entry point: ``python benchmarks/perf/run_bench.py [--quick] [--ab]``."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from harness import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Campaign bench: sharded vs monolithic sweeps + streaming memory.

Writes ``BENCH_campaign.json`` at the repo root with two scenarios:

* ``sharded_vs_monolithic`` — the same base × grid executed three
  ways: a monolithic loop of ``run_scenario`` calls (the pre-campaign
  sweep path), the campaign driver with a serial shard executor, and
  the campaign driver with a shard process pool.  Reported as wall
  clock per mode plus the sharding overhead fraction (plan + manifest
  + merge bookkeeping over the raw simulation time) and the pooled
  speedup.  ``events_per_sec`` counts merged per-application records —
  the campaign layer's unit of throughput — so the generic
  ``check_bench_regression.py`` walker gates it like every other
  bench figure.  The script refuses to write the file unless the
  campaign's merged scorecard matches the monolithic fold.
* ``streaming_memory`` — the O(1)-memory claim, measured: the same
  synthetic record stream folded through
  :class:`repro.analysis.StreamAccumulator` vs the in-memory
  sort-everything path, with ``tracemalloc`` peaks for both and the
  quantile estimation error as a fraction of the value range (the
  documented P² tolerance is 5%).

The ``cores`` field is recorded so a single-core container's pooled
slowdown is not mistaken for a regression — the identical-results
check is the signal there.

Usage::

    python benchmarks/perf/run_campaign_bench.py            # full
    python benchmarks/perf/run_campaign_bench.py --quick    # CI smoke
    python benchmarks/perf/run_campaign_bench.py --shard-workers 8
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
import tracemalloc
from typing import List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "BENCH_campaign.json"
SCHEMA_VERSION = 1

sys.path.insert(0, str(REPO_ROOT / "src"))


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _campaign_spec(quick: bool):
    from repro.api import PolicySpec, Scenario, WorkloadSpec
    from repro.campaign import CampaignSpec, ShardSpec
    apps, seeds = (6, [1, 2, 3]) if quick else (12, list(range(1, 9)))
    base = Scenario(
        kind="stream", name="campaign-bench",
        workload=WorkloadSpec(source="stream", apps=apps,
                              synthetic_fraction=0.5, scale=0.15,
                              seed=42, arrival="poisson",
                              mean_gap=4000.0),
        policy=PolicySpec(name="backfill", nc=2))
    return CampaignSpec(base=base, grid={"workload.seed": seeds},
                        shard=ShardSpec(strategy="by-point",
                                        max_shard_size=1),
                        name="campaign-bench")


def _monolithic(spec):
    """The pre-campaign path: every grid point through run_scenario,
    records folded in memory."""
    from repro.analysis.incremental import StreamAccumulator
    from repro.api import expand_grid, run_scenario
    from repro.runtime import SerialExecutor
    acc = StreamAccumulator()
    for _overrides, scenario in expand_grid(spec.base.to_dict(),
                                            spec.grid):
        result = run_scenario(scenario, executor=SerialExecutor())
        for app in result.apps:
            if "solo_cycles" in app:
                acc.push_app(app)
    return acc.metrics()


def _bench_sharded(spec, shard_workers, tmp_dir) -> dict:
    from repro.campaign import run_campaign

    mono_s, mono_metrics = _timed(lambda: _monolithic(spec))

    serial_s, serial = _timed(lambda: run_campaign(
        spec, tmp_dir / "serial"))
    pooled_s, pooled = _timed(lambda: run_campaign(
        spec, tmp_dir / "pooled", shard_workers=shard_workers))

    merged = serial.result.metrics
    # The campaign fold must reproduce the monolithic scorecard —
    # sharding is an execution strategy, never a result change.
    scorecard_keys = [k for k in mono_metrics if k in merged]
    identical = all(merged[k] == mono_metrics[k]
                    for k in scorecard_keys)
    byte_identical = (
        (tmp_dir / "serial" / "campaign_result.json").read_bytes()
        == (tmp_dir / "pooled" / "campaign_result.json").read_bytes())
    apps = merged["apps"]
    return {
        "monolithic_s": round(mono_s, 3),
        "campaign_serial_s": round(serial_s, 3),
        "campaign_pooled_s": round(pooled_s, 3),
        #: plan + manifest + merge bookkeeping over raw simulation.
        "sharding_overhead_frac": round(
            max(0.0, serial_s / mono_s - 1.0), 4),
        "pooled_speedup": round(serial_s / pooled_s, 3),
        #: the gated figure: merged per-app records per second through
        #: the full sharded pipeline (the campaign's unit of work).
        "events_per_sec": round(apps / serial_s, 1),
        "shards": serial.shards_total,
        "units": serial.result.metrics["units"],
        "apps": apps,
        "shard_workers": shard_workers,
        "identical_scorecard": identical,
        "serial_pooled_byte_identical": byte_identical,
    }


def _bench_streaming_memory(quick: bool) -> dict:
    """tracemalloc peaks: streaming fold vs keep-every-record."""
    import random

    from repro.analysis import percentile
    from repro.analysis.incremental import StreamAccumulator

    rows = 20_000 if quick else 200_000
    rng = random.Random(97)

    def record(i):
        arrival = i * 100
        start = arrival + rng.randrange(0, 2000)
        finish = start + rng.randrange(100, 50_000)
        return (arrival, start, finish, rng.randrange(100, 40_000))

    tracemalloc.start()
    acc = StreamAccumulator()
    for i in range(rows):
        acc.push(*record(i))
    streaming = acc.metrics()
    _, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    rng = random.Random(97)  # same stream both ways
    tracemalloc.start()
    waits: List[float] = []
    latencies: List[float] = []
    for i in range(rows):
        arrival, start, finish, _solo = record(i)
        waits.append(float(start - arrival))
        latencies.append(float(finish - arrival))
    exact_wait_p99 = percentile(waits, 99)
    exact_latency_p99 = percentile(latencies, 99)
    _, in_memory_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    wait_span = max(waits) - min(waits)
    latency_span = max(latencies) - min(latencies)
    return {
        "rows": rows,
        "streaming_peak_kb": round(streaming_peak / 1024, 1),
        "in_memory_peak_kb": round(in_memory_peak / 1024, 1),
        "memory_ratio": round(in_memory_peak / max(1, streaming_peak),
                              1),
        #: estimator error as a fraction of the observed range — the
        #: documented tolerance is 0.05 (docs/campaign.md).
        "wait_p99_err_frac": round(
            abs(streaming["wait_p99"] - exact_wait_p99)
            / max(1.0, wait_span), 5),
        "latency_p99_err_frac": round(
            abs(streaming["latency_p99"] - exact_latency_p99)
            / max(1.0, latency_span), 5),
    }


def main(argv: Optional[List[str]] = None) -> int:
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller grid / fewer rows (CI smoke)")
    parser.add_argument("--shard-workers", type=int, default=None,
                        help="shard pool size (default: CPU count)")
    parser.add_argument("--out", type=pathlib.Path, default=BENCH_PATH)
    args = parser.parse_args(argv)
    shard_workers = args.shard_workers if args.shard_workers is not None \
        else (os.cpu_count() or 1)

    spec = _campaign_spec(args.quick)
    with tempfile.TemporaryDirectory() as tmp:
        sharded = _bench_sharded(spec, shard_workers,
                                 pathlib.Path(tmp))
    if not sharded["identical_scorecard"]:
        raise RuntimeError(
            "sharded_vs_monolithic: the campaign merge disagrees with "
            "the monolithic fold — sharding must never change results")
    if not sharded["serial_pooled_byte_identical"]:
        raise RuntimeError(
            "sharded_vs_monolithic: serial and pooled campaign results "
            "differ — the shard executor must be invisible in output")
    memory = _bench_streaming_memory(args.quick)
    for key in ("wait_p99_err_frac", "latency_p99_err_frac"):
        if memory[key] > 0.05:
            raise RuntimeError(
                f"streaming_memory: {key} = {memory[key]} exceeds the "
                f"documented 5%-of-range P2 tolerance")

    cores = os.cpu_count() or 1
    doc = {
        "schema_version": SCHEMA_VERSION,
        "bench": "campaign",
        "quick": args.quick,
        "cores": cores,
        "python": sys.version.split()[0],
        "scenarios": {
            "sharded_vs_monolithic": sharded,
            "streaming_memory": memory,
        },
    }
    if cores < 2:
        doc["note"] = (
            "single-core host: the shard pool is pure overhead here, so "
            "pooled_speedup <= 1 is expected; the byte-identical check "
            "is the signal. Re-run on >= 4 cores for the wall-clock win.")
    args.out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(json.dumps(doc, indent=1, sort_keys=True))
    print(f"\n[written to {args.out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

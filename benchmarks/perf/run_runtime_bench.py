#!/usr/bin/env python
"""Runtime parallelism bench: serial vs process-pool executor.

Measures the wall-clock of two multi-simulation scenarios twice — once
through the :class:`SerialExecutor` (the seed behavior) and once through
the :class:`ParallelExecutor` — verifies the results are identical, and
writes ``BENCH_runtime.json`` at the repo root:

* ``interference_matrix`` — the Fig. 3.4 class-pair measurement (solo
  profiles + pair co-runs fanned across workers);
* ``queue_drain_fcfs`` — a multi-group FCFS queue drain (independent
  groups fanned across workers).

The speedup scales with physical cores (the engine is pure CPU work);
``cores`` is recorded so a 1-core container's ≤1× result is not
mistaken for a regression.  Run on ≥4 cores for the headline number.

Usage::

    python benchmarks/perf/run_runtime_bench.py            # full
    python benchmarks/perf/run_runtime_bench.py --quick    # CI smoke
    python benchmarks/perf/run_runtime_bench.py --workers 8
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "BENCH_runtime.json"
SCHEMA_VERSION = 1

sys.path.insert(0, str(REPO_ROOT / "src"))


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def bench_interference(workers: int, quick: bool) -> dict:
    """Fig. 3.4 measurement, serial vs parallel, identical matrices."""
    from repro.core import Profiler, measure_interference
    from repro.gpusim import gtx480
    from repro.runtime import ParallelExecutor
    from repro.workloads import RODINIA_SPECS, benchmark_spec

    config = gtx480()
    scale = 0.25 if quick else 1.0
    names = (["BLK", "GUPS", "BP", "BFS2", "HS", "NN"] if quick
             else list(RODINIA_SPECS))
    suite = {n: benchmark_spec(n, scale) for n in names}
    samples = 1 if quick else 2

    # Fresh profiler, no disk cache: both sides pay the full cost.
    serial_s, serial_model = _timed(lambda: measure_interference(
        config, suite, profiler=Profiler(config),
        samples_per_pair=samples))
    with ParallelExecutor(workers) as executor:
        parallel_s, parallel_model = _timed(lambda: measure_interference(
            config, suite, profiler=Profiler(config),
            samples_per_pair=samples, executor=executor))

    return {
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3),
        "identical": serial_model.slowdown == parallel_model.slowdown
        and serial_model.samples == parallel_model.samples,
        "jobs": len(serial_model.samples) + len(suite),
    }


def bench_queue_drain(workers: int, quick: bool) -> dict:
    """Multi-group FCFS drain, serial vs parallel, identical outcomes."""
    from repro.core import FCFSPolicy, make_context, run_queue
    from repro.gpusim import gtx480
    from repro.runtime import ParallelExecutor
    from repro.workloads import distribution_queue

    config = gtx480()
    length, scale = (8, 0.25) if quick else (16, 0.5)
    queue = distribution_queue("equal", length=length, seed=42, scale=scale)
    ctx = make_context(config)
    policy = FCFSPolicy(2)

    serial_s, serial_out = _timed(lambda: run_queue(queue, policy, ctx))
    with ParallelExecutor(workers) as executor:
        parallel_s, parallel_out = _timed(
            lambda: run_queue(queue, policy, ctx, executor=executor))

    identical = (
        serial_out.total_cycles == parallel_out.total_cycles and
        serial_out.total_instructions == parallel_out.total_instructions and
        [g.members for g in serial_out.groups] ==
        [g.members for g in parallel_out.groups] and
        [g.cycles for g in serial_out.groups] ==
        [g.cycles for g in parallel_out.groups])
    return {
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3),
        "identical": identical,
        "jobs": len(serial_out.groups),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller suite / scaled kernels (CI smoke)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size (default: CPU count)")
    parser.add_argument("--out", type=pathlib.Path, default=BENCH_PATH)
    args = parser.parse_args(argv)
    # No `or`-coercion: 0 must reach the executor's validation, not
    # silently become the CPU count.
    workers = args.workers if args.workers is not None \
        else (os.cpu_count() or 1)

    scenarios = {
        "interference_matrix": bench_interference(workers, args.quick),
        "queue_drain_fcfs": bench_queue_drain(workers, args.quick),
    }
    for name, row in scenarios.items():
        if not row["identical"]:
            raise RuntimeError(
                f"{name}: parallel results differ from serial — the "
                f"executor must be bit-identical")

    cores = os.cpu_count() or 1
    doc = {
        "schema_version": SCHEMA_VERSION,
        "bench": "runtime",
        "config": "gtx480",
        "quick": args.quick,
        "cores": cores,
        "workers": workers,
        "python": sys.version.split()[0],
        "scenarios": scenarios,
    }
    if cores < 2:
        doc["note"] = (
            "single-core host: the process pool is pure overhead here, so "
            "speedup <= 1 is expected; the identical-results check is the "
            "signal. Re-run on >= 4 cores (CI does) for the wall-clock win.")
    args.out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(json.dumps(doc, indent=1, sort_keys=True))
    print(f"\n[written to {args.out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

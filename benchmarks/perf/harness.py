"""The gpusim perf harness: measure events/sec, write BENCH_gpusim.json.

Workloads
---------
All workloads run on the paper's GTX-480 configuration:

* ``solo_run`` — the headline solo workload (JPEG, a class-A
  compute-bound encoder: the representative solo Rodinia run);
* one solo per paper class (M / MC / C / A) for coverage;
* a two-app co-run and a three-app co-run.

Metrics per workload: wall seconds (best of N repeats), simulated
cycles, engine events processed, events/sec, and warp-instructions/sec.

A/B mode
--------
``--ab`` (no value, or ``--ab seed``) extracts the seed engine (commit
:data:`SEED_COMMIT`, the state this repo's perf trajectory is measured
against) from git history into a temp dir and interleaves seed/current
runs, recording per-workload speedups.  The golden determinism test
(tests/gpusim) separately proves the current engine's results are
bit-identical to that seed.

``--ab <backendA>:<backendB>`` instead compares two registered engine
backends (``repro list --kind engine-backends``) in-process.  Before
any timing, each workload's full result (cycles, events, per-app
stats) is fingerprinted on both backends; any divergence refuses to
write the bench file at all — the same refusal discipline as the
fleet/campaign benches.

Per-backend entries: every registered backend other than the one
driving the main ``workloads`` rows is additionally measured into a
``backends.<name>.<workload>`` section, which
``tools/check_bench_regression.py --require-entry`` pins in CI.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "BENCH_gpusim.json"
SCHEMA_VERSION = 1

#: The engine baseline of this repo's perf trajectory (the v0 seed).
SEED_COMMIT = "5e7609b"

sys.path.insert(0, str(REPO_ROOT / "src"))


def _workloads(quick: bool) -> Dict[str, List[str]]:
    """name → list of Rodinia benchmark names co-run in that workload."""
    wl = {
        "solo_run": ["JPEG"],        # headline solo (JPEG, class A)
        "solo_M_BLK": ["BLK"],
        "solo_MC_BP": ["BP"],
        "solo_C_BFS2": ["BFS2"],
        "two_app_BLK_SPMV": ["BLK", "SPMV"],
        "three_app_GUPS_FFT_HS": ["GUPS", "FFT", "HS"],
    }
    if quick:
        wl = {k: wl[k] for k in
              ("solo_run", "two_app_BLK_SPMV", "three_app_GUPS_FFT_HS")}
    return wl


WORKLOADS = _workloads(quick=False)


def _engine_class(backend: str) -> type:
    """Resolve a backend name to its engine class.

    The ``event`` fast path imports the engine directly: the seed A/B
    child processes run this module against src trees that predate the
    ``engine-backends`` registry, so the default path must not touch
    ``repro.api``.
    """
    if backend == "event":
        from repro.gpusim import GPU
        return GPU
    from repro.api.engines import engine_class
    return engine_class(backend)


def run_workload(names: List[str], repeats: int = 3,
                 scale: float = 1.0, backend: str = "event") -> dict:
    """Simulate one workload on a fresh device; return its metric row."""
    from repro.gpusim import Application, gtx480
    from repro.workloads import RODINIA_SPECS

    engine = _engine_class(backend)
    cfg = gtx480()
    best = best_cpu = float("inf")
    cycles = events = instr = 0
    for _ in range(max(1, repeats)):
        apps = [Application(n, RODINIA_SPECS[n].scaled(scale)
                            if scale != 1.0 else RODINIA_SPECS[n])
                for n in names]
        gpu = engine(cfg)
        gpu.launch(apps)
        t0, c0 = time.perf_counter(), time.process_time()
        result = gpu.run()
        dt = time.perf_counter() - t0
        dc = time.process_time() - c0
        if dt < best:
            best = dt
        if dc < best_cpu:
            best_cpu = dc
        cycles = result.cycles
        # The seed engine (A/B baseline) predates the event counter.
        events = getattr(gpu, "events_processed", 0)
        instr = sum(s.warp_instructions for s in result.app_stats.values())
    return {
        "apps": names,
        "wall_s": round(best, 6),
        "cpu_s": round(best_cpu, 6),
        "cycles": cycles,
        "events": events,
        "events_per_sec": round(events / best),
        "warp_instr_per_sec": round(instr / best),
    }


def bench_workloads(quick: bool = False, repeats: int = 3,
                    backend: str = "event") -> dict:
    """Run the full workload set in this process (current engine)."""
    return {name: run_workload(names, repeats=repeats, backend=backend)
            for name, names in _workloads(quick).items()}


# -- A/B against the seed engine -------------------------------------------

_CHILD_SNIPPET = """\
import json, sys
sys.path.insert(0, {perf!r})
from harness import run_workload
# AFTER importing harness (which prepends this repo's src/): make the
# target engine win the import race.  `repro` itself is only imported
# lazily inside run_workload, so nothing is cached yet.
sys.path.insert(0, {src!r})
print(json.dumps({{name: run_workload(names, repeats={repeats})
                  for name, names in json.loads({wl!r}).items()}}))
"""


def _run_in_subprocess(src_dir: str, workloads: Dict[str, List[str]],
                       repeats: int) -> dict:
    """Run the workload set against the engine at `src_dir` (src/ root)."""
    code = _CHILD_SNIPPET.format(src=src_dir,
                                 perf=str(pathlib.Path(__file__).parent),
                                 repeats=repeats,
                                 wl=json.dumps(workloads))
    out = subprocess.run([sys.executable, "-c", code], capture_output=True,
                         text=True, check=True)
    return json.loads(out.stdout)


def _extract_seed_src(dest: pathlib.Path) -> Optional[str]:
    """Materialize the seed engine's src/ tree from git history."""
    try:
        subprocess.run(
            ["git", "-C", str(REPO_ROOT), "worktree", "add", "--detach",
             str(dest), SEED_COMMIT],
            check=True, capture_output=True)
        return str(dest / "src")
    except (subprocess.CalledProcessError, OSError):
        return None


def _remove_seed_worktree(dest: pathlib.Path) -> None:
    subprocess.run(["git", "-C", str(REPO_ROOT), "worktree", "remove",
                    "--force", str(dest)], capture_output=True)


def ab_compare(quick: bool, repeats: int) -> Optional[dict]:
    """Tightly interleaved seed-vs-current comparison.

    Per workload, seed and current runs alternate back-to-back (so
    machine drift hits both engines equally), timing takes the best CPU
    seconds over `repeats` rounds, and the speedup is refused unless
    both engines simulated the identical cycle count.  Returns None if
    git history is unavailable (e.g. a shallow or exported checkout).
    """
    workloads = _workloads(quick)
    with tempfile.TemporaryDirectory(prefix="gpusim-seed-") as tmp:
        dest = pathlib.Path(tmp) / "seed"
        seed_src = _extract_seed_src(dest)
        if seed_src is None:
            return None
        try:
            best_seed: Dict[str, dict] = {}
            best_new: Dict[str, dict] = {}
            for name, names in workloads.items():
                one = {name: names}
                for _ in range(max(1, repeats)):
                    # Two in-child repeats (best-of): the first run also
                    # warms CPython's adaptive specialization, which
                    # would otherwise penalize whichever engine has the
                    # larger hot functions.
                    seed_row = _run_in_subprocess(seed_src, one, 2)[name]
                    new_row = _run_in_subprocess(str(REPO_ROOT / "src"),
                                                 one, 2)[name]
                    if (name not in best_seed or
                            seed_row["cpu_s"] < best_seed[name]["cpu_s"]):
                        best_seed[name] = seed_row
                    if (name not in best_new or
                            new_row["cpu_s"] < best_new[name]["cpu_s"]):
                        best_new[name] = new_row
        finally:
            _remove_seed_worktree(dest)
    out = {}
    for name in workloads:
        s, n = best_seed[name], best_new[name]
        if s["cycles"] != n["cycles"]:
            raise RuntimeError(
                f"seed/current cycle mismatch on {name}: "
                f"{s['cycles']} vs {n['cycles']}")
        out[name] = {
            "seed_cpu_s": s["cpu_s"],
            "new_cpu_s": n["cpu_s"],
            "speedup": round(s["cpu_s"] / n["cpu_s"], 3),
            "cycles_match": True,
        }
    return out


# -- A/B between two engine backends ----------------------------------------

def _workload_fingerprint(names: List[str], backend: str) -> str:
    """One workload's full result as a canonical string: simulated
    cycles, engine events, and every per-app stat field — the byte
    identity two backends must share before their timings may be
    compared (or written)."""
    import dataclasses

    from repro.gpusim import Application, gtx480
    from repro.workloads import RODINIA_SPECS

    gpu = _engine_class(backend)(gtx480())
    gpu.launch([Application(n, RODINIA_SPECS[n]) for n in names])
    result = gpu.run()
    return json.dumps({
        "cycles": result.cycles,
        "events": getattr(gpu, "events_processed", 0),
        "apps": {str(i): dataclasses.asdict(s)
                 for i, s in sorted(result.app_stats.items())},
    }, sort_keys=True)


def ab_compare_backends(backend_a: str, backend_b: str, quick: bool,
                        repeats: int) -> dict:
    """Interleaved A-vs-B backend comparison, bit-identity gated.

    Every workload's full result is fingerprinted on both backends
    first; a single divergence raises SystemExit (so nothing gets
    written — a bench entry for a backend that computes different
    results would be meaningless).  Timings then alternate A/B
    back-to-back, best CPU seconds over `repeats` rounds.
    """
    workloads = _workloads(quick)
    for name, names in workloads.items():
        if (_workload_fingerprint(names, backend_a)
                != _workload_fingerprint(names, backend_b)):
            raise SystemExit(
                f"--ab {backend_a}:{backend_b}: results differ on "
                f"workload {name!r} — backends must be bit-identical "
                f"before their timings are comparable; refusing to "
                f"write the bench file")
    out = {}
    for name, names in workloads.items():
        best_a: Optional[dict] = None
        best_b: Optional[dict] = None
        for _ in range(max(1, repeats)):
            row_a = run_workload(names, repeats=2, backend=backend_a)
            row_b = run_workload(names, repeats=2, backend=backend_b)
            if best_a is None or row_a["cpu_s"] < best_a["cpu_s"]:
                best_a = row_a
            if best_b is None or row_b["cpu_s"] < best_b["cpu_s"]:
                best_b = row_b
        out[name] = {
            f"{backend_a}_cpu_s": best_a["cpu_s"],
            f"{backend_b}_cpu_s": best_b["cpu_s"],
            "speedup": round(best_a["cpu_s"]
                             / max(best_b["cpu_s"], 1e-9), 3),
            "identical": True,
        }
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke subset (3 workloads, 1 repeat)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per workload (best-of)")
    parser.add_argument("--ab", nargs="?", const="seed", default=None,
                        metavar="A:B",
                        help="A/B comparison: no value (or 'seed') "
                             "interleaves against the seed engine from "
                             "git history; '<backendA>:<backendB>' "
                             "compares two registered engine backends, "
                             "refusing to write unless their results "
                             "are bit-identical")
    parser.add_argument("--backend", default="event",
                        help="engine backend for the main workloads "
                             "rows (default event)")
    parser.add_argument("--out", type=pathlib.Path, default=BENCH_PATH,
                        help=f"output path (default {BENCH_PATH})")
    args = parser.parse_args(argv)
    repeats = args.repeats or (1 if args.quick else 3)

    rows = bench_workloads(quick=args.quick, repeats=repeats,
                           backend=args.backend)
    doc = {
        "schema_version": SCHEMA_VERSION,
        "bench": "gpusim",
        "config": "gtx480",
        "quick": args.quick,
        "python": sys.version.split()[0],
        "backend": args.backend,
        "workloads": rows,
    }

    # Per-backend entries: every registered backend other than the main
    # rows' gets its own section (pinned in CI via --require-entry).
    from repro.api.registry import REGISTRY
    others = [n for n in REGISTRY.names("engine-backends")
              if n != args.backend]
    backends = {}
    for other in others:
        other_rows = bench_workloads(quick=args.quick, repeats=repeats,
                                     backend=other)
        for wname, row in other_rows.items():
            if row["cycles"] != rows[wname]["cycles"]:
                raise SystemExit(
                    f"backend {other!r} simulated {row['cycles']} "
                    f"cycles on {wname!r} vs {rows[wname]['cycles']} "
                    f"on {args.backend!r}; refusing to write the "
                    f"bench file")
        backends[other] = other_rows
    doc["backends"] = backends

    if args.ab is not None and args.ab != "seed" and ":" in args.ab:
        backend_a, _, backend_b = args.ab.partition(":")
        doc["ab_backends"] = {
            "pair": f"{backend_a}:{backend_b}",
            **ab_compare_backends(backend_a, backend_b,
                                  quick=args.quick, repeats=repeats),
        }
    elif args.ab is not None:
        if args.ab != "seed":
            raise SystemExit(f"--ab expects no value, 'seed', or "
                             f"'<backendA>:<backendB>', got {args.ab!r}")
        ab = ab_compare(quick=args.quick, repeats=repeats)
        if ab is None:
            doc["ab_vs_seed"] = "unavailable (no git history)"
        else:
            doc["ab_vs_seed"] = {"seed_commit": SEED_COMMIT, **ab}

    args.out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(json.dumps(doc, indent=1, sort_keys=True))
    print(f"\n[written to {args.out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

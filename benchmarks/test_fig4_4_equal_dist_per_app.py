"""Fig. 4.4 — per-benchmark throughput with the equal-distribution queue
(two concurrent applications, all four policies).

Paper: individual applications can lose under co-scheduling, but the
loss is overshadowed by the partner's gain; ILP-SMRA lifts the average.
"""

from repro.analysis import render_grouped_bars
from repro.workloads import base_benchmark_name

POLICIES = ("Even", "Profile-based", "ILP", "ILP-SMRA")


def test_fig4_4_equal_distribution_per_app(lab, benchmark):
    def compute():
        table = {}
        for policy in POLICIES:
            out = lab.outcome("equal", policy, nc=2)
            for group in out.groups:
                for name in group.members:
                    base = base_benchmark_name(name)
                    table.setdefault(name, {})[policy] = \
                        out.app_throughput(name)
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    text = render_grouped_bars(
        table, series_order=list(POLICIES), ndigits=1,
        title="Fig 4.4: per-app throughput, equal-distribution queue")
    lab.save("fig4_4_equal_dist_per_app", text)

    assert len(table) == 20
    for name, series in table.items():
        assert all(v > 0 for v in series.values()), name
    # Device-level: the proposed methods must not lose to Even.
    even = lab.outcome("equal", "Even", nc=2).device_throughput
    smra = lab.outcome("equal", "ILP-SMRA", nc=2).device_throughput
    assert smra > even * 0.97

"""Appendix A — the paper's worked ILP example, end to end.

Uses the paper's own e-coefficients (derived from its Fig. 3.4) and the
14-app queue composition (2 M, 5 MC, 2 C, 5 A); the solver must return
exactly the thesis's solution vector (Eq. 5.7).
"""

import pytest

from repro.analysis import render_table
from repro.core import (AppClass, PAPER_APPENDIX_E, build_grouping_model,
                        enumerate_patterns)

QUEUE = ([AppClass.M] * 2 + [AppClass.MC] * 5
         + [AppClass.C] * 2 + [AppClass.A] * 5)


def test_appendix_a_worked_example(lab, benchmark):
    def compute():
        model, patterns = build_grouping_model(QUEUE, 2, PAPER_APPENDIX_E)
        sol = model.solve()
        return sol, patterns

    sol, patterns = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [(f"L{i + 1}", p.label, PAPER_APPENDIX_E[i],
             int(round(sol[f"L{i}"])))
            for i, p in enumerate(patterns)]
    text = render_table(["var", "pattern", "e", "count"], rows, ndigits=4,
                        title=f"Appendix A ILP (objective "
                              f"f = {sol.objective:.4f})")
    lab.save("appendix_a_ilp", text)

    assert sol.is_optimal
    counts = {p.label: int(round(sol[f"L{i}"]))
              for i, p in enumerate(patterns)}
    # Eq. 5.7: 2x M-C, 2x MC-MC, 1x MC-A, 2x A-A.
    assert counts == {"M-M": 0, "M-MC": 0, "M-C": 2, "M-A": 0,
                      "MC-MC": 2, "MC-C": 0, "MC-A": 1,
                      "C-C": 0, "C-A": 0, "A-A": 2}
    assert sol.objective == pytest.approx(0.4718, abs=1e-6)

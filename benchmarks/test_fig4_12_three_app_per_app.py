"""Fig. 4.12 — average per-benchmark device throughput, three concurrent
applications, equal-distribution queue, all four policies.
"""

from repro.analysis import render_grouped_bars

POLICIES = ("Even", "Profile-based", "ILP", "ILP-SMRA")
LENGTH = 21


def test_fig4_12_three_app_per_app(lab, benchmark):
    def compute():
        table = {}
        for policy in POLICIES:
            out = lab.outcome("equal", policy, nc=3, length=LENGTH)
            for group in out.groups:
                for name in group.members:
                    table.setdefault(name, {})[policy] = \
                        out.app_throughput(name)
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    text = render_grouped_bars(
        table, series_order=list(POLICIES), ndigits=1,
        title="Fig 4.12: per-app throughput, three concurrent apps, "
              "equal distribution")
    lab.save("fig4_12_three_app_per_app", text)

    assert len(table) == LENGTH
    for name, series in table.items():
        assert all(v > 0 for v in series.values()), name

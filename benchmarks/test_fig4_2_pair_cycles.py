"""Fig. 4.2 — cycles of each co-executed pair vs the pair's serial time.

(a) pairs formed by the ILP, (b) pairs formed FCFS.  Paper: most ILP
pairs finish well below their serial time; FCFS has fewer such pairs.
"""

from repro.analysis import render_table


def pair_rows(lab, policy):
    serial = lab.outcome("paper", "Serial", nc=2)
    co = lab.outcome("paper", policy, nc=2)
    rows = []
    for group in co.groups:
        serial_sum = sum(serial.app_finish_cycles(n) for n in group.members)
        rows.append(("-".join(group.members), group.cycles, serial_sum,
                     group.cycles / serial_sum))
    return rows


def test_fig4_2a_ilp_pair_cycles(lab, benchmark):
    rows = benchmark.pedantic(lambda: pair_rows(lab, "ILP"),
                              rounds=1, iterations=1)
    text = render_table(["pair", "co cycles", "serial cycles", "ratio"],
                        rows, ndigits=2,
                        title="Fig 4.2(a): ILP pairs vs serial execution")
    lab.save("fig4_2a_ilp_pairs", text)

    ratios = [r[3] for r in rows]
    # Most ILP pairs must finish well under their serial time.
    assert sum(1 for r in ratios if r < 0.85) >= 5
    assert min(ratios) < 0.7


def test_fig4_2b_fcfs_pair_cycles(lab, benchmark):
    rows = benchmark.pedantic(lambda: pair_rows(lab, "FCFS"),
                              rounds=1, iterations=1)
    text = render_table(["pair", "co cycles", "serial cycles", "ratio"],
                        rows, ndigits=2,
                        title="Fig 4.2(b): FCFS pairs vs serial execution")
    lab.save("fig4_2b_fcfs_pairs", text)

    ilp_ratios = [r[3] for r in pair_rows(lab, "ILP")]
    fcfs_ratios = [r[3] for r in rows]
    # The paper's comparison: more ILP pairs beat the 'good pair'
    # threshold than FCFS pairs do.
    threshold = sorted(ilp_ratios)[len(ilp_ratios) // 2]
    assert (sum(1 for r in ilp_ratios if r <= threshold)
            >= sum(1 for r in fcfs_ratios if r <= threshold))

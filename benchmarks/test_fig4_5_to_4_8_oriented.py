"""Figs. 4.5–4.8 — per-application throughput for the class-oriented
queues (A-, M-, MC-, and C-oriented respectively), two concurrent apps.

Each figure is one oriented 20-app queue; the series are the four
policies of Fig. 4.3.
"""

import pytest

from repro.analysis import render_grouped_bars
from repro.workloads import base_benchmark_name

POLICIES = ("Even", "Profile-based", "ILP", "ILP-SMRA")
FIGURES = {
    "fig4_5_a_oriented": "A",
    "fig4_6_m_oriented": "M",
    "fig4_7_mc_oriented": "MC",
    "fig4_8_c_oriented": "C",
}


def per_app_table(lab, dist):
    table = {}
    for policy in POLICIES:
        out = lab.outcome(dist, policy, nc=2)
        for group in out.groups:
            for name in group.members:
                table.setdefault(name, {})[policy] = out.app_throughput(name)
    return table


@pytest.mark.parametrize("figure,dist", sorted(FIGURES.items()))
def test_oriented_queue_per_app(lab, benchmark, figure, dist):
    table = benchmark.pedantic(lambda: per_app_table(lab, dist),
                               rounds=1, iterations=1)

    text = render_grouped_bars(
        table, series_order=list(POLICIES), ndigits=1,
        title=f"{figure}: per-app throughput, {dist}-oriented queue")
    lab.save(figure, text)

    assert len(table) == 20
    # Majority class is 55 % of the queue.
    majority = sum(1 for name in table
                   if _cls(name) == dist)
    assert majority == 11

    even = lab.outcome(dist, "Even", nc=2).device_throughput
    smra = lab.outcome(dist, "ILP-SMRA", nc=2).device_throughput
    ilp = lab.outcome(dist, "ILP", nc=2).device_throughput
    best = max(ilp, smra)
    assert best > even * 0.97, \
        f"proposed methods regressed on the {dist}-oriented queue"


def _cls(name):
    from repro.workloads import TABLE_3_2_CLASSES
    return TABLE_3_2_CLASSES[base_benchmark_name(name)]

"""Fig. 1.2 — maximum device utilization of each benchmark running alone.

The paper's motivation chart: most Rodinia workloads leave the majority
of the GTX-480 idle, which is the headroom multi-application execution
recovers.
"""

from repro.analysis import render_bars
from repro.workloads import BENCHMARK_ORDER


def test_fig1_2_max_utilization(lab, benchmark):
    def compute():
        profiles = lab.profiles()
        return {name: profiles[name].utilization * 100
                for name in BENCHMARK_ORDER + ["JPEG"]
                if name in profiles}

    utilizations = benchmark.pedantic(compute, rounds=1, iterations=1)

    text = render_bars(utilizations, width=40, ndigits=1,
                       title="Fig 1.2: max utilization of Rodinia "
                             "benchmarks (solo, % of peak IPC)")
    lab.save("fig1_2_utilization", text)

    # Paper shape: utilization spans a wide range and most benchmarks
    # leave over 40 % of the device idle.
    values = list(utilizations.values())
    assert max(values) > 20.0
    assert min(values) < 10.0
    low = sum(1 for v in values if v < 60.0)
    assert low >= 10, "most benchmarks must underutilize the device"

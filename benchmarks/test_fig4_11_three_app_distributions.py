"""Fig. 4.11 — three-app throughput across the five queue distributions
for Even, Profile-based, ILP, ILP-SMRA (normalized to Even).
"""

from repro.analysis import geometric_mean, render_grouped_bars
from repro.workloads import DISTRIBUTIONS

POLICIES = ("Even", "Profile-based", "ILP", "ILP-SMRA")
LENGTH = 21  # divisible by NC=3


def test_fig4_11_three_app_distributions(lab, benchmark):
    def compute():
        table = {}
        for dist in sorted(DISTRIBUTIONS):
            even = lab.outcome(dist, "Even", nc=3,
                               length=LENGTH).device_throughput
            table[dist] = {
                policy: lab.outcome(dist, policy, nc=3,
                                    length=LENGTH).device_throughput / even
                for policy in POLICIES
            }
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    text = render_grouped_bars(
        table, series_order=list(POLICIES), ndigits=3,
        title="Fig 4.11: three-app throughput by queue distribution "
              "(normalized to Even)")
    lab.save("fig4_11_three_app_distributions", text)

    avg = {p: geometric_mean([table[d][p] for d in table]) for p in POLICIES}
    assert avg["ILP-SMRA"] > 0.99
    assert avg["ILP"] > 0.99

"""Fig. 4.9 — three-application execution: Serial vs FCFS vs ILP on the
12-app queue, normalized to Serial.
"""

from repro.analysis import normalize, render_bars


def test_fig4_9_three_app_throughput(lab, benchmark):
    def compute():
        return {name: lab.outcome("paper", name, nc=3).device_throughput
                for name in ("Serial", "FCFS", "ILP")}

    throughputs = benchmark.pedantic(compute, rounds=1, iterations=1)
    normed = normalize(throughputs, "Serial")

    text = render_bars(normed, width=40, baseline=1.0,
                       title="Fig 4.9: three-app queue throughput "
                             "(normalized to Serial)")
    lab.save("fig4_9_three_app_throughput", text)

    assert normed["FCFS"] > 1.2, "3-way co-scheduling must beat serial"
    assert normed["ILP"] > 1.2
    # The paper reports ILP ahead of FCFS; in this reproduction the two
    # are within a few percent on the 12-app queue (the class-granular
    # objective composed additively for NC=3 loses precision — see
    # EXPERIMENTS.md).  Guard against a real regression only.
    assert normed["ILP"] >= normed["FCFS"] * 0.95

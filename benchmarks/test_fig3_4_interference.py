"""Fig. 3.4 — average slowdown a class suffers per co-running class.

Regenerates the class-pair slowdown matrix and checks the paper's two
headline observations: class M applications slow every class down the
most, and class MC suffers more from class M than class M itself does.
"""

from repro.analysis import render_table
from repro.core import CLASS_ORDER


def test_fig3_4_class_interference_matrix(lab, benchmark):
    def compute():
        return lab.ctx.interference  # built (and memoized) on demand

    model = benchmark.pedantic(compute, rounds=1, iterations=1)

    headers = ["victim \\ with"] + [str(c) for c in CLASS_ORDER]
    rows = [[str(victim)] + list(row)
            for victim, row in zip(CLASS_ORDER, model.slowdown)]
    text = render_table(headers, rows, ndigits=2,
                        title="Fig 3.4: average slowdown of class (row) "
                              "when co-running with class (column)")
    lab.save("fig3_4_interference", text)

    s = model.slowdown
    m = 0  # index of class M in CLASS_ORDER
    # Class M is the most destructive aggressor for every victim class.
    for victim in range(4):
        assert s[victim][m] == max(s[victim]), (
            f"class M must be the worst aggressor for {CLASS_ORDER[victim]}")
    # MC suffers more than M when co-running with M (§3.2.2).
    assert s[1][m] > s[0][m]
    # Class A is the most benign aggressor overall.
    col_means = [sum(s[v][a] for v in range(4)) / 4 for a in range(4)]
    assert col_means[3] == min(col_means)

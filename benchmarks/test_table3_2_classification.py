"""Table 3.2 — profile metrics and class of every benchmark.

Regenerates the paper's classification table from solo profiling and
checks every class label matches the paper's.
"""

from repro.analysis import render_table
from repro.core import ClassificationThresholds, classify
from repro.workloads import RODINIA_SPECS, TABLE_3_2_CLASSES


def test_table3_2_classification(lab, benchmark):
    thresholds = ClassificationThresholds.for_device(lab.config)

    def compute():
        rows = []
        for name in RODINIA_SPECS:
            m = lab.profiler.profile(name, RODINIA_SPECS[name])
            cls = classify(m, thresholds)
            rows.append((name, m.memory_bandwidth_gbps, m.l2_to_l1_gbps,
                         m.ipc, m.mem_compute_ratio, str(cls),
                         TABLE_3_2_CLASSES[name]))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    text = render_table(
        ["Benchmark", "MemoryBW", "L2->L1", "IPC", "R", "class", "paper"],
        rows, ndigits=2,
        title=(f"Table 3.2: classification "
               f"(alpha={thresholds.alpha_gbps:.1f}, "
               f"beta={thresholds.beta_gbps:.1f}, gamma=100, eps=200)"))
    lab.save("table3_2_classification", text)

    mismatches = [r[0] for r in rows if r[5] != r[6]]
    assert not mismatches, f"class mismatches: {mismatches}"

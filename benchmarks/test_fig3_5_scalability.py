"""Fig. 3.5 — IPC scalability trends with SM count (normalized to 10 SMs).

The paper highlights: LUD flat (12-block grid), HS near-ideal, LPS/FFT
saturating, BFS2 flat-but-low, GUPS bound by the memory system.
"""

from repro.analysis import render_table
from repro.gpusim import Application, simulate
from repro.workloads import RODINIA_SPECS

SM_POINTS = (10, 15, 20, 25, 30)
BENCHES = ("BFS2", "LUD", "FFT", "LPS", "GUPS", "HS")


def test_fig3_5_scalability_trends(lab, benchmark):
    def compute():
        curves = {}
        for name in BENCHES:
            ipcs = []
            for sms in SM_POINTS:
                cfg = lab.config.with_sms(sms)
                res = simulate(cfg, [Application(name, RODINIA_SPECS[name])])
                ipcs.append(res.app_stats[0].ipc(res.cycles))
            curves[name] = [v / ipcs[0] for v in ipcs]
        return curves

    curves = benchmark.pedantic(compute, rounds=1, iterations=1)

    headers = ["bench"] + [f"{n} SMs" for n in SM_POINTS]
    rows = [[name] + vals for name, vals in curves.items()]
    rows.append(["(ideal)"] + [n / SM_POINTS[0] for n in SM_POINTS])
    text = render_table(headers, rows, ndigits=2,
                        title="Fig 3.5: IPC vs #SMs, normalized to 10 SMs")
    lab.save("fig3_5_scalability", text)

    # LUD's 12-block grid cannot use more than 12 SMs: flat curve.
    assert max(curves["LUD"]) < 1.3
    # HS scales the closest to ideal of the six.
    assert curves["HS"][-1] == max(c[-1] for c in curves.values())
    assert curves["HS"][-1] > 2.0
    # BFS2 is flat (low parallelism), GUPS is memory-system bound.
    assert max(curves["BFS2"]) < 1.4
    assert curves["GUPS"][-1] < 2.0
    # LPS and FFT saturate: the last step adds little.
    for name in ("LPS", "FFT"):
        assert curves[name][-1] / curves[name][-2] < 1.15

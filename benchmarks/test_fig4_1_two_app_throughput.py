"""Fig. 4.1 — device throughput of the 14-app queue under Serial, FCFS,
and ILP selection (two concurrent applications), normalized to Serial.

Paper: FCFS and ILP both beat serial execution, ILP beats FCFS.
"""

from repro.analysis import normalize, render_bars


def test_fig4_1_two_app_throughput(lab, benchmark):
    def compute():
        return {name: lab.outcome("paper", name, nc=2).device_throughput
                for name in ("Serial", "FCFS", "ILP")}

    throughputs = benchmark.pedantic(compute, rounds=1, iterations=1)
    normed = normalize(throughputs, "Serial")

    text = render_bars(normed, width=40, baseline=1.0,
                       title="Fig 4.1: two-app queue throughput "
                             "(normalized to Serial)")
    lab.save("fig4_1_two_app_throughput", text)

    assert normed["FCFS"] > 1.05, "co-scheduling must beat serial"
    assert normed["ILP"] > normed["FCFS"], "ILP selection must beat FCFS"

"""Executors: how planned work is turned into simulation results.

The scheduling layers (batch ``run_queue``, online ``run_stream``,
interference measurement) describe *what* to simulate — co-execution
groups, solo profiles, pair co-runs.  An executor decides *where* those
simulations run:

* :class:`SerialExecutor` — in-process, one after another.  This is the
  seed scheduler's behavior and the default everywhere; results are
  bit-identical to the pre-runtime code path.
* :class:`ParallelExecutor` — a ``concurrent.futures`` process pool.
  Each job simulates a fresh device in a worker process, so independent
  groups / solo profiles / interference pairs fan out across cores.
  Because the engine is deterministic, a worker's result is
  bit-identical to the same job run in-process, and results are merged
  back **in submission order**, so parallel execution is
  indistinguishable from serial execution except in wall-clock time.

Workers share solo profiles with the parent (and with each other)
through the PR-1 on-disk profile cache: a worker's ``Profiler`` writes
the cache file atomically and the parent primes its in-memory cache from
the returned metrics.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.gpusim import (DEFAULT_MAX_CYCLES, Application, GPUConfig,
                          KernelSpec, simulate)

from repro.core.profiling import CacheDir, Profiler, ProfileMetrics
from repro.core.scheduler import GroupOutcome, run_group
from repro.core.policies import PlannedGroup
from repro.core.smra import SMRAParams

#: (name, spec) — one application of a pair co-run or a profile job.
Entry = Tuple[str, KernelSpec]


def _validated_workers(workers) -> int:
    """`workers` as a positive int, or a clear ValueError.

    Callers (CLI flags, ``REPRO_WORKERS``) used to hand bad values
    straight to the process pool, which died with a deep traceback;
    rejecting them here names the actual problem.
    """
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(
            f"workers must be a positive integer, got {workers!r}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def workers_from_env(var: str = "REPRO_WORKERS", default: int = 1) -> int:
    """Parse a worker count from the environment (``REPRO_WORKERS=N``).

    Unset or empty falls back to `default`; anything that is not a
    positive integer raises a ValueError naming the variable instead of
    surfacing as an int() traceback deep inside a harness.
    """
    raw = os.environ.get(var)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        raise ValueError(
            f"{var} must be a positive integer, got {raw!r}") from None
    if value < 1:
        raise ValueError(f"{var} must be >= 1, got {value}")
    return value


# -- module-level job functions (picklable by the process pool) -------------

def _group_job(args) -> GroupOutcome:
    group, config, smra_params, max_cycles, backend = args
    return run_group(group, config, smra_params, max_cycles,
                     backend=backend)


def _pair_job(args) -> Tuple[int, int]:
    config, (name_a, spec_a), (name_b, spec_b), max_cycles = args
    result = simulate(config, [Application(name_a, spec_a),
                               Application(name_b, spec_b)],
                      max_cycles=max_cycles)
    return (result.app_stats[0].finish_cycle or result.cycles,
            result.app_stats[1].finish_cycle or result.cycles)


def _profile_job(args) -> ProfileMetrics:
    config, name, spec, cache_dir = args
    return Profiler(config, cache_dir=cache_dir).profile(name, spec)


class _LazyJobFuture:
    """Future-alike that runs an arbitrary job on first ``result()``.

    :meth:`SerialExecutor.submit_job` returns these so generic
    fan-out call sites (the campaign shard driver) can use one
    submit/collect code path for serial and pooled execution.
    """

    __slots__ = ("_call", "_value")

    def __init__(self, fn, args):
        self._call = (fn, args)
        self._value = None

    def result(self):
        if self._call is not None:
            fn, args = self._call
            self._value = fn(*args)
            self._call = None
        return self._value

    def cancel(self) -> bool:
        if self._call is not None:
            self._call = None
            return True
        return False


class _LazyGroupFuture:
    """Future-alike that simulates on first ``result()`` call.

    :meth:`SerialExecutor.submit_group` returns these so speculative
    submissions cost nothing unless the prediction is actually consumed
    — a discarded miss under the serial executor is free, keeping
    single-worker speculation wall-clock neutral.
    """

    __slots__ = ("_job", "_outcome")

    def __init__(self, job):
        self._job = job
        self._outcome = None

    def result(self) -> GroupOutcome:
        if self._job is not None:
            self._outcome = _group_job(self._job)
            self._job = None
        return self._outcome

    def cancel(self) -> bool:
        if self._job is not None:
            self._job = None
            return True
        return False


class Executor:
    """Runs independent simulation jobs; results come back in job order."""

    name = "base"
    workers = 1

    def run_groups(self, groups: Sequence[PlannedGroup], config: GPUConfig,
                   smra_params: SMRAParams = SMRAParams(),
                   max_cycles: int = DEFAULT_MAX_CYCLES,
                   backend: str = "event") -> List[GroupOutcome]:
        raise NotImplementedError

    def run_device_groups(self, jobs: Sequence[
                              Tuple[PlannedGroup, GPUConfig, SMRAParams]],
                          max_cycles: int = DEFAULT_MAX_CYCLES,
                          backend: str = "event") -> List[GroupOutcome]:
        """Like :meth:`run_groups`, but each job carries its own device
        configuration — the heterogeneous-fleet fan-out, where the
        same-instant launches of one fleet event land on devices with
        different :class:`GPUConfig`\\ s (and SMRA parameters)."""
        raise NotImplementedError

    def submit_group(self, group: PlannedGroup, config: GPUConfig,
                     smra_params: SMRAParams = SMRAParams(),
                     max_cycles: int = DEFAULT_MAX_CYCLES,
                     backend: str = "event"):
        """Submit one group simulation asynchronously.

        Returns a future-alike with ``result()`` / ``cancel()``.  The
        speculation layer uses this to start *predicted* groups while
        the virtual clock is still blocked on an in-flight one; the
        serial executor returns a lazy future (computed only if the
        prediction hits), the process pool a real ``Future``.
        """
        raise NotImplementedError

    def submit_job(self, fn, *args):
        """Submit an arbitrary picklable ``fn(*args)`` job.

        The generic sibling of :meth:`submit_group` for work that is
        not a group simulation — the campaign layer fans whole shard
        runs out through it.  The serial executor returns a lazy
        future (the job runs when ``result()`` is first called), the
        process pool a real ``Future``; either way ``result()``
        returns ``fn(*args)``.
        """
        raise NotImplementedError

    def run_pairs(self, config: GPUConfig,
                  pairs: Sequence[Tuple[Entry, Entry]],
                  max_cycles: int = DEFAULT_MAX_CYCLES
                  ) -> List[Tuple[int, int]]:
        """Co-run each (a, b) pair on a fresh evenly-split device; return
        each side's finish cycle (the slowdown numerators of §3.2.2)."""
        raise NotImplementedError

    def run_profiles(self, config: GPUConfig, entries: Sequence[Entry],
                     cache_dir: CacheDir = None) -> List[ProfileMetrics]:
        """Solo-profile each entry (the §3.2 step-1 runs)."""
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process execution — the seed scheduler's exact behavior."""

    name = "serial"

    def run_groups(self, groups, config, smra_params=SMRAParams(),
                   max_cycles=DEFAULT_MAX_CYCLES, backend="event"):
        return [run_group(g, config, smra_params, max_cycles,
                          backend=backend)
                for g in groups]

    def run_device_groups(self, jobs, max_cycles=DEFAULT_MAX_CYCLES,
                          backend="event"):
        return [run_group(group, config, smra_params, max_cycles,
                          backend=backend)
                for group, config, smra_params in jobs]

    def submit_group(self, group, config, smra_params=SMRAParams(),
                     max_cycles=DEFAULT_MAX_CYCLES, backend="event"):
        return _LazyGroupFuture((group, config, smra_params, max_cycles,
                                 backend))

    def submit_job(self, fn, *args):
        return _LazyJobFuture(fn, args)

    def run_pairs(self, config, pairs, max_cycles=DEFAULT_MAX_CYCLES):
        return [_pair_job((config, a, b, max_cycles)) for a, b in pairs]

    def run_profiles(self, config, entries, cache_dir=None):
        profiler = Profiler(config, cache_dir=cache_dir)
        return [profiler.profile(name, spec) for name, spec in entries]


class ParallelExecutor(Executor):
    """Fan-out over a process pool with deterministic in-order merging.

    The pool is created lazily on first use and reused across calls;
    call :meth:`close` (or use as a context manager) to release the
    workers.  ``workers`` defaults to the machine's CPU count.
    """

    name = "process-pool"

    def __init__(self, workers: Optional[int] = None):
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = _validated_workers(workers)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _map(self, fn, jobs: list) -> list:
        if not jobs:
            return []
        # `Executor.map` yields results in submission order regardless of
        # which worker finishes first — the deterministic merge.
        return list(self._ensure_pool().map(fn, jobs))

    def run_groups(self, groups, config, smra_params=SMRAParams(),
                   max_cycles=DEFAULT_MAX_CYCLES, backend="event"):
        return self._map(_group_job,
                         [(g, config, smra_params, max_cycles, backend)
                          for g in groups])

    def run_device_groups(self, jobs, max_cycles=DEFAULT_MAX_CYCLES,
                          backend="event"):
        # _group_job already carries the config per job, so the
        # heterogeneous fan-out reuses the same worker entry point.
        return self._map(_group_job,
                         [(group, config, smra_params, max_cycles, backend)
                          for group, config, smra_params in jobs])

    def submit_group(self, group, config, smra_params=SMRAParams(),
                     max_cycles=DEFAULT_MAX_CYCLES, backend="event"):
        # A real Future: the speculative simulation starts on an idle
        # worker immediately, overlapping the in-flight group the
        # virtual clock is blocked on.
        return self._ensure_pool().submit(
            _group_job, (group, config, smra_params, max_cycles, backend))

    def submit_job(self, fn, *args):
        return self._ensure_pool().submit(fn, *args)

    def run_pairs(self, config, pairs, max_cycles=DEFAULT_MAX_CYCLES):
        return self._map(_pair_job,
                         [(config, a, b, max_cycles) for a, b in pairs])

    def run_profiles(self, config, entries, cache_dir=None):
        return self._map(_profile_job,
                         [(config, name, spec, cache_dir)
                          for name, spec in entries])

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(workers: Optional[int] = None) -> Executor:
    """``workers`` None/1 → serial; ≥ 2 → process pool.

    ``workers`` ≤ 0 or a non-integer raises a ValueError up front —
    silently mapping 0 to serial hid typos like ``REPRO_WORKERS=O``.
    """
    if workers is None or _validated_workers(workers) == 1:
        return SerialExecutor()
    return ParallelExecutor(workers)

"""Speculative execution: pre-simulated groups + out-of-order devices.

The stream and fleet event loops are deterministic but *clock-serial*:
the virtual clock blocks on every in-flight group, so a process pool
only helps when several launches share one instant.  Two observations
unlock far more parallelism without changing a single result:

1. **Group results are pure.**  ``run_group`` simulates a fresh device
   per group, so an outcome depends only on (membership, partitions,
   SMRA flag, device config, SMRA params, cycle budget) — exactly the
   tuple :func:`group_key` freezes.  A group may therefore be simulated
   *before* the policy commits to launching it: if the prediction
   matches, the stored result is bit-identical to simulating on demand;
   if not, the result is discarded unobserved.
2. **Devices interact only at placement points.**  Between two fleet
   events that can route work across devices (an arrival, a fault
   event, an admission re-offer, a requeue), every device's timeline
   depends only on its own state.  Devices may run ahead of the global
   clock up to that *safe horizon* — Time-Warp style optimistic
   execution, with rollback when a straggler (a transiently failed
   attempt whose requeue re-places work) invalidates the horizon.

:class:`SpeculativeSimulator` implements the store + counters shared by
both mechanisms; the run-ahead window itself lives in
:func:`repro.cluster.fleet.run_fleet` (it needs the loop's bookkeeping).

The speculation contract
------------------------
Predictions replay the online policy against its current queue snapshot
via :meth:`~repro.runtime.online.OnlinePolicy.clone_for_prediction`, so
a policy must decide deterministically from its own state (every
shipped policy does; the determinism tests enforce it for the committed
example scenarios).  A mispredicted simulation is *never observed*:
only a key-exact store hit is returned, anything else is discarded.
``commit_check`` re-simulates every hit serially in-process and raises
if the speculative result is not bit-identical — the paranoid mode the
determinism tests run.

Speculation is an execution strategy, never part of a result's
identity: :meth:`repro.api.Scenario.spec_hash` normalizes it away, and
the counters below are reported *next to* a result (CLI stdout,
``--speculation-report``), never inside the canonical result JSON.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.api.registry import REGISTRY

from repro.core.policies import PlannedGroup, PolicyContext
from repro.core.scheduler import GroupOutcome, run_group
from repro.core.smra import SMRAParams

from repro.gpusim import GPUConfig

from .executors import DEFAULT_MAX_CYCLES, Executor

__all__ = ["SpeculationStrategy", "SpeculationCounters",
           "SpeculativeSimulator", "group_key", "outcome_fingerprint",
           "make_speculation"]


def _freeze(value):
    """Nested lists/tuples → nested tuples (hashable key material)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def group_key(group: PlannedGroup, config: GPUConfig,
              smra_params: SMRAParams,
              max_cycles: int) -> Tuple:
    """The purity key: everything a group's simulation result depends on.

    Two :func:`~repro.core.scheduler.run_group` calls with equal keys
    return bit-identical outcomes (fresh device per group), which is
    what makes commit-on-match sound.  ``KernelSpec``, ``GPUConfig``
    and ``SMRAParams`` are frozen dataclasses, so the key hashes by
    value — a prediction made from a deep-copied policy matches the
    real launch.
    """
    return (_freeze(group.members), _freeze(group.partitions),
            bool(group.use_smra), config, smra_params, max_cycles)


def outcome_fingerprint(outcome: GroupOutcome) -> Tuple:
    """Value identity of a group outcome (commit-check comparison).

    Compares members, duration and every per-app counter of the device
    result.  ``GroupOutcome`` itself is not compared directly because
    an SMRA run carries its controller object, whose identity differs
    between a worker's copy and an in-process rerun.
    """
    result = outcome.result
    return (tuple(outcome.members), outcome.cycles, result.cycles,
            result.events,
            tuple(sorted((app_id, dataclasses.astuple(stats))
                         for app_id, stats in result.app_stats.items())))


@dataclass(frozen=True)
class SpeculationStrategy:
    """What the simulator is allowed to do (a ``speculation`` registry
    entry: ``groups``, ``devices`` or ``full``; ``none`` builds no
    strategy at all)."""

    kind: str
    #: predict + pre-simulate likely next groups.
    groups: bool = False
    #: run fleet devices ahead of the global clock (Time-Warp windows).
    run_ahead: bool = False
    #: how many successor groups to predict per launch.
    depth: int = 2
    #: re-simulate every store hit serially and assert bit-identity.
    commit_check: bool = False

    def __post_init__(self):
        if not isinstance(self.depth, int) or isinstance(self.depth, bool) \
                or self.depth < 1:
            raise ValueError(
                f"speculation depth must be a positive integer, got "
                f"{self.depth!r}")
        if not isinstance(self.commit_check, bool):
            raise ValueError(
                f"commit_check must be a boolean, got "
                f"{self.commit_check!r}")


@dataclass
class SpeculationCounters:
    """Deterministic speculation accounting (identical for any worker
    count — every store decision happens on the coordinator's clock)."""

    #: speculative simulations submitted from predictions.
    submitted: int = 0
    #: launches served from the store.
    hits: int = 0
    #: launches simulated on demand.
    misses: int = 0
    #: store entries dropped unobserved (mispredictions, fail/recover).
    discarded: int = 0
    #: hits re-verified against a serial in-process rerun.
    commit_checks: int = 0
    #: run-ahead windows entered.
    windows: int = 0
    #: devices whose local timeline was rolled back and replayed.
    rollbacks: int = 0
    #: retires + launches committed inside run-ahead windows.
    ahead_events: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / max(1, self.hits + self.misses)

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["hit_rate"] = round(self.hit_rate, 4)
        return data


class _DoneFuture:
    """An already-resolved future (rolled-back run-ahead outcomes)."""

    __slots__ = ("_outcome",)

    def __init__(self, outcome: GroupOutcome):
        self._outcome = outcome

    def result(self) -> GroupOutcome:
        return self._outcome

    def cancel(self) -> bool:
        return False


class SpeculativeSimulator:
    """Store of in-flight speculative simulations, keyed by purity key.

    One simulator serves one run (one stream, or one fleet — tags keep
    per-source prediction chains apart: the stream uses a single tag,
    the fleet one tag per device id).  All decisions — what to predict,
    what counts as a hit, what to discard — happen on the caller's
    virtual clock, so counters and results are bit-identical for any
    worker count.
    """

    def __init__(self, executor: Executor, strategy: SpeculationStrategy,
                 telemetry=None, backend: str = "event"):
        self.executor = executor
        self.strategy = strategy
        #: ``engine-backends`` name every speculative (and on-demand)
        #: simulation runs on.  Not part of :func:`group_key`: backends
        #: are bit-identical and the backend is constant within a run.
        self.backend = backend
        self.counters = SpeculationCounters()
        #: Optional :class:`~repro.obs.Telemetry` — the engines attach
        #: theirs so predict/hit/miss show up in traces and metrics.
        self.telemetry = None
        self._tracer = None
        self._metrics = None
        self._profiler = None
        if telemetry is not None:
            self.attach_telemetry(telemetry)
        #: tag → {purity key → (future, generation)}.
        self._store: Dict[Hashable, Dict[Tuple, Tuple[Any, int]]] = {}
        #: monotonically increasing prediction-round counter.
        self._gen = 0
        #: tag → generation of its most recent prediction round.  A
        #: fetch miss discards only entries from *earlier* rounds: the
        #: callers predict successors right before resolving the
        #: current launch, so the current round's entries are for
        #: future launches and a miss on the current one says nothing
        #: about them.
        self._fresh: Dict[Hashable, int] = {}

    def attach_telemetry(self, telemetry) -> None:
        """Observe this simulator with `telemetry` (idempotent)."""
        self.telemetry = telemetry
        self._tracer = telemetry.tracer
        self._metrics = telemetry.metrics
        self._profiler = telemetry.profiler

    @staticmethod
    def _device_of(tag: Hashable) -> Optional[int]:
        """Fleet tags are device ids; the stream tag maps to no device."""
        return tag if isinstance(tag, int) else None

    # -- prediction --------------------------------------------------------

    def predict(self, tag: Hashable, policy, now: int, ctx: PolicyContext,
                max_cycles: int = DEFAULT_MAX_CYCLES) -> None:
        """Replay `policy` (a deep copy) to pre-simulate likely successors.

        Called right after the real policy popped a group, so the clone
        yields the groups the device will most plausibly launch next.
        Clone or replay failures just skip prediction — a policy that
        cannot be probed safely simply never speculates.
        """
        if not self.strategy.groups:
            return
        store = self._store.setdefault(tag, {})
        self._gen += 1
        gen = self._fresh[tag] = self._gen
        if len(store) >= self.strategy.depth:
            return
        if self._profiler is not None:
            with self._profiler.phase("predict"):
                submitted = self._predict_round(store, gen, policy, now,
                                                ctx, max_cycles)
        else:
            submitted = self._predict_round(store, gen, policy, now, ctx,
                                            max_cycles)
        if submitted:
            if self._tracer is not None:
                self._tracer.emit("predict", now,
                                  device=self._device_of(tag),
                                  submitted=submitted)
            if self._metrics is not None:
                self._metrics.counter("spec.submitted").inc(submitted)

    def _predict_round(self, store, gen, policy, now, ctx,
                       max_cycles) -> int:
        try:
            probe = policy.clone_for_prediction()
        except Exception:
            return 0
        submitted = 0
        while len(store) < self.strategy.depth:
            try:
                group = probe.next_group(now, ctx)
            except Exception:
                break
            if group is None:
                break
            key = group_key(group, ctx.config, ctx.smra_params, max_cycles)
            if key not in store:
                store[key] = (self.executor.submit_group(
                    group, ctx.config, ctx.smra_params, max_cycles,
                    backend=self.backend), gen)
                self.counters.submitted += 1
                submitted += 1
        return submitted

    # -- consumption -------------------------------------------------------

    def fetch(self, tag: Hashable, group: PlannedGroup, config: GPUConfig,
              smra_params: SMRAParams,
              max_cycles: int = DEFAULT_MAX_CYCLES,
              now: Optional[int] = None) -> GroupOutcome:
        """The outcome for `group`: a store hit, or simulate on demand.

        A miss invalidates `tag`'s *stale* prediction chain — every
        entry predicted before the current round diverged from the
        real future and is discarded unobserved.  Entries from the
        current round survive: they predict the launches *after* this
        one.
        """
        return self.fetch_batch(
            [(tag, group, config, smra_params)], max_cycles, now=now)[0]

    def fetch_batch(self, jobs: Sequence[Tuple[Hashable, PlannedGroup,
                                               GPUConfig, SMRAParams]],
                    max_cycles: int = DEFAULT_MAX_CYCLES,
                    now: Optional[int] = None) -> List[GroupOutcome]:
        """Like :meth:`fetch` for one instant's batch of launches.

        Hits resolve from the store; misses fan out through the
        executor as one batch (in job order, the deterministic merge).
        `now` is purely observational — the virtual cycle stamped onto
        ``spec_hit``/``spec_miss`` trace events.
        """
        cycle = 0 if now is None else now
        futures: List[Any] = [None] * len(jobs)
        miss_indices: List[int] = []
        miss_jobs = []
        checks: List[Tuple[int, Tuple[Hashable, PlannedGroup, GPUConfig,
                                      SMRAParams]]] = []
        for idx, (tag, group, config, smra_params) in enumerate(jobs):
            key = group_key(group, config, smra_params, max_cycles)
            store = self._store.get(tag, {})
            entry = store.pop(key, None)
            members = [name for name, _spec in group.members]
            if entry is not None:
                futures[idx] = entry[0]
                self.counters.hits += 1
                if self._tracer is not None:
                    self._tracer.emit("spec_hit", cycle,
                                      device=self._device_of(tag),
                                      members=members)
                if self._metrics is not None:
                    self._metrics.counter("spec.hits").inc()
                if self.strategy.commit_check:
                    checks.append((idx, jobs[idx]))
            else:
                self._discard_stale(tag)
                self.counters.misses += 1
                if self._tracer is not None:
                    self._tracer.emit("spec_miss", cycle,
                                      device=self._device_of(tag),
                                      members=members)
                if self._metrics is not None:
                    self._metrics.counter("spec.misses").inc()
                miss_indices.append(idx)
                miss_jobs.append((group, config, smra_params))
        if miss_jobs:
            if self._profiler is not None:
                with self._profiler.phase("simulate"):
                    outcomes = self.executor.run_device_groups(
                        miss_jobs, max_cycles, backend=self.backend)
            else:
                outcomes = self.executor.run_device_groups(
                    miss_jobs, max_cycles, backend=self.backend)
            for idx, outcome in zip(miss_indices, outcomes):
                futures[idx] = _DoneFuture(outcome)
        results = [fut.result() for fut in futures]
        if checks and self._profiler is not None:
            with self._profiler.phase("commit-check"):
                for idx, (tag, group, config, smra_params) in checks:
                    self._commit_check(group, config, smra_params,
                                       max_cycles, results[idx])
        else:
            for idx, (tag, group, config, smra_params) in checks:
                self._commit_check(group, config, smra_params, max_cycles,
                                   results[idx])
        return results

    def stash(self, tag: Hashable, group: PlannedGroup, config: GPUConfig,
              smra_params: SMRAParams, max_cycles: int,
              outcome: GroupOutcome) -> None:
        """Keep a rolled-back run-ahead outcome for its likely re-launch.

        The rollback voided the *launch decision*, not the simulation:
        if the device re-pops the same group after replay (the common
        case — only the straggler's requeue changed the world), the
        redo is a store hit instead of a second simulation.
        """
        store = self._store.setdefault(tag, {})
        key = group_key(group, config, smra_params, max_cycles)
        store.setdefault(key, (_DoneFuture(outcome),
                               self._fresh.get(tag, 0)))

    def _discard_stale(self, tag: Hashable) -> None:
        """Drop `tag` entries predicted before its current round."""
        store = self._store.get(tag)
        if not store:
            return
        fresh = self._fresh.get(tag)
        stale = [key for key, (_fut, gen) in store.items() if gen != fresh]
        for key in stale:
            store.pop(key)[0].cancel()
        self.counters.discarded += len(stale)

    def discard(self, tag: Hashable) -> None:
        """Drop every stored entry for `tag`, unobserved.

        Called when a device fails or recovers (its policy is drained
        or replaced, so its predicted future is void) and at the end
        of the run.
        """
        store = self._store.pop(tag, None)
        self._fresh.pop(tag, None)
        if not store:
            return
        for fut, _gen in store.values():
            fut.cancel()
        self.counters.discarded += len(store)

    def close(self) -> None:
        """Discard every outstanding speculation (end of run)."""
        for tag in list(self._store):
            self.discard(tag)

    # -- verification ------------------------------------------------------

    def _commit_check(self, group: PlannedGroup, config: GPUConfig,
                      smra_params: SMRAParams, max_cycles: int,
                      outcome: GroupOutcome) -> None:
        self.counters.commit_checks += 1
        reference = run_group(group, config, smra_params, max_cycles,
                              backend=self.backend)
        if outcome_fingerprint(reference) != outcome_fingerprint(outcome):
            members = [name for name, _spec in group.members]
            raise RuntimeError(
                f"speculation commit check failed: the speculative "
                f"result for group {members} differs from serial "
                f"execution — the engine or the executor broke "
                f"determinism")


def make_speculation(strategy: Optional[SpeculationStrategy],
                     executor: Executor, backend: str = "event"
                     ) -> Optional[SpeculativeSimulator]:
    """A simulator for `strategy`, or ``None`` for no speculation."""
    if strategy is None:
        return None
    return SpeculativeSimulator(executor, strategy, backend=backend)


# -- registry wiring ---------------------------------------------------------
# The ``speculation`` registry kind, mirroring ``faults``/``admission``:
# ``none`` exists for validation and builds no strategy at all (the
# scenario layer canonicalizes it away).

REGISTRY.register("speculation", "none", lambda **_params: None)


def _strategy_factory(kind: str, groups: bool, run_ahead: bool):
    def factory(depth: int = 2, commit_check: bool = False, **_params):
        return SpeculationStrategy(kind=kind, groups=groups,
                                   run_ahead=run_ahead, depth=depth,
                                   commit_check=commit_check)
    return factory


REGISTRY.register("speculation", "groups",
                  _strategy_factory("groups", True, False))
REGISTRY.register("speculation", "devices",
                  _strategy_factory("devices", False, True))
REGISTRY.register("speculation", "full",
                  _strategy_factory("full", True, True))

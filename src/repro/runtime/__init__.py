"""Online scheduling runtime: arrival streams, pluggable executors.

Three coordinated layers on top of :mod:`repro.core`:

* **policies** (:mod:`.online`) — the event-driven scheduling interface
  (``on_arrival`` / ``on_group_finish`` / ``next_group``), adapters
  that lift every batch policy into it, and genuinely online policies
  (class-aware backfill).
* **executors** (:mod:`.executors`) — where simulations run: in-process
  (:class:`SerialExecutor`, the seed behavior) or fanned across a
  process pool (:class:`ParallelExecutor`) with deterministic merging.
* **engine** (:mod:`.engine`) — :func:`run_stream` drives a policy over
  an arrival stream on a simulated clock; :func:`drain_queue` is the
  batch special case behind the classic ``run_queue`` API.
* **speculation** (:mod:`.speculation`) — the speculative-execution
  layer: :class:`SpeculativeSimulator` pre-simulates a policy's likely
  next groups on idle workers and commits only bit-identical hits, so
  results never depend on whether (or how) speculation ran.
"""

from .engine import (AppRecord, Arrival, ScheduledGroup, StreamOutcome,
                     drain_queue, run_stream)
from .executors import (Executor, ParallelExecutor, SerialExecutor,
                        make_executor, workers_from_env)
from .online import (BatchPolicyAdapter, ClassAwareBackfill, OnlineFCFS,
                     OnlinePolicy, online_policy)
from .speculation import (SpeculationCounters, SpeculationStrategy,
                          SpeculativeSimulator, make_speculation)

__all__ = [
    "Arrival", "AppRecord", "ScheduledGroup", "StreamOutcome",
    "run_stream", "drain_queue",
    "Executor", "SerialExecutor", "ParallelExecutor", "make_executor",
    "workers_from_env",
    "OnlinePolicy", "OnlineFCFS", "BatchPolicyAdapter",
    "ClassAwareBackfill", "online_policy",
    "SpeculationStrategy", "SpeculationCounters", "SpeculativeSimulator",
    "make_speculation",
]

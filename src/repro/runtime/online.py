"""Online scheduling policies: event-driven group formation.

The batch interface (``Policy.plan(queue)``) sees the whole queue up
front.  Under continuous arrivals that is no longer possible: a policy
learns about applications one :class:`~repro.runtime.engine.Arrival` at
a time and must decide what to co-run whenever the device frees up.
The online interface is three hooks:

``on_arrival(entry, now, ctx)``
    A new application entered the waiting queue.
``on_group_finish(outcome, now, ctx)``
    The group the device was running completed.
``next_group(now, ctx) -> Optional[PlannedGroup]``
    The device is free — return the next group to launch, or ``None``
    to stay idle until the next arrival.

Every batch policy is usable online through
:class:`BatchPolicyAdapter`, which re-plans over the waiting backlog
whenever its previous plan is exhausted (so ILP-family policies solve
the grouping ILP per backlog window).  :class:`OnlineFCFS` is the
work-conserving baseline, and :class:`ClassAwareBackfill` is a
genuinely online policy: when the device frees it anchors on the oldest
waiting application (no starvation) and backfills the remaining slots
with the waiting applications whose classes the Fig. 3.4 interference
matrix predicts to co-run best with it.
"""

from __future__ import annotations

import copy
from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.gpusim import KernelSpec

from repro.api.registry import REGISTRY

from repro.core.classification import AppClass
from repro.core.policies import (EvenPolicy, FCFSPolicy, ILPPolicy,
                                 ILPSMRAPolicy, PlannedGroup, Policy,
                                 PolicyContext, ProfileBasedPolicy,
                                 SerialPolicy, cached_class_of)

Entry = Tuple[str, KernelSpec]


class OnlinePolicy:
    """Base class: keeps the arrival-ordered waiting queue."""

    name = "online-base"
    #: True when the policy's decisions use ctx.interference; callers
    #: (e.g. the CLI) measure the matrix only when a policy needs it.
    needs_interference = False
    #: Optional :class:`~repro.obs.Tracer` attached by the engine when
    #: telemetry is on.  Class-level default so pickled/legacy policy
    #: instances keep working; never copied into prediction clones.
    tracer = None

    def __init__(self):
        self.waiting: List[Entry] = []

    @property
    def pending(self) -> bool:
        """True while the policy still holds undispatched applications."""
        return bool(self.waiting)

    def on_arrival(self, entry: Entry, now: int,
                   ctx: PolicyContext) -> None:
        self.waiting.append(entry)

    def on_group_finish(self, outcome, now: int,
                        ctx: PolicyContext) -> None:
        pass

    def next_group(self, now: int,
                   ctx: PolicyContext) -> Optional[PlannedGroup]:
        raise NotImplementedError

    def drain(self) -> List[Entry]:
        """Remove and return every undispatched application.

        The fleet loop calls this when the policy's device fails: the
        drained entries are re-placed onto surviving devices.  Policies
        holding undispatched work outside ``waiting`` must override
        this (see :class:`BatchPolicyAdapter`) — anything not returned
        here is silently lost with its device.
        """
        entries = list(self.waiting)
        self.waiting.clear()
        return entries

    def clone_for_prediction(self) -> "OnlinePolicy":
        """An independent copy used to *predict* future decisions.

        The speculation layer replays ``next_group`` on the clone to
        learn which groups this policy will most likely launch next;
        the clone's decisions are never applied, so the copy must share
        no mutable state with the live policy.  A deep copy is correct
        for every shipped policy (their state is queues of entries plus
        plain caches); policies holding unclonable resources should
        override this — raising disables prediction for them.
        """
        clone = copy.deepcopy(self)
        # Tracers deep-copy by identity (they must not fork the event
        # list), so the clone would share the live tracer — and its
        # replayed decisions would pollute the trace.  Predictions are
        # invisible to telemetry by construction.
        clone.tracer = None
        return clone


class OnlineFCFS(OnlinePolicy):
    """Work-conserving FCFS: launch the oldest ≤ NC waiting apps."""

    name = "FCFS"

    def __init__(self, nc: int = 2):
        if nc < 1:
            raise ValueError("NC must be >= 1")
        super().__init__()
        self.nc = nc

    def next_group(self, now, ctx):
        if not self.waiting:
            return None
        members = self.waiting[:self.nc]
        del self.waiting[:self.nc]
        return PlannedGroup(members=members)


class BatchPolicyAdapter(OnlinePolicy):
    """Run any batch :class:`Policy` online by planning per backlog.

    Whenever the previous plan is exhausted and applications are
    waiting, the wrapped policy plans over the current backlog exactly
    as it would over a full queue; the planned groups then launch in
    order.  With every arrival at cycle 0 (the batch scenario) this
    reproduces ``Policy.plan(queue)`` group-for-group, which is what
    keeps the batch path bit-identical.
    """

    def __init__(self, policy: Policy):
        super().__init__()
        self.policy = policy
        self.name = policy.name
        self.needs_interference = policy.needs_interference
        self._planned: Deque[PlannedGroup] = deque()

    @property
    def pending(self) -> bool:
        return bool(self.waiting) or bool(self._planned)

    def next_group(self, now, ctx):
        if not self._planned and self.waiting:
            planned = self.policy.plan(list(self.waiting), ctx)
            if not planned:
                # Clearing `waiting` here would silently drop the apps
                # and defeat run_stream's stalled-policy guard.
                raise RuntimeError(
                    f"policy {self.name!r} planned no groups for a "
                    f"backlog of {len(self.waiting)} applications")
            if self.tracer is not None:
                self.tracer.emit("plan", now, backlog=len(self.waiting),
                                 groups=len(planned))
            self._planned.extend(planned)
            self.waiting.clear()
        if self._planned:
            return self._planned.popleft()
        return None

    def drain(self) -> List[Entry]:
        """Planned-but-unlaunched members drain too, in plan order."""
        entries = [entry for group in self._planned
                   for entry in group.members]
        self._planned.clear()
        entries.extend(self.waiting)
        self.waiting.clear()
        return entries


class ClassAwareBackfill(OnlinePolicy):
    """Anchor-plus-backfill selection using the interference matrix.

    The oldest waiting application is always admitted (FCFS anchor, so
    nothing starves).  The remaining NC−1 slots are filled greedily
    with the waiting applications minimizing the group's predicted
    total slowdown ``Σ_i S(class_i | others)`` under the additive
    model of :class:`~repro.core.interference.InterferenceModel`.
    Without an interference model in the context the policy degrades
    to plain FCFS fill.

    ``classes`` optionally pre-supplies name → :class:`AppClass`
    (tests, or callers that already classified the stream); otherwise
    classes come from the context's profiler + thresholds, which the
    profile caches make a one-time cost per distinct kernel spec.
    """

    name = "Backfill"
    needs_interference = True

    def __init__(self, nc: int = 2, use_smra: bool = False,
                 classes: Optional[Mapping[str, AppClass]] = None):
        if nc < 1:
            raise ValueError("NC must be >= 1")
        super().__init__()
        self.nc = nc
        self.use_smra = use_smra
        if use_smra:
            self.name = "Backfill-SMRA"
        self._classes: Dict[str, AppClass] = dict(classes or {})

    def _class_of(self, entry: Entry, ctx: PolicyContext) -> AppClass:
        return cached_class_of(self._classes, entry, ctx)

    def _predicted_cost(self, classes: List[AppClass], ctx) -> float:
        model = ctx.interference
        return sum(
            model.group_slowdown(cls, classes[:i] + classes[i + 1:])
            for i, cls in enumerate(classes))

    def next_group(self, now, ctx):
        if not self.waiting:
            return None
        members = [self.waiting.pop(0)]  # FCFS anchor
        if ctx.interference is None:
            take = self.nc - 1
            members += self.waiting[:take]
            del self.waiting[:take]
        else:
            while len(members) < self.nc and self.waiting:
                classes = [self._class_of(e, ctx) for e in members]
                best_idx, best_cost = 0, None
                for idx, cand in enumerate(self.waiting):
                    cost = self._predicted_cost(
                        classes + [self._class_of(cand, ctx)], ctx)
                    # Strict `<`: ties keep the oldest waiting candidate.
                    if best_cost is None or cost < best_cost:
                        best_idx, best_cost = idx, cost
                members.append(self.waiting.pop(best_idx))
        group = PlannedGroup(members=members)
        if self.use_smra and len(members) > 1:
            group.use_smra = True
        return group


# -- registry wiring ---------------------------------------------------------
# The ``online-policies`` registry kind (the old module-level
# ``ONLINE_POLICY_FACTORIES`` dict).  Every factory takes the group
# arity ``nc``; batch policies arrive online through the adapter.
REGISTRY.register("online-policies", "serial",
                  lambda nc=1: BatchPolicyAdapter(SerialPolicy()))
REGISTRY.register("online-policies", "fcfs", lambda nc=2: OnlineFCFS(nc))
REGISTRY.register("online-policies", "even",
                  lambda nc=2: BatchPolicyAdapter(EvenPolicy(nc)))
REGISTRY.register("online-policies", "profile",
                  lambda nc=2: BatchPolicyAdapter(ProfileBasedPolicy(nc)))
REGISTRY.register("online-policies", "ilp",
                  lambda nc=2: BatchPolicyAdapter(ILPPolicy(nc)))
REGISTRY.register("online-policies", "ilp-smra",
                  lambda nc=2: BatchPolicyAdapter(ILPSMRAPolicy(nc)))
REGISTRY.register("online-policies", "backfill",
                  lambda nc=2: ClassAwareBackfill(nc))
REGISTRY.register("online-policies", "backfill-smra",
                  lambda nc=2: ClassAwareBackfill(nc, use_smra=True))


def online_policy(key: str, nc: int = 2) -> OnlinePolicy:
    """Build the online policy registered under `key`."""
    return REGISTRY.create("online-policies", key, nc)

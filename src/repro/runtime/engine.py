"""The online scheduling runtime: arrival streams → scheduled groups.

:func:`run_stream` advances a simulated wall clock (device cycles).
Arrivals are delivered to the policy as the clock passes their arrival
cycle; whenever the device is free the policy is asked for the next
group, which then occupies the device exclusively for its co-run time
(the paper's evaluation model: one group at a time, fresh device per
group).  Completion times, waits, and turnarounds are recorded per
application for the stream metrics in :mod:`repro.analysis.streams`.

:func:`drain_queue` is the batch special case — every application
present at cycle 0 — and is what the classic ``run_queue`` API now
wraps: plan with a batch policy, execute the planned groups through an
executor, producing results bit-identical to the seed scheduler when
the executor is the default :class:`~repro.runtime.executors.SerialExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.gpusim import GPUConfig, KernelSpec

from repro.core.policies import Policy, PolicyContext, Queue
from repro.core.scheduler import GroupOutcome, QueueOutcome, run_group
from repro.obs import Telemetry

from .executors import DEFAULT_MAX_CYCLES, Executor, SerialExecutor
from .online import OnlinePolicy
from .speculation import SpeculativeSimulator


@dataclass(frozen=True)
class Arrival:
    """One application entering the system at `cycle`."""

    cycle: int
    name: str
    spec: KernelSpec

    def __post_init__(self):
        if self.cycle < 0:
            raise ValueError("arrival cycle must be >= 0")


@dataclass
class AppRecord:
    """Lifecycle of one application through the stream."""

    name: str
    arrival_cycle: int
    start_cycle: int     # absolute cycle its group launched
    finish_cycle: int    # absolute cycle the app completed
    group_index: int

    @property
    def wait_cycles(self) -> int:
        """Cycles spent waiting before its group launched."""
        return self.start_cycle - self.arrival_cycle

    @property
    def service_cycles(self) -> int:
        """Cycles from group launch to this app's completion."""
        return self.finish_cycle - self.start_cycle

    @property
    def turnaround_cycles(self) -> int:
        """Arrival to completion — the latency a user observes."""
        return self.finish_cycle - self.arrival_cycle


@dataclass
class ScheduledGroup:
    """A group outcome placed on the stream's absolute timeline."""

    start_cycle: int
    outcome: GroupOutcome


@dataclass
class StreamOutcome:
    """Result of running one arrival stream under one online policy."""

    policy: str
    config: GPUConfig
    groups: List[ScheduledGroup]
    records: Dict[str, AppRecord]
    makespan: int
    busy_cycles: int = 0

    @property
    def total_instructions(self) -> int:
        return sum(s.thread_instructions
                   for g in self.groups
                   for s in g.outcome.result.app_stats.values())

    @property
    def device_throughput(self) -> float:
        """Eq. 1.1 over the whole stream (idle gaps included)."""
        return self.total_instructions / max(1, self.makespan)

    @property
    def utilization(self) -> float:
        """Fraction of the makespan the device was executing a group."""
        return self.busy_cycles / max(1, self.makespan)


def run_stream(arrivals: Sequence[Arrival], policy: OnlinePolicy,
               ctx: PolicyContext,
               max_cycles: int = DEFAULT_MAX_CYCLES,
               speculation: Optional[SpeculativeSimulator] = None,
               telemetry: Optional[Telemetry] = None) -> StreamOutcome:
    """Drive `policy` over `arrivals`; return the scheduled timeline.

    The loop alternates two steps: deliver every arrival whose cycle
    has passed, then ask the policy for the next group.  A ``None``
    group with arrivals still in flight fast-forwards the clock to the
    next arrival; a ``None`` group with applications still waiting and
    nothing in flight is a policy bug and raises.

    `speculation` (a :class:`~repro.runtime.speculation
    .SpeculativeSimulator`) pipelines the single device: right after
    the policy commits to a group, its likely successors are predicted
    (by replaying a clone of the policy) and submitted to the executor,
    so workers pre-simulate the next groups while this loop is blocked
    on the current one.  A hit commits the stored result — bit-identical
    by the purity of ``run_group`` — and a miss discards it unobserved,
    so results never depend on speculation.

    `telemetry` (a :class:`~repro.obs.Telemetry`) observes the run —
    trace events on the virtual clock, deterministic counters, wall
    clock phase timers — without participating in it: the scheduled
    timeline is byte-identical with telemetry on or off.
    """
    ordered = sorted(arrivals, key=lambda a: a.cycle)
    if len(set(a.name for a in ordered)) != len(ordered):
        raise ValueError("arrival names must be unique within a stream")

    tracer = telemetry.tracer if telemetry is not None else None
    metrics = telemetry.metrics if telemetry is not None else None
    profiler = telemetry.profiler if telemetry is not None else None
    if tracer is not None:
        policy.tracer = tracer
    if speculation is not None and telemetry is not None:
        speculation.attach_telemetry(telemetry)

    now = 0
    i = 0
    n = len(ordered)
    arrival_cycle: Dict[str, int] = {}
    records: Dict[str, AppRecord] = {}
    groups: List[ScheduledGroup] = []
    busy = 0

    while True:
        while i < n and ordered[i].cycle <= now:
            a = ordered[i]
            arrival_cycle[a.name] = a.cycle
            if tracer is not None:
                tracer.emit("arrival", now, app=a.name,
                            arrival_cycle=a.cycle)
            if metrics is not None:
                metrics.counter("stream.arrivals").inc()
            policy.on_arrival((a.name, a.spec), now, ctx)
            i += 1

        if profiler is not None:
            with profiler.phase("solver"):
                group = policy.next_group(now, ctx)
        else:
            group = policy.next_group(now, ctx)
        if group is None:
            if i < n:
                now = max(now, ordered[i].cycle)
                continue
            if policy.pending:
                raise RuntimeError(
                    f"policy {policy.name!r} holds waiting applications "
                    f"but returned no group and no arrivals remain")
            break

        for name, _spec in group.members:
            if name not in arrival_cycle:
                raise RuntimeError(
                    f"policy {policy.name!r} scheduled {name!r} before "
                    f"its arrival")
            if name in records:
                raise RuntimeError(
                    f"policy {policy.name!r} scheduled {name!r} twice")

        if speculation is None:
            if profiler is not None:
                with profiler.phase("simulate"):
                    outcome = run_group(group, ctx.config, ctx.smra_params,
                                        max_cycles, backend=ctx.backend)
            else:
                outcome = run_group(group, ctx.config, ctx.smra_params,
                                    max_cycles, backend=ctx.backend)
        else:
            # Predict successors first (their simulations start on idle
            # workers), then resolve the committed group — a store hit
            # from the previous iteration's prediction, else on demand.
            speculation.predict("stream", policy, now, ctx, max_cycles)
            outcome = speculation.fetch("stream", group, ctx.config,
                                        ctx.smra_params, max_cycles,
                                        now=now)
        if tracer is not None:
            tracer.emit("launch", now, members=list(outcome.members),
                        cycles=outcome.cycles, group_index=len(groups))
        groups.append(ScheduledGroup(start_cycle=now, outcome=outcome))
        for name in outcome.members:
            records[name] = AppRecord(
                name=name,
                arrival_cycle=arrival_cycle[name],
                start_cycle=now,
                finish_cycle=now + outcome.finish_cycle_of(name),
                group_index=len(groups) - 1)
        busy += outcome.cycles
        now += outcome.cycles
        if tracer is not None:
            tracer.emit("group_finish", now, members=list(outcome.members),
                        group_index=len(groups) - 1)
        if metrics is not None:
            metrics.counter("stream.groups").inc()
            metrics.histogram("stream.group_cycles").observe(outcome.cycles)
        policy.on_group_finish(outcome, now, ctx)

    if speculation is not None:
        speculation.close()
    return StreamOutcome(policy=policy.name, config=ctx.config,
                         groups=groups, records=records, makespan=now,
                         busy_cycles=busy)


def drain_queue(queue: Queue, policy: Policy, ctx: PolicyContext,
                max_cycles: int = DEFAULT_MAX_CYCLES,
                executor: Optional[Executor] = None,
                telemetry: Optional[Telemetry] = None) -> QueueOutcome:
    """Batch drain: plan the full queue, execute groups via `executor`.

    With the default :class:`SerialExecutor` this is exactly the seed
    scheduler's loop (same calls in the same order); a parallel executor
    fans the independent groups across workers and merges results in
    plan order, which the engine's determinism makes bit-identical.

    `telemetry` observes the drain: the queue model runs its groups
    back to back on one device, so launch/finish events sit on the
    cumulative virtual timeline the queue metrics already use.
    """
    if executor is None:
        executor = SerialExecutor()
    tracer = telemetry.tracer if telemetry is not None else None
    metrics = telemetry.metrics if telemetry is not None else None
    profiler = telemetry.profiler if telemetry is not None else None

    if profiler is not None:
        with profiler.phase("solver"):
            planned = policy.plan(queue, ctx)
        with profiler.phase("simulate"):
            outcomes = executor.run_groups(planned, ctx.config,
                                           ctx.smra_params, max_cycles,
                                           backend=ctx.backend)
    else:
        planned = policy.plan(queue, ctx)
        outcomes = executor.run_groups(planned, ctx.config,
                                       ctx.smra_params, max_cycles,
                                       backend=ctx.backend)

    if tracer is not None or metrics is not None:
        now = 0
        for index, outcome in enumerate(outcomes):
            if tracer is not None:
                tracer.emit("launch", now, members=list(outcome.members),
                            cycles=outcome.cycles, group_index=index)
                tracer.emit("group_finish", now + outcome.cycles,
                            members=list(outcome.members),
                            group_index=index)
            if metrics is not None:
                metrics.counter("queue.groups").inc()
                metrics.histogram("queue.group_cycles").observe(
                    outcome.cycles)
            now += outcome.cycles
    return QueueOutcome(policy=policy.name, groups=outcomes,
                        config=ctx.config)

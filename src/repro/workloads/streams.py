"""Arrival-stream generators: continuous traffic for the online runtime.

The paper's evaluation drains fixed queues; the runtime in
:mod:`repro.runtime` schedules *arrival streams*.  This module builds
them:

* :func:`stream_queue` — scaled queues of 50–200 applications mixing
  the calibrated Rodinia models with the synthetic spec generator (so
  streams are not limited to 14 distinct kernels);
* :func:`poisson_arrivals` — memoryless arrivals (exponential
  inter-arrival gaps), the standard open-system traffic model;
* :func:`bursty_arrivals` — arrivals clumped into bursts separated by
  quiet gaps (flash-crowd traffic);
* :func:`batch_arrivals` — everything present at cycle 0 (the paper's
  batch scenario, useful as a baseline and in tests);
* :func:`trace_arrivals` / :func:`load_trace` — replay an explicit
  ``cycle benchmark`` trace file.

All generators are deterministic in their ``seed``.
"""

from __future__ import annotations

import pathlib
import random
import re
from typing import Dict, Iterable, List, Sequence, Union

from repro.runtime import Arrival

from .queues import QueueEntry
from .rodinia import ALL_BENCHMARKS, RODINIA_SPECS, benchmark_spec
from .synthetic import CLASSES, synthetic_spec


def _uniquify(names_seen: Dict[str, int], base: str) -> str:
    instance = names_seen.get(base, 0)
    names_seen[base] = instance + 1
    return base if instance == 0 else f"{base}#{instance}"


def stream_queue(length: int = 50, seed: int = 0,
                 synthetic_fraction: float = 0.5,
                 scale: float = 1.0) -> List[QueueEntry]:
    """A large mixed queue for stream scenarios.

    Each slot is drawn (deterministically in `seed`) either from the 14
    calibrated Rodinia models or from the synthetic generator with a
    random class — so a 200-app stream contains far more than 14
    distinct kernels.  `scale` shrinks every entry's instruction count
    (Rodinia and synthetic alike).  Entry names are unique.
    """
    if length < 1:
        raise ValueError("stream queue length must be >= 1")
    if not 0.0 <= synthetic_fraction <= 1.0:
        raise ValueError("synthetic_fraction must be in [0, 1]")
    rng = random.Random(seed)
    seen: Dict[str, int] = {}
    entries: List[QueueEntry] = []
    for k in range(length):
        if rng.random() < synthetic_fraction:
            cls = rng.choice(CLASSES)
            spec_seed = rng.randrange(1 << 16)
            spec = synthetic_spec(cls, seed=spec_seed)
            if scale != 1.0:
                spec = spec.scaled(scale)
            entries.append((_uniquify(seen, spec.name), spec))
        else:
            bench = rng.choice(ALL_BENCHMARKS)
            entries.append((_uniquify(seen, bench),
                            benchmark_spec(bench, scale)))
    return entries


def batch_arrivals(queue: Sequence[QueueEntry],
                   cycle: int = 0) -> List[Arrival]:
    """Every application present at `cycle` — the batch scenario."""
    return [Arrival(cycle, name, spec) for name, spec in queue]


def poisson_arrivals(queue: Sequence[QueueEntry], mean_gap: float,
                     seed: int = 0, start: int = 0) -> List[Arrival]:
    """Poisson arrivals: exponential gaps with mean `mean_gap` cycles.

    The first application arrives at `start`; each subsequent arrival
    follows after an independent exponential gap (rate ``1/mean_gap``).
    """
    if mean_gap <= 0:
        raise ValueError("mean_gap must be positive")
    rng = random.Random(seed)
    arrivals: List[Arrival] = []
    t = float(start)
    for name, spec in queue:
        arrivals.append(Arrival(int(t), name, spec))
        t += rng.expovariate(1.0 / mean_gap)
    return arrivals


def bursty_arrivals(queue: Sequence[QueueEntry], burst_size: int,
                    burst_gap: float, within_gap: float = 0.0,
                    seed: int = 0, start: int = 0) -> List[Arrival]:
    """Bursts of `burst_size` arrivals separated by ~`burst_gap` cycles.

    Inside a burst consecutive arrivals are `within_gap` cycles apart
    (0 = simultaneous); between bursts the quiet gap is exponential
    with mean `burst_gap`.
    """
    if burst_size < 1:
        raise ValueError("burst_size must be >= 1")
    if burst_gap <= 0:
        raise ValueError("burst_gap must be positive")
    rng = random.Random(seed)
    arrivals: List[Arrival] = []
    t = float(start)
    for k, (name, spec) in enumerate(queue):
        if k and k % burst_size == 0:
            t += rng.expovariate(1.0 / burst_gap)
        arrivals.append(Arrival(int(t), name, spec))
        if within_gap:
            t += within_gap
    return arrivals


def trace_arrivals(lines: Iterable[str],
                   scale: float = 1.0) -> List[Arrival]:
    """Parse a trace of ``<cycle> <benchmark>`` lines into arrivals.

    Blank lines and ``#`` comments (a ``#`` at line start or preceded
    by whitespace) are skipped.  Benchmarks are the *base* Rodinia
    names (scaled by `scale`); repeated benchmarks get unique
    ``NAME#k`` instance names assigned by the parser — a pasted
    instance name like ``LUD#1`` is rejected as unknown rather than
    silently renumbered.  Arrival cycles may appear in any order.
    """
    seen: Dict[str, int] = {}
    arrivals: List[Arrival] = []
    comment = re.compile(r"(?:^|\s)#.*$")
    for lineno, raw in enumerate(lines, start=1):
        line = comment.sub("", raw).strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(
                f"trace line {lineno}: expected '<cycle> <benchmark>', "
                f"got {raw.strip()!r}")
        cycle_text, bench = parts
        try:
            cycle = int(cycle_text)
        except ValueError:
            raise ValueError(
                f"trace line {lineno}: bad cycle {cycle_text!r}") from None
        if bench not in RODINIA_SPECS:
            raise ValueError(
                f"trace line {lineno}: unknown benchmark {bench!r}")
        arrivals.append(Arrival(cycle, _uniquify(seen, bench),
                                benchmark_spec(bench, scale)))
    return sorted(arrivals, key=lambda a: a.cycle)


def load_trace(path: Union[str, pathlib.Path],
               scale: float = 1.0) -> List[Arrival]:
    """Read a trace file (see :func:`trace_arrivals` for the format)."""
    text = pathlib.Path(path).read_text()
    return trace_arrivals(text.splitlines(), scale=scale)


def slice_arrivals(arrivals: Sequence[Arrival], index: int,
                   count: int) -> List[Arrival]:
    """The `index`-th of `count` contiguous slices of an arrival list.

    The deterministic split behind campaign trace sharding
    (``WorkloadSpec.slice``): arrivals keep their original order and
    cycles, slice sizes differ by at most one (the first ``n % count``
    slices take the extra arrival), and concatenating slices
    ``0..count-1`` reproduces the input exactly.  Every slice is
    non-empty — `count` may not exceed the number of arrivals.
    """
    if count < 1:
        raise ValueError(f"slice count must be >= 1, got {count!r}")
    if not 0 <= index < count:
        raise ValueError(f"slice index must be in [0, {count}), got "
                         f"{index!r}")
    n = len(arrivals)
    if count > n:
        raise ValueError(f"cannot split {n} arrival(s) into {count} "
                         f"non-empty slices")
    base, extra = divmod(n, count)
    start = index * base + min(index, extra)
    size = base + (1 if index < extra else 0)
    return list(arrivals[start:start + size])


# -- registry wiring ---------------------------------------------------------
# Arrival processes under the ``streams`` registry kind.  The factory
# contract is ``factory(queue, **params) -> List[Arrival]`` where
# ``params`` is the standard arrival-parameter set (``mean_gap``,
# ``burst_size``, ``burst_gap``, ``seed``); each factory keyword-picks
# what it needs and ignores the rest, so new processes registered
# downstream plug straight into ``WorkloadSpec.arrival``.
from repro.api.registry import REGISTRY  # noqa: E402

REGISTRY.register("streams", "batch",
                  lambda queue, **_params: batch_arrivals(queue))
REGISTRY.register(
    "streams", "poisson",
    lambda queue, mean_gap=5000.0, seed=0, **_params:
        poisson_arrivals(queue, mean_gap, seed=seed))
REGISTRY.register(
    "streams", "bursty",
    lambda queue, burst_size=8, burst_gap=50000.0, seed=0, **_params:
        bursty_arrivals(queue, burst_size, burst_gap, seed=seed))

"""Synthetic models of the 14 Rodinia-suite benchmarks used by the paper.

Each model is a :class:`~repro.gpusim.KernelSpec` whose parameters were
calibrated so that solo profiling on the GTX-480 configuration reproduces
the benchmark's Table 3.2 operating point — memory bandwidth, L2→L1
bandwidth, IPC, memory-to-compute ratio — and therefore its class
(M / MC / C / A), as well as the Fig. 3.5 scalability personality
(LUD's flat curve comes from its 12-block grid, GUPS's negative scaling
from row-buffer interference between SM streams, HS/SAD's near-ideal
scaling from abundant compute-bound parallelism).

The exact constants are not meaningful individually; they are the tuning
knobs of the substitution documented in DESIGN.md §2.
"""

from __future__ import annotations

from typing import Dict, List

from repro.gpusim import Application, KernelSpec

#: Grid/behaviour of each benchmark model (calibrated; see module docstring).
RODINIA_SPECS: Dict[str, KernelSpec] = {
    # -- class M ----------------------------------------------------------
    # BlackScholes: bank-affine tiled streaming over huge option arrays.
    "BLK": KernelSpec(
        "BLK", blocks=107, warps_per_block=3, instr_per_warp=225,
        mem_fraction=0.026, dep_gap=2.0, tx_per_access=4,
        working_set_kb=16384, pattern="strided", stride_lines=48,
        hot_fraction=0.30, hot_set_kb=128, kernel_launches=4, seed=101),
    # GUPS/RandomAccess: random table updates with weak batch locality.
    "GUPS": KernelSpec(
        "GUPS", blocks=48, warps_per_block=4, instr_per_warp=30,
        mem_fraction=0.1, dep_gap=2.0, tx_per_access=16,
        working_set_kb=65536, pattern="row_local", row_locality=0.3,
        kernel_launches=4, seed=102),

    # -- class MC ---------------------------------------------------------
    # Backprop: layer sweeps (streams) + weight-table reuse (L2).
    "BP": KernelSpec(
        "BP", blocks=130, warps_per_block=3, instr_per_warp=297,
        mem_fraction=0.041, dep_gap=2.6, tx_per_access=2,
        working_set_kb=8192, pattern="stream",
        hot_fraction=0.63, hot_set_kb=128, kernel_launches=4, seed=103),
    "FFT": KernelSpec(
        "FFT", blocks=128, warps_per_block=3, instr_per_warp=150,
        mem_fraction=0.058, dep_gap=2.3, tx_per_access=2,
        working_set_kb=8192, pattern="stream",
        hot_fraction=0.58, hot_set_kb=128, kernel_launches=4, seed=104),
    "3DS": KernelSpec(
        "3DS", blocks=154, warps_per_block=3, instr_per_warp=179,
        mem_fraction=0.092, dep_gap=2.0, tx_per_access=1,
        working_set_kb=6144, pattern="stream",
        hot_fraction=0.56, hot_set_kb=128, kernel_launches=4, seed=105),
    "LPS": KernelSpec(
        "LPS", blocks=110, warps_per_block=3, instr_per_warp=190,
        mem_fraction=0.046, dep_gap=2.0, tx_per_access=2,
        working_set_kb=6144, pattern="stream",
        hot_fraction=0.59, hot_set_kb=128, kernel_launches=4, seed=106),
    # Raytracing: divergent rays, moderate bandwidth, poor L2 reuse.
    "RAY": KernelSpec(
        "RAY", blocks=89, warps_per_block=3, instr_per_warp=400,
        mem_fraction=0.030, dep_gap=3.4, tx_per_access=2,
        working_set_kb=6144, pattern="stream",
        hot_fraction=0.53, hot_set_kb=96, kernel_launches=4, seed=107),

    # -- class C ----------------------------------------------------------
    # BFS: scatter/gather over a frontier that lives in L2.
    "BFS2": KernelSpec(
        "BFS2", blocks=60, warps_per_block=1, instr_per_warp=80,
        mem_fraction=0.16, dep_gap=4.0, tx_per_access=16,
        working_set_kb=384, pattern="random", kernel_launches=4, seed=108),
    # SpMV: irregular column gathers, matrix mostly L2-resident.
    "SPMV": KernelSpec(
        "SPMV", blocks=120, warps_per_block=2, instr_per_warp=110,
        mem_fraction=0.065, dep_gap=2.5, tx_per_access=8,
        working_set_kb=320, pattern="random", kernel_launches=4, seed=109),

    # -- class A ----------------------------------------------------------
    # LU decomposition: tiny 12-block grid, register-resident tiles.
    "LUD": KernelSpec(
        "LUD", blocks=12, warps_per_block=1, instr_per_warp=400,
        mem_fraction=0.004, dep_gap=7.0, tx_per_access=1,
        working_set_kb=12, pattern="stream", kernel_launches=4, seed=110),
    "JPEG": KernelSpec(
        "JPEG", blocks=132, warps_per_block=1, instr_per_warp=500,
        mem_fraction=0.02, dep_gap=5.0, tx_per_access=2,
        working_set_kb=512, pattern="stream",
        hot_fraction=0.72, hot_set_kb=128, kernel_launches=4, seed=111),
    # Hotspot: stencil timesteps with halo reuse, compute bound.
    "HS": KernelSpec(
        "HS", blocks=120, warps_per_block=1, instr_per_warp=1300,
        mem_fraction=0.008, dep_gap=2.6, tx_per_access=2,
        working_set_kb=4096, pattern="stream",
        hot_fraction=0.62, hot_set_kb=128, kernel_launches=4, seed=112),
    "SAD": KernelSpec(
        "SAD", blocks=160, warps_per_block=1, instr_per_warp=825,
        mem_fraction=0.012, dep_gap=2.9, tx_per_access=2,
        working_set_kb=4096, pattern="stream",
        hot_fraction=0.68, hot_set_kb=96, kernel_launches=4, seed=113),
    # Nearest neighbour: small record set, L2-resident after warm-up.
    "NN": KernelSpec(
        "NN", blocks=30, warps_per_block=2, instr_per_warp=200,
        mem_fraction=0.13, dep_gap=4.0, tx_per_access=2,
        working_set_kb=64, pattern="random", kernel_launches=4, seed=114),
}

#: The classes the paper assigns in Table 3.2 (ground truth for tests).
TABLE_3_2_CLASSES: Dict[str, str] = {
    "BFS2": "C", "BLK": "M", "BP": "MC", "LUD": "A", "FFT": "MC",
    "JPEG": "A", "3DS": "MC", "HS": "A", "LPS": "MC", "RAY": "MC",
    "GUPS": "M", "SPMV": "C", "SAD": "A", "NN": "A",
}

#: Benchmark order used by the paper's per-benchmark charts (Fig. 4.4).
BENCHMARK_ORDER: List[str] = [
    "BLK", "GUPS", "BP", "FFT", "3DS", "LPS", "RAY",
    "BFS2", "SPMV", "LUD", "HS", "SAD", "NN",
]

ALL_BENCHMARKS: List[str] = list(RODINIA_SPECS)


def benchmark_spec(name: str, scale: float = 1.0) -> KernelSpec:
    """The kernel spec of a benchmark, optionally scaled for fast tests."""
    spec = RODINIA_SPECS[name]
    return spec if scale == 1.0 else spec.scaled(scale)


def make_application(name: str, scale: float = 1.0,
                     instance: int = 0) -> Application:
    """A fresh :class:`Application` running `name`.

    `instance` disambiguates repeated copies of the same benchmark in a
    queue (the Application object is mutated at launch, so each queue slot
    needs its own instance).
    """
    app_name = name if instance == 0 else f"{name}#{instance}"
    return Application(app_name, benchmark_spec(name, scale))


def base_benchmark_name(app_name: str) -> str:
    """Strip the ``#instance`` suffix from an application name."""
    return app_name.split("#", 1)[0]


# -- registry wiring ---------------------------------------------------------
# Each calibrated model under the ``benchmarks`` registry kind; the
# factory takes the kernel scale factor (``repro list --kind
# benchmarks`` and downstream suites enumerate these).
from repro.api.registry import REGISTRY  # noqa: E402

for _bench in ALL_BENCHMARKS:
    REGISTRY.register(
        "benchmarks", _bench,
        lambda scale=1.0, _name=_bench: benchmark_spec(_name, scale))
del _bench

"""Parametric synthetic kernel generation.

Generates random kernels whose behaviour lands in a requested class
region (class M / MC / C / A).  Parameter ranges bracket the calibrated
Rodinia models, so the classifier should agree with the generator's
intent.  Used by property-based tests and as a way to grow queues beyond
the 14 Rodinia benchmarks.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.gpusim import KernelSpec

#: Class labels understood by :func:`synthetic_spec`.
CLASSES = ("M", "MC", "C", "A")


def synthetic_spec(app_class: str, seed: int = 0,
                   name: Optional[str] = None) -> KernelSpec:
    """A randomized kernel spec that profiles into `app_class`.

    Class M streams through working sets far beyond L2 with bank-affine
    strides (high row-buffer locality, DRAM saturating); class MC adds a
    hot region that lives in L2 next to a moderate stream; class C works
    out of L2 with heavy uncoalesced traffic and low IPC; class A barely
    touches memory.
    """
    if app_class not in CLASSES:
        raise ValueError(f"unknown class {app_class!r}")
    rng = random.Random((CLASSES.index(app_class) + 1) * 65537 + seed)
    name = name or f"SYN-{app_class}-{seed}"

    if app_class == "M":
        return KernelSpec(
            name, blocks=rng.choice([96, 107, 120]),
            warps_per_block=3,
            instr_per_warp=rng.randint(180, 260),
            mem_fraction=rng.uniform(0.024, 0.034),
            dep_gap=2.0,
            tx_per_access=4,
            working_set_kb=rng.choice([16384, 32768]),
            pattern="strided", stride_lines=48,
            hot_fraction=rng.uniform(0.2, 0.35), hot_set_kb=128,
            seed=seed)
    if app_class == "MC":
        return KernelSpec(
            name, blocks=rng.choice([110, 120, 130]),
            warps_per_block=3,
            instr_per_warp=rng.randint(160, 280),
            mem_fraction=rng.uniform(0.040, 0.047),
            dep_gap=rng.uniform(2.0, 2.6),
            tx_per_access=2,
            working_set_kb=rng.choice([6144, 8192]),
            pattern="stream",
            hot_fraction=rng.uniform(0.55, 0.63), hot_set_kb=128,
            seed=seed)
    if app_class == "C":
        return KernelSpec(
            name, blocks=60,
            warps_per_block=1,
            instr_per_warp=rng.randint(70, 100),
            mem_fraction=rng.uniform(0.12, 0.16),
            dep_gap=rng.uniform(3.5, 4.5),
            tx_per_access=rng.choice([12, 16]),
            working_set_kb=rng.choice([320, 384]),
            pattern="random",
            kernel_launches=4, seed=seed)
    # class A: compute-bound with a small L2-resident footprint.
    return KernelSpec(
        name, blocks=rng.choice([120, 140, 160]),
        warps_per_block=1,
        instr_per_warp=rng.randint(700, 1300),
        mem_fraction=rng.uniform(0.006, 0.012),
        dep_gap=rng.uniform(2.2, 3.0),
        tx_per_access=2,
        working_set_kb=4096,
        pattern="stream",
        hot_fraction=rng.uniform(0.55, 0.7), hot_set_kb=96,
        seed=seed)

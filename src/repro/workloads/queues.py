"""Application queue builders for the paper's evaluation scenarios.

Chapter 4 evaluates two queue families:

* the **14-application queue** of Fig. 4.1/4.2 — exactly the benchmark
  suite (2 class M, 5 class MC, 2 class C, 5 class A applications);
* **20-application queues** with controlled class distributions
  (Fig. 4.3): equal distribution, or 55 % of one class and 15 % of each
  other class.

Queues are arrival-ordered lists of ``(unique name, kernel spec)``; the
same benchmark may appear several times (``"HS#1"``, ``"HS#2"`` …).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.gpusim import KernelSpec

from .rodinia import RODINIA_SPECS, TABLE_3_2_CLASSES, benchmark_spec

#: Queue entry type.
QueueEntry = Tuple[str, KernelSpec]

#: The five distributions of §4.1 (key → oriented class, None = equal).
DISTRIBUTIONS: Dict[str, str] = {
    "equal": "",
    "M": "M",
    "MC": "MC",
    "C": "C",
    "A": "A",
}

#: Benchmarks per class, in Table 3.2 order.
BENCHMARKS_BY_CLASS: Dict[str, List[str]] = {}
for _name, _cls in TABLE_3_2_CLASSES.items():
    BENCHMARKS_BY_CLASS.setdefault(_cls, []).append(_name)


#: Arrival order of the paper's 14-application queue.  Fig. 4.2(b) shows
#: the FCFS pairs (BFS2-GUPS, FFT-SPMV, 3DS-BP, JPEG-BLK, LUD-HS,
#: LPS-SAD, NN-RAY), which pins down the arrival order the authors used.
PAPER_QUEUE_ORDER: List[str] = [
    "BFS2", "GUPS", "FFT", "SPMV", "3DS", "BP", "JPEG",
    "BLK", "LUD", "HS", "LPS", "SAD", "NN", "RAY",
]


def paper_queue(scale: float = 1.0) -> List[QueueEntry]:
    """The 14-application queue of Fig. 4.1/4.2 (2 M + 5 MC + 2 C + 5 A
    applications, in the arrival order implied by the paper's FCFS
    pairs)."""
    return [(name, benchmark_spec(name, scale)) for name in PAPER_QUEUE_ORDER]


def _class_shares(oriented: str) -> Dict[str, float]:
    if not oriented:
        return {c: 0.25 for c in ("M", "MC", "C", "A")}
    if oriented not in ("M", "MC", "C", "A"):
        raise ValueError(f"unknown orientation {oriented!r}")
    return {c: (0.55 if c == oriented else 0.15)
            for c in ("M", "MC", "C", "A")}


def _apportion(shares: Dict[str, float], length: int) -> Dict[str, int]:
    """Largest-remainder apportionment of `length` slots to classes."""
    raw = {c: s * length for c, s in shares.items()}
    counts = {c: int(r) for c, r in raw.items()}
    remaining = length - sum(counts.values())
    by_frac = sorted(raw, key=lambda c: raw[c] - counts[c], reverse=True)
    for c in by_frac[:remaining]:
        counts[c] += 1
    return counts


#: Arrival order of the 12-application queue used by the three-app
#: experiments (Fig. 4.9/4.10).  Fig. 4.10(b)'s FCFS triples
#: (BFS2-GUPS-FFT, SPMV-3DS-BP, JPEG-BLK-LUD, HS-LPS-SAD) pin it down.
PAPER_QUEUE_ORDER_THREE: List[str] = [
    "BFS2", "GUPS", "FFT", "SPMV", "3DS", "BP",
    "JPEG", "BLK", "LUD", "HS", "LPS", "SAD",
]


def paper_queue_three(scale: float = 1.0) -> List[QueueEntry]:
    """The 12-application queue of the three-app experiments."""
    return [(name, benchmark_spec(name, scale))
            for name in PAPER_QUEUE_ORDER_THREE]


def distribution_queue(distribution: str, length: int = 20, seed: int = 0,
                       scale: float = 1.0) -> List[QueueEntry]:
    """A queue with the requested class distribution (Fig. 4.3's five).

    `distribution` is one of ``equal``, ``M``, ``MC``, ``C``, ``A``.
    Benchmarks are drawn round-robin within each class and the final
    arrival order is a deterministic shuffle of `seed`.
    """
    if distribution not in DISTRIBUTIONS:
        raise ValueError(f"unknown distribution {distribution!r}; "
                         f"expected one of {sorted(DISTRIBUTIONS)}")
    counts = _apportion(_class_shares(DISTRIBUTIONS[distribution]), length)

    entries: List[QueueEntry] = []
    used: Dict[str, int] = {}
    for cls in ("M", "MC", "C", "A"):
        pool = BENCHMARKS_BY_CLASS[cls]
        for k in range(counts[cls]):
            name = pool[k % len(pool)]
            instance = used.get(name, 0)
            used[name] = instance + 1
            unique = name if instance == 0 else f"{name}#{instance}"
            entries.append((unique, benchmark_spec(name, scale)))

    rng = random.Random(seed)
    rng.shuffle(entries)
    return entries


def queue_class_counts(queue: Sequence[QueueEntry]) -> Dict[str, int]:
    """Class histogram of a queue (by Table 3.2 labels)."""
    counts = {c: 0 for c in ("M", "MC", "C", "A")}
    for name, _spec in queue:
        base = name.split("#", 1)[0]
        counts[TABLE_3_2_CLASSES[base]] += 1
    return counts

"""Workloads: the calibrated Rodinia benchmark models and queue builders."""

from .queues import (DISTRIBUTIONS, PAPER_QUEUE_ORDER,
                     PAPER_QUEUE_ORDER_THREE, QueueEntry, distribution_queue,
                     paper_queue, paper_queue_three, queue_class_counts)
from .rodinia import (ALL_BENCHMARKS, BENCHMARK_ORDER, RODINIA_SPECS,
                      TABLE_3_2_CLASSES, base_benchmark_name, benchmark_spec,
                      make_application)
from .streams import (batch_arrivals, bursty_arrivals, load_trace,
                      poisson_arrivals, slice_arrivals, stream_queue,
                      trace_arrivals)
from .synthetic import CLASSES, synthetic_spec

__all__ = [
    "RODINIA_SPECS", "TABLE_3_2_CLASSES", "ALL_BENCHMARKS",
    "BENCHMARK_ORDER", "benchmark_spec", "make_application",
    "base_benchmark_name",
    "paper_queue", "paper_queue_three", "distribution_queue",
    "queue_class_counts", "DISTRIBUTIONS", "QueueEntry",
    "PAPER_QUEUE_ORDER", "PAPER_QUEUE_ORDER_THREE",
    "synthetic_spec", "CLASSES",
    "stream_queue", "batch_arrivals", "poisson_arrivals", "bursty_arrivals",
    "trace_arrivals", "load_trace", "slice_arrivals",
]

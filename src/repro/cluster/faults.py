"""Deterministic fault injection and admission control for fleets.

The fleet event loop of :func:`repro.cluster.run_fleet` simulates a
*healthy* cluster; this module supplies the failure model layered onto
its virtual clock:

* :class:`FaultEvent` — one device going DOWN or coming back UP at an
  absolute cycle.  A DOWN device cancels its in-flight group, drains
  its waiting queue, and hands all of that work back to the fleet loop
  for re-placement onto surviving devices; an UP device rejoins
  placement with a fresh policy instance.
* :class:`FaultPlan` — a validated, sorted event sequence plus the
  transient-failure parameters (``fail_prob`` / ``max_retries`` /
  ``seed``).  Plans are built by the ``faults`` registry factories:
  ``scheduled`` (explicit events), ``mtbf`` (exponential churn, one
  seeded RNG stream per device), ``transient`` (group-level failures
  only), and ``none``.
* :class:`AdmissionPolicy` — accept / reject / defer each arrival
  before placement: ``queue-cap`` bounds the fleet-wide waiting depth,
  ``deadline`` rejects arrivals whose optimistic wait bound already
  blows their deadline.

Everything here is deterministic and independent of the executor's
worker count: churn derives from ``random.Random(f"{seed}:{device}")``
per device, and transient failure decisions hash the group membership
and attempt counts (sha256) instead of consuming a shared RNG whose
state would depend on event interleaving.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.registry import REGISTRY

#: The two things that can happen to a device.
EVENT_KINDS = ("down", "up")


@dataclass(frozen=True)
class FaultEvent:
    """One device state transition at an absolute fleet cycle."""

    cycle: int
    device: int
    kind: str  # "down" | "up"

    def __post_init__(self):
        if not isinstance(self.cycle, int) or self.cycle < 0:
            raise ValueError(
                f"fault event cycle must be a non-negative integer, got "
                f"{self.cycle!r}")
        if not isinstance(self.device, int) or self.device < 0:
            raise ValueError(
                f"fault event device must be a non-negative integer, "
                f"got {self.device!r}")
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"fault event kind must be one of {list(EVENT_KINDS)}, "
                f"got {self.kind!r}")


@dataclass(frozen=True)
class FailedGroup:
    """A launched group that never retired normally.

    ``executed_cycles`` is what the device actually burned on the
    attempt: the full ``planned_cycles`` for a transient failure (the
    failure surfaces at the end of the run), the partial progress up to
    the outage for a device-down cancellation.
    """

    start_cycle: int
    members: Tuple[str, ...]
    planned_cycles: int
    executed_cycles: int
    reason: str  # "transient" | "device-down"


@dataclass(frozen=True)
class RejectedApp:
    """An arrival the fleet never served.

    ``reason`` is the admission policy's name (``queue-cap`` /
    ``deadline``) for admission rejections, or ``no-device`` when the
    fleet degraded to zero serving devices with no recovery ahead.
    ``retries`` counts failed execution attempts before the rejection
    (non-zero only for requeued work stranded by total degradation).
    """

    name: str
    arrival_cycle: int
    cycle: int
    reason: str
    retries: int = 0


def _hash_fraction(text: str) -> float:
    """A uniform [0, 1) draw derived from `text` alone (order-free)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultPlan:
    """A validated fault schedule plus transient-failure parameters.

    ``events`` must be consistent with every device starting UP: per
    device they alternate down → up → down … with strictly increasing
    cycles.  When ``num_devices`` is known the plan also rejects events
    addressing devices outside the fleet and the degenerate schedule
    where *every* device is DOWN at cycle 0 (the fleet could never
    serve anything) — both with messages naming the fix.

    ``fail_prob`` enables transient group-level failures: each launch
    may fail (burning its full duration, then requeueing its members)
    with that probability, decided by a sha256 hash over ``seed``, the
    member names, and their attempt counts — deterministic, identical
    for any worker count, and independent across retries.  A group
    whose most-retried member already has ``max_retries`` failed
    attempts always succeeds (bounded retry, no livelock).
    """

    def __init__(self, events: Sequence[FaultEvent] = (),
                 fail_prob: float = 0.0, max_retries: int = 2,
                 seed: int = 0,
                 num_devices: Optional[int] = None):
        if not 0.0 <= fail_prob <= 1.0:
            raise ValueError(
                f"fail_prob must be in [0, 1], got {fail_prob!r}")
        if not isinstance(max_retries, int) or max_retries < 0:
            raise ValueError(
                f"max_retries must be a non-negative integer, got "
                f"{max_retries!r}")
        if not isinstance(seed, int) or seed < 0:
            raise ValueError(
                f"fault seed must be a non-negative integer, got "
                f"{seed!r}")
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.cycle, e.device,
                                          e.kind == "up")))
        self.fail_prob = float(fail_prob)
        self.max_retries = max_retries
        self.seed = seed
        self._validate(num_devices)

    def _validate(self, num_devices: Optional[int]) -> None:
        state: Dict[int, str] = {}
        last_cycle: Dict[int, int] = {}
        for ev in self.events:
            if num_devices is not None and ev.device >= num_devices:
                raise ValueError(
                    f"fault event at cycle {ev.cycle} addresses device "
                    f"{ev.device}, but the fleet has {num_devices} "
                    f"device(s) (ids 0..{num_devices - 1}) — did you "
                    f"mean device {num_devices - 1}?")
            expected = "down" if state.get(ev.device, "up") == "up" \
                else "up"
            if ev.kind != expected:
                raise ValueError(
                    f"fault events for device {ev.device} must "
                    f"alternate down/up starting from UP; got "
                    f"{ev.kind!r} at cycle {ev.cycle} when "
                    f"{expected!r} was expected")
            if ev.device in last_cycle and \
                    ev.cycle <= last_cycle[ev.device]:
                raise ValueError(
                    f"fault events for device {ev.device} must have "
                    f"strictly increasing cycles; cycle {ev.cycle} "
                    f"follows cycle {last_cycle[ev.device]}")
            state[ev.device] = ev.kind
            last_cycle[ev.device] = ev.cycle
        if num_devices is not None:
            down_at_zero = {ev.device for ev in self.events
                            if ev.cycle == 0 and ev.kind == "down"}
            if len(down_at_zero) >= num_devices:
                raise ValueError(
                    f"all {num_devices} device(s) are DOWN at cycle 0, "
                    f"so the fleet could never serve an arrival — did "
                    f"you mean to stagger the outages (move at least "
                    f"one 'down' event past cycle 0)?")

    def validate_for(self, num_devices: int) -> None:
        """Re-check the plan against an actual fleet size.

        A plan built without ``num_devices`` (events only) revalidates
        here when :func:`repro.cluster.run_fleet` learns the real
        device count — out-of-range devices and the all-DOWN-at-0
        degenerate schedule fail with the construction-time messages.
        """
        self._validate(num_devices)

    def has_future_up(self, index: int) -> bool:
        """True when any event at or after `index` brings a device UP."""
        return any(ev.kind == "up" for ev in self.events[index:])

    def group_fails(self, members: Sequence[str],
                    attempts: Sequence[int]) -> bool:
        """Transient-failure decision for one launch.

        Hash-based rather than RNG-stream-based: the draw depends only
        on (seed, member names, per-member attempt counts), never on
        how many other groups launched first, so the decision is
        identical for any device interleaving and worker count.
        """
        if self.fail_prob <= 0.0:
            return False
        if attempts and max(attempts) >= self.max_retries:
            return False  # bounded retry: the next attempt must stick
        key = ";".join(f"{name}@{tries}"
                       for name, tries in zip(members, attempts))
        return _hash_fraction(f"{self.seed}|{key}") < self.fail_prob


# -- plan builders (the ``faults`` registry factories) ------------------------

def scheduled_plan(num_devices: int, events: Sequence = (),
                   fail_prob: float = 0.0, max_retries: int = 2,
                   seed: int = 0, **_params) -> FaultPlan:
    """Explicit down/up events (``[cycle, device, kind]`` triples)."""
    decoded = []
    for item in events:
        if isinstance(item, FaultEvent):
            decoded.append(item)
            continue
        try:
            cycle, device, kind = item
        except (TypeError, ValueError):
            raise ValueError(
                f"fault events must be [cycle, device, kind] triples, "
                f"got {item!r}") from None
        decoded.append(FaultEvent(int(cycle), int(device), str(kind)))
    if not decoded:
        raise ValueError("a scheduled fault plan needs at least one "
                         "event; use kind 'none' for a fault-free run")
    return FaultPlan(events=decoded, fail_prob=fail_prob,
                     max_retries=max_retries, seed=seed,
                     num_devices=num_devices)


def mtbf_plan(num_devices: int, mtbf: float = 500_000.0,
              mttr: float = 100_000.0, horizon: int = 2_000_000,
              fail_prob: float = 0.0, max_retries: int = 2,
              seed: int = 0, **_params) -> FaultPlan:
    """Exponential churn: per-device MTBF/MTTR outage streams.

    Each device draws its own outage timeline from
    ``random.Random(f"{seed}:{device}")`` — time-to-failure is
    exponential with mean `mtbf`, repair time exponential with mean
    `mttr`.  Failures are generated while they start before `horizon`;
    every generated outage carries its matching recovery (possibly past
    the horizon), so churn never strands a device DOWN forever.
    """
    if mtbf <= 0 or mttr <= 0:
        raise ValueError(f"mtbf and mttr must be > 0, got mtbf={mtbf!r} "
                         f"mttr={mttr!r}")
    if not isinstance(horizon, int) or horizon < 1:
        raise ValueError(f"horizon must be a positive integer, got "
                         f"{horizon!r}")
    events: List[FaultEvent] = []
    for device in range(num_devices):
        rng = random.Random(f"{seed}:{device}")
        t = rng.expovariate(1.0 / mtbf)
        while t < horizon:
            down = max(1, int(t))
            up = down + max(1, int(rng.expovariate(1.0 / mttr)))
            events.append(FaultEvent(down, device, "down"))
            events.append(FaultEvent(up, device, "up"))
            t = up + max(1.0, rng.expovariate(1.0 / mtbf))
    return FaultPlan(events=events, fail_prob=fail_prob,
                     max_retries=max_retries, seed=seed,
                     num_devices=num_devices)


def transient_plan(num_devices: int, fail_prob: float = 0.1,
                   max_retries: int = 2, seed: int = 0,
                   **_params) -> FaultPlan:
    """Group-level transient failures only (no device outages)."""
    if not 0.0 < fail_prob <= 1.0:
        raise ValueError(
            f"a transient fault plan needs fail_prob in (0, 1], got "
            f"{fail_prob!r}")
    return FaultPlan(events=(), fail_prob=fail_prob,
                     max_retries=max_retries, seed=seed,
                     num_devices=num_devices)


# -- admission policies -------------------------------------------------------

#: The verdicts :meth:`AdmissionPolicy.decide` may return.
VERDICTS = ("accept", "reject", "defer")


class AdmissionPolicy:
    """Accept, reject, or defer one arrival before placement.

    ``decide`` runs on the fleet loop's clock for every arrival (and
    for every re-try of a deferred arrival), *before* placement — a
    rejected application never enters any device queue.  ``defer``
    re-offers the arrival ``defer_gap`` cycles later, at most
    ``max_defers`` times, after which it is rejected.
    """

    name = "admission-base"
    defer_gap = 5_000
    max_defers = 3

    def decide(self, entry, now: int, devices, ctx) -> str:
        raise NotImplementedError


class QueueCapAdmission(AdmissionPolicy):
    """Bound the fleet-wide waiting depth.

    An arrival is admitted while the total number of *waiting* (placed
    but not launched) applications across UP devices is below
    ``queue_cap``; otherwise it is rejected or deferred per ``mode``.
    """

    name = "queue-cap"

    def __init__(self, queue_cap: int = 8, mode: str = "reject",
                 defer_gap: int = 5_000, max_defers: int = 3):
        if not isinstance(queue_cap, int) or queue_cap < 1:
            raise ValueError(f"queue_cap must be a positive integer, "
                             f"got {queue_cap!r}")
        if mode not in ("reject", "defer"):
            raise ValueError(f"admission mode must be 'reject' or "
                             f"'defer', got {mode!r}")
        if not isinstance(defer_gap, int) or defer_gap < 1:
            raise ValueError(f"defer_gap must be a positive integer, "
                             f"got {defer_gap!r}")
        if not isinstance(max_defers, int) or max_defers < 0:
            raise ValueError(f"max_defers must be a non-negative "
                             f"integer, got {max_defers!r}")
        self.queue_cap = queue_cap
        self.mode = mode
        self.defer_gap = defer_gap
        self.max_defers = max_defers

    def decide(self, entry, now, devices, ctx):
        depth = sum(d.waiting_count for d in devices if d.up)
        if depth < self.queue_cap:
            return "accept"
        return self.mode


class DeadlineAdmission(AdmissionPolicy):
    """Reject arrivals that already cannot meet their deadline.

    The optimistic wait bound of an arrival is the smallest
    ``remaining_busy`` over UP devices — the soonest any device could
    even *start* it, ignoring queued work ahead of it.  When that bound
    alone exceeds ``deadline_cycles`` the arrival is rejected up front
    instead of occupying a queue it is guaranteed to time out of.
    """

    name = "deadline"

    def __init__(self, deadline_cycles: int = 50_000):
        if not isinstance(deadline_cycles, int) or deadline_cycles < 1:
            raise ValueError(
                f"deadline_cycles must be a positive integer, got "
                f"{deadline_cycles!r}")
        self.deadline_cycles = deadline_cycles

    def decide(self, entry, now, devices, ctx):
        bounds = [d.remaining_busy(now) for d in devices if d.up]
        if not bounds:
            return "reject"
        return "accept" if min(bounds) <= self.deadline_cycles \
            else "reject"


# -- registry wiring ----------------------------------------------------------
# Kind ``faults``: ``factory(num_devices, **params) ->
# Optional[FaultPlan]`` — ``None`` means a fault-free run (the fleet
# loop's classic path).  Kind ``admission``: ``factory(**params) ->
# Optional[AdmissionPolicy]``.  Factories ``**_``-ignore parameters
# they do not consume, the same contract as the ``streams`` kind.
REGISTRY.register("faults", "none", lambda num_devices, **_p: None)
REGISTRY.register("faults", "scheduled", scheduled_plan)
REGISTRY.register("faults", "mtbf", mtbf_plan)
REGISTRY.register("faults", "transient", transient_plan)

REGISTRY.register("admission", "none", lambda **_p: None)
REGISTRY.register(
    "admission", "queue-cap",
    lambda queue_cap=8, mode="reject", defer_gap=5_000, max_defers=3,
    **_p: QueueCapAdmission(queue_cap, mode, defer_gap, max_defers))
REGISTRY.register(
    "admission", "deadline",
    lambda deadline_cycles=50_000, **_p:
        DeadlineAdmission(deadline_cycles))

"""Placement policies: which device an arriving application joins.

The fleet event loop calls :meth:`PlacementPolicy.choose` once per
arrival, before the application enters any device queue.  Placement is
the fleet-level counterpart of the paper's group-formation problem: the
online policy on each device decides *who shares the device*, placement
decides *which device's resident mix* the application will eventually
share.

Three policies, in increasing awareness:

* :class:`RoundRobinPlacement` — rotate through devices regardless of
  state (the classic load-oblivious baseline).
* :class:`LeastLoadedPlacement` — join the shortest queue: the device
  with the fewest resident applications, breaking ties toward the one
  that frees up soonest, then the lowest device id.
* :class:`InterferenceAwarePlacement` — route to the device whose
  resident class mix the Fig. 3.4 interference matrix predicts to
  degrade the arrival least (additive model of
  :class:`~repro.core.interference.InterferenceModel`), breaking ties
  like least-loaded.  Degrades to least-loaded when the context has no
  interference model.

All three are deterministic: same arrivals + same device states → same
choice, independent of executor workers.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.registry import REGISTRY

from repro.core.classification import AppClass
from repro.core.policies import PolicyContext, cached_class_of

from .device import Device, Entry


class PlacementPolicy:
    """Base class: route one arrival to one device of the fleet."""

    name = "base"
    #: True when choices use ctx.interference; callers (e.g. the CLI)
    #: measure the matrix only when placement or policy needs it.
    needs_interference = False

    def choose(self, entry: Entry, now: int, devices: Sequence[Device],
               ctx: PolicyContext) -> Device:
        raise NotImplementedError


class RoundRobinPlacement(PlacementPolicy):
    """Rotate through devices in id order, ignoring their state."""

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def choose(self, entry, now, devices, ctx):
        device = devices[self._next % len(devices)]
        self._next += 1
        return device


def _least_loaded_key(device: Device, now: int) -> Tuple[int, int, int]:
    return (device.load(), device.remaining_busy(now), device.device_id)


class LeastLoadedPlacement(PlacementPolicy):
    """Join the shortest queue (fewest resident apps, soonest free)."""

    name = "least-loaded"

    def choose(self, entry, now, devices, ctx):
        return min(devices, key=lambda d: _least_loaded_key(d, now))


class InterferenceAwarePlacement(PlacementPolicy):
    """Route to the device whose resident mix degrades the arrival least.

    The score of a device is the predicted slowdown the arriving
    application would suffer co-resident with that device's current
    applications: ``S(class_new | resident classes)`` under the additive
    model.  Lower is better; ties fall back to the least-loaded key so
    an empty device (score exactly 1.0) still wins over a loaded device
    with a benign mix.

    ``classes`` optionally pre-supplies name → :class:`AppClass` (tests,
    or callers that already classified the stream); otherwise classes
    come from the context's profiler + thresholds, a one-time cost per
    distinct kernel spec thanks to the profile caches.
    """

    name = "interference"
    needs_interference = True

    def __init__(self, classes: Optional[Mapping[str, AppClass]] = None):
        self._classes: Dict[str, AppClass] = dict(classes or {})

    def _class_of(self, entry: Entry, ctx: PolicyContext) -> AppClass:
        return cached_class_of(self._classes, entry, ctx)

    def choose(self, entry, now, devices, ctx):
        if ctx.interference is None:
            return min(devices, key=lambda d: _least_loaded_key(d, now))
        cls = self._class_of(entry, ctx)
        model = ctx.interference

        def score(device: Device):
            mix: List[AppClass] = [self._class_of(e, ctx)
                                   for e in device.resident]
            return ((model.group_slowdown(cls, mix),)
                    + _least_loaded_key(device, now))

        return min(devices, key=score)


# -- registry wiring ---------------------------------------------------------
# The ``placements`` registry kind (the old module-level
# ``PLACEMENT_FACTORIES`` dict).  Factories take no arguments and build
# a fresh instance per fleet run — round-robin counters and class
# caches are per-run state.
REGISTRY.register("placements", "round-robin", RoundRobinPlacement)
REGISTRY.register("placements", "least-loaded", LeastLoadedPlacement)
REGISTRY.register("placements", "interference",
                  InterferenceAwarePlacement)


def placement_policy(key: str) -> PlacementPolicy:
    """Build the placement policy registered under `key`."""
    return REGISTRY.create("placements", key)

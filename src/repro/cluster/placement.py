"""Placement policies: which device an arriving application joins.

The fleet event loop calls :meth:`PlacementPolicy.choose` once per
arrival, before the application enters any device queue.  Placement is
the fleet-level counterpart of the paper's group-formation problem: the
online policy on each device decides *who shares the device*, placement
decides *which device's resident mix* the application will eventually
share.

Three policies, in increasing awareness:

* :class:`RoundRobinPlacement` — rotate through devices regardless of
  state (the classic load-oblivious baseline).
* :class:`LeastLoadedPlacement` — join the shortest queue *per unit of
  capability*: the device with the fewest resident applications
  relative to its peak throughput, breaking ties toward the fewest
  absolute residents, then the one that frees up soonest, then the
  lowest device id.  On a homogeneous fleet the capability scaling is
  a no-op (identical choices to plain join-shortest-queue); on a
  big/little fleet a double-capability device absorbs proportionally
  more residents before it stops winning.
* :class:`InterferenceAwarePlacement` — route to the device whose
  resident class mix the Fig. 3.4 interference matrix predicts to
  degrade the arrival least (additive model of
  :class:`~repro.core.interference.InterferenceModel`), breaking ties
  like least-loaded.  In a heterogeneous fleet each device's *own*
  context supplies the matrix and the classification, so the score of
  a candidate device uses the slowdowns measured on that device's
  configuration.  Degrades to least-loaded when any device lacks an
  interference model.

All three are deterministic: same arrivals + same device states → same
choice, independent of executor workers.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.registry import REGISTRY

from repro.core.classification import AppClass
from repro.core.policies import PolicyContext, cached_class_of

from .device import Device, Entry


class PlacementPolicy:
    """Base class: route one arrival to one device of the fleet."""

    name = "base"
    #: True when choices use ctx.interference; callers (e.g. the CLI)
    #: measure the matrix only when placement or policy needs it.
    needs_interference = False

    def choose(self, entry: Entry, now: int, devices: Sequence[Device],
               ctx: PolicyContext) -> Device:
        raise NotImplementedError


class RoundRobinPlacement(PlacementPolicy):
    """Rotate through devices in id order, ignoring their state."""

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def choose(self, entry, now, devices, ctx):
        device = devices[self._next % len(devices)]
        self._next += 1
        return device


def _capability(device: Device) -> float:
    """Peak thread-instructions/cycle of the device (1.0 when unknown)."""
    config = device.config
    return config.peak_ipc if config is not None else 1.0


def _least_loaded_key(device: Device,
                      now: int) -> Tuple[float, int, int, int]:
    """Capability-scaled join-shortest-queue ordering.

    The primary score is residents per unit of peak throughput; the raw
    resident count is the first tie-break so a homogeneous fleet (equal
    capabilities, where the division is order-preserving) ranks exactly
    as the classic least-loaded rule did.
    """
    load = device.load()
    return (load / _capability(device), load, device.remaining_busy(now),
            device.device_id)


class LeastLoadedPlacement(PlacementPolicy):
    """Join the shortest queue (fewest residents per capability)."""

    name = "least-loaded"

    def choose(self, entry, now, devices, ctx):
        return min(devices, key=lambda d: _least_loaded_key(d, now))


class InterferenceAwarePlacement(PlacementPolicy):
    """Route to the device whose resident mix degrades the arrival least.

    The score of a device is the predicted slowdown the arriving
    application would suffer co-resident with that device's current
    applications: ``S(class_new | resident classes)`` under the additive
    model.  Lower is better; ties fall back to the least-loaded key so
    an empty device (score exactly 1.0) still wins over a loaded device
    with a benign mix.

    In a heterogeneous fleet every device carries its own context
    (:attr:`Device.ctx`), and the score consults **that device's**
    interference matrix, classifying the arrival and the residents with
    the device's profiler/thresholds — an application can be class M on
    a little device and MC on a big one, and the slowdown it predicts
    is the one measured on the candidate device's configuration.

    ``classes`` optionally pre-supplies name → :class:`AppClass` (tests,
    or callers that already classified the stream); these override the
    per-config classification on every device.  Otherwise classes come
    from each context's profiler + thresholds, a one-time cost per
    distinct (kernel spec, device config) thanks to the profile caches.
    """

    name = "interference"
    needs_interference = True

    def __init__(self, classes: Optional[Mapping[str, AppClass]] = None):
        self._classes: Dict[str, AppClass] = dict(classes or {})
        #: per-config memo dicts (heterogeneous fleets classify the
        #: same application differently per device configuration); the
        #: caller-supplied ``classes`` pre-seed every one of them.
        self._per_config: Dict[object, Dict[str, AppClass]] = {}

    def _class_of(self, entry: Entry, ctx: PolicyContext) -> AppClass:
        cache = self._per_config.get(ctx.config)
        if cache is None:
            cache = dict(self._classes)
            self._per_config[ctx.config] = cache
        return cached_class_of(cache, entry, ctx)

    def choose(self, entry, now, devices, ctx):
        def ctx_of(device: Device) -> PolicyContext:
            return device.ctx if device.ctx is not None else ctx

        # A device with its own context must be scored with its own
        # matrix — substituting the fleet-wide one would price it with
        # slowdowns measured on a different configuration.
        models = [d.ctx.interference if d.ctx is not None
                  else ctx.interference for d in devices]
        if any(model is None for model in models):
            return min(devices, key=lambda d: _least_loaded_key(d, now))

        def score(pair):
            device, model = pair
            dctx = ctx_of(device)
            cls = self._class_of(entry, dctx)
            mix: List[AppClass] = [self._class_of(e, dctx)
                                   for e in device.resident]
            return ((model.group_slowdown(cls, mix),)
                    + _least_loaded_key(device, now))

        best, _model = min(zip(devices, models), key=score)
        return best


# -- registry wiring ---------------------------------------------------------
# The ``placements`` registry kind (the old module-level
# ``PLACEMENT_FACTORIES`` dict).  Factories take no arguments and build
# a fresh instance per fleet run — round-robin counters and class
# caches are per-run state.
REGISTRY.register("placements", "round-robin", RoundRobinPlacement)
REGISTRY.register("placements", "least-loaded", LeastLoadedPlacement)
REGISTRY.register("placements", "interference",
                  InterferenceAwarePlacement)


def placement_policy(key: str) -> PlacementPolicy:
    """Build the placement policy registered under `key`."""
    return REGISTRY.create("placements", key)

"""One simulated GPU device inside a fleet.

A :class:`Device` bundles everything the fleet event loop needs to know
about one machine: its own online policy instance (holding the waiting
queue), the set of applications *resident* on it (assigned by the
placement layer and not yet finished — what interference-aware placement
scores against), the in-flight group, and the per-device timeline that
fleet analysis reads back (groups, busy cycles).

The lifecycle mirrors :func:`repro.runtime.run_stream` for a single
device — assign → launch → complete with the same hook order
(``on_group_finish`` before new arrivals before ``next_group``).  One
deliberate refinement: the fleet clock stops at every arrival, so
``on_arrival`` sees the *true* arrival cycle, where ``run_stream`` only
wakes at group boundaries and stamps arrivals with the completion cycle
that delivered them.  Schedules are therefore identical for a
one-device fleet under every shipped policy (none reads ``now`` in
``on_arrival``; a parity test enforces this), but a policy that ages
waiting apps by that timestamp would see the more accurate fleet clock.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.gpusim import GPUConfig, KernelSpec

from repro.core.policies import PlannedGroup, PolicyContext
from repro.core.scheduler import GroupOutcome
from repro.runtime.engine import ScheduledGroup
from repro.runtime.online import OnlinePolicy

from .faults import FailedGroup

Entry = Tuple[str, KernelSpec]


class Device:
    """Per-device queue + policy state driven by the fleet clock.

    ``ctx`` is the device's own :class:`PolicyContext` in a
    heterogeneous fleet — its profiler, classification thresholds, and
    interference matrix are all measured on *this device's*
    :class:`GPUConfig`, so policy and placement decisions use
    device-correct denominators.  ``None`` (the homogeneous default)
    means the fleet-wide context applies.
    """

    __slots__ = ("device_id", "policy", "ctx", "resident", "groups",
                 "busy_cycles", "completion_cycle", "_running", "up",
                 "lost_cycles", "down_cycles", "failed_groups",
                 "_down_since", "_inflight_failed", "tracer")

    def __init__(self, device_id: int, policy: OnlinePolicy,
                 ctx: Optional[PolicyContext] = None):
        if device_id < 0:
            raise ValueError("device_id must be >= 0")
        self.device_id = device_id
        self.policy = policy
        self.ctx = ctx
        #: Optional :class:`~repro.obs.Tracer`; the fleet loop attaches
        #: it on the serial path and detaches it while a run-ahead
        #: window executes optimistically (committed entries are
        #: re-emitted by the window itself), so traces only ever
        #: describe the committed timeline.
        self.tracer = None
        #: Applications assigned here and not yet finished (waiting or
        #: running) — the "queue" of join-shortest-queue placement and
        #: the class mix interference-aware placement scores against.
        self.resident: List[Entry] = []
        self.groups: List[ScheduledGroup] = []
        self.busy_cycles = 0
        #: Absolute cycle the in-flight group completes; None = idle.
        self.completion_cycle: Optional[int] = None
        self._running: List[str] = []
        #: False while the device is failed (fault injection); a DOWN
        #: device holds no work and is invisible to placement.
        self.up = True
        #: Cycles burned on attempts that never retired (failed groups).
        self.lost_cycles = 0
        #: Total cycles spent DOWN (closed out at end of run).
        self.down_cycles = 0
        self.failed_groups: List[FailedGroup] = []
        self._down_since: Optional[int] = None
        #: The in-flight group is a doomed transient attempt: it burns
        #: its full duration, then requeues instead of retiring.
        self._inflight_failed = False

    @property
    def config(self) -> Optional[GPUConfig]:
        """This device's configuration (None = fleet default)."""
        return self.ctx.config if self.ctx is not None else None

    @property
    def busy(self) -> bool:
        return self.completion_cycle is not None

    @property
    def pending(self) -> bool:
        """True while the policy still holds undispatched applications."""
        return self.policy.pending

    @property
    def inflight_failed(self) -> bool:
        """True when the running group is a doomed transient attempt."""
        return self._inflight_failed

    @property
    def waiting_count(self) -> int:
        """Applications placed here but not yet launched."""
        return len(self.resident) - len(self._running)

    def load(self) -> int:
        """Applications in the system here (waiting + running)."""
        return len(self.resident)

    def remaining_busy(self, now: int) -> int:
        """Cycles until the in-flight group completes (0 when idle)."""
        if self.completion_cycle is None:
            return 0
        return max(0, self.completion_cycle - now)

    def assign(self, entry: Entry, now: int, ctx: PolicyContext) -> None:
        """Placement routed `entry` here: it joins the waiting queue."""
        self.resident.append(entry)
        self.policy.on_arrival(entry, now, ctx)

    def next_group(self, now: int,
                   ctx: PolicyContext) -> Optional[PlannedGroup]:
        """Ask the policy what to launch; only valid while idle."""
        if self.busy:
            raise RuntimeError(
                f"device {self.device_id} asked for a group while busy")
        return self.policy.next_group(now, ctx)

    def launch(self, outcome: GroupOutcome, now: int,
               failed: bool = False) -> None:
        """Occupy the device with a simulated group starting at `now`.

        `failed` marks a transient fault attempt: the group occupies
        the device for its full duration exactly like a healthy launch,
        but must be retired through :meth:`complete_failed` (members
        requeue) instead of :meth:`complete`.
        """
        if self.busy:
            raise RuntimeError(
                f"device {self.device_id} launched a group while busy")
        if not self.up:
            raise RuntimeError(
                f"device {self.device_id} launched a group while DOWN")
        if self.tracer is not None:
            self.tracer.emit("launch", now, device=self.device_id,
                             members=list(outcome.members),
                             cycles=outcome.cycles,
                             group_index=len(self.groups), failed=failed)
        self.groups.append(ScheduledGroup(start_cycle=now, outcome=outcome))
        self.busy_cycles += outcome.cycles
        self.completion_cycle = now + outcome.cycles
        self._running = list(outcome.members)
        self._inflight_failed = failed

    def complete(self, ctx: PolicyContext) -> GroupOutcome:
        """Retire the in-flight group at its completion cycle."""
        if not self.busy:
            raise RuntimeError(
                f"device {self.device_id} has no group to complete")
        if self._inflight_failed:
            raise RuntimeError(
                f"device {self.device_id} must retire a failed attempt "
                f"through complete_failed()")
        finished_at = self.completion_cycle
        outcome = self.groups[-1].outcome
        if self.tracer is not None:
            self.tracer.emit("group_finish", finished_at,
                             device=self.device_id,
                             members=list(outcome.members),
                             group_index=len(self.groups) - 1)
        self.completion_cycle = None
        done = set(self._running)
        self._running = []
        self.resident = [e for e in self.resident if e[0] not in done]
        self.policy.on_group_finish(outcome, finished_at, ctx)
        return outcome

    def complete_failed(self) -> List[Entry]:
        """Retire a transiently-failed attempt; return its members.

        The attempt burned its full planned duration (``busy_cycles``
        already counts it; it is additionally booked as lost), its
        group leaves the served timeline for :attr:`failed_groups`, and
        its members leave this device for re-placement.  The policy is
        *not* notified via ``on_group_finish`` — from its point of view
        the members simply departed.
        """
        if not self.busy:
            raise RuntimeError(
                f"device {self.device_id} has no group to complete")
        if not self._inflight_failed:
            raise RuntimeError(
                f"device {self.device_id} tried to fail a healthy "
                f"group")
        scheduled = self.groups.pop()
        outcome = scheduled.outcome
        if self.tracer is not None:
            self.tracer.emit("group_failed", self.completion_cycle,
                             device=self.device_id,
                             members=list(outcome.members),
                             reason="transient")
        self.lost_cycles += outcome.cycles
        self.failed_groups.append(FailedGroup(
            start_cycle=scheduled.start_cycle,
            members=tuple(outcome.members),
            planned_cycles=outcome.cycles,
            executed_cycles=outcome.cycles,
            reason="transient"))
        self.completion_cycle = None
        self._inflight_failed = False
        done = set(self._running)
        self._running = []
        spec_of = dict(self.resident)
        self.resident = [e for e in self.resident if e[0] not in done]
        return [(name, spec_of[name]) for name in outcome.members]

    def fail(self, now: int) -> List[Entry]:
        """Take the device DOWN at `now`; return every displaced entry.

        The in-flight group (if any) is cancelled — the device keeps
        only the cycles it actually executed, booked as lost — and the
        policy's waiting queue drains.  Displaced entries come back
        running-members-first (they have been in the system longest),
        then the drained waiting queue in policy order.
        """
        if not self.up:
            raise RuntimeError(f"device {self.device_id} failed while "
                               f"already DOWN")
        self.up = False
        self._down_since = now
        if self.tracer is not None:
            self.tracer.emit("fault", now, device=self.device_id,
                             inflight=list(self._running))
        displaced: List[Entry] = []
        if self.busy:
            scheduled = self.groups.pop()
            outcome = scheduled.outcome
            executed = now - scheduled.start_cycle
            self.busy_cycles -= self.completion_cycle - now
            self.lost_cycles += executed
            self.failed_groups.append(FailedGroup(
                start_cycle=scheduled.start_cycle,
                members=tuple(outcome.members),
                planned_cycles=outcome.cycles,
                executed_cycles=executed,
                reason="device-down"))
            self.completion_cycle = None
            self._inflight_failed = False
            spec_of = dict(self.resident)
            displaced.extend((name, spec_of[name])
                             for name in self._running)
            self._running = []
        displaced.extend(self.policy.drain())
        self.resident = []
        return displaced

    def recover(self, now: int, policy: OnlinePolicy) -> None:
        """Bring the device back UP at `now` with a fresh policy.

        A fresh policy instance (not the drained one) keeps recovery
        deterministic for stateful policies: the rebooted device starts
        from the same blank state a newly built device would.
        """
        if self.up:
            raise RuntimeError(f"device {self.device_id} recovered "
                               f"while already UP")
        self.up = True
        self.down_cycles += now - self._down_since
        self._down_since = None
        self.policy = policy
        if self.tracer is not None:
            self.tracer.emit("recover", now, device=self.device_id)
            self.policy.tracer = self.tracer

    def close_downtime(self, at: int) -> None:
        """Book the trailing outage of a still-DOWN device at end of run."""
        if not self.up and self._down_since is not None:
            self.down_cycles += max(0, at - self._down_since)
            self._down_since = at

    def snapshot(self) -> tuple:
        """Freeze every mutable field except the policy.

        The fleet's run-ahead windows snapshot a device before letting
        it run past the global clock; :meth:`restore` rewinds it when a
        straggler invalidates the window.  The policy object is *not*
        included — it mutates internally, so the caller snapshots it
        separately (a deep copy) and reassigns :attr:`policy` on
        rollback.
        """
        return (list(self.resident), list(self.groups), self.busy_cycles,
                self.completion_cycle, list(self._running), self.up,
                self.lost_cycles, self.down_cycles,
                list(self.failed_groups), self._down_since,
                self._inflight_failed)

    def restore(self, state: tuple) -> None:
        """Rewind to a :meth:`snapshot` (run-ahead rollback)."""
        (resident, groups, busy_cycles, completion_cycle, running, up,
         lost_cycles, down_cycles, failed_groups, down_since,
         inflight_failed) = state
        self.resident = list(resident)
        self.groups = list(groups)
        self.busy_cycles = busy_cycles
        self.completion_cycle = completion_cycle
        self._running = list(running)
        self.up = up
        self.lost_cycles = lost_cycles
        self.down_cycles = down_cycles
        self.failed_groups = list(failed_groups)
        self._down_since = down_since
        self._inflight_failed = inflight_failed

"""One simulated GPU device inside a fleet.

A :class:`Device` bundles everything the fleet event loop needs to know
about one machine: its own online policy instance (holding the waiting
queue), the set of applications *resident* on it (assigned by the
placement layer and not yet finished — what interference-aware placement
scores against), the in-flight group, and the per-device timeline that
fleet analysis reads back (groups, busy cycles).

The lifecycle mirrors :func:`repro.runtime.run_stream` for a single
device — assign → launch → complete with the same hook order
(``on_group_finish`` before new arrivals before ``next_group``).  One
deliberate refinement: the fleet clock stops at every arrival, so
``on_arrival`` sees the *true* arrival cycle, where ``run_stream`` only
wakes at group boundaries and stamps arrivals with the completion cycle
that delivered them.  Schedules are therefore identical for a
one-device fleet under every shipped policy (none reads ``now`` in
``on_arrival``; a parity test enforces this), but a policy that ages
waiting apps by that timestamp would see the more accurate fleet clock.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.gpusim import GPUConfig, KernelSpec

from repro.core.policies import PlannedGroup, PolicyContext
from repro.core.scheduler import GroupOutcome
from repro.runtime.engine import ScheduledGroup
from repro.runtime.online import OnlinePolicy

Entry = Tuple[str, KernelSpec]


class Device:
    """Per-device queue + policy state driven by the fleet clock.

    ``ctx`` is the device's own :class:`PolicyContext` in a
    heterogeneous fleet — its profiler, classification thresholds, and
    interference matrix are all measured on *this device's*
    :class:`GPUConfig`, so policy and placement decisions use
    device-correct denominators.  ``None`` (the homogeneous default)
    means the fleet-wide context applies.
    """

    __slots__ = ("device_id", "policy", "ctx", "resident", "groups",
                 "busy_cycles", "completion_cycle", "_running")

    def __init__(self, device_id: int, policy: OnlinePolicy,
                 ctx: Optional[PolicyContext] = None):
        if device_id < 0:
            raise ValueError("device_id must be >= 0")
        self.device_id = device_id
        self.policy = policy
        self.ctx = ctx
        #: Applications assigned here and not yet finished (waiting or
        #: running) — the "queue" of join-shortest-queue placement and
        #: the class mix interference-aware placement scores against.
        self.resident: List[Entry] = []
        self.groups: List[ScheduledGroup] = []
        self.busy_cycles = 0
        #: Absolute cycle the in-flight group completes; None = idle.
        self.completion_cycle: Optional[int] = None
        self._running: List[str] = []

    @property
    def config(self) -> Optional[GPUConfig]:
        """This device's configuration (None = fleet default)."""
        return self.ctx.config if self.ctx is not None else None

    @property
    def busy(self) -> bool:
        return self.completion_cycle is not None

    @property
    def pending(self) -> bool:
        """True while the policy still holds undispatched applications."""
        return self.policy.pending

    def load(self) -> int:
        """Applications in the system here (waiting + running)."""
        return len(self.resident)

    def remaining_busy(self, now: int) -> int:
        """Cycles until the in-flight group completes (0 when idle)."""
        if self.completion_cycle is None:
            return 0
        return max(0, self.completion_cycle - now)

    def assign(self, entry: Entry, now: int, ctx: PolicyContext) -> None:
        """Placement routed `entry` here: it joins the waiting queue."""
        self.resident.append(entry)
        self.policy.on_arrival(entry, now, ctx)

    def next_group(self, now: int,
                   ctx: PolicyContext) -> Optional[PlannedGroup]:
        """Ask the policy what to launch; only valid while idle."""
        if self.busy:
            raise RuntimeError(
                f"device {self.device_id} asked for a group while busy")
        return self.policy.next_group(now, ctx)

    def launch(self, outcome: GroupOutcome, now: int) -> None:
        """Occupy the device with a simulated group starting at `now`."""
        if self.busy:
            raise RuntimeError(
                f"device {self.device_id} launched a group while busy")
        self.groups.append(ScheduledGroup(start_cycle=now, outcome=outcome))
        self.busy_cycles += outcome.cycles
        self.completion_cycle = now + outcome.cycles
        self._running = list(outcome.members)

    def complete(self, ctx: PolicyContext) -> GroupOutcome:
        """Retire the in-flight group at its completion cycle."""
        if not self.busy:
            raise RuntimeError(
                f"device {self.device_id} has no group to complete")
        finished_at = self.completion_cycle
        outcome = self.groups[-1].outcome
        self.completion_cycle = None
        done = set(self._running)
        self._running = []
        self.resident = [e for e in self.resident if e[0] not in done]
        self.policy.on_group_finish(outcome, finished_at, ctx)
        return outcome

"""Multi-device cluster simulation: placement + load balancing at scale.

The runtime (:mod:`repro.runtime`) schedules one device; this package
simulates a **fleet** of them draining one shared arrival stream:

* **devices** (:mod:`.device`) — :class:`Device` wraps one machine's
  online policy, waiting queue, resident applications, timeline, and —
  in heterogeneous fleets — its own per-config
  :class:`~repro.core.policies.PolicyContext`.
* **placement** (:mod:`.placement`) — which device an arrival joins:
  round-robin, least-loaded (capability-scaled join-shortest-queue), or
  interference-aware (route to the device whose resident class mix that
  device's Fig. 3.4 matrix predicts to degrade the arrival least).
* **fleet** (:mod:`.fleet`) — :func:`run_fleet` merges per-device
  completion events into one virtual clock and fans same-instant group
  simulations through an executor; ``device_contexts`` makes the fleet
  heterogeneous (per-device :class:`~repro.gpusim.GPUConfig`\\ s);
  results are deterministic and independent of the worker count.
* **faults** (:mod:`.faults`) — deterministic fault injection
  (:class:`FaultPlan`: scheduled outages, MTBF/MTTR churn, transient
  group failures with bounded retry) and admission control
  (:class:`AdmissionPolicy`: queue-depth caps, deadline screening);
  ``run_fleet(faults=..., admission=...)`` merges both onto the same
  virtual clock with requeue onto surviving devices and graceful
  degradation when the whole fleet is DOWN.

Fleet-level metrics live in :mod:`repro.analysis.fleet`; the CLI front
end is ``python -m repro run-fleet``.
"""

from .device import Device
from .faults import (AdmissionPolicy, DeadlineAdmission, FailedGroup,
                     FaultEvent, FaultPlan, QueueCapAdmission,
                     RejectedApp, mtbf_plan, scheduled_plan,
                     transient_plan)
from .fleet import DeviceOutcome, FleetAppRecord, FleetOutcome, run_fleet
from .placement import (InterferenceAwarePlacement, LeastLoadedPlacement,
                        PlacementPolicy, RoundRobinPlacement,
                        placement_policy)

__all__ = [
    "Device",
    "DeviceOutcome", "FleetAppRecord", "FleetOutcome", "run_fleet",
    "PlacementPolicy", "RoundRobinPlacement", "LeastLoadedPlacement",
    "InterferenceAwarePlacement", "placement_policy",
    "FaultEvent", "FaultPlan", "FailedGroup", "RejectedApp",
    "scheduled_plan", "mtbf_plan", "transient_plan",
    "AdmissionPolicy", "QueueCapAdmission", "DeadlineAdmission",
]

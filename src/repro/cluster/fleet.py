"""The fleet event loop: N devices draining one shared arrival stream.

:func:`run_fleet` generalizes :func:`repro.runtime.run_stream` from one
device to a fleet.  One virtual clock advances over the merged event
sequence (arrivals plus per-device group completions); at every event
time the loop

1. retires every group completing now (device-id order) — the freed
   device's policy sees ``on_group_finish``;
2. delivers every arrival due now (arrival order), routing each through
   the placement policy onto one device's waiting queue;
3. asks every idle device's policy for its next group (device-id order)
   and simulates all groups launched at this instant as **one batch**
   through the executor.

Step 3 is where the PR-2 :class:`~repro.runtime.executors
.ParallelExecutor` earns its keep: a group's simulation result depends
only on its membership, so the same-instant launches (all N devices at
a burst, several devices after simultaneous completions) fan out across
worker processes and merge back in device-id order — results are
bit-identical for any worker count, because every *decision* (placement,
group formation, event ordering) happens on this loop's clock, never in
a worker.

Per-application lifecycles come back as :class:`FleetAppRecord` (an
:class:`~repro.runtime.engine.AppRecord` plus the device id), so the
stream metrics of :mod:`repro.analysis.streams` apply unchanged and
:mod:`repro.analysis.fleet` adds the fleet-level view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.gpusim import GPUConfig

from repro.core.policies import PolicyContext
from repro.runtime.engine import AppRecord, Arrival, ScheduledGroup
from repro.runtime.executors import (DEFAULT_MAX_CYCLES, Executor,
                                     SerialExecutor)
from repro.runtime.online import OnlinePolicy

from .device import Device
from .placement import PlacementPolicy

#: Builds one fresh policy per device (called with the device id).
PolicyFactory = Callable[[int], OnlinePolicy]


@dataclass
class FleetAppRecord(AppRecord):
    """An app's lifecycle plus the device that served it.

    ``group_index`` indexes into the *serving device's* ``groups`` list
    (not a fleet-global timeline — devices run concurrently).
    """

    device: int = 0


@dataclass
class DeviceOutcome:
    """One device's share of a fleet run.

    ``config_name`` is the :attr:`GPUConfig.name` of the device that
    produced this timeline — the key of the per-device-class fleet
    metrics; empty when the caller never attached per-device contexts
    (then every device ran the fleet-wide config).
    """

    device_id: int
    policy: str
    groups: List[ScheduledGroup]
    busy_cycles: int
    config_name: str = ""

    @property
    def apps_served(self) -> int:
        return sum(len(g.outcome.members) for g in self.groups)


@dataclass
class FleetOutcome:
    """Result of draining one arrival stream across a fleet.

    Duck-type-compatible with :class:`~repro.runtime.StreamOutcome` for
    :func:`repro.analysis.streams.summarize_stream` — ``utilization``
    and ``device_throughput`` are fleet aggregates.
    """

    placement: str
    policy: str
    config: GPUConfig
    devices: List[DeviceOutcome]
    records: Dict[str, FleetAppRecord]
    #: app name → device id, exactly as the placement policy decided.
    assignments: Dict[str, int]
    makespan: int

    @property
    def busy_cycles(self) -> int:
        return sum(d.busy_cycles for d in self.devices)

    @property
    def total_instructions(self) -> int:
        return sum(s.thread_instructions
                   for d in self.devices
                   for g in d.groups
                   for s in g.outcome.result.app_stats.values())

    @property
    def device_throughput(self) -> float:
        """Eq. 1.1 aggregated across the fleet (instructions/cycle)."""
        return self.total_instructions / max(1, self.makespan)

    @property
    def utilization(self) -> float:
        """Busy fraction of the fleet's total device-cycles."""
        return self.busy_cycles / max(1, len(self.devices) * self.makespan)


def run_fleet(arrivals: Sequence[Arrival], placement: PlacementPolicy,
              policy_factory: PolicyFactory, ctx: PolicyContext,
              num_devices: int = 2, executor: Optional[Executor] = None,
              max_cycles: int = DEFAULT_MAX_CYCLES,
              device_contexts: Optional[Sequence[PolicyContext]] = None
              ) -> FleetOutcome:
    """Drain `arrivals` across `num_devices` devices; return the timeline.

    Each device runs its own policy instance from `policy_factory`;
    `placement` routes every arrival to exactly one device.  `executor`
    only affects wall clock (same-instant group launches fan out), never
    results.

    `device_contexts` makes the fleet **heterogeneous**: one
    :class:`PolicyContext` per device, each built for that device's
    :class:`GPUConfig` (its profiler's solo denominators, thresholds,
    and interference matrix are all measured per config).  A device's
    policy hooks see its own context, config-aware placements read it
    through :attr:`Device.ctx`, and every group simulates on its
    device's configuration.  ``None`` (the default) runs every device
    on `ctx` — the homogeneous case, bit-identical to earlier behavior.
    """
    if num_devices < 1:
        raise ValueError("a fleet needs at least one device")
    if device_contexts is not None and len(device_contexts) != num_devices:
        raise ValueError(
            f"device_contexts lists {len(device_contexts)} contexts for "
            f"{num_devices} device(s)")
    ordered = sorted(arrivals, key=lambda a: a.cycle)
    if len(set(a.name for a in ordered)) != len(ordered):
        raise ValueError("arrival names must be unique within a stream")
    if executor is None:
        executor = SerialExecutor()

    devices = [Device(i, policy_factory(i),
                      ctx=device_contexts[i] if device_contexts else None)
               for i in range(num_devices)]

    def ctx_of(device: Device) -> PolicyContext:
        return device.ctx if device.ctx is not None else ctx

    now = 0
    i = 0
    n = len(ordered)
    arrival_cycle: Dict[str, int] = {}
    assignments: Dict[str, int] = {}
    records: Dict[str, FleetAppRecord] = {}

    while True:
        # 1) retire every group finishing at `now` (device-id order).
        for device in devices:
            if device.busy and device.completion_cycle <= now:
                device.complete(ctx_of(device))

        # 2) deliver arrivals due at `now`; placement sees the fleet
        #    state left by the completions above.
        while i < n and ordered[i].cycle <= now:
            a = ordered[i]
            i += 1
            arrival_cycle[a.name] = a.cycle
            device = placement.choose((a.name, a.spec), now, devices, ctx)
            if not (0 <= device.device_id < len(devices)
                    and devices[device.device_id] is device):
                raise RuntimeError(
                    f"placement {placement.name!r} returned a device "
                    f"outside the fleet")
            assignments[a.name] = device.device_id
            device.assign((a.name, a.spec), now, ctx_of(device))

        # 3) launch on every idle device; simulate this instant's groups
        #    as one batch (the parallel fan-out).
        launches = []
        for device in devices:
            if device.busy:
                continue
            group = device.next_group(now, ctx_of(device))
            if group is None:
                continue
            for name, _spec in group.members:
                if name not in arrival_cycle:
                    raise RuntimeError(
                        f"device {device.device_id} policy "
                        f"{device.policy.name!r} scheduled {name!r} "
                        f"before its arrival")
                if name in records:
                    raise RuntimeError(
                        f"device {device.device_id} policy "
                        f"{device.policy.name!r} scheduled {name!r} twice")
                if assignments[name] != device.device_id:
                    raise RuntimeError(
                        f"device {device.device_id} scheduled {name!r}, "
                        f"which placement assigned to device "
                        f"{assignments[name]}")
            launches.append((device, group))
        if launches:
            if device_contexts is None:
                outcomes = executor.run_groups([g for _d, g in launches],
                                               ctx.config, ctx.smra_params,
                                               max_cycles)
            else:
                # Heterogeneous fleet: every group simulates on the
                # launching device's own configuration; the batch still
                # fans out through the executor as one job list.
                outcomes = executor.run_device_groups(
                    [(g, ctx_of(d).config, ctx_of(d).smra_params)
                     for d, g in launches], max_cycles)
            for (device, _group), outcome in zip(launches, outcomes):
                device.launch(outcome, now)
                for name in outcome.members:
                    records[name] = FleetAppRecord(
                        name=name,
                        arrival_cycle=arrival_cycle[name],
                        start_cycle=now,
                        finish_cycle=now + outcome.finish_cycle_of(name),
                        group_index=len(device.groups) - 1,
                        device=device.device_id)
            continue  # same instant: retire zero-length groups, if any

        # 4) advance the clock to the next completion/arrival, or stop.
        due = [d.completion_cycle for d in devices if d.busy]
        if i < n:
            due.append(ordered[i].cycle)
        if not due:
            stalled = [d.device_id for d in devices if d.pending]
            if stalled:
                raise RuntimeError(
                    f"devices {stalled} hold waiting applications but "
                    f"their policies returned no group and no arrivals "
                    f"remain")
            break
        now = min(due)

    policy_name = devices[0].policy.name if devices else ""
    return FleetOutcome(
        placement=placement.name,
        policy=policy_name,
        config=ctx.config,
        devices=[DeviceOutcome(device_id=d.device_id, policy=d.policy.name,
                               groups=d.groups, busy_cycles=d.busy_cycles,
                               config_name=(d.config.name if d.config
                                            is not None else ""))
                 for d in devices],
        records=records,
        assignments=assignments,
        makespan=now)

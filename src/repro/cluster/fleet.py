"""The fleet event loop: N devices draining one shared arrival stream.

:func:`run_fleet` generalizes :func:`repro.runtime.run_stream` from one
device to a fleet.  One virtual clock advances over the merged event
sequence (arrivals plus per-device group completions); at every event
time the loop

1. retires every group completing now (device-id order) — the freed
   device's policy sees ``on_group_finish``;
2. delivers every arrival due now (arrival order), routing each through
   the placement policy onto one device's waiting queue;
3. asks every idle device's policy for its next group (device-id order)
   and simulates all groups launched at this instant as **one batch**
   through the executor.

Step 3 is where the PR-2 :class:`~repro.runtime.executors
.ParallelExecutor` earns its keep: a group's simulation result depends
only on its membership, so the same-instant launches (all N devices at
a burst, several devices after simultaneous completions) fan out across
worker processes and merge back in device-id order — results are
bit-identical for any worker count, because every *decision* (placement,
group formation, event ordering) happens on this loop's clock, never in
a worker.

Per-application lifecycles come back as :class:`FleetAppRecord` (an
:class:`~repro.runtime.engine.AppRecord` plus the device id), so the
stream metrics of :mod:`repro.analysis.streams` apply unchanged and
:mod:`repro.analysis.fleet` adds the fleet-level view.
"""

from __future__ import annotations

import bisect
import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.gpusim import GPUConfig

from repro.core.policies import PolicyContext
from repro.obs import MetricsRegistry, Telemetry
from repro.runtime.engine import AppRecord, Arrival, ScheduledGroup
from repro.runtime.executors import (DEFAULT_MAX_CYCLES, Executor,
                                     SerialExecutor)
from repro.runtime.online import OnlinePolicy
from repro.runtime.speculation import SpeculativeSimulator

from .device import Device, Entry
from .faults import (VERDICTS, AdmissionPolicy, FailedGroup, FaultEvent,
                     FaultPlan, RejectedApp)
from .placement import PlacementPolicy

#: Builds one fresh policy per device (called with the device id).
PolicyFactory = Callable[[int], OnlinePolicy]


class _AheadDevice:
    """One device's optimistic local timeline inside a run-ahead window.

    Snapshots (device fields + a deep policy copy) are taken at window
    entry so a straggler barrier can rewind the device; ``log`` records
    every optimistic event — ``("retire", cycle)`` and ``("launch",
    cycle, group, outcome, failed, group_index)`` — for the commit /
    rollback decision at window close.
    """

    __slots__ = ("device", "local_now", "log", "policy_snap", "dev_snap",
                 "active", "tracer_snap", "policy_tracer_snap")

    def __init__(self, device: Device, now: int):
        self.device = device
        self.local_now = now
        self.log: List[tuple] = []
        # Detach tracers for the window's lifetime: optimistic events
        # must never reach the trace (a rollback would leave phantom
        # entries).  The window re-emits exactly the committed log at
        # close and then restores both attachments.
        self.tracer_snap = device.tracer
        device.tracer = None
        self.policy_tracer_snap = device.policy.tracer
        device.policy.tracer = None
        self.policy_snap = copy.deepcopy(device.policy)
        self.dev_snap = device.snapshot()
        self.active = True

    def restore_tracers(self) -> None:
        self.device.tracer = self.tracer_snap
        self.device.policy.tracer = self.policy_tracer_snap


@dataclass
class FleetAppRecord(AppRecord):
    """An app's lifecycle plus the device that served it.

    ``group_index`` indexes into the *serving device's* ``groups`` list
    (not a fleet-global timeline — devices run concurrently).
    ``retries`` counts failed execution attempts (transient failures
    and device-down cancellations) before the successful one.
    """

    device: int = 0
    retries: int = 0


@dataclass
class DeviceOutcome:
    """One device's share of a fleet run.

    ``config_name`` is the :attr:`GPUConfig.name` of the device that
    produced this timeline — the key of the per-device-class fleet
    metrics; empty when the caller never attached per-device contexts
    (then every device ran the fleet-wide config).  ``lost_cycles`` /
    ``down_cycles`` / ``failed_groups`` stay zero/empty on fault-free
    runs.
    """

    device_id: int
    policy: str
    groups: List[ScheduledGroup]
    busy_cycles: int
    config_name: str = ""
    lost_cycles: int = 0
    down_cycles: int = 0
    failed_groups: List[FailedGroup] = field(default_factory=list)

    @property
    def apps_served(self) -> int:
        return sum(len(g.outcome.members) for g in self.groups)


@dataclass
class FleetOutcome:
    """Result of draining one arrival stream across a fleet.

    Duck-type-compatible with :class:`~repro.runtime.StreamOutcome` for
    :func:`repro.analysis.streams.summarize_stream` — ``utilization``
    and ``device_throughput`` are fleet aggregates.
    """

    placement: str
    policy: str
    config: GPUConfig
    devices: List[DeviceOutcome]
    records: Dict[str, FleetAppRecord]
    #: app name → device id, exactly as the placement policy decided
    #: (the *last* placement for work re-placed after a failure).
    assignments: Dict[str, int]
    makespan: int
    #: arrivals never served (admission rejections + total degradation);
    #: ``len(records) + len(rejected)`` always equals the arrival count.
    rejected: List[RejectedApp] = field(default_factory=list)
    #: fault events actually applied, in application order (events
    #: scheduled past the drain point never fire and are not listed).
    fault_events: List[FaultEvent] = field(default_factory=list)

    @property
    def busy_cycles(self) -> int:
        return sum(d.busy_cycles for d in self.devices)

    @property
    def total_instructions(self) -> int:
        return sum(s.thread_instructions
                   for d in self.devices
                   for g in d.groups
                   for s in g.outcome.result.app_stats.values())

    @property
    def device_throughput(self) -> float:
        """Eq. 1.1 aggregated across the fleet (instructions/cycle)."""
        return self.total_instructions / max(1, self.makespan)

    @property
    def utilization(self) -> float:
        """Busy fraction of the fleet's total device-cycles."""
        return self.busy_cycles / max(1, len(self.devices) * self.makespan)


def run_fleet(arrivals: Sequence[Arrival], placement: PlacementPolicy,
              policy_factory: PolicyFactory, ctx: PolicyContext,
              num_devices: int = 2, executor: Optional[Executor] = None,
              max_cycles: int = DEFAULT_MAX_CYCLES,
              device_contexts: Optional[Sequence[PolicyContext]] = None,
              faults: Optional[FaultPlan] = None,
              admission: Optional[AdmissionPolicy] = None,
              speculation: Optional[SpeculativeSimulator] = None,
              telemetry: Optional[Telemetry] = None) -> FleetOutcome:
    """Drain `arrivals` across `num_devices` devices; return the timeline.

    Each device runs its own policy instance from `policy_factory`;
    `placement` routes every arrival to exactly one device.  `executor`
    only affects wall clock (same-instant group launches fan out), never
    results.

    `device_contexts` makes the fleet **heterogeneous**: one
    :class:`PolicyContext` per device, each built for that device's
    :class:`GPUConfig` (its profiler's solo denominators, thresholds,
    and interference matrix are all measured per config).  A device's
    policy hooks see its own context, config-aware placements read it
    through :attr:`Device.ctx`, and every group simulates on its
    device's configuration.  ``None`` (the default) runs every device
    on `ctx` — the homogeneous case, bit-identical to earlier behavior.

    `faults` merges a :class:`~repro.cluster.faults.FaultPlan` onto the
    virtual clock.  Within one instant events apply in a fixed order:
    group completions first, then fault events (so a group finishing
    exactly when its device dies still retires), then re-placement of
    displaced work, then deferred and fresh arrivals, then launches.  A
    DOWN device cancels its in-flight group and drains its queue; the
    displaced applications are re-placed across surviving (UP) devices
    and re-simulate on their new host's own configuration.  A recovered
    device rejoins placement with a fresh policy instance.  When *no*
    device is UP and no recovery is scheduled, the fleet drains
    gracefully: stranded work is recorded in ``rejected`` with reason
    ``no-device`` instead of raising.

    `admission` screens every arrival before placement: rejected
    arrivals are recorded (reason = the policy name), deferred arrivals
    re-offer ``defer_gap`` cycles later up to ``max_defers`` times.

    `speculation` (a :class:`~repro.runtime.speculation
    .SpeculativeSimulator`) overlaps simulation with the virtual clock
    without changing any result.  With group speculation enabled, every
    launch is preceded by predictions of the launching device's likely
    *next* groups (a cloned policy replayed against its queue snapshot)
    so workers pre-simulate them; a launch matching a prediction
    commits the stored result (bit-identical by ``run_group``'s
    purity), a mismatch discards it unobserved.  With run-ahead
    enabled, whenever the clock would advance, devices run *ahead* of
    it — retiring and launching on their own local timelines — up to
    the **safe horizon**: the next instant at which work can move
    across devices (an arrival, a fault event, an admission re-offer).
    A transient failure discovered mid-window is a *straggler barrier*
    (its requeue re-places work), so any device event past the earliest
    barrier is rolled back: the device rewinds to its window snapshot
    and deterministically replays its valid prefix.  Rolled-back
    simulations are stashed for their likely re-launch.

    All of it is deterministic and bit-identical for any worker count
    and any speculation mode: every decision (placement, fault
    application, admission, transient failure draws) happens on this
    loop's clock — at the same virtual instants and with the same state
    as serial execution — never in a worker and never inside a window
    that a barrier could invalidate.

    `telemetry` (a :class:`~repro.obs.Telemetry`) observes the run —
    virtual-clock trace events, deterministic counters, wall-clock
    phase timers — without participating in it: every emission happens
    on this loop's clock after the decision it describes, run-ahead
    windows detach tracers while executing optimistically and re-emit
    only committed entries, and the returned :class:`FleetOutcome` is
    byte-identical with telemetry on or off.
    """
    if num_devices < 1:
        raise ValueError("a fleet needs at least one device")
    if device_contexts is not None and len(device_contexts) != num_devices:
        raise ValueError(
            f"device_contexts lists {len(device_contexts)} contexts for "
            f"{num_devices} device(s)")
    ordered = sorted(arrivals, key=lambda a: a.cycle)
    if len(set(a.name for a in ordered)) != len(ordered):
        raise ValueError("arrival names must be unique within a stream")
    if executor is None:
        executor = SerialExecutor()
    events: Tuple[FaultEvent, ...] = ()
    if faults is not None:
        faults.validate_for(num_devices)
        events = faults.events

    devices = [Device(i, policy_factory(i),
                      ctx=device_contexts[i] if device_contexts else None)
               for i in range(num_devices)]

    tracer = telemetry.tracer if telemetry is not None else None
    metrics = telemetry.metrics if telemetry is not None else None
    profiler = telemetry.profiler if telemetry is not None else None
    if speculation is not None and telemetry is not None:
        speculation.attach_telemetry(telemetry)
    if tracer is not None:
        for d in devices:
            d.tracer = tracer
            d.policy.tracer = tracer

    def ctx_of(device: Device) -> PolicyContext:
        return device.ctx if device.ctx is not None else ctx

    now = 0
    i = 0
    eidx = 0
    n = len(ordered)
    defer_seq = 0
    arrival_cycle: Dict[str, int] = {}
    assignments: Dict[str, int] = {}
    records: Dict[str, FleetAppRecord] = {}
    #: names launched and not displaced since — completed or running.
    #: The double-scheduling guard; legitimately relaunched (requeued)
    #: work leaves the set, a buggy policy's duplicate does not.
    active: Set[str] = set()
    retry_counts: Dict[str, int] = {}
    #: displaced work awaiting re-placement (no UP device right now).
    requeue: List[Entry] = []
    #: (due_cycle, seq, defers, name) kept sorted; admission re-offers.
    deferred: List[Tuple[int, int, int, str]] = []
    specs: Dict[str, object] = {a.name: a.spec for a in ordered}
    rejected: List[RejectedApp] = []
    applied: List[FaultEvent] = []

    def place(entry: Entry) -> None:
        """Route one admitted entry through placement, or buffer it."""
        up = [d for d in devices if d.up]
        if not up:
            requeue.append(entry)
            return
        if profiler is not None:
            with profiler.phase("placement"):
                device = placement.choose(entry, now, up, ctx)
        else:
            device = placement.choose(entry, now, up, ctx)
        if tracer is not None:
            # Candidate scores = the load state placement ranks on
            # (resident count, waiting depth, cycles until free) for
            # every UP device, so a trace explains *why* this device
            # won under the load-based policies.
            tracer.emit("placement", now, app=entry[0],
                        device=device.device_id,
                        candidates=[{"device": d.device_id,
                                     "load": d.load(),
                                     "waiting": d.waiting_count,
                                     "busy": d.remaining_busy(now)}
                                    for d in up])
        if metrics is not None:
            metrics.counter("fleet.placements").inc()
        if not (0 <= device.device_id < len(devices)
                and devices[device.device_id] is device):
            raise RuntimeError(
                f"placement {placement.name!r} returned a device "
                f"outside the fleet")
        if not device.up:
            raise RuntimeError(
                f"placement {placement.name!r} routed {entry[0]!r} to "
                f"DOWN device {device.device_id}")
        assignments[entry[0]] = device.device_id
        device.assign(entry, now, ctx_of(device))

    def displace(entries: List[Entry]) -> None:
        """Book a device failure's displaced work for re-placement."""
        for name, _spec in entries:
            if name in active:
                # The entry was running when its device died: its
                # launch is void, so its record (if the launch was
                # healthy) disappears and the attempt counts as a retry.
                retry_counts[name] = retry_counts.get(name, 0) + 1
                records.pop(name, None)
                active.discard(name)
        if tracer is not None:
            for name, _spec in entries:
                tracer.emit("requeue", now, app=name, reason="device-down")
        if metrics is not None and entries:
            metrics.counter("fleet.requeued").inc(len(entries))
        requeue.extend(entries)

    def deliver(a: Arrival, defers: int) -> None:
        """Admission-screen one (possibly re-offered) arrival."""
        nonlocal defer_seq
        if admission is not None:
            verdict = admission.decide((a.name, a.spec), now, devices,
                                       ctx)
            if verdict not in VERDICTS:
                raise RuntimeError(
                    f"admission {admission.name!r} returned "
                    f"{verdict!r}; expected one of {list(VERDICTS)}")
            if verdict == "defer" and defers >= admission.max_defers:
                verdict = "reject"
            if tracer is not None:
                tracer.emit("admission", now, app=a.name, verdict=verdict,
                            policy=admission.name, defers=defers)
            if metrics is not None:
                metrics.counter(f"admission.{verdict}").inc()
            if verdict == "reject":
                rejected.append(RejectedApp(
                    name=a.name, arrival_cycle=a.cycle, cycle=now,
                    reason=admission.name))
                return
            if verdict == "defer":
                bisect.insort(deferred, (now + admission.defer_gap,
                                         defer_seq, defers + 1, a.name))
                defer_seq += 1
                return
        place((a.name, a.spec))

    def speculate_window() -> bool:
        """One optimistic run-ahead window; True if events committed.

        Devices run ahead of the global clock on their own local
        timelines up to the safe horizon — the next instant at which
        work can move *across* devices (arrival, fault event, deferred
        re-offer).  Below it, a device's timeline depends only on its
        own state, so every committed decision happens at the same
        virtual instant with the same state as serial execution.  A
        transient failure discovered mid-window is a straggler barrier
        (its requeue at the failure's completion re-places work):
        events past the earliest barrier roll back — the device rewinds
        to its window snapshot and replays its valid prefix.  Retires
        *at* the cutoff stay valid (completions retire before anything
        is placed at that instant); launches at it do not.

        On commit the global clock advances to the latest committed
        instant — every committed event is strictly below the horizon,
        so no arrival, fault event, or deferred re-offer is skipped,
        and an unbounded tail drain leaves ``now`` at the serial
        makespan.
        """
        nonlocal now
        bounds = []
        if i < n:
            bounds.append(ordered[i].cycle)
        if deferred:
            bounds.append(deferred[0][0])
        if eidx < len(events):
            bounds.append(events[eidx].cycle)
        horizon = min(bounds) if bounds else None
        #: tightens as barriers appear, stopping run-ahead work that a
        #: rollback would only throw away; None = unbounded tail drain.
        limit = horizon

        barriers: List[int] = []

        def barrier(cycle: int) -> None:
            nonlocal limit
            barriers.append(cycle)
            limit = cycle if limit is None else min(limit, cycle)

        window: List[_AheadDevice] = []
        for d in devices:
            if not (d.busy and d.up):
                continue
            if horizon is not None and d.completion_cycle >= horizon:
                continue  # the main loop owns events at the horizon
            if d.inflight_failed:
                barrier(d.completion_cycle)
                continue
            window.append(_AheadDevice(d, now))
        if not window:
            return False
        counters = speculation.counters
        counters.windows += 1
        if tracer is not None:
            tracer.emit("window_open", now, horizon=horizon,
                        devices=[st.device.device_id for st in window])
        if metrics is not None:
            metrics.counter("spec.windows").inc()

        # Round-based batching: each round advances every active device
        # to its next launch decision (retiring along the way), then
        # simulates the round's launches as one batch — devices at
        # *different* virtual times fan out through the executor
        # together, which the clock-serial loop never could.
        while True:
            jobs = []
            for st in window:
                if not st.active:
                    continue
                d = st.device
                while True:
                    if d.busy:
                        c = d.completion_cycle
                        if limit is not None and c >= limit:
                            st.active = False
                            break
                        if d.inflight_failed:
                            st.active = False
                            barrier(c)
                            break
                        st.local_now = c
                        retired = d.complete(ctx_of(d))
                        st.log.append(("retire", c, retired))
                    else:
                        group = d.next_group(st.local_now, ctx_of(d))
                        if group is None:
                            st.active = False
                            break
                        jobs.append((st, group))
                        break
            if not jobs:
                break
            for st, group in jobs:
                speculation.predict(st.device.device_id, st.device.policy,
                                    st.local_now, ctx_of(st.device),
                                    max_cycles)
            outcomes = speculation.fetch_batch(
                [(st.device.device_id, group, ctx_of(st.device).config,
                  ctx_of(st.device).smra_params)
                 for st, group in jobs], max_cycles, now=now)
            for (st, group), outcome in zip(jobs, outcomes):
                d = st.device
                members = list(outcome.members)
                failed = faults is not None and faults.group_fails(
                    members, [retry_counts.get(m, 0) for m in members])
                d.launch(outcome, st.local_now, failed=failed)
                st.log.append(("launch", st.local_now, group, outcome,
                               failed, len(d.groups) - 1))

        cutoff = min(barriers) if barriers else horizon

        def valid(entry) -> bool:
            if cutoff is None:
                return True
            if entry[0] == "retire":
                return entry[1] <= cutoff
            return entry[1] < cutoff

        committed = 0
        latest = now
        rolled_back: List[Tuple[int, int]] = []
        for st in window:
            d = st.device
            keep = len(st.log)
            for idx, entry in enumerate(st.log):
                if not valid(entry):
                    keep = idx
                    break
            if keep < len(st.log):
                # Roll back: rewind to the window snapshot, replay the
                # valid prefix, and stash rolled-back simulations for
                # their likely re-launch after the barrier.
                counters.rollbacks += 1
                rolled_back.append((d.device_id, len(st.log) - keep))
                for entry in st.log[keep:]:
                    if entry[0] == "launch":
                        _kind, _t, group, outcome, _failed, _gidx = entry
                        speculation.stash(
                            d.device_id, group, ctx_of(d).config,
                            ctx_of(d).smra_params, max_cycles, outcome)
                d.restore(st.dev_snap)
                d.policy = st.policy_snap
                for entry in st.log[:keep]:
                    if entry[0] == "retire":
                        d.complete(ctx_of(d))
                        continue
                    _kind, t, group, outcome, failed, _gidx = entry
                    replayed = d.next_group(t, ctx_of(d))
                    if (replayed is None
                            or [m for m, _s in replayed.members]
                            != list(outcome.members)):
                        raise RuntimeError(
                            f"device {d.device_id} policy "
                            f"{d.policy.name!r} decided differently "
                            f"under speculative replay; the policy is "
                            f"not deterministic — run with speculation "
                            f"disabled")
                    d.launch(outcome, t, failed=failed)
                st.log = st.log[:keep]
            committed += keep
            if st.log:
                latest = max(latest, st.log[-1][1])

        # Global bookkeeping for every committed launch — the same
        # guards, active-set updates and records as the serial path.
        # Merged across devices in (instant, device-id) order: that is
        # the order the serial loop inserts records in, and the
        # summary's float reductions are sensitive to it.
        launched = sorted(
            ((entry[1], st.device.device_id, st.device, entry)
             for st in window for entry in st.log
             if entry[0] == "launch"),
            key=lambda item: (item[0], item[1]))
        for t, _did, d, entry in launched:
            _kind, _t, _group, outcome, failed, gidx = entry
            members = list(outcome.members)
            for name in members:
                if name not in arrival_cycle:
                    raise RuntimeError(
                        f"device {d.device_id} policy "
                        f"{d.policy.name!r} scheduled {name!r} "
                        f"before its arrival")
                if name in active:
                    raise RuntimeError(
                        f"device {d.device_id} policy "
                        f"{d.policy.name!r} scheduled {name!r} twice")
                if assignments[name] != d.device_id:
                    raise RuntimeError(
                        f"device {d.device_id} scheduled {name!r}, "
                        f"which placement assigned to device "
                        f"{assignments[name]}")
            active.update(members)
            if failed:
                continue  # no records: the attempt will requeue
            for name in members:
                records[name] = FleetAppRecord(
                    name=name,
                    arrival_cycle=arrival_cycle[name],
                    start_cycle=t,
                    finish_cycle=t + outcome.finish_cycle_of(name),
                    group_index=gidx,
                    device=d.device_id,
                    retries=retry_counts.get(name, 0))

        counters.ahead_events += committed
        if tracer is not None:
            # Re-emit exactly the committed log, merged across devices
            # in (instant, device-id) order — the order the serial loop
            # would have produced.  Optimistic events that rolled back
            # were never emitted (tracers were detached), so the trace
            # describes the committed timeline only.
            for _t, _did, st, entry in sorted(
                    ((entry[1], st.device.device_id, st, entry)
                     for st in window for entry in st.log),
                    key=lambda item: (item[0], item[1])):
                d = st.device
                if entry[0] == "retire":
                    tracer.emit("group_finish", entry[1],
                                device=d.device_id,
                                members=list(entry[2].members))
                else:
                    _kind, t, _group, outcome, failed, gidx = entry
                    tracer.emit("launch", t, device=d.device_id,
                                members=list(outcome.members),
                                cycles=outcome.cycles, group_index=gidx,
                                failed=failed)
            for device_id, discarded in rolled_back:
                tracer.emit("window_rollback", latest, device=device_id,
                            barrier=cutoff, discarded=discarded)
            tracer.emit("window_commit", latest, committed=committed)
        if metrics is not None and rolled_back:
            metrics.counter("spec.rollbacks").inc(len(rolled_back))
        for st in window:
            st.restore_tracers()
        if committed:
            now = latest
        return committed > 0

    while True:
        # 1) retire every group finishing at `now` (device-id order);
        #    a transiently-failed attempt requeues instead of retiring.
        for device in devices:
            if device.busy and device.completion_cycle <= now:
                if device.inflight_failed:
                    entries = device.complete_failed()
                    for name, _spec in entries:
                        retry_counts[name] = retry_counts.get(name,
                                                              0) + 1
                        active.discard(name)
                        if tracer is not None:
                            tracer.emit("requeue", now, app=name,
                                        reason="transient")
                    if metrics is not None and entries:
                        metrics.counter("fleet.requeued").inc(len(entries))
                    requeue.extend(entries)
                else:
                    device.complete(ctx_of(device))

        # 1b) apply fault events due at `now` (after completions: a
        #     group finishing exactly at the outage still retires).
        while eidx < len(events) and events[eidx].cycle <= now:
            ev = events[eidx]
            eidx += 1
            applied.append(ev)
            if ev.kind == "down":
                displace(devices[ev.device].fail(now))
            else:
                devices[ev.device].recover(now,
                                           policy_factory(ev.device))
            if speculation is not None:
                # The device's policy was drained or replaced; its
                # predicted future is void either way.
                speculation.discard(ev.device)

        # 2) re-place displaced work first (it has been in the system
        #    longest), then deferred re-offers, then fresh arrivals.
        if requeue and any(d.up for d in devices):
            entries, requeue = requeue, []
            for entry in entries:
                place(entry)
        while deferred and deferred[0][0] <= now:
            _due, _seq, defers, name = deferred.pop(0)
            deliver(Arrival(arrival_cycle[name], name, specs[name]),
                    defers)
        while i < n and ordered[i].cycle <= now:
            a = ordered[i]
            i += 1
            arrival_cycle[a.name] = a.cycle
            if tracer is not None:
                tracer.emit("arrival", now, app=a.name,
                            arrival_cycle=a.cycle)
            if metrics is not None:
                metrics.counter("fleet.arrivals").inc()
            deliver(a, 0)

        # 3) launch on every idle UP device; simulate this instant's
        #    groups as one batch (the parallel fan-out).
        launches = []
        for device in devices:
            if device.busy or not device.up:
                continue
            if profiler is not None:
                with profiler.phase("solver"):
                    group = device.next_group(now, ctx_of(device))
            else:
                group = device.next_group(now, ctx_of(device))
            if group is None:
                continue
            for name, _spec in group.members:
                if name not in arrival_cycle:
                    raise RuntimeError(
                        f"device {device.device_id} policy "
                        f"{device.policy.name!r} scheduled {name!r} "
                        f"before its arrival")
                if name in active:
                    raise RuntimeError(
                        f"device {device.device_id} policy "
                        f"{device.policy.name!r} scheduled {name!r} twice")
                if assignments[name] != device.device_id:
                    raise RuntimeError(
                        f"device {device.device_id} scheduled {name!r}, "
                        f"which placement assigned to device "
                        f"{assignments[name]}")
            launches.append((device, group))
        if launches:
            if speculation is not None:
                # Predict each launching device's likely successors
                # (workers pre-simulate them while this instant's batch
                # resolves), then serve the batch from the store where
                # a prediction already hit.
                for device, _group in launches:
                    speculation.predict(device.device_id, device.policy,
                                        now, ctx_of(device), max_cycles)
                outcomes = speculation.fetch_batch(
                    [(d.device_id, g, ctx_of(d).config,
                      ctx_of(d).smra_params) for d, g in launches],
                    max_cycles, now=now)
            elif device_contexts is None:
                if profiler is not None:
                    with profiler.phase("simulate"):
                        outcomes = executor.run_groups(
                            [g for _d, g in launches], ctx.config,
                            ctx.smra_params, max_cycles,
                            backend=ctx.backend)
                else:
                    outcomes = executor.run_groups(
                        [g for _d, g in launches], ctx.config,
                        ctx.smra_params, max_cycles, backend=ctx.backend)
            else:
                # Heterogeneous fleet: every group simulates on the
                # launching device's own configuration; the batch still
                # fans out through the executor as one job list.
                jobs = [(g, ctx_of(d).config, ctx_of(d).smra_params)
                        for d, g in launches]
                if profiler is not None:
                    with profiler.phase("simulate"):
                        outcomes = executor.run_device_groups(
                            jobs, max_cycles, backend=ctx.backend)
                else:
                    outcomes = executor.run_device_groups(
                        jobs, max_cycles, backend=ctx.backend)
            for (device, _group), outcome in zip(launches, outcomes):
                members = list(outcome.members)
                failed = faults is not None and faults.group_fails(
                    members, [retry_counts.get(m, 0) for m in members])
                device.launch(outcome, now, failed=failed)
                if metrics is not None:
                    metrics.counter("fleet.launches").inc()
                    metrics.histogram("fleet.group_cycles").observe(
                        outcome.cycles)
                active.update(members)
                if failed:
                    continue  # no records: the attempt will requeue
                for name in members:
                    records[name] = FleetAppRecord(
                        name=name,
                        arrival_cycle=arrival_cycle[name],
                        start_cycle=now,
                        finish_cycle=now + outcome.finish_cycle_of(name),
                        group_index=len(device.groups) - 1,
                        device=device.device_id,
                        retries=retry_counts.get(name, 0))
            continue  # same instant: retire zero-length groups, if any

        # 4) advance the clock to the next completion / arrival / fault
        #    event / deferred re-offer, or stop.
        if not (i < n or requeue or deferred
                or any(d.busy for d in devices)
                or any(d.pending for d in devices)):
            break
        if (speculation is not None and speculation.strategy.run_ahead
                and speculate_window()):
            continue  # committed optimistic progress; re-enter at the top
        due = [d.completion_cycle for d in devices if d.busy]
        if i < n:
            due.append(ordered[i].cycle)
        if deferred:
            due.append(deferred[0][0])
        if eidx < len(events):
            due.append(events[eidx].cycle)
        if not due:
            if requeue:
                # Total degradation: no device is UP and no recovery
                # is ahead — drain gracefully, recording the stranded
                # applications instead of raising.
                for name, _spec in requeue:
                    if tracer is not None:
                        tracer.emit("reject", now, app=name,
                                    reason="no-device")
                    rejected.append(RejectedApp(
                        name=name, arrival_cycle=arrival_cycle[name],
                        cycle=now, reason="no-device",
                        retries=retry_counts.get(name, 0)))
                requeue = []
                continue
            stalled = [d.device_id for d in devices if d.pending]
            raise RuntimeError(
                f"devices {stalled} hold waiting applications but "
                f"their policies returned no group and no arrivals "
                f"remain")
        now = min(due)

    for device in devices:
        device.close_downtime(now)
    if speculation is not None:
        speculation.close()

    if metrics is not None:
        # Fold per-device derived counters into the run registry in
        # device-id order — the same serial commit order every other
        # merge in this loop uses, so the registry is identical at any
        # worker count.
        for d in devices:
            per_device = MetricsRegistry()
            per_device.counter("device.groups").inc(len(d.groups))
            per_device.counter("device.busy_cycles").inc(d.busy_cycles)
            per_device.counter("device.lost_cycles").inc(d.lost_cycles)
            per_device.counter("device.down_cycles").inc(d.down_cycles)
            metrics.merge(per_device)
        metrics.gauge("fleet.makespan").set(now)
        metrics.gauge("fleet.devices").set(len(devices))

    policy_name = devices[0].policy.name if devices else ""
    if profiler is not None:
        with profiler.phase("merge"):
            return _fleet_outcome(placement, policy_name, ctx, devices,
                                  records, assignments, now, rejected,
                                  applied)
    return _fleet_outcome(placement, policy_name, ctx, devices, records,
                          assignments, now, rejected, applied)


def _fleet_outcome(placement, policy_name, ctx, devices, records,
                   assignments, now, rejected, applied) -> FleetOutcome:
    return FleetOutcome(
        placement=placement.name,
        policy=policy_name,
        config=ctx.config,
        devices=[DeviceOutcome(device_id=d.device_id, policy=d.policy.name,
                               groups=d.groups, busy_cycles=d.busy_cycles,
                               config_name=(d.config.name if d.config
                                            is not None else ""),
                               lost_cycles=d.lost_cycles,
                               down_cycles=d.down_cycles,
                               failed_groups=d.failed_groups)
                 for d in devices],
        records=records,
        assignments=assignments,
        makespan=now,
        rejected=rejected,
        fault_events=applied)

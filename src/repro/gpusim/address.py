"""Physical address mapping: lines → partitions, banks, and DRAM rows.

The mapping follows the common GPU interleaving scheme: consecutive cache
lines round-robin across memory partitions (so streams use all partitions
in parallel), lines local to a partition round-robin across its banks, and
a DRAM row covers ``lines_per_row`` consecutive *local* lines of a bank.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import GPUConfig


@dataclass(frozen=True)
class LineLocation:
    """Where a cache line lives in the memory system."""

    partition: int
    bank: int
    row: int


class AddressMap:
    """Translates byte addresses / line addresses to memory-system places.

    The per-access decode constants are precomputed once: the two nested
    floor divisions of the row computation compose into a single
    division by ``banks * lines_per_row``.  The device hot path
    (:meth:`repro.gpusim.dram.MemorySystem.access_line`) folds this
    decode inline with the same constants rather than building a
    :class:`LineLocation` per request; keep the two in sync.
    """

    __slots__ = ("_line_size", "_partitions", "_banks", "_lines_per_row",
                 "_bank_row_span")

    def __init__(self, config: GPUConfig):
        self._line_size = config.line_size
        self._partitions = config.num_partitions
        self._banks = config.banks_per_partition
        self._lines_per_row = config.lines_per_row
        self._bank_row_span = self._banks * self._lines_per_row

    def line_of(self, addr: int) -> int:
        """Global line number of a byte address."""
        return addr // self._line_size

    def line_addr(self, addr: int) -> int:
        """Line-aligned byte address."""
        return (addr // self._line_size) * self._line_size

    def partition_of_line(self, line: int) -> int:
        return line % self._partitions

    def locate_line(self, line: int) -> LineLocation:
        """Partition, bank, and row of a global line number."""
        local = line // self._partitions
        return LineLocation(line % self._partitions,
                            local % self._banks,
                            local // self._bank_row_span)

    def locate(self, addr: int) -> LineLocation:
        return self.locate_line(self.line_of(addr))

    @property
    def line_size(self) -> int:
        return self._line_size

"""Set-associative LRU caches used for the per-SM L1 and the shared L2.

The caches are behavioural (hit/miss + replacement); timing is charged by
the callers (SM for L1, memory partition for L2).  Lines are keyed by the
global line number, so two co-running applications with different address
bases naturally compete for the same sets — the L2 contention mechanism of
the paper's class C / MC interference emerges from this structure.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List


class SetAssocCache:
    """A set-associative cache with LRU or bimodal (BIP) insertion.

    Each set is an ordered dict from tag → None (front = LRU victim,
    back = MRU), giving O(1) exact LRU.

    With ``insertion="bip"`` (bimodal insertion policy) missed lines are
    placed at the *LRU* position except for 1 in ``bip_epsilon`` inserts:
    a line only climbs to MRU when re-referenced.  Streaming data that is
    never reused then dies at the LRU slot without displacing an
    established reuse set — the thrash resistance modern GPU L2s rely on,
    and the reason a cache-resident co-runner survives next to a
    streaming one.
    """

    __slots__ = ("sets", "assoc", "num_sets", "hits", "misses", "evictions",
                 "insertion", "bip_epsilon", "_bip_counter", "_bip",
                 "_set_mask")

    def __init__(self, num_sets: int, assoc: int, insertion: str = "lru",
                 bip_epsilon: int = 32):
        if num_sets < 1 or assoc < 1:
            raise ValueError("cache needs >= 1 set and >= 1 way")
        if insertion not in ("lru", "bip"):
            raise ValueError(f"unknown insertion policy {insertion!r}")
        self.num_sets = num_sets
        self.assoc = assoc
        self.insertion = insertion
        self._bip = insertion == "bip"
        # Line numbers are non-negative, so for the (usual) power-of-two
        # set count the set index is a mask instead of a modulo.
        self._set_mask = (num_sets - 1) if num_sets & (num_sets - 1) == 0 \
            else None
        self.bip_epsilon = max(1, bip_epsilon)
        self._bip_counter = 0
        self.sets: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def set_of(self, line: int) -> "OrderedDict[int, None]":
        """The set that `line` maps to."""
        mask = self._set_mask
        return self.sets[line & mask if mask is not None
                         else line % self.num_sets]

    def access(self, line: int) -> bool:
        """Look up `line`; on miss, allocate it.  Returns hit?"""
        mask = self._set_mask
        s = self.sets[line & mask if mask is not None
                      else line % self.num_sets]
        if line in s:
            s.move_to_end(line)  # promote to MRU
            self.hits += 1
            return True
        self.misses += 1
        if len(s) >= self.assoc:
            s.popitem(last=False)
            self.evictions += 1
        s[line] = None
        if self._bip:
            self._bip_counter += 1
            if self._bip_counter % self.bip_epsilon:
                s.move_to_end(line, last=False)  # insert at LRU
        return False

    def probe(self, line: int) -> bool:
        """Non-allocating lookup (does not update LRU or stats)."""
        return line in self.set_of(line)

    def invalidate_all(self) -> None:
        for s in self.sets:
            s.clear()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def occupancy(self) -> int:
        """Lines currently resident."""
        return sum(len(s) for s in self.sets)

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0

    def __repr__(self):
        return (f"SetAssocCache(sets={self.num_sets}, assoc={self.assoc}, "
                f"hit_rate={self.hit_rate:.3f})")

/* _vectorcore.c — compiled core of the "vector" engine backend.
 *
 * This is an operation-for-operation transcription of the Python loop in
 * repro/gpusim/vector.py (VectorGPU.run), which is itself a transcription
 * of GPU.run + sm.issue_batch + MemorySystem.access_line.  Keep the three
 * in sync; the golden determinism suite and the bench --ab gate compare
 * the backends bit-for-bit.
 *
 * Bit-identity notes
 * ------------------
 * - The memory chain (interconnect/L2/bank/bus clocks, completion times)
 *   is pure int64 arithmetic: every arrival enters through nk = (i64)first
 *   (the truncated LSU start), so no fractional value ever reaches it.
 *   Python computes the identical integers.
 * - The issue/LSU servers are IEEE doubles; Python floats are the same
 *   doubles and every operation here (+ * / max, int truncation of a
 *   positive value) maps to the same IEEE operation in the same order.
 *   All magnitudes stay far below 2^53, so int<->double round trips are
 *   exact.  Compile without -ffast-math.
 * - Caches and DRAM row windows replicate OrderedDict order exactly:
 *   arrays store front(=LRU/oldest)..back(=MRU/newest); probe scans,
 *   hits move to the back, evictions drop the front, BIP reinserts at
 *   the front.  The heaps store totally ordered packed keys, so pop
 *   order is layout-independent and identical to heapq's.
 *
 * Everything is addressed through the Core struct on every use (never
 * cached across a Python callback) because Python callbacks may grow
 * pools and swap buffer pointers mid-run.
 */

#include <stdint.h>

typedef long long i64;
typedef double f64;
typedef unsigned __int128 u128;

/* Ready-heap entry packing: [wake:40][key+1:30][age:30][slot:28].
 * Total order == tuple order (wake, key, age); ages are unique per SM so
 * the slot bits never decide a comparison. */
#define SLOT_MASK ((((u128)1) << 28) - 1)

typedef struct Core Core;
struct Core {
    /* geometry / constants (set once by Python; all scalars are i64 or
     * f64 so the struct layout is uniform 8-byte fields) */
    i64 nsm, npart, nbanks_per, window;
    i64 l1_nsets, l1_assoc, l1_mask;      /* mask: -1 when sets not 2^n */
    i64 l2_nsets, l2_assoc, l2_mask, l2_bip, l2_eps;
    i64 icnt, l2_service, l2_lat_icnt;
    i64 row_hit_t, row_miss_t, bus_t, done_add;
    i64 issue_width, max_issue, warp_size, l1_latency, gto;
    f64 mem_issue_cost;
    i64 max_cycles;
    i64 rheap_cap;

    /* device heap: t << 44 | seq << 12 | smi (same as vector.py) */
    i64 dheap_len, dheap_cap;
    u128 *dheap;

    /* per-SM */
    f64 *isf, *lsf;
    i64 *lia, *rrp;
    u128 *rheap;                 /* nsm * rheap_cap entries */
    i64 *rlen;
    i64 *l1_lines, *l1_cnt;      /* nsm*l1_nsets*l1_assoc / nsm*l1_nsets */
    i64 *l1h, *l1m, *l1e;

    /* per-partition */
    i64 *l2_busy, *bus_busy;
    i64 *l2_lines, *l2_cnt;      /* flat set index s2i = p*l2_nsets + set */
    i64 *l2h, *l2m, *l2e, *bipc;

    /* per-bank (flat bgi = p*nbanks_per + bank) */
    i64 *bank_busy;
    i64 *rows, *rows_cnt;        /* nbanks*window / nbanks */
    i64 *bank_acc, *bank_rh;

    /* warps (slot-indexed; Python appends, pointers may move) */
    i64 *w_pc, *w_li, *w_prog_off, *w_prog_len, *w_rec_off, *w_app, *w_age;
    i64 *w_done, *w_mem_pending;
    f64 *w_dep_gap;

    /* pools */
    i64 *p_alu, *p_ntx;          /* program segments */
    i64 *recs;                   /* 5 i64 per record: line,p,s2i,bgi,row */

    /* per-app counter rows */
    i64 *a_wi, *a_ti, *a_alu, *a_mi, *a_mtx, *a_l1h, *a_l2h, *a_dram,
        *a_drh;

    /* mailbox (shared with Python) */
    i64 unfinished, dispatch_needed, seq_n, events, cycle;
    i64 next_cb;                 /* huge when no callbacks */
    i64 abort_flag;

    /* callbacks into Python */
    void *ctx;
    void (*cb_retire)(void *ctx, i64 smi, i64 slot, i64 now);
    void (*cb_dispatch)(void *ctx, i64 now);
    void (*cb_fire)(void *ctx, i64 t);
    i64 (*cb_empty)(void *ctx, i64 now);
    void (*cb_grow_dheap)(void *ctx);
};

i64 vc_struct_size(void) { return (i64)sizeof(Core); }

/* -- device heap (min-heap of u128; entries unique via seq) ------------- */

static void dpush(Core *c, u128 e) {
    if (c->dheap_len >= c->dheap_cap) {
        c->cb_grow_dheap(c->ctx);
        if (c->dheap_len >= c->dheap_cap) {
            /* growth failed Python-side; abort rather than overflow */
            c->abort_flag = 1;
            return;
        }
    }
    u128 *h = c->dheap;          /* after possible growth */
    i64 i = c->dheap_len++;
    while (i > 0) {
        i64 par = (i - 1) >> 1;
        if (h[par] <= e)
            break;
        h[i] = h[par];
        i = par;
    }
    h[i] = e;
}

static u128 dpop(Core *c) {
    u128 *h = c->dheap;
    u128 top = h[0];
    i64 n = --c->dheap_len;
    if (n > 0) {
        u128 e = h[n];
        i64 i = 0;
        for (;;) {
            i64 l = 2 * i + 1;
            if (l >= n)
                break;
            i64 r = l + 1;
            i64 m = (r < n && h[r] < h[l]) ? r : l;
            if (h[m] >= e)
                break;
            h[i] = h[m];
            i = m;
        }
        h[i] = e;
    }
    return top;
}

static u128 dpushpop(Core *c, u128 e) {
    u128 *h = c->dheap;
    i64 n = c->dheap_len;
    if (n == 0 || e <= h[0])
        return e;                /* heapq: only swap when heap[0] < item */
    u128 top = h[0];
    i64 i = 0;
    for (;;) {
        i64 l = 2 * i + 1;
        if (l >= n)
            break;
        i64 r = l + 1;
        i64 m = (r < n && h[r] < h[l]) ? r : l;
        if (h[m] >= e)
            break;
        h[i] = h[m];
        i = m;
    }
    h[i] = e;
    return top;
}

/* -- per-SM ready heaps ------------------------------------------------- */

static void rpop(Core *c, i64 smi) {
    u128 *h = c->rheap + smi * c->rheap_cap;
    i64 n = --c->rlen[smi];
    if (n > 0) {
        u128 e = h[n];
        i64 i = 0;
        for (;;) {
            i64 l = 2 * i + 1;
            if (l >= n)
                break;
            i64 r = l + 1;
            i64 m = (r < n && h[r] < h[l]) ? r : l;
            if (h[m] >= e)
                break;
            h[i] = h[m];
            i = m;
        }
        h[i] = e;
    }
}

static void rreplace(Core *c, i64 smi, u128 e) {
    u128 *h = c->rheap + smi * c->rheap_cap;
    i64 n = c->rlen[smi];
    i64 i = 0;
    for (;;) {
        i64 l = 2 * i + 1;
        if (l >= n)
            break;
        i64 r = l + 1;
        i64 m = (r < n && h[r] < h[l]) ? r : l;
        if (h[m] >= e)
            break;
        h[i] = h[m];
        i = m;
    }
    h[i] = e;
}

void vc_push_ready(Core *c, i64 smi, i64 wake, i64 key, i64 age, i64 slot) {
    u128 e = ((u128)(unsigned long long)wake << 88)
           | ((u128)(unsigned long long)(key + 1) << 58)
           | ((u128)(unsigned long long)age << 28)
           | (u128)(unsigned long long)slot;
    u128 *h = c->rheap + smi * c->rheap_cap;
    i64 i = c->rlen[smi]++;
    while (i > 0) {
        i64 par = (i - 1) >> 1;
        if (h[par] <= e)
            break;
        h[i] = h[par];
        i = par;
    }
    h[i] = e;
}

/* GPU._push_sm: push (ready-head time, next seq, smi) when non-empty. */
void vc_push_sm(Core *c, i64 smi) {
    if (c->rlen[smi] > 0) {
        i64 t = (i64)(c->rheap[smi * c->rheap_cap] >> 88);
        c->seq_n += 1;
        dpush(c, ((u128)(unsigned long long)t << 44)
                 | ((u128)(unsigned long long)c->seq_n << 12)
                 | (u128)(unsigned long long)smi);
    }
}

/* Translate one pre-existing device-heap entry (resumed runs). */
void vc_push_device_raw(Core *c, i64 t, i64 seq, i64 smi) {
    dpush(c, ((u128)(unsigned long long)t << 44)
             | ((u128)(unsigned long long)seq << 12)
             | (u128)(unsigned long long)smi);
}

/* -- the main loop ------------------------------------------------------ */
/* Returns 0 = all applications finished, 1 = max_cycles reached,
 * 2 = deadlock (no events, nothing to dispatch), 3 = Python abort. */

i64 vc_run(Core *c) {
    i64 chained = -1;
    int have_pending = 0;
    u128 pending = 0;
    i64 smi = 0;
    i64 seq_n = c->seq_n;
    i64 events = c->events;
    i64 cap = c->rheap_cap;
    i64 t = 0;
    i64 ret = 0;

    while (c->unfinished > 0) {
        if (chained < 0) {
            u128 entry;
            if (have_pending) {
                entry = dpushpop(c, pending);
                have_pending = 0;
            } else if (c->dheap_len > 0) {
                entry = dpop(c);
            } else {
                /* Everything blocked on dispatch (e.g. after migration). */
                c->seq_n = seq_n;
                c->events = events;
                i64 ok = c->cb_empty(c->ctx, c->cycle);
                if (c->abort_flag)
                    return 3;
                if (ok) {
                    seq_n = c->seq_n;
                    continue;
                }
                return 2;
            }
            t = (i64)(entry >> 44);
            smi = (i64)(entry & 0xFFF);
            if (c->rlen[smi] == 0 ||
                (i64)(c->rheap[smi * cap] >> 88) != t)
                continue;        /* stale entry */
        } else {
            t = chained;
            chained = -1;
        }
        if (t > c->max_cycles) {
            c->cycle = c->max_cycles;
            ret = 1;
            break;
        }

        if (c->next_cb <= t) {
            c->seq_n = seq_n;
            c->events = events;
            c->cb_fire(c->ctx, t);
            if (c->abort_flag)
                return 3;
        }

        c->cycle = t;
        /* ---- inlined issue batch for SM smi at cycle t ---- */
        if (c->rlen[smi] > 0 && (i64)(c->rheap[smi * cap] >> 88) <= t) {
            i64 issued = 0;
            i64 rr_pointer = c->gto ? 0 : c->rrp[smi];
            f64 srv_issue_free = c->isf[smi];
            f64 srv_lsu_free = c->lsf[smi];
            i64 last_issued_age = c->lia[smi];
            i64 l1h_c = 0, l1m_c = 0, l1e_c = 0;
            while (c->rlen[smi] > 0) {
                u128 head = c->rheap[smi * cap];
                if ((i64)(head >> 88) > t || issued >= c->max_issue)
                    break;
                i64 slot = (i64)(head & SLOT_MASK);
                if (c->w_done[slot]) {
                    /* Retire: pop, then let Python do block bookkeeping
                     * (and possibly owner migration / L1 invalidation,
                     * applied directly to our arrays). */
                    rpop(c, smi);
                    c->seq_n = seq_n;
                    c->events = events;
                    c->cb_retire(c->ctx, smi, slot, t);
                    if (c->abort_flag)
                        return 3;
                    continue;
                }
                i64 po = c->w_prog_off[slot] + c->w_pc[slot];
                i64 alu_n = c->p_alu[po];
                i64 n_tx = c->p_ntx[po];
                i64 arow = c->w_app[slot];
                i64 wake;
                if (c->w_mem_pending[slot]) {
                    /* Phase 2: the memory instruction executes. */
                    c->a_wi[arow] += 1;
                    c->a_ti[arow] += c->warp_size;
                    c->a_mi[arow] += 1;
                    c->a_mtx[arow] += n_tx;
                    f64 issue_start = srv_issue_free;
                    if ((f64)t > issue_start)
                        issue_start = (f64)t;
                    f64 issue_free = issue_start + c->mem_issue_cost;
                    srv_issue_free = issue_free;
                    i64 li = c->w_li[slot];
                    c->w_li[slot] = li + n_tx;
                    i64 *R = c->recs + 5 * (c->w_rec_off[slot] + li);
                    /* LSU starts are consecutive from the first. */
                    f64 first = issue_start > srv_lsu_free
                              ? issue_start : srv_lsu_free;
                    srv_lsu_free = first + (f64)n_tx;
                    i64 nk = (i64)first;
                    i64 maxdone = 0;
                    i64 l1h_l = 0, l2h_l = 0, dram_l = 0, drh_l = 0;
                    for (i64 k = 0; k < n_tx; k++) {
                        i64 line = R[0], p = R[1], s2i = R[2],
                            bgi = R[3], row = R[4];
                        R += 5;
                        i64 d;
                        i64 si = c->l1_mask >= 0 ? (line & c->l1_mask)
                                                 : (line % c->l1_nsets);
                        i64 *set = c->l1_lines
                                 + (smi * c->l1_nsets + si) * c->l1_assoc;
                        i64 *cnt = c->l1_cnt + smi * c->l1_nsets + si;
                        i64 n = *cnt;
                        i64 hit = -1;
                        for (i64 j = 0; j < n; j++)
                            if (set[j] == line) { hit = j; break; }
                        if (hit >= 0) {
                            for (i64 j = hit; j < n - 1; j++)
                                set[j] = set[j + 1];
                            set[n - 1] = line;    /* move_to_end */
                            l1h_l++;
                            d = nk + c->l1_latency;
                        } else {
                            l1m_c++;
                            if (n >= c->l1_assoc) {
                                for (i64 j = 0; j < n - 1; j++)
                                    set[j] = set[j + 1];
                                n--;
                                l1e_c++;
                            }
                            set[n] = line;
                            *cnt = n + 1;
                            /* -- memory system (access_line) -- */
                            i64 arrival = nk + c->icnt;
                            i64 bz = c->l2_busy[p];
                            i64 l2_start = arrival > bz ? arrival : bz;
                            c->l2_busy[p] = l2_start + c->l2_service;
                            i64 *s2 = c->l2_lines + s2i * c->l2_assoc;
                            i64 *c2 = c->l2_cnt + s2i;
                            i64 n2 = *c2;
                            i64 hit2 = -1;
                            for (i64 j = 0; j < n2; j++)
                                if (s2[j] == line) { hit2 = j; break; }
                            if (hit2 >= 0) {
                                for (i64 j = hit2; j < n2 - 1; j++)
                                    s2[j] = s2[j + 1];
                                s2[n2 - 1] = line;
                                c->l2h[p]++;
                                l2h_l++;
                                d = l2_start + c->l2_lat_icnt;
                            } else {
                                c->l2m[p]++;
                                if (n2 >= c->l2_assoc) {
                                    for (i64 j = 0; j < n2 - 1; j++)
                                        s2[j] = s2[j + 1];
                                    n2--;
                                    c->l2e[p]++;
                                }
                                s2[n2] = line;
                                n2++;
                                *c2 = n2;
                                if (c->l2_bip) {
                                    i64 bc = ++c->bipc[p];
                                    if (bc % c->l2_eps) {
                                        /* insert at LRU (front) */
                                        for (i64 j = n2 - 1; j > 0; j--)
                                            s2[j] = s2[j - 1];
                                        s2[0] = line;
                                    }
                                }
                                i64 bb = c->bank_busy[bgi];
                                i64 start = l2_start > bb ? l2_start : bb;
                                i64 *rw = c->rows + bgi * c->window;
                                i64 *rc = c->rows_cnt + bgi;
                                i64 nr = *rc;
                                i64 rhit = -1;
                                for (i64 j = 0; j < nr; j++)
                                    if (rw[j] == row) { rhit = j; break; }
                                i64 occ;
                                if (rhit >= 0) {
                                    for (i64 j = rhit; j < nr - 1; j++)
                                        rw[j] = rw[j + 1];
                                    rw[nr - 1] = row;  /* refresh recency */
                                    occ = c->row_hit_t;
                                    c->bank_rh[bgi]++;
                                    drh_l++;
                                } else {
                                    if (nr >= c->window) {
                                        for (i64 j = 0; j < nr - 1; j++)
                                            rw[j] = rw[j + 1];
                                        nr--;
                                    }
                                    rw[nr] = row;
                                    *rc = nr + 1;
                                    occ = c->row_miss_t;
                                }
                                i64 bank_done = start + occ;
                                c->bank_busy[bgi] = bank_done;
                                c->bank_acc[bgi]++;
                                dram_l++;
                                i64 bz2 = c->bus_busy[p];
                                i64 bus_start = bank_done > bz2
                                              ? bank_done : bz2;
                                c->bus_busy[p] = bus_start + c->bus_t;
                                d = bus_start + c->done_add;
                            }
                        }
                        if (d > maxdone)
                            maxdone = d;
                        nk++;
                    }
                    if (l1h_l) {
                        l1h_c += l1h_l;
                        c->a_l1h[arow] += l1h_l;
                    }
                    if (l2h_l)
                        c->a_l2h[arow] += l2h_l;
                    if (dram_l) {
                        c->a_dram[arow] += dram_l;
                        if (drh_l)
                            c->a_drh[arow] += drh_l;
                    }
                    c->w_mem_pending[slot] = 0;
                    i64 pc = c->w_pc[slot] + 1;
                    c->w_pc[slot] = pc;
                    if (pc >= c->w_prog_len[slot])
                        c->w_done[slot] = 1;
                    /* wake = int(max(issue_start, dones, issue_free));
                     * floor is monotonic and issue_free > issue_start. */
                    wake = (i64)issue_free;
                    if (maxdone > wake)
                        wake = maxdone;
                } else {
                    /* Phase 1: the ALU run issues. */
                    f64 issue_start = srv_issue_free;
                    if ((f64)t > issue_start)
                        issue_start = (f64)t;
                    f64 issue_free = issue_start
                                   + (f64)alu_n / (f64)c->issue_width;
                    srv_issue_free = issue_free;
                    c->a_wi[arow] += alu_n;
                    c->a_ti[arow] += alu_n * c->warp_size;
                    c->a_alu[arow] += alu_n;
                    f64 wk = issue_start + (f64)alu_n * c->w_dep_gap[slot];
                    if (n_tx) {
                        c->w_mem_pending[slot] = 1;
                    } else {
                        i64 pc = c->w_pc[slot] + 1;
                        c->w_pc[slot] = pc;
                        if (pc >= c->w_prog_len[slot])
                            c->w_done[slot] = 1;
                    }
                    if (wk < issue_free)
                        wk = issue_free;
                    wake = (i64)wk;
                }
                i64 age = c->w_age[slot];
                last_issued_age = age;
                if (wake <= t)
                    wake = t + 1;
                i64 key;
                if (c->gto) {
                    key = -1;
                } else {
                    key = (age - rr_pointer) % 1000000;
                    if (key < 0)   /* match Python's non-negative % */
                        key += 1000000;
                }
                rreplace(c, smi,
                         ((u128)(unsigned long long)wake << 88)
                         | ((u128)(unsigned long long)(key + 1) << 58)
                         | ((u128)(unsigned long long)age << 28)
                         | (u128)(unsigned long long)slot);
                issued++;
            }
            c->isf[smi] = srv_issue_free;
            c->lsf[smi] = srv_lsu_free;
            c->lia[smi] = last_issued_age;
            if (!c->gto)
                c->rrp[smi] = rr_pointer + issued;
            if (l1h_c)
                c->l1h[smi] += l1h_c;
            if (l1m_c)
                c->l1m[smi] += l1m_c;
            if (l1e_c)
                c->l1e[smi] += l1e_c;
        }
        /* ---- end inlined batch ---- */
        events++;
        if (c->rlen[smi] > 0) {
            i64 t_next = (i64)(c->rheap[smi * cap] >> 88);
            if (!c->dispatch_needed &&
                (c->dheap_len == 0 || t_next < (i64)(c->dheap[0] >> 44))) {
                chained = t_next;
                continue;
            }
            seq_n++;
            pending = ((u128)(unsigned long long)t_next << 44)
                    | ((u128)(unsigned long long)seq_n << 12)
                    | (u128)(unsigned long long)smi;
            have_pending = 1;
        }
        if (c->dispatch_needed) {
            c->dispatch_needed = 0;
            if (have_pending) {
                dpush(c, pending);
                have_pending = 0;
            }
            c->seq_n = seq_n;
            c->events = events;
            c->cb_dispatch(c->ctx, t);
            if (c->abort_flag)
                return 3;
            seq_n = c->seq_n;
        }
    }

    c->seq_n = seq_n;
    if (have_pending)
        dpush(c, pending);
    if (chained >= 0)
        vc_push_sm(c, smi);
    c->events = events;
    return ret;
}

"""Kernels, thread blocks, warps, and their synthetic instruction streams.

A :class:`KernelSpec` describes a kernel statistically: grid shape,
instructions per warp, the fraction that are memory operations, the
dependency gap between issues, coalescing, working-set size, and the
memory access pattern.  Warps execute the spec as a sequence of
**segments** — a run of ALU instructions optionally terminated by one
memory instruction — which is the standard trace-driven compression of a
GPU instruction stream (compute gap + memory access).

Addresses are generated deterministically per warp (seeded by application,
block, and warp ids) so simulations are exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple  # noqa: F401 (Optional in hints)

#: Memory access patterns understood by :class:`AddressStream`.
PATTERNS = ("stream", "strided", "random", "row_local")

#: Each application gets a disjoint line-number region this many lines wide.
APP_REGION_LINES = 1 << 30


@dataclass(frozen=True)
class KernelSpec:
    """Statistical description of a kernel.

    Parameters
    ----------
    blocks, warps_per_block:
        Grid shape.  Total parallelism = ``blocks * warps_per_block`` warps.
    instr_per_warp:
        Warp instructions each warp executes.
    mem_fraction:
        Fraction of instructions that are global-memory operations.
    dep_gap:
        Average cycles between dependent issues of one warp (pipeline +
        RAW stalls).  Together with occupancy this sets compute IPC.
    tx_per_access:
        Memory transactions (cache lines) per memory instruction — 1 for a
        fully coalesced access, up to 32 for scatter/gather.
    working_set_kb:
        Footprint the addresses are drawn from.  Below L1 size ⇒ L1
        resident; between L1 and the L2 share ⇒ cache-sensitive (class C);
        far above L2 ⇒ streaming/memory bound.
    pattern:
        One of ``stream``, ``strided``, ``random``, ``row_local``.
    row_locality:
        For ``row_local``: probability that the next access stays in the
        current DRAM row.
    stride_lines:
        For ``strided``: line distance between consecutive accesses.
    hot_fraction, hot_set_kb:
        With probability ``hot_fraction`` an access goes to a random line
        of a shared "hot" region of ``hot_set_kb`` (lookup tables,
        stencil halos, …).  A hot region larger than L1 but resident in
        L2 is what generates sustained L2→L1 traffic.
    """

    name: str
    blocks: int
    warps_per_block: int
    instr_per_warp: int
    mem_fraction: float
    dep_gap: float = 2.0
    tx_per_access: int = 1
    working_set_kb: int = 1024
    pattern: str = "stream"
    row_locality: float = 0.0
    stride_lines: int = 1
    hot_fraction: float = 0.0
    hot_set_kb: int = 256
    #: Occupancy cap from shared-memory / register pressure: at most this
    #: many blocks of the kernel fit on one SM (None = device limit only).
    max_blocks_per_sm: Optional[int] = None
    #: The application invokes the kernel this many times back-to-back
    #: (BFS iterations, BP layers, stencil timesteps, ...).  Launch k+1
    #: only dispatches after launch k fully completes, so SMs gained at
    #: run time (SMRA migration, a finished co-runner) are picked up at
    #: the next launch boundary — as on real devices.
    kernel_launches: int = 1
    seed: int = 0

    def __post_init__(self):
        if self.pattern not in PATTERNS:
            raise ValueError(f"unknown access pattern {self.pattern!r}")
        if not 0.0 <= self.mem_fraction <= 1.0:
            raise ValueError("mem_fraction must be in [0, 1]")
        if self.blocks < 1 or self.warps_per_block < 1:
            raise ValueError("grid must have >= 1 block and warp")
        if self.instr_per_warp < 1:
            raise ValueError("instr_per_warp must be >= 1")
        if self.tx_per_access < 1 or self.tx_per_access > 32:
            raise ValueError("tx_per_access must be in [1, 32]")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if self.kernel_launches < 1:
            raise ValueError("kernel_launches must be >= 1")

    @property
    def total_warps(self) -> int:
        """Warps of one launch (the unit of residency)."""
        return self.blocks * self.warps_per_block

    @property
    def total_blocks(self) -> int:
        """Blocks across all launches."""
        return self.blocks * self.kernel_launches

    @property
    def total_warp_instructions(self) -> int:
        return self.total_warps * self.instr_per_warp * self.kernel_launches

    def scaled(self, factor: float) -> "KernelSpec":
        """A copy with the instruction count scaled (for fast tests)."""
        return replace(self, instr_per_warp=max(1, int(self.instr_per_warp * factor)))

    def build_program(self) -> List[Tuple[int, int]]:
        """Segment list ``[(alu_count, n_transactions), ...]``.

        Memory instructions are spread evenly through the stream; each
        contributes ``tx_per_access`` transactions.
        """
        n_mem = int(round(self.instr_per_warp * self.mem_fraction))
        n_mem = min(n_mem, self.instr_per_warp)
        n_alu = self.instr_per_warp - n_mem
        if n_mem == 0:
            return [(n_alu, 0)] if n_alu else []
        base, extra = divmod(n_alu, n_mem)
        program = []
        for i in range(n_mem):
            alu = base + (1 if i < extra else 0)
            program.append((alu, self.tx_per_access))
        return program


class AddressStream:
    """Deterministic per-warp generator of memory line numbers."""

    __slots__ = ("_spec", "_rng", "_base_line", "_ws_lines", "_cursor",
                 "_lines_per_row", "_hot_lines", "_row_stride",
                 "_pattern", "_hot_fraction", "_row_locality",
                 "_stride_lines", "_random", "_grb",
                 "_ws_bits", "_hot_bits", "_lpr_bits")

    def __init__(self, spec: KernelSpec, base_line: int, warp_index: int,
                 line_size: int, lines_per_row: int, row_stride: int = 1):
        self._spec = spec
        if spec.pattern in ("random", "row_local") or spec.hot_fraction:
            # ``randrange(n)`` for a positive int n is exactly
            # ``_randbelow(n)``, which is rejection sampling over
            # ``getrandbits(n.bit_length())``.  The hot paths below
            # open-code that loop with the bit widths precomputed,
            # consuming the identical underlying bit stream while
            # skipping two Python call layers per drawn line.
            self._rng = random.Random(
                (spec.seed << 20) ^ (warp_index * 2654435761))
            self._random = self._rng.random
            self._grb = self._rng.getrandbits
        else:
            # Pure stream/strided warps never draw randomness; skip the
            # Mersenne-Twister seeding (it dominates warp setup cost).
            self._rng = None
            self._random = self._grb = None
        self._base_line = base_line
        self._ws_lines = max(1, spec.working_set_kb * 1024 // line_size)
        self._lines_per_row = max(1, lines_per_row)
        self._hot_lines = max(1, spec.hot_set_kb * 1024 // line_size)
        # Hot-path copies of the spec fields read on every access (frozen
        # dataclass attribute reads are comparatively expensive).
        self._pattern = spec.pattern
        self._hot_fraction = spec.hot_fraction
        self._row_locality = spec.row_locality
        self._stride_lines = spec.stride_lines
        # Distance (in global line numbers) between two lines that land in
        # the same DRAM row of the same bank: partitions * banks.  The
        # ``row_local`` pattern steps by this stride so its locality is
        # locality *at the bank*, which is what the FR-FCFS model rewards.
        self._row_stride = max(1, row_stride)
        self._ws_bits = self._ws_lines.bit_length()
        self._hot_bits = self._hot_lines.bit_length()
        self._lpr_bits = self._lines_per_row.bit_length()
        # Warps start evenly spread through the working set so a streaming
        # grid touches the whole footprint (and all partitions) at once;
        # successive kernel launches continue into fresh slices rather
        # than re-walking the previous launch's lines.
        total = max(1, spec.total_warps * spec.kernel_launches)
        self._cursor = (warp_index * self._ws_lines // total) % self._ws_lines

    def pregenerate(self, program: List[Tuple[int, int]]) -> List[int]:
        """All memory lines of one warp executing `program`, flattened.

        Exactly equivalent to calling :meth:`next_lines` once per memory
        segment in program order (same RNG draws), batched so block build
        pays one call instead of one per segment."""
        lines: List[int] = []
        extend = lines.extend
        next_lines = self.next_lines
        for _alu, n_tx in program:
            if n_tx:
                extend(next_lines(n_tx))
        return lines

    def next_lines(self, n_tx: int) -> List[int]:
        ws = self._ws_lines
        hot = self._hot_fraction
        if hot and self._random() < hot:
            # Hot-region access: random lines in the shared lookup region
            # (offset past the streaming working set so the two never mix).
            hot_base = self._base_line + ws
            grb = self._grb
            hot_lines = self._hot_lines
            k = self._hot_bits
            out = []
            append = out.append
            for _ in range(n_tx):
                r = grb(k)
                while r >= hot_lines:
                    r = grb(k)
                append(hot_base + r)
            return out
        cursor = self._cursor
        pattern = self._pattern
        if pattern == "stream":
            end = cursor + n_tx
            if end <= ws:
                # Batched fast path: the whole access stays inside the
                # working set, so the lines are one contiguous range.
                base = self._base_line + cursor
                self._cursor = end % ws
                return list(range(base, base + n_tx))
            out = []
            for _ in range(n_tx):
                out.append(self._base_line + cursor)
                cursor = (cursor + 1) % ws
        elif pattern == "strided":
            out = []
            stride = self._stride_lines
            base = self._base_line
            for _ in range(n_tx):
                out.append(base + cursor)
                cursor = (cursor + stride) % ws
        elif pattern == "random":
            grb = self._grb
            k = self._ws_bits
            base = self._base_line
            out = [0] * n_tx
            for i in range(n_tx):
                cursor = grb(k)
                while cursor >= ws:
                    cursor = grb(k)
                out[i] = base + cursor
        else:  # row_local
            out = []
            grb, uniform = self._grb, self._random
            ws_bits = self._ws_bits
            lpr, stride = self._lines_per_row, self._row_stride
            lpr_bits = self._lpr_bits
            locality = self._row_locality
            base = self._base_line
            for _ in range(n_tx):
                if uniform() < locality:
                    # Stay within the current DRAM row: jump to another of
                    # the row's lines (same partition, bank, and row).  Row
                    # membership is defined on *global* line numbers, so
                    # compute there and translate back.
                    g = base + cursor
                    row_base = g - (g // stride % lpr) * stride
                    r = grb(lpr_bits)
                    while r >= lpr:
                        r = grb(lpr_bits)
                    new_cursor = row_base + r * stride - base
                    if 0 <= new_cursor < ws:
                        cursor = new_cursor
                    else:
                        cursor = grb(ws_bits)
                        while cursor >= ws:
                            cursor = grb(ws_bits)
                else:
                    cursor = grb(ws_bits)
                    while cursor >= ws:
                        cursor = grb(ws_bits)
                out.append(base + cursor)
        self._cursor = cursor
        return out


class WarpContext:
    """Execution state of one warp resident on an SM."""

    __slots__ = ("app_id", "block", "program", "pc", "ready_at", "age",
                 "addr_stream", "done", "dep_gap", "mem_pending", "stats",
                 "lines", "li", "prog_end")

    def __init__(self, app_id: int, block: "BlockContext",
                 program: List[Tuple[int, int]], addr_stream: AddressStream,
                 age: int, dep_gap: float = 2.0, stats=None):
        self.app_id = app_id
        self.block = block
        self.program = program
        self.prog_end = len(program)
        self.pc = 0
        self.ready_at = 0
        self.age = age
        self.addr_stream = addr_stream
        self.done = not program
        self.dep_gap = dep_gap
        #: Optional pregenerated flat list of this warp's memory lines
        #: (`li` is the read cursor).  The per-warp RNG draws are private,
        #: so generating every line up front at block-build time consumes
        #: the identical random stream while saving a generator call per
        #: memory event.  None → generate lazily via `addr_stream`.
        self.lines: Optional[List[int]] = None
        self.li = 0
        #: The owning application's :class:`~repro.gpusim.stats.AppStats`,
        #: cached here so the SM issue loop never does a per-event
        #: StatsBoard dict lookup.  Filled in at admit time when the warp
        #: is built without one (e.g. directly in tests).
        self.stats = stats
        #: True when the current segment's ALU run has issued and the
        #: trailing memory instruction is waiting to execute.  Memory is a
        #: separate event so requests reach the memory system at their
        #: true arrival time (never time-travel into the servers).
        self.mem_pending = False

    def current_segment(self) -> Tuple[int, int]:
        return self.program[self.pc]

    def advance(self) -> None:
        self.pc += 1
        if self.pc >= len(self.program):
            self.done = True


class BlockContext:
    """A thread block resident on an SM (tracks live warps)."""

    __slots__ = ("app_id", "block_id", "live_warps")

    def __init__(self, app_id: int, block_id: int, warps: int):
        self.app_id = app_id
        self.block_id = block_id
        self.live_warps = warps

    def warp_finished(self) -> bool:
        """Decrement live warps; True when the block just completed."""
        self.live_warps -= 1
        return self.live_warps == 0


@dataclass
class Application:
    """A named workload: one kernel spec plus launch bookkeeping."""

    name: str
    spec: KernelSpec
    app_id: int = -1

    #: Populated at launch.
    blocks_dispatched: int = field(default=0, compare=False)
    blocks_completed: int = field(default=0, compare=False)

    @property
    def base_line(self) -> int:
        if self.app_id < 0:
            raise RuntimeError(f"application {self.name} not launched yet")
        return (self.app_id + 1) * APP_REGION_LINES

    @property
    def current_launch(self) -> int:
        """Index of the kernel launch currently executing (0-based)."""
        return min(self.blocks_completed // self.spec.blocks,
                   self.spec.kernel_launches - 1)

    @property
    def launch_barrier_open(self) -> bool:
        """True when the next block to dispatch belongs to a launch whose
        predecessor has fully completed (launches are serialized)."""
        return self.blocks_dispatched < (self.current_launch + 1) * self.spec.blocks

    @property
    def all_dispatched(self) -> bool:
        return self.blocks_dispatched >= self.spec.total_blocks

    @property
    def dispatchable(self) -> bool:
        return not self.all_dispatched and self.launch_barrier_open

    @property
    def finished(self) -> bool:
        return self.blocks_completed >= self.spec.total_blocks

"""Statistics counters for the device and each running application.

``AppStats`` counts thread-instructions (warp instructions × warp size),
memory traffic split by the level that served it, and completion times.
``window_snapshot``/``window_delta`` support the SMRA controller, which
needs per-interval IPC and bandwidth-utilization figures (Algorithm 1
inputs (i)–(iii)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .config import GPUConfig


@dataclass(slots=True)
class AppStats:
    """Counters for one application.

    ``slots=True`` matters: the SM issue loop bumps half a dozen of these
    counters per event, and slot access is measurably cheaper than a
    ``__dict__`` lookup."""

    app_id: int
    name: str = ""
    warp_instructions: int = 0
    thread_instructions: int = 0
    alu_instructions: int = 0
    mem_instructions: int = 0
    mem_transactions: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    dram_accesses: int = 0
    dram_row_hits: int = 0
    dram_bytes: int = 0
    l2_to_l1_bytes: int = 0
    blocks_completed: int = 0
    start_cycle: int = 0
    finish_cycle: Optional[int] = None

    @property
    def finished(self) -> bool:
        return self.finish_cycle is not None

    def cycles(self, now: int) -> int:
        end = self.finish_cycle if self.finish_cycle is not None else now
        return max(1, end - self.start_cycle)

    def ipc(self, now: int) -> float:
        """Thread-instructions per cycle over the app's lifetime."""
        return self.thread_instructions / self.cycles(now)

    def memory_bandwidth_gbps(self, now: int, config: GPUConfig) -> float:
        return config.bytes_per_cycle_to_gbps(self.dram_bytes / self.cycles(now))

    def l2_to_l1_bandwidth_gbps(self, now: int, config: GPUConfig) -> float:
        return config.bytes_per_cycle_to_gbps(
            self.l2_to_l1_bytes / self.cycles(now))

    @property
    def mem_compute_ratio(self) -> float:
        """R of Table 3.2: memory instructions over compute instructions."""
        return (self.mem_instructions / self.alu_instructions
                if self.alu_instructions else float("inf"))


@dataclass
class WindowSample:
    """Per-app deltas over one SMRA observation window."""

    thread_instructions: int = 0
    dram_bytes: int = 0
    cycles: int = 1

    @property
    def ipc(self) -> float:
        return self.thread_instructions / max(1, self.cycles)

    def bandwidth_utilization(self, config: GPUConfig) -> float:
        """Fraction of peak DRAM bandwidth consumed in the window."""
        gbps = config.bytes_per_cycle_to_gbps(
            self.dram_bytes / max(1, self.cycles))
        return gbps / config.peak_dram_bandwidth_gbps


class StatsBoard:
    """All per-app stats plus device-level aggregation."""

    def __init__(self, config: GPUConfig):
        self.config = config
        self.apps: Dict[int, AppStats] = {}
        self._window_marks: Dict[int, tuple] = {}

    def register(self, app_id: int, name: str, start_cycle: int = 0) -> AppStats:
        stats = AppStats(app_id=app_id, name=name, start_cycle=start_cycle)
        self.apps[app_id] = stats
        return stats

    def __getitem__(self, app_id: int) -> AppStats:
        return self.apps[app_id]

    def device_throughput(self, now: int) -> float:
        """Paper Eq. 1.1: Σ instructions / total cycles simulated."""
        total_instr = sum(a.thread_instructions for a in self.apps.values())
        return total_instr / max(1, now)

    def device_utilization(self, now: int) -> float:
        return self.device_throughput(now) / self.config.peak_ipc

    # -- SMRA windows -------------------------------------------------------
    def mark_window(self, now: int) -> None:
        """Snapshot counters; subsequent :meth:`window_delta` is relative."""
        for app_id, s in self.apps.items():
            self._window_marks[app_id] = (
                now, s.thread_instructions, s.dram_bytes)

    def window_delta(self, app_id: int, now: int) -> WindowSample:
        mark = self._window_marks.get(app_id)
        s = self.apps[app_id]
        if mark is None:
            return WindowSample(s.thread_instructions, s.dram_bytes,
                                max(1, now - s.start_cycle))
        t0, instr0, bytes0 = mark
        return WindowSample(s.thread_instructions - instr0,
                            s.dram_bytes - bytes0, max(1, now - t0))

"""ctypes loader and glue for the compiled vector-engine core.

``_vectorcore.c`` implements the vector backend's run loop in C; this
module compiles it on demand (``gcc -O2``, cached by source hash under
``~/.cache/repro-gpusim``), maps the shared ``Core`` struct, translates a
:class:`~repro.gpusim.vector.VectorGPU`'s state into flat buffers, and
bridges the four places the loop re-enters Python: warp retirement
(block/app bookkeeping, SMRA drain completion), dispatch sweeps,
periodic callbacks (telemetry, SMRA controllers), and empty-heap
recovery.  Results are bit-identical to both pure-Python engines — the C
loop is the same operation sequence over the same integers and IEEE
doubles (see the header comment of ``_vectorcore.c``).

Everything here is optional: any failure to find a compiler, build, or
load leaves the pure-Python vector loop in charge (same results, just
slower).  Set ``REPRO_VECTOR_NATIVE=0`` to force the fallback; set
``REPRO_NATIVE_CACHE`` to relocate the build cache.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
from array import array
from pathlib import Path

from .cache import SetAssocCache

_SRC = Path(__file__).with_name("_vectorcore.c")
_HUGE = 1 << 60

_i64 = ctypes.c_longlong
_f64 = ctypes.c_double
_ptr = ctypes.c_void_p

_RETIRE_CB = ctypes.CFUNCTYPE(None, _ptr, _i64, _i64, _i64)
_DISPATCH_CB = ctypes.CFUNCTYPE(None, _ptr, _i64)
_FIRE_CB = ctypes.CFUNCTYPE(None, _ptr, _i64)
_EMPTY_CB = ctypes.CFUNCTYPE(_i64, _ptr, _i64)
_GROW_CB = ctypes.CFUNCTYPE(None, _ptr)


class Core(ctypes.Structure):
    """Mirror of ``struct Core`` in ``_vectorcore.c`` (same field order;
    ``vc_struct_size`` is checked at load so drift fails fast)."""

    _fields_ = [
        ("nsm", _i64), ("npart", _i64), ("nbanks_per", _i64),
        ("window", _i64),
        ("l1_nsets", _i64), ("l1_assoc", _i64), ("l1_mask", _i64),
        ("l2_nsets", _i64), ("l2_assoc", _i64), ("l2_mask", _i64),
        ("l2_bip", _i64), ("l2_eps", _i64),
        ("icnt", _i64), ("l2_service", _i64), ("l2_lat_icnt", _i64),
        ("row_hit_t", _i64), ("row_miss_t", _i64), ("bus_t", _i64),
        ("done_add", _i64),
        ("issue_width", _i64), ("max_issue", _i64), ("warp_size", _i64),
        ("l1_latency", _i64), ("gto", _i64),
        ("mem_issue_cost", _f64),
        ("max_cycles", _i64),
        ("rheap_cap", _i64),
        ("dheap_len", _i64), ("dheap_cap", _i64),
        ("dheap", _ptr),
        ("isf", _ptr), ("lsf", _ptr),
        ("lia", _ptr), ("rrp", _ptr),
        ("rheap", _ptr), ("rlen", _ptr),
        ("l1_lines", _ptr), ("l1_cnt", _ptr),
        ("l1h", _ptr), ("l1m", _ptr), ("l1e", _ptr),
        ("l2_busy", _ptr), ("bus_busy", _ptr),
        ("l2_lines", _ptr), ("l2_cnt", _ptr),
        ("l2h", _ptr), ("l2m", _ptr), ("l2e", _ptr), ("bipc", _ptr),
        ("bank_busy", _ptr),
        ("rows", _ptr), ("rows_cnt", _ptr),
        ("bank_acc", _ptr), ("bank_rh", _ptr),
        ("w_pc", _ptr), ("w_li", _ptr), ("w_prog_off", _ptr),
        ("w_prog_len", _ptr), ("w_rec_off", _ptr), ("w_app", _ptr),
        ("w_age", _ptr),
        ("w_done", _ptr), ("w_mem_pending", _ptr),
        ("w_dep_gap", _ptr),
        ("p_alu", _ptr), ("p_ntx", _ptr),
        ("recs", _ptr),
        ("a_wi", _ptr), ("a_ti", _ptr), ("a_alu", _ptr), ("a_mi", _ptr),
        ("a_mtx", _ptr), ("a_l1h", _ptr), ("a_l2h", _ptr),
        ("a_dram", _ptr), ("a_drh", _ptr),
        ("unfinished", _i64), ("dispatch_needed", _i64), ("seq_n", _i64),
        ("events", _i64), ("cycle", _i64), ("next_cb", _i64),
        ("abort_flag", _i64),
        ("ctx", _ptr),
        ("cb_retire", _RETIRE_CB), ("cb_dispatch", _DISPATCH_CB),
        ("cb_fire", _FIRE_CB), ("cb_empty", _EMPTY_CB),
        ("cb_grow_dheap", _GROW_CB),
    ]


# -- build / load ------------------------------------------------------------

_lib = None
_tried = False
#: Why the compiled core is unavailable (None while it is available).
unavailable_reason = None


def load():
    """The compiled core library, or None with `unavailable_reason` set."""
    global _lib, _tried, unavailable_reason
    if _tried:
        return _lib
    _tried = True
    if os.environ.get("REPRO_VECTOR_NATIVE", "1") == "0":
        unavailable_reason = "disabled via REPRO_VECTOR_NATIVE=0"
        return None
    try:
        _lib = _build_and_load()
    except Exception as exc:  # pragma: no cover - depends on host toolchain
        unavailable_reason = f"{type(exc).__name__}: {exc}"
        _lib = None
    return _lib


def _build_and_load():
    src = _SRC.read_bytes()
    tag = hashlib.sha256(src).hexdigest()[:16]
    cache = Path(os.environ.get("REPRO_NATIVE_CACHE")
                 or Path.home() / ".cache" / "repro-gpusim")
    so = cache / f"vectorcore-{tag}.so"
    if not so.exists():
        cache.mkdir(parents=True, exist_ok=True)
        cc = os.environ.get("CC") or shutil.which("gcc") or shutil.which("cc")
        if cc is None:
            raise RuntimeError("no C compiler on PATH")
        tmp = so.with_name(so.name + f".tmp.{os.getpid()}")
        # NOTE: no -ffast-math — the doubles must be IEEE to stay
        # bit-identical with CPython floats.
        subprocess.run([cc, "-O2", "-fPIC", "-shared",
                        "-o", str(tmp), str(_SRC)],
                       check=True, capture_output=True, timeout=300)
        os.replace(tmp, so)
    lib = ctypes.CDLL(str(so))
    lib.vc_struct_size.restype = _i64
    lib.vc_struct_size.argtypes = []
    if lib.vc_struct_size() != ctypes.sizeof(Core):
        raise RuntimeError("Core struct layout mismatch between "
                           "_vectorcore.c and _native.Core")
    lib.vc_run.restype = _i64
    lib.vc_run.argtypes = [ctypes.POINTER(Core)]
    lib.vc_push_sm.restype = None
    lib.vc_push_sm.argtypes = [ctypes.POINTER(Core), _i64]
    lib.vc_push_ready.restype = None
    lib.vc_push_ready.argtypes = [ctypes.POINTER(Core)] + [_i64] * 5
    lib.vc_push_device_raw.restype = None
    lib.vc_push_device_raw.argtypes = [ctypes.POINTER(Core)] + [_i64] * 3
    return lib


# -- L1 invalidation tracking ------------------------------------------------


class _TrackedL1(SetAssocCache):
    """L1 cache whose invalidations are visible to the native core.

    ``invalidate_all`` (owner migration: a new application starts cold)
    records the SM index so the glue can zero the corresponding native
    set arrays at the next crossing.  Counters are untouched, exactly
    like the base class.
    """

    __slots__ = ("_dirty", "_smi")

    def __init__(self, num_sets, assoc, dirty, smi):
        super().__init__(num_sets, assoc)
        self._dirty = dirty
        self._smi = smi

    def invalidate_all(self):
        super().invalidate_all()
        self._dirty.add(self._smi)


# -- packed line-record memo -------------------------------------------------

#: id(records list) → (records, flat int64 array).  The records lists are
#: themselves memoized across runs (vector._STREAM_MEMO), so flattening
#: each once makes warm-run translation a single array-extend (memcpy).
#: The value keeps the list alive, so the id key cannot be reused while
#: the entry exists; the identity check below is belt and braces.
_PACKED: dict = {}
_PACKED_LINES = 0
_PACKED_MAX_LINES = 1_500_000


def _packed_records(recs):
    global _PACKED_LINES
    key = id(recs)
    hit = _PACKED.get(key)
    if hit is not None and hit[0] is recs:
        return hit[1]
    flat = array("q", [v for r in recs for v in r])
    if _PACKED_LINES > _PACKED_MAX_LINES:
        _PACKED.clear()
        _PACKED_LINES = 0
    _PACKED[key] = (recs, flat)
    _PACKED_LINES += len(recs)
    return flat


def clear_packed_memo():
    """Drop flattened record arrays (test isolation hook)."""
    global _PACKED_LINES
    _PACKED.clear()
    _PACKED_LINES = 0


# -- state translation -------------------------------------------------------

_APP_FIELDS = ("warp_instructions", "thread_instructions",
               "alu_instructions", "mem_instructions", "mem_transactions",
               "l1_hits", "l2_hits", "dram_accesses", "dram_row_hits")


def _addr(a):
    return a.buffer_info()[0]


class NativeState:
    """Flat-buffer image of a VectorGPU plus the Python crossing handlers.

    Created lazily at the first native ``run`` and kept on the GPU object:
    the C side then owns the hot state (heaps, caches, warps, servers,
    counters) until flushed back at crossings and at exit.  Translation
    is general — it imports whatever state the device already has (cache
    contents, pending heap entries, counters), so a device that ran
    pure-Python first can still resume natively.  The reverse (native →
    pure mid-run) is not supported; once a NativeState exists the GPU
    always runs natively.
    """

    def __init__(self, gpu):
        self.gpu = gpu
        self.lib = lib = gpu._native_lib
        self.exc = None
        self.run_callbacks = []
        self.l1_dirty = gpu._l1_dirty
        cfg = gpu.config
        mem = gpu.memory
        sms = gpu.sms
        parts = mem.partitions
        nsm = len(sms)
        npart = len(parts)
        sm0 = sms[0]

        c = self.core = Core()
        self._cref = ctypes.byref(c)
        c.nsm = nsm
        c.npart = npart
        c.nbanks_per = mem._banks
        c.window = parts[0].banks[0].window if parts[0].banks else 1
        c.l1_nsets = sm0.l1.num_sets
        c.l1_assoc = sm0.l1.assoc
        c.l1_mask = -1 if sm0.l1._set_mask is None else sm0.l1._set_mask
        c.l2_nsets = mem._l2_nsets
        c.l2_assoc = mem._l2_assoc
        c.l2_mask = -1 if mem._l2_mask is None else mem._l2_mask
        c.l2_bip = 1 if mem._l2_bip else 0
        c.l2_eps = mem._l2_eps
        c.icnt = mem._icnt
        c.l2_service = mem._l2_service
        c.l2_lat_icnt = mem._l2_latency + mem._icnt
        fcfs = mem._fcfs_time
        c.row_hit_t = fcfs if fcfs is not None else mem._row_hit
        c.row_miss_t = fcfs if fcfs is not None else mem._row_miss
        c.bus_t = mem._bus
        c.done_add = mem._bus + mem._extra_latency + mem._icnt
        c.issue_width = sm0._issue_width
        c.max_issue = sm0._max_issue
        c.warp_size = sm0._warp_size
        c.l1_latency = sm0._l1_latency
        c.gto = 1 if sm0._gto else 0
        c.mem_issue_cost = sm0._mem_issue_cost
        c.rheap_cap = cfg.max_warps_per_sm + 8
        self._line_size = mem._line_size
        nbanks = npart * c.nbanks_per

        # -- fixed buffers (never reallocated) --
        c.dheap_cap = 4 * nsm + 64
        c.dheap_len = 0
        self._dheap = self._zq(2 * c.dheap_cap)
        self._isf = array("d", [s._issue_free for s in sms])
        self._lsf = array("d", [s._lsu_free for s in sms])
        self._lia = array("q", [s._last_issued_age for s in sms])
        self._rrp = array("q", [s._rr_pointer for s in sms])
        self._rheap = self._zq(2 * nsm * c.rheap_cap)
        self._rlen = self._zq(nsm)
        self._l1_lines = self._zq(nsm * c.l1_nsets * c.l1_assoc)
        self._l1_cnt = self._zq(nsm * c.l1_nsets)
        self._zero_sets = array("q", bytes(8 * c.l1_nsets))
        for smi, s in enumerate(sms):
            base = smi * c.l1_nsets
            for si, d in enumerate(s.l1.sets):
                if d:
                    off = (base + si) * c.l1_assoc
                    for j, line in enumerate(d):
                        self._l1_lines[off + j] = line
                    self._l1_cnt[base + si] = len(d)
        self._l1h = array("q", [s.l1.hits for s in sms])
        self._l1m = array("q", [s.l1.misses for s in sms])
        self._l1e = array("q", [s.l1.evictions for s in sms])
        self._l2_busy = array("q", [p.l2_busy_until for p in parts])
        self._bus_busy = array("q", [p.bus_busy_until for p in parts])
        self._l2_lines = self._zq(npart * c.l2_nsets * c.l2_assoc)
        self._l2_cnt = self._zq(npart * c.l2_nsets)
        flat = 0
        for p in parts:
            for d in p.l2.sets:
                if d:
                    off = flat * c.l2_assoc
                    for j, line in enumerate(d):
                        self._l2_lines[off + j] = line
                    self._l2_cnt[flat] = len(d)
                flat += 1
        self._l2h = array("q", [p.l2.hits for p in parts])
        self._l2m = array("q", [p.l2.misses for p in parts])
        self._l2e = array("q", [p.l2.evictions for p in parts])
        self._bipc = array("q", [p.l2._bip_counter for p in parts])
        self._rows = self._zq(nbanks * c.window)
        self._rows_cnt = self._zq(nbanks)
        bank_busy, bank_acc, bank_rh = [], [], []
        bi = 0
        for p in parts:
            for b in p.banks:
                if b.rows:
                    off = bi * c.window
                    for j, r in enumerate(b.rows):
                        self._rows[off + j] = r
                    self._rows_cnt[bi] = len(b.rows)
                bank_busy.append(b.busy_until)
                bank_acc.append(b.accesses)
                bank_rh.append(b.row_hits)
                bi += 1
        self._bank_busy = array("q", bank_busy)
        self._bank_acc = array("q", bank_acc)
        self._bank_rh = array("q", bank_rh)

        # -- growing buffers (struct pointers refreshed after appends) --
        self._w_pc = array("q")
        self._w_li = array("q")
        self._w_prog_off = array("q")
        self._w_prog_len = array("q")
        self._w_rec_off = array("q")
        self._w_app = array("q")
        self._w_age = array("q")
        self._w_done = array("q")
        self._w_mem_pending = array("q")
        self._w_dep_gap = array("d")
        self._p_alu = array("q")
        self._p_ntx = array("q")
        self._recs = array("q")
        self._a_wi = array("q")
        self._a_ti = array("q")
        self._a_alu = array("q")
        self._a_mi = array("q")
        self._a_mtx = array("q")
        self._a_l1h = array("q")
        self._a_l2h = array("q")
        self._a_dram = array("q")
        self._a_drh = array("q")
        self._app_arrays = (self._a_wi, self._a_ti, self._a_alu,
                           self._a_mi, self._a_mtx, self._a_l1h,
                           self._a_l2h, self._a_dram, self._a_drh)

        self.slot_warps = []
        self._prog_off = {}       # id(program) → (offset, program, has_mem)
        self._rec_off = {}        # id(records) → (offset, records)
        self._app_rows = {}       # app_id → dense counter row

        # Keep the callback trampolines alive for the GPU's lifetime.
        self._cb_retire = _RETIRE_CB(self._on_retire)
        self._cb_dispatch = _DISPATCH_CB(self._on_dispatch)
        self._cb_fire = _FIRE_CB(self._on_fire)
        self._cb_empty = _EMPTY_CB(self._on_empty)
        self._cb_grow = _GROW_CB(self._on_grow)
        c.cb_retire = self._cb_retire
        c.cb_dispatch = self._cb_dispatch
        c.cb_fire = self._cb_fire
        c.cb_empty = self._cb_empty
        c.cb_grow_dheap = self._cb_grow
        c.ctx = None

        self._sync_fixed()
        self._sync_growing()

        # Import any pre-existing event-heap / ready-heap state (resume
        # after a pure-Python run; entries may be packed ints or tuples).
        c.seq_n = gpu._seq_n
        heap = gpu._heap
        if heap:
            push_raw = lib.vc_push_device_raw
            for e in heap:
                if type(e) is tuple:
                    t0, n0, si = e
                else:
                    t0, n0, si = e >> 44, (e >> 12) & 0xFFFFFFFF, e & 0xFFF
                push_raw(self._cref, t0, n0, si)
            del heap[:]
        self.drain_admissions()
        self.l1_dirty.clear()     # Python-side sets were read post-clear

    def _zq(self, n):
        return array("q", bytes(8 * n)) if n else array("q")

    def _sync_fixed(self):
        c = self.core
        c.dheap = _addr(self._dheap)
        c.isf = _addr(self._isf)
        c.lsf = _addr(self._lsf)
        c.lia = _addr(self._lia)
        c.rrp = _addr(self._rrp)
        c.rheap = _addr(self._rheap)
        c.rlen = _addr(self._rlen)
        c.l1_lines = _addr(self._l1_lines)
        c.l1_cnt = _addr(self._l1_cnt)
        c.l1h = _addr(self._l1h)
        c.l1m = _addr(self._l1m)
        c.l1e = _addr(self._l1e)
        c.l2_busy = _addr(self._l2_busy)
        c.bus_busy = _addr(self._bus_busy)
        c.l2_lines = _addr(self._l2_lines)
        c.l2_cnt = _addr(self._l2_cnt)
        c.l2h = _addr(self._l2h)
        c.l2m = _addr(self._l2m)
        c.l2e = _addr(self._l2e)
        c.bipc = _addr(self._bipc)
        c.bank_busy = _addr(self._bank_busy)
        c.rows = _addr(self._rows)
        c.rows_cnt = _addr(self._rows_cnt)
        c.bank_acc = _addr(self._bank_acc)
        c.bank_rh = _addr(self._bank_rh)

    def _sync_growing(self):
        c = self.core
        c.w_pc = _addr(self._w_pc)
        c.w_li = _addr(self._w_li)
        c.w_prog_off = _addr(self._w_prog_off)
        c.w_prog_len = _addr(self._w_prog_len)
        c.w_rec_off = _addr(self._w_rec_off)
        c.w_app = _addr(self._w_app)
        c.w_age = _addr(self._w_age)
        c.w_done = _addr(self._w_done)
        c.w_mem_pending = _addr(self._w_mem_pending)
        c.w_dep_gap = _addr(self._w_dep_gap)
        c.p_alu = _addr(self._p_alu)
        c.p_ntx = _addr(self._p_ntx)
        c.recs = _addr(self._recs)
        c.a_wi = _addr(self._a_wi)
        c.a_ti = _addr(self._a_ti)
        c.a_alu = _addr(self._a_alu)
        c.a_mi = _addr(self._a_mi)
        c.a_mtx = _addr(self._a_mtx)
        c.a_l1h = _addr(self._a_l1h)
        c.a_l2h = _addr(self._a_l2h)
        c.a_dram = _addr(self._a_dram)
        c.a_drh = _addr(self._a_drh)

    # -- admission translation -------------------------------------------

    def drain_admissions(self):
        """Move freshly admitted warps from the SMs' Python ready heaps
        into the native arrays and ready heaps."""
        c = self.core
        push_ready = self.lib.vc_push_ready
        cref = self._cref
        slot_warps = self.slot_warps
        append_warp = self._append_warp
        rlen = self._rlen
        for sm in self.gpu.sms:
            ready = sm._ready
            if not ready:
                continue
            smi = sm.index
            if rlen[smi] + len(ready) > c.rheap_cap:
                raise RuntimeError("native ready-heap overflow "
                                   f"on SM{smi}")
            for ready_at, key, age, warp in ready:
                slot = len(slot_warps)
                if age >= 1 << 30 or slot >= 1 << 28 \
                        or ready_at >= 1 << 40:
                    raise RuntimeError(
                        "native vector core packing limits exceeded")
                slot_warps.append(warp)
                append_warp(warp)
                push_ready(cref, smi, ready_at, key, age, slot)
            del ready[:]
        self._sync_growing()

    def _append_warp(self, warp):
        self._w_pc.append(warp.pc)
        self._w_li.append(warp.li)
        prog = warp.program
        ent = self._prog_off.get(id(prog))
        if ent is None or ent[1] is not prog:
            off = len(self._p_alu)
            self._p_alu.extend([a for a, _t in prog])
            self._p_ntx.extend([t for _a, t in prog])
            ent = (off, prog, any(t for _a, t in prog))
            self._prog_off[id(prog)] = ent
        self._w_prog_off.append(ent[0])
        self._w_prog_len.append(warp.prog_end)
        recs = warp.lines
        if recs:
            rent = self._rec_off.get(id(recs))
            if rent is None or rent[1] is not recs:
                roff = len(self._recs) // 5
                self._recs.extend(_packed_records(recs))
                rent = (roff, recs)
                self._rec_off[id(recs)] = rent
            self._w_rec_off.append(rent[0])
        else:
            if ent[2]:
                # Only VectorWorkDistributor-built warps (which always
                # pregenerate) are supported natively.
                raise RuntimeError("warp with memory segments but no "
                                   "pregenerated line records")
            self._w_rec_off.append(0)
        self._w_app.append(self._app_row(warp.app_id))
        self._w_age.append(warp.age)
        self._w_done.append(1 if warp.done else 0)
        self._w_mem_pending.append(1 if warp.mem_pending else 0)
        self._w_dep_gap.append(warp.dep_gap)

    def _app_row(self, app_id):
        row = self._app_rows.get(app_id)
        if row is None:
            st = self.gpu.stats.apps[app_id]
            row = len(self._a_wi)
            self._app_rows[app_id] = row
            for arr, name in zip(self._app_arrays, _APP_FIELDS):
                arr.append(getattr(st, name))
        return row

    # -- flush back to the model objects ----------------------------------

    def _flush_sched(self):
        # The dispatcher's admit path reads the scheduler key inputs.
        lia, rrp = self._lia, self._rrp
        for i, s in enumerate(self.gpu.sms):
            s._last_issued_age = lia[i]
            s._rr_pointer = rrp[i]

    def _flush_all(self):
        """Write every counter and server clock back to the model objects
        (the native analogue of the pure vector loop's ``_flush``, plus
        the C-owned per-app counters)."""
        gpu = self.gpu
        for i, s in enumerate(gpu.sms):
            s._issue_free = self._isf[i]
            s._lsu_free = self._lsf[i]
            s._last_issued_age = self._lia[i]
            s._rr_pointer = self._rrp[i]
            l1 = s.l1
            l1.hits = self._l1h[i]
            l1.misses = self._l1m[i]
            l1.evictions = self._l1e[i]
        parts = gpu.memory.partitions
        for i, p in enumerate(parts):
            p.l2_busy_until = self._l2_busy[i]
            p.bus_busy_until = self._bus_busy[i]
            l2 = p.l2
            l2.hits = self._l2h[i]
            l2.misses = self._l2m[i]
            l2.evictions = self._l2e[i]
            l2._bip_counter = self._bipc[i]
        bi = 0
        for p in parts:
            for b in p.banks:
                b.busy_until = self._bank_busy[bi]
                b.accesses = self._bank_acc[bi]
                b.row_hits = self._bank_rh[bi]
                bi += 1
        apps = gpu.stats.apps
        for app_id, row in self._app_rows.items():
            st = apps[app_id]
            st.warp_instructions = self._a_wi[row]
            st.thread_instructions = self._a_ti[row]
            st.alu_instructions = self._a_alu[row]
            st.mem_instructions = self._a_mi[row]
            st.mem_transactions = self._a_mtx[row]
            st.l1_hits = self._a_l1h[row]
            st.l2_hits = self._a_l2h[row]
            st.dram_accesses = self._a_dram[row]
            st.dram_row_hits = self._a_drh[row]
        ls = self._line_size
        for st in apps.values():
            st.dram_bytes = st.dram_accesses * ls
            st.l2_to_l1_bytes = st.l2_hits * ls
        gpu.events_processed = self.core.events

    def _clear_dirty_l1(self):
        nsets = self.core.l1_nsets
        zeros = self._zero_sets
        for smi in self.l1_dirty:
            self._l1_cnt[smi * nsets:(smi + 1) * nsets] = zeros
        self.l1_dirty.clear()

    # -- crossings (C → Python) -------------------------------------------

    def _abort(self, exc):
        self.exc = exc
        self.core.abort_flag = 1

    def _on_retire(self, ctx, smi, slot, now):
        try:
            gpu = self.gpu
            gpu.cycle = now
            gpu.sms[smi]._finish_warp(self.slot_warps[slot])
            if self.l1_dirty:
                self._clear_dirty_l1()
            c = self.core
            if gpu._dispatch_needed:
                gpu._dispatch_needed = False
                c.dispatch_needed = 1
            c.unfinished = gpu._unfinished
        except BaseException as exc:
            self._abort(exc)

    def _dispatch_and_push(self, now):
        """Shared body of the dispatch / empty-heap crossings; mirrors
        the vector loop's dispatch block."""
        gpu = self.gpu
        c = self.core
        self._flush_sched()
        gpu._seq_n = c.seq_n
        dispatched = gpu.distributor.dispatch(now)
        if dispatched:
            self.drain_admissions()
            push_sm = self.lib.vc_push_sm
            cref = self._cref
            for smi in range(c.nsm):
                push_sm(cref, smi)
            gpu._seq_n = c.seq_n
        if self.l1_dirty:
            self._clear_dirty_l1()
        if gpu._dispatch_needed:
            gpu._dispatch_needed = False
            c.dispatch_needed = 1
        return dispatched

    def _on_dispatch(self, ctx, now):
        try:
            self.gpu.cycle = now
            self._dispatch_and_push(now)
        except BaseException as exc:
            self._abort(exc)

    def _on_empty(self, ctx, now):
        try:
            self.gpu.cycle = now
            return 1 if self._dispatch_and_push(now) else 0
        except BaseException as exc:
            self._abort(exc)
            return 0

    def _on_fire(self, ctx, t):
        try:
            gpu = self.gpu
            c = self.core
            self._flush_all()
            nxt = _HUGE
            for cb in self.run_callbacks:
                while cb.next_at <= t:
                    gpu.cycle = cb.next_at
                    cb.fn(gpu, gpu.cycle)
                    cb.next_at += cb.interval
                if cb.next_at < nxt:
                    nxt = cb.next_at
            c.next_cb = nxt
            if self.l1_dirty:
                self._clear_dirty_l1()
            if gpu._dispatch_needed:
                gpu._dispatch_needed = False
                c.dispatch_needed = 1
            c.unfinished = gpu._unfinished
        except BaseException as exc:
            self._abort(exc)

    def _on_grow(self, ctx):
        try:
            c = self.core
            newcap = c.dheap_cap * 2
            new = array("q", bytes(16 * newcap))
            n = 2 * c.dheap_len
            new[:n] = self._dheap[:n]
            self._dheap = new
            c.dheap = _addr(new)
            c.dheap_cap = newcap
        except BaseException as exc:
            self._abort(exc)


# -- entry point -------------------------------------------------------------


def run_native(gpu, max_cycles, callbacks):
    """Native counterpart of ``VectorGPU.run`` (same contract/results)."""
    if not gpu.apps:
        raise RuntimeError("no applications launched")
    st = gpu._native
    if st is None:
        st = gpu._native = NativeState(gpu)
    c = st.core
    lib = st.lib
    cref = st._cref

    callbacks = list(callbacks)
    for cb in callbacks:
        cb.next_at = gpu.cycle + cb.interval
    st.run_callbacks = callbacks
    c.next_cb = min((cb.next_at for cb in callbacks), default=_HUGE)
    c.max_cycles = max_cycles
    c.unfinished = gpu._unfinished
    c.dispatch_needed = 0
    c.cycle = gpu.cycle
    c.events = gpu.events_processed
    c.seq_n = gpu._seq_n
    c.abort_flag = 0
    st.exc = None

    if gpu._dispatch_needed:
        gpu._dispatch_needed = False
        gpu.distributor.dispatch(gpu.cycle)
        st.drain_admissions()
        for smi in range(c.nsm):
            lib.vc_push_sm(cref, smi)
        gpu._seq_n = c.seq_n
        if st.l1_dirty:
            st._clear_dirty_l1()

    try:
        ret = lib.vc_run(cref)
    finally:
        gpu._seq_n = max(gpu._seq_n, c.seq_n)
        gpu.cycle = c.cycle
        st._flush_all()
    if st.exc is not None:
        exc, st.exc = st.exc, None
        raise exc
    if ret == 2:
        raise RuntimeError(
            "simulation deadlock: no events and nothing to dispatch")
    return gpu.result()

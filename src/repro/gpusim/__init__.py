"""Cycle-approximate GPU simulator (the GPGPU-Sim substitute).

Public API
----------
:func:`gtx480`, :func:`small_test_config`, :class:`GPUConfig`
    Device configurations (Table 4.1).
:class:`KernelSpec`, :class:`Application`
    Workload descriptions.
:class:`GPU`, :func:`simulate`, :class:`DeviceResult`, :class:`Callback`
    Device construction and execution.
:func:`even_partition`, :func:`proportional_partition`
    SM partitioning helpers.
"""

#: Behavioural version of the simulation engine.  Bump this whenever a
#: change alters simulation *results* (cycles or counters) for any input
#: — it is folded into every persistent profile-cache key, so stale
#: on-disk profiles are invalidated automatically.  Pure performance
#: work that keeps results bit-identical (verified by the golden
#: determinism test) must NOT bump it.
ENGINE_VERSION = 1

from .address import AddressMap, LineLocation
from .cache import SetAssocCache
from .config import DramTiming, GPUConfig, gtx480, small_test_config
from .dispatcher import (WorkDistributor, even_partition,
                         proportional_partition)
from .dram import DramBank, MemoryPartition, MemorySystem
from .gpu import (DEFAULT_MAX_CYCLES, GPU, Callback, DeviceResult,
                  simulate)
from .kernel import (PATTERNS, AddressStream, Application, BlockContext,
                     KernelSpec, WarpContext)
from .sm import SM
from .stats import AppStats, StatsBoard, WindowSample

__all__ = [
    "ENGINE_VERSION",
    "GPUConfig", "DramTiming", "gtx480", "small_test_config",
    "KernelSpec", "Application", "PATTERNS",
    "GPU", "simulate", "DeviceResult", "Callback", "DEFAULT_MAX_CYCLES",
    "even_partition", "proportional_partition", "WorkDistributor",
    "SetAssocCache", "MemorySystem", "MemoryPartition", "DramBank",
    "AddressMap", "LineLocation", "AddressStream", "BlockContext",
    "WarpContext", "SM", "AppStats", "StatsBoard", "WindowSample",
]

"""Streaming Multiprocessor model: warp residency, scheduling, and issue.

The SM executes warp *segments* (a run of ALU instructions optionally
ending in a memory instruction, see :mod:`repro.gpusim.kernel`).  Three
fluid servers shape timing:

* the **issue pipeline** — ``issue_width`` warp instructions per cycle
  across all warps;
* the **dependency chain** of each warp — a segment of ``n`` instructions
  keeps its warp busy for ``n * dep_gap`` cycles;
* the **load/store unit** — one memory transaction per cycle.

Ready warps are kept in a heap ordered by (ready time, scheduler key):
GTO (greedy-then-oldest, the paper's Table 4.1 scheduler) prefers the
warp that issued last and then the oldest warp; LRR rotates.

:meth:`SM.step` is the hottest function of the simulator (~70% of wall
time together with the memory chain it drives), so the whole
issue-segment state machine is inlined into its loop: per-event config
attribute reads are hoisted into fields at construction, the per-app
stats object is cached on the warp at admit time, the L1 lookup is
open-coded (LRU only — the L1 never uses BIP insertion), and scheduler
keys are plain ints.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from .cache import SetAssocCache
from .config import GPUConfig
from .dram import MemorySystem
from .kernel import BlockContext, WarpContext
from .stats import StatsBoard

#: Cycles between block dispatch and first issue of its warps.
DISPATCH_LATENCY = 5


class SM:
    """One streaming multiprocessor."""

    __slots__ = ("index", "config", "memory", "stats", "on_block_complete",
                 "l1", "owner", "pending_owner", "blocks", "resident_warps",
                 "_ready", "_issue_free", "_lsu_free", "_age_counter",
                 "_last_issued_age", "_rr_pointer", "_issue_width",
                 "_warp_size", "_l1_latency", "_gto", "_max_issue",
                 "_mem_issue_cost")

    def __init__(self, index: int, config: GPUConfig, memory: MemorySystem,
                 stats: StatsBoard,
                 on_block_complete: Callable[["SM", BlockContext], None]):
        self.index = index
        self.config = config
        self.memory = memory
        self.stats = stats
        self.on_block_complete = on_block_complete

        self.l1 = SetAssocCache(config.l1_sets, config.l1_assoc)
        self.owner: Optional[int] = None          # app_id assigned to this SM
        self.pending_owner: Optional[int] = None  # SMRA migration target
        self.blocks: List[BlockContext] = []
        self.resident_warps = 0

        self._ready: List[Tuple[int, int, int, WarpContext]] = []
        self._issue_free = 0.0
        self._lsu_free = 0.0
        self._age_counter = 0
        self._last_issued_age = -1  # GTO greediness
        self._rr_pointer = 0        # LRR rotation (whole issues only)

        # Hot-path constants (never change after construction).
        self._issue_width = config.issue_width
        self._warp_size = config.warp_size
        self._l1_latency = config.l1_latency
        self._gto = config.scheduler == "gto"
        self._max_issue = max(1, config.issue_width) * 4  # per-event batch cap
        #: ``1.0 / issue_width`` — the issue-pipe occupancy of one warp
        #: instruction, hoisted so the memory phase never re-divides.
        self._mem_issue_cost = 1.0 / config.issue_width

    # -- capacity ---------------------------------------------------------
    @property
    def free_block_slots(self) -> int:
        return self.config.max_blocks_per_sm - len(self.blocks)

    def can_host(self, warps_per_block: int) -> bool:
        return (self.free_block_slots > 0 and
                self.resident_warps + warps_per_block
                <= self.config.max_warps_per_sm)

    @property
    def draining(self) -> bool:
        """True when an SMRA migration is waiting for blocks to finish."""
        return self.pending_owner is not None

    @property
    def idle(self) -> bool:
        return not self.blocks

    # -- block residency ----------------------------------------------------
    def admit_block(self, block: BlockContext, warps: List[WarpContext],
                    now: int) -> None:
        if not self.can_host(len(warps)):
            raise RuntimeError(f"SM{self.index} cannot host block "
                               f"{block.block_id} of app {block.app_id}")
        self.blocks.append(block)
        self.resident_warps += len(warps)
        for warp in warps:
            self._age_counter += 1
            warp.age = self._age_counter
            warp.ready_at = now + DISPATCH_LATENCY
            if warp.done:  # degenerate empty program
                self._finish_warp(warp)
                continue
            if warp.stats is None:
                warp.stats = self.stats[warp.app_id]
            heapq.heappush(
                self._ready,
                (warp.ready_at, self._sched_key(warp), warp.age, warp))

    def set_owner(self, app_id: Optional[int]) -> None:
        """Assign or migrate the SM to `app_id` (paper's method 3: drain)."""
        if self.owner == app_id:
            self.pending_owner = None
            return
        if self.idle:
            self._apply_owner(app_id)
        else:
            self.pending_owner = app_id

    def _apply_owner(self, app_id: Optional[int]) -> None:
        self.owner = app_id
        self.pending_owner = None
        self.l1.invalidate_all()  # a new application starts cold

    # -- scheduling ---------------------------------------------------------
    def _sched_key(self, warp: WarpContext) -> int:
        if self._gto:
            # Greedy: the last-issued warp sorts first; then oldest age.
            return -1 if warp.age == self._last_issued_age else warp.age
        # LRR: rotate priority across warps.
        return (warp.age - self._rr_pointer) % 1_000_000

    def next_event(self) -> Optional[int]:
        return self._ready[0][0] if self._ready else None

    def step(self, now: int) -> None:
        """Issue segments from all warps that are ready at `now`.

        One iteration of the batch is one warp *event*: an ALU run, a
        trailing memory instruction, or a retire.  The actual loop lives
        in :func:`issue_batch`; the GPU main loop calls it directly with
        the device-wide constants hoisted once per run.
        """
        issue_batch(self, now, self._issue_width, self._mem_issue_cost,
                    self._max_issue, self._warp_size, self._l1_latency,
                    self._gto, self.memory.access_line)

    def _finish_warp(self, warp: WarpContext) -> None:
        self.resident_warps = max(0, self.resident_warps - 1)
        if warp.block.warp_finished():
            block = warp.block
            self.blocks.remove(block)
            self.on_block_complete(self, block)
        if self.idle and self.pending_owner is not None:
            self._apply_owner(self.pending_owner)

    def __repr__(self):
        return (f"SM({self.index}, owner={self.owner}, "
                f"blocks={len(self.blocks)}, warps={self.resident_warps})")


def issue_batch(sm: SM, now: int, issue_width: int, mem_issue_cost: float,
                max_issue: int, warp_size: int, l1_latency: int, gto: bool,
                access_line,
                heappop=heapq.heappop, heapreplace=heapq.heapreplace) -> None:
    """One event batch of `sm` at cycle `now` — the simulator's hot loop.

    The device-wide constants (`issue_width`, `warp_size`, `l1_latency`,
    `gto`, the bound `MemorySystem.access_line`) are parameters so
    :meth:`GPU.run` can hoist them exactly once per run instead of per
    event; every SM of a device shares one config, so the values are the
    same for all callers.  The arithmetic is kept
    operation-for-operation identical to the pre-optimization engine
    (see the golden determinism test).
    """
    ready = sm._ready
    if not ready or ready[0][0] > now:
        return
    issued = 0
    rr_pointer = 0 if gto else sm._rr_pointer
    # The issue/LSU server clocks and the GTO greedy mark live in locals
    # across the whole batch; nothing called from this loop reads them
    # (written back before returning).
    srv_issue_free = sm._issue_free
    srv_lsu_free = sm._lsu_free
    last_issued_age = sm._last_issued_age

    while ready:
        # Peek instead of pop: issue events put the warp straight back,
        # so the requeue below can use heapreplace (one sift instead of
        # two).  Entries are totally ordered (ages are unique per SM), so
        # the pop sequence is layout-independent and this is equivalent
        # to pop-then-push.
        head = ready[0]
        if head[0] > now or issued >= max_issue:
            break
        warp = head[3]
        if warp.done:
            # Retire event: the warp's final segment just completed.
            heappop(ready)
            sm._finish_warp(warp)
            continue

        # -- issue the warp's next event (was SM._issue_segment).
        # A segment ``(alu_n, n_tx)`` runs as two events: the ALU run
        # issues now and wakes the warp at its completion; the memory
        # instruction then executes as its own event, so requests enter
        # the memory system at their true arrival time (the fluid
        # servers are call-ordered and must never receive far-future
        # arrivals).
        program = warp.program
        alu_n, n_tx = program[warp.pc]
        app = warp.stats

        if warp.mem_pending:
            # Phase 2: the trailing memory instruction executes now.
            app.warp_instructions += 1
            app.thread_instructions += warp_size
            app.mem_instructions += 1
            app.mem_transactions += n_tx
            issue_start = srv_issue_free
            if now > issue_start:
                issue_start = now
            srv_issue_free = issue_free = issue_start + mem_issue_cost
            completion = issue_start
            app_id = warp.app_id
            l1 = sm.l1
            l1_sets = l1.sets
            l1_mask = l1._set_mask
            l1_assoc = l1.assoc
            ls = warp.lines
            if ls is None:
                tx_lines = warp.addr_stream.next_lines(n_tx)
            else:
                li = warp.li
                warp.li = end = li + n_tx
                tx_lines = ls[li:end]
            for line in tx_lines:
                tx_start = issue_start if issue_start > srv_lsu_free \
                    else srv_lsu_free
                srv_lsu_free = tx_start + 1.0
                # Open-coded L1 LRU lookup (SetAssocCache.access).
                s = l1_sets[line & l1_mask if l1_mask is not None
                            else line % l1.num_sets]
                if line in s:
                    s.move_to_end(line)
                    l1.hits += 1
                    app.l1_hits += 1
                    done = tx_start + l1_latency
                else:
                    l1.misses += 1
                    if len(s) >= l1_assoc:
                        s.popitem(last=False)
                        l1.evictions += 1
                    s[line] = None
                    done = access_line(line, int(tx_start), app_id, app)
                if done > completion:
                    completion = done
            warp.mem_pending = False
            warp.pc = pc = warp.pc + 1
            if pc >= warp.prog_end:
                warp.done = True
            wake = completion
        else:
            # Phase 1: the ALU run (possibly empty) issues.
            issue_start = srv_issue_free
            if now > issue_start:
                issue_start = now
            srv_issue_free = issue_free = \
                issue_start + alu_n / issue_width
            app.warp_instructions += alu_n
            app.thread_instructions += alu_n * warp_size
            app.alu_instructions += alu_n
            wake = issue_start + alu_n * warp.dep_gap
            if n_tx:
                warp.mem_pending = True  # memory event follows at `wake`
            else:
                warp.pc = pc = warp.pc + 1
                if pc >= warp.prog_end:
                    warp.done = True
        # A segment cannot complete before the SM has issued all of it.
        if wake < issue_free:
            wake = issue_free

        age = warp.age
        last_issued_age = age
        # Requeue: the warp wakes for its next event (memory phase, next
        # segment, or — when done — a retire event so block lifetime
        # includes the final segment's latency).
        wake = int(wake)
        if wake <= now:
            wake = now + 1
        # (warp.ready_at is deliberately not updated here: the wake time
        # travels in the heap entry and nothing reads the attribute after
        # admission.)
        # _sched_key, inlined: after `last_issued_age = age` the GTO key
        # of the requeued warp is always the greedy -1.
        heapreplace(ready,
                    (wake,
                     -1 if gto else (age - rr_pointer) % 1_000_000,
                     age, warp))
        issued += 1
    sm._issue_free = srv_issue_free
    sm._lsu_free = srv_lsu_free
    sm._last_issued_age = last_issued_age
    if not gto:
        sm._rr_pointer = rr_pointer + issued

"""Streaming Multiprocessor model: warp residency, scheduling, and issue.

The SM executes warp *segments* (a run of ALU instructions optionally
ending in a memory instruction, see :mod:`repro.gpusim.kernel`).  Three
fluid servers shape timing:

* the **issue pipeline** — ``issue_width`` warp instructions per cycle
  across all warps;
* the **dependency chain** of each warp — a segment of ``n`` instructions
  keeps its warp busy for ``n * dep_gap`` cycles;
* the **load/store unit** — one memory transaction per cycle.

Ready warps are kept in a heap ordered by (ready time, scheduler key):
GTO (greedy-then-oldest, the paper's Table 4.1 scheduler) prefers the
warp that issued last and then the oldest warp; LRR rotates.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from .cache import SetAssocCache
from .config import GPUConfig
from .dram import MemorySystem
from .kernel import BlockContext, WarpContext
from .stats import StatsBoard

#: Cycles between block dispatch and first issue of its warps.
DISPATCH_LATENCY = 5


class SM:
    """One streaming multiprocessor."""

    def __init__(self, index: int, config: GPUConfig, memory: MemorySystem,
                 stats: StatsBoard,
                 on_block_complete: Callable[["SM", BlockContext], None]):
        self.index = index
        self.config = config
        self.memory = memory
        self.stats = stats
        self.on_block_complete = on_block_complete

        self.l1 = SetAssocCache(config.l1_sets, config.l1_assoc)
        self.owner: Optional[int] = None          # app_id assigned to this SM
        self.pending_owner: Optional[int] = None  # SMRA migration target
        self.blocks: List[BlockContext] = []
        self.resident_warps = 0

        self._ready: List[Tuple[int, float, int, WarpContext]] = []
        self._issue_free = 0.0
        self._lsu_free = 0.0
        self._age_counter = 0
        self._last_issued_age = -1  # GTO greediness
        self._rr_pointer = 0.0      # LRR rotation

    # -- capacity ---------------------------------------------------------
    @property
    def free_block_slots(self) -> int:
        return self.config.max_blocks_per_sm - len(self.blocks)

    def can_host(self, warps_per_block: int) -> bool:
        return (self.free_block_slots > 0 and
                self.resident_warps + warps_per_block
                <= self.config.max_warps_per_sm)

    @property
    def draining(self) -> bool:
        """True when an SMRA migration is waiting for blocks to finish."""
        return self.pending_owner is not None

    @property
    def idle(self) -> bool:
        return not self.blocks

    # -- block residency ----------------------------------------------------
    def admit_block(self, block: BlockContext, warps: List[WarpContext],
                    now: int) -> None:
        if not self.can_host(len(warps)):
            raise RuntimeError(f"SM{self.index} cannot host block "
                               f"{block.block_id} of app {block.app_id}")
        self.blocks.append(block)
        self.resident_warps += len(warps)
        for warp in warps:
            self._age_counter += 1
            warp.age = self._age_counter
            warp.ready_at = now + DISPATCH_LATENCY
            if warp.done:  # degenerate empty program
                self._finish_warp(warp, len(warps))
                continue
            heapq.heappush(
                self._ready,
                (warp.ready_at, self._sched_key(warp), warp.age, warp))

    def set_owner(self, app_id: Optional[int]) -> None:
        """Assign or migrate the SM to `app_id` (paper's method 3: drain)."""
        if self.owner == app_id:
            self.pending_owner = None
            return
        if self.idle:
            self._apply_owner(app_id)
        else:
            self.pending_owner = app_id

    def _apply_owner(self, app_id: Optional[int]) -> None:
        self.owner = app_id
        self.pending_owner = None
        self.l1.invalidate_all()  # a new application starts cold

    # -- scheduling ---------------------------------------------------------
    def _sched_key(self, warp: WarpContext) -> float:
        if self.config.scheduler == "gto":
            # Greedy: the last-issued warp sorts first; then oldest age.
            return -1.0 if warp.age == self._last_issued_age else float(warp.age)
        # LRR: rotate priority across warps.
        return float((warp.age - self._rr_pointer) % 1_000_000)

    def next_event(self) -> Optional[int]:
        return self._ready[0][0] if self._ready else None

    def step(self, now: int) -> None:
        """Issue segments from all warps that are ready at `now`."""
        issued = 0
        max_issue = max(1, self.config.issue_width) * 4  # per-event batch cap
        while (self._ready and self._ready[0][0] <= now
               and issued < max_issue):
            _t, _k, _age, warp = heapq.heappop(self._ready)
            if warp.done:
                # Retire event: the warp's final segment just completed.
                self._finish_warp(warp, warp.block.live_warps)
                continue
            self._issue_segment(warp, now)
            issued += 1
        if self.config.scheduler == "lrr":
            self._rr_pointer += issued

    def _issue_segment(self, warp: WarpContext, now: int) -> None:
        """Issue the next event of `warp`.

        A segment ``(alu_n, n_tx)`` runs as two events: the ALU run issues
        now and wakes the warp at its completion; the memory instruction
        then executes as its own event, so requests enter the memory
        system at their true arrival time (the fluid servers are
        call-ordered and must never receive far-future arrivals).
        """
        cfg = self.config
        alu_n, n_tx = warp.current_segment()
        app = self.stats[warp.app_id]

        if warp.mem_pending:
            # Phase 2: the trailing memory instruction executes now.
            app.warp_instructions += 1
            app.thread_instructions += cfg.warp_size
            app.mem_instructions += 1
            app.mem_transactions += n_tx
            issue_start = max(now, self._issue_free)
            self._issue_free = issue_start + 1.0 / cfg.issue_width
            completion = float(issue_start)
            for line in warp.addr_stream.next_lines(n_tx):
                tx_start = max(issue_start, self._lsu_free)
                self._lsu_free = tx_start + 1.0
                if self.l1.access(line):
                    app.l1_hits += 1
                    done = tx_start + cfg.l1_latency
                else:
                    done = self.memory.access_line(line, int(tx_start),
                                                   warp.app_id)
                completion = max(completion, done)
            warp.mem_pending = False
            warp.advance()
            ready = completion
        else:
            # Phase 1: the ALU run (possibly empty) issues.
            issue_start = max(now, self._issue_free)
            self._issue_free = issue_start + alu_n / cfg.issue_width
            app.warp_instructions += alu_n
            app.thread_instructions += alu_n * cfg.warp_size
            app.alu_instructions += alu_n
            ready = issue_start + alu_n * warp.dep_gap
            if n_tx:
                warp.mem_pending = True  # memory event follows at `ready`
            else:
                warp.advance()
        # A segment cannot complete before the SM has issued all of it.
        ready = max(ready, self._issue_free)

        self._last_issued_age = warp.age
        # Requeue: the warp wakes for its next event (memory phase, next
        # segment, or — when done — a retire event so block lifetime
        # includes the final segment's latency).
        warp.ready_at = max(int(ready), now + 1)
        heapq.heappush(
            self._ready,
            (warp.ready_at, self._sched_key(warp), warp.age, warp))

    def _finish_warp(self, warp: WarpContext, _live: int) -> None:
        self.resident_warps = max(0, self.resident_warps - 1)
        if warp.block.warp_finished():
            block = warp.block
            self.blocks.remove(block)
            self.on_block_complete(self, block)
        if self.idle and self.pending_owner is not None:
            self._apply_owner(self.pending_owner)

    def __repr__(self):
        return (f"SM({self.index}, owner={self.owner}, "
                f"blocks={len(self.blocks)}, warps={self.resident_warps})")

"""The ``vector`` engine backend: a flattened array-of-structs core.

:class:`VectorGPU` is a drop-in replacement for :class:`~repro.gpusim.gpu.GPU`
(same constructor, ``launch``/``run``/``result`` surface, same
:class:`~repro.gpusim.gpu.DeviceResult`) that executes the identical
event-driven simulation **bit-identically** but substantially faster on
mem-bound workloads.  It is selected through the ``engine-backends``
registry kind (``ExecutionSpec.backend = "vector"``); the default
``"event"`` backend remains :class:`GPU`.

Where the time goes, and how this backend removes it
----------------------------------------------------
The event engine is already tight per operation (hoisted constants,
closure free-variables, direct chaining), so this backend wins by doing
*less work per line/event*, not by shaving attribute loads:

* **Precomputed line records, memoized across runs.**  A warp's memory
  lines are a pure function of ``(KernelSpec, warp_index, base_line,
  device geometry)``.  :class:`VectorWorkDistributor` computes each
  line's partition / L2-set / bank / DRAM-row indices *once*, stores the
  record list in a process-wide memo, and every later run of the same
  spec (bench repeats, solo profiles, interference pairs, sweep points)
  reuses it — skipping both the Mersenne-Twister seeding and the
  per-line address decode (two divisions, two modulos, a mask) entirely.
* **Integer event heap.**  Device heap entries ``(t, seq, sm)`` are
  packed into one int (``t << 44 | seq << 12 | sm``); heap sifts compare
  machine ints instead of allocating and comparing tuples.  The packing
  is strictly monotonic in the tuple order, so pop order is identical.
* **Batched LSU serialization.**  Within one memory instruction the LSU
  start times are provably consecutive (``t_k = max(issue_start,
  lsu_free) + k``), so the per-line float ``max``/add/`int()`` collapses
  into one integer base plus ``+= 1``.
* **Flat server state.**  Per-partition L2/bus clocks, per-bank
  busy/row/counter state, and per-SM issue/LSU clocks live in
  preallocated flat lists for the duration of ``run`` and are flushed
  back to the model objects at exit, before every callback, and before
  every dispatch sweep — so controller callbacks (SMRA, telemetry) and
  the dispatcher observe exactly the state the event engine would show.
* **Folded counters.**  Per-app hit/access counters accumulate in loop
  locals and fold once per memory instruction; the byte counters are
  exact derivations (``dram_bytes == dram_accesses * line_size``,
  ``l2_to_l1_bytes == l2_hits * line_size`` — the engine only ever
  increments them in lockstep) and are recomputed at flush points.

Bit-identity is by construction: the run loop below is an
operation-for-operation transcription of ``GPU.run`` +
``sm.issue_batch`` + ``MemorySystem.access_line`` (see those modules'
"keep in sync" notes); the golden determinism suite and the bench
``--ab`` mode compare both backends across the full scenario matrix.
The ``int``-vs-``float`` rewrites above are exact (floor is monotonic,
positive-float truncation distributes over integer addition), not
approximations.
"""

from __future__ import annotations

import gc
import heapq
from typing import List, Sequence

from . import _native
from .dispatcher import WorkDistributor
from .gpu import DEFAULT_MAX_CYCLES, GPU, Callback, DeviceResult
from .kernel import AddressStream, BlockContext, WarpContext

# -- the cross-run line-record memo -----------------------------------------

#: (spec, base_line, geometry) → {warp_index: [(line, p, s2i, bgi, row)]}.
#: Bounded: when the memo holds more than _MEMO_MAX_LINES line records in
#: total, least-recently-used spec entries are dropped.  Per-process (each
#: pool worker warms its own); purely a cache of deterministic
#: preprocessing, so hits cannot change results.
_STREAM_MEMO: dict = {}
_MEMO_MAX_LINES = 1_500_000
_memo_lines = 0


def clear_stream_memo() -> None:
    """Drop all memoized line records (test isolation hook)."""
    global _memo_lines
    _STREAM_MEMO.clear()
    _memo_lines = 0


class VectorWorkDistributor(WorkDistributor):
    """Block builder producing precomputed, memoized line records.

    A record ``(line, p, s2i, bgi, row)`` carries the global line number
    plus its memory-partition index, flat L2-set index, flat bank index,
    and DRAM row — everything the run loop's memory path needs, decoded
    once instead of per access per run.
    """

    def __init__(self, gpu: "VectorGPU"):
        super().__init__(gpu)
        mem = gpu.memory
        self._np = mem._num_partitions
        self._banks_per = mem._banks
        self._span = mem._bank_row_span
        self._l2_nsets = mem._l2_nsets
        self._l2_mask = mem._l2_mask
        #: Everything record contents depend on besides (spec, base_line).
        self._geom = (self._line_size, self._lines_per_row, self._np,
                      self._banks_per, self._l2_nsets)

    def _records(self, lines: List[int]) -> list:
        np_, banks_per = self._np, self._banks_per
        span, nsets, mask = self._span, self._l2_nsets, self._l2_mask
        out = []
        append = out.append
        for line in lines:
            p = line % np_
            local = line // np_
            append((line, p,
                    p * nsets + (line & mask if mask is not None
                                 else line % nsets),
                    p * banks_per + local % banks_per,
                    local // span))
        return out

    def _make_block(self, app, now: int):
        global _memo_lines
        spec = app.spec
        block_id = app.blocks_dispatched
        block = BlockContext(app.app_id, block_id, spec.warps_per_block)
        program = self._program_of(app)
        warps = []
        app_stats = self._gpu.stats.apps.get(app.app_id)
        has_mem = any(n_tx for _alu, n_tx in program)
        base_line = app.base_line
        per_spec = None
        if has_mem:
            key = (spec, base_line, self._geom)
            per_spec = _STREAM_MEMO.get(key)
            if per_spec is None:
                if _memo_lines > _MEMO_MAX_LINES:
                    # Evict oldest spec entries (dict preserves insertion
                    # order) until back under the cap.
                    for old_key in list(_STREAM_MEMO):
                        dropped = _STREAM_MEMO.pop(old_key)
                        _memo_lines -= sum(len(r) for r in dropped.values())
                        if _memo_lines <= _MEMO_MAX_LINES:
                            break
                _STREAM_MEMO[key] = per_spec = {}
        for w in range(spec.warps_per_block):
            warp_index = block_id * spec.warps_per_block + w
            recs = per_spec.get(warp_index) if per_spec is not None else None
            if recs is None:
                stream = AddressStream(spec, base_line, warp_index,
                                       self._line_size, self._lines_per_row,
                                       row_stride=self._row_stride)
                warp = WarpContext(app.app_id, block, program, stream,
                                   age=0, dep_gap=spec.dep_gap,
                                   stats=app_stats)
                if has_mem:
                    recs = self._records(stream.pregenerate(program))
                    per_spec[warp_index] = recs
                    _memo_lines += len(recs)
                    warp.lines = recs
            else:
                # Warm hit: skip AddressStream construction entirely (the
                # RNG seeding is a large share of cold block-build cost).
                warp = WarpContext(app.app_id, block, program, None,
                                   age=0, dep_gap=spec.dep_gap,
                                   stats=app_stats)
                warp.lines = recs
            warps.append(warp)
        app.blocks_dispatched += 1
        return block, warps


class VectorGPU(GPU):
    """The vectorized flat-state engine backend (see module docstring)."""

    __slots__ = ("_native_lib", "_native", "_l1_dirty")

    def __init__(self, config):
        super().__init__(config)
        if config.num_sms > 0xFFF:
            raise ValueError("vector backend supports at most 4095 SMs")
        self.distributor = VectorWorkDistributor(self)
        # Compiled fast path (see _native / _vectorcore.c): available when
        # a C compiler is (or was) around, bit-identical by construction,
        # and disabled cleanly via REPRO_VECTOR_NATIVE=0.  The pure loop
        # below remains the reference and the portable fallback.
        self._native = None
        self._l1_dirty = set()
        self._native_lib = _native.load()
        if self._native_lib is not None:
            for sm in self.sms:
                sm.l1 = _native._TrackedL1(config.l1_sets, config.l1_assoc,
                                           self._l1_dirty, sm.index)

    # Device-heap entries are ints: t << 44 | seq << 12 | sm_index.
    def _push_sm(self, sm) -> None:
        ready = sm._ready
        if ready:
            self._seq_n = n = self._seq_n + 1
            heapq.heappush(self._heap, (ready[0][0] << 44) | (n << 12)
                           | sm.index)

    def run(self, max_cycles: int = DEFAULT_MAX_CYCLES,
            callbacks: Sequence[Callback] = ()) -> DeviceResult:
        """Transcription of ``GPU.run`` over flattened state.

        Keep in sync with :meth:`GPU.run`, :func:`repro.gpusim.sm.issue_batch`
        and :meth:`MemorySystem._build_access_line` — same operations in
        the same order; only the data layout differs.
        """
        # Prefer the compiled core.  Once a native state exists the device
        # must keep using it (the hot state lives in the C arrays); the
        # 2^40 guard matches the native ready-heap wake packing width.
        if self._native is not None or (self._native_lib is not None
                                        and max_cycles < (1 << 40)):
            return _native.run_native(self, max_cycles, callbacks)
        if not self.apps:
            raise RuntimeError("no applications launched")
        callbacks = list(callbacks)
        for cb in callbacks:
            cb.next_at = self.cycle + cb.interval

        if self._dispatch_needed:
            self.distributor.dispatch(self.cycle)
            self._dispatch_needed = False
            for sm in self.sms:
                self._push_sm(sm)

        heap = self._heap
        if heap and type(heap[0]) is tuple:
            # Resuming a heap written by the event engine's layout: the
            # int packing is order-preserving, so repack in place.
            for i, (t, n, smi) in enumerate(heap):
                heap[i] = (t << 44) | (n << 12) | smi

        sms = self.sms
        mem = self.memory
        parts = mem.partitions
        seq_n = self._seq_n
        heappop, heappush = heapq.heappop, heapq.heappush
        heappushpop, heapreplace = heapq.heappushpop, heapq.heapreplace
        events = self.events_processed

        # -- device-wide constants (identical to the event engine's). --
        sm0 = sms[0]
        issue_width = sm0._issue_width
        mem_issue_cost = sm0._mem_issue_cost
        max_issue = sm0._max_issue
        warp_size = sm0._warp_size
        l1_latency = sm0._l1_latency
        gto = sm0._gto
        l1_mask = sm0.l1._set_mask
        l1_nsets = sm0.l1.num_sets
        l1_assoc = sm0.l1.assoc
        icnt = mem._icnt
        l2_service = mem._l2_service
        l2_lat_icnt = mem._l2_latency + icnt
        line_size = mem._line_size
        l2_assoc = mem._l2_assoc
        l2_bip = mem._l2_bip
        l2_eps = mem._l2_eps
        fcfs = mem._fcfs_time
        # FCFS charges the blended cost on hit and miss alike, which is
        # exactly row_hit_t == row_miss_t == fcfs_time (hit/miss is still
        # tracked for the counters).
        row_hit_t = fcfs if fcfs is not None else mem._row_hit
        row_miss_t = fcfs if fcfs is not None else mem._row_miss
        bus_t = mem._bus
        done_add = bus_t + mem._extra_latency + icnt
        window = parts[0].banks[0].window if parts[0].banks else 1

        # -- flattened hot state (flushed back at the points below). --
        readies = [sm._ready for sm in sms]  # list identity is stable
        l1sets_a = [sm.l1.sets for sm in sms]
        isf_a = [sm._issue_free for sm in sms]
        lsf_a = [sm._lsu_free for sm in sms]
        lia_a = [sm._last_issued_age for sm in sms]
        rrp_a = [sm._rr_pointer for sm in sms]
        l1h_a = [sm.l1.hits for sm in sms]
        l1m_a = [sm.l1.misses for sm in sms]
        l1e_a = [sm.l1.evictions for sm in sms]
        l2_busy = [p.l2_busy_until for p in parts]
        bus_busy = [p.bus_busy_until for p in parts]
        l2sets: list = []   # flat: p * l2_nsets + set_index
        for p in parts:
            l2sets.extend(p.l2.sets)  # set-dict identity is stable
        l2h_a = [p.l2.hits for p in parts]
        l2m_a = [p.l2.misses for p in parts]
        l2e_a = [p.l2.evictions for p in parts]
        bipc_a = [p.l2._bip_counter for p in parts]
        bank_busy: list = []
        bank_rows: list = []  # dict identity is stable (shared in place)
        bank_acc: list = []
        bank_rh: list = []
        for p in parts:
            for b in p.banks:
                bank_busy.append(b.busy_until)
                bank_rows.append(b.rows)
                bank_acc.append(b.accesses)
                bank_rh.append(b.row_hits)

        stats_apps = self.stats.apps

        def _flush_sched() -> None:
            # The dispatcher's admit path reads the scheduler key inputs.
            for i, s in enumerate(sms):
                s._last_issued_age = lia_a[i]
                s._rr_pointer = rrp_a[i]

        def _flush() -> None:
            # Full write-back: server clocks, cache/bank counters, derived
            # byte counters — everything a callback or result() can read.
            for i, p in enumerate(parts):
                p.l2_busy_until = l2_busy[i]
                p.bus_busy_until = bus_busy[i]
                l2 = p.l2
                l2.hits = l2h_a[i]
                l2.misses = l2m_a[i]
                l2.evictions = l2e_a[i]
                l2._bip_counter = bipc_a[i]
            bi = 0
            for p in parts:
                for b in p.banks:
                    b.busy_until = bank_busy[bi]
                    b.accesses = bank_acc[bi]
                    b.row_hits = bank_rh[bi]
                    bi += 1
            for i, s in enumerate(sms):
                s._issue_free = isf_a[i]
                s._lsu_free = lsf_a[i]
                s._last_issued_age = lia_a[i]
                s._rr_pointer = rrp_a[i]
                l1 = s.l1
                l1.hits = l1h_a[i]
                l1.misses = l1m_a[i]
                l1.evictions = l1e_a[i]
            for st in stats_apps.values():
                st.dram_bytes = st.dram_accesses * line_size
                st.l2_to_l1_bytes = st.l2_hits * line_size

        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            chained_t = None
            pending = None
            smi = 0
            ready = None
            while self._unfinished:
                if chained_t is None:
                    if pending is not None:
                        entry = heappushpop(heap, pending)
                        pending = None
                    elif heap:
                        entry = heappop(heap)
                    else:
                        # Everything blocked on dispatch (e.g. after
                        # migration).
                        self._seq_n = seq_n
                        _flush_sched()
                        if self.distributor.dispatch(self.cycle):
                            for s in self.sms:
                                self._push_sm(s)
                            seq_n = self._seq_n
                            continue
                        raise RuntimeError(
                            "simulation deadlock: no events and nothing "
                            "to dispatch")
                    t = entry >> 44
                    smi = entry & 0xFFF
                    ready = readies[smi]
                    if not ready or ready[0][0] != t:
                        continue  # stale entry
                else:
                    t = chained_t
                    chained_t = None
                if t > max_cycles:
                    self.cycle = max_cycles
                    break

                if callbacks:
                    flushed = False
                    for cb in callbacks:
                        while cb.next_at <= t:
                            self.cycle = cb.next_at
                            if not flushed:
                                _flush()
                                flushed = True
                            cb.fn(self, self.cycle)
                            cb.next_at += cb.interval

                self.cycle = t
                # ---- inlined issue batch for sms[smi] at cycle t ----
                if ready and ready[0][0] <= t:
                    issued = 0
                    rr_pointer = 0 if gto else rrp_a[smi]
                    srv_issue_free = isf_a[smi]
                    srv_lsu_free = lsf_a[smi]
                    last_issued_age = lia_a[smi]
                    l1sets = l1sets_a[smi]
                    l1h_c = l1m_c = l1e_c = 0
                    while ready:
                        head = ready[0]
                        if head[0] > t or issued >= max_issue:
                            break
                        warp = head[3]
                        if warp.done:
                            heappop(ready)
                            sms[smi]._finish_warp(warp)
                            continue
                        program = warp.program
                        alu_n, n_tx = program[warp.pc]
                        app = warp.stats
                        if warp.mem_pending:
                            # Phase 2: the memory instruction executes.
                            app.warp_instructions += 1
                            app.thread_instructions += warp_size
                            app.mem_instructions += 1
                            app.mem_transactions += n_tx
                            issue_start = srv_issue_free
                            if t > issue_start:
                                issue_start = t
                            srv_issue_free = issue_free = \
                                issue_start + mem_issue_cost
                            ls = warp.lines
                            if ls is None:
                                recs = self.distributor._records(
                                    warp.addr_stream.next_lines(n_tx))
                            else:
                                li = warp.li
                                warp.li = end = li + n_tx
                                recs = ls[li:end]
                            # LSU starts are consecutive from the first:
                            # t_k = max(issue_start, lsu_free) + k.
                            first = issue_start \
                                if issue_start > srv_lsu_free \
                                else srv_lsu_free
                            srv_lsu_free = first + len(recs)
                            nk = int(first)
                            maxdone = 0
                            l1h_l = l2h_l = dram_l = drh_l = 0
                            for line, p, s2i, bgi, row in recs:
                                s = l1sets[line & l1_mask
                                           if l1_mask is not None
                                           else line % l1_nsets]
                                if line in s:
                                    s.move_to_end(line)
                                    l1h_l += 1
                                    d = nk + l1_latency
                                else:
                                    l1m_c += 1
                                    if len(s) >= l1_assoc:
                                        s.popitem(last=False)
                                        l1e_c += 1
                                    s[line] = None
                                    # -- memory system (access_line) --
                                    arrival = nk + icnt
                                    bz = l2_busy[p]
                                    l2_start = arrival if arrival > bz \
                                        else bz
                                    l2_busy[p] = l2_start + l2_service
                                    s2 = l2sets[s2i]
                                    if line in s2:
                                        s2.move_to_end(line)
                                        l2h_a[p] += 1
                                        l2h_l += 1
                                        d = l2_start + l2_lat_icnt
                                    else:
                                        l2m_a[p] += 1
                                        if len(s2) >= l2_assoc:
                                            s2.popitem(last=False)
                                            l2e_a[p] += 1
                                        s2[line] = None
                                        if l2_bip:
                                            bipc_a[p] = bc = bipc_a[p] + 1
                                            if bc % l2_eps:
                                                s2.move_to_end(line,
                                                               last=False)
                                        bb = bank_busy[bgi]
                                        start = l2_start \
                                            if l2_start > bb else bb
                                        rows = bank_rows[bgi]
                                        if row in rows:
                                            del rows[row]
                                            rows[row] = None
                                            occ = row_hit_t
                                            bank_rh[bgi] += 1
                                            drh_l += 1
                                        else:
                                            if len(rows) >= window:
                                                del rows[next(iter(rows))]
                                            rows[row] = None
                                            occ = row_miss_t
                                        bank_busy[bgi] = bank_done = \
                                            start + occ
                                        bank_acc[bgi] += 1
                                        dram_l += 1
                                        bz2 = bus_busy[p]
                                        bus_start = bank_done \
                                            if bank_done > bz2 else bz2
                                        bus_busy[p] = bus_start + bus_t
                                        d = bus_start + done_add
                                if d > maxdone:
                                    maxdone = d
                                nk += 1
                            if l1h_l:
                                l1h_c += l1h_l
                                app.l1_hits += l1h_l
                            if l2h_l:
                                app.l2_hits += l2h_l
                            if dram_l:
                                app.dram_accesses += dram_l
                                if drh_l:
                                    app.dram_row_hits += drh_l
                            warp.mem_pending = False
                            warp.pc = pc = warp.pc + 1
                            if pc >= warp.prog_end:
                                warp.done = True
                            # wake = int(max(issue_start, dones,
                            # issue_free)); floor is monotonic and
                            # issue_free > issue_start, so:
                            wake = int(issue_free)
                            if maxdone > wake:
                                wake = maxdone
                        else:
                            # Phase 1: the ALU run issues.
                            issue_start = srv_issue_free
                            if t > issue_start:
                                issue_start = t
                            srv_issue_free = issue_free = \
                                issue_start + alu_n / issue_width
                            app.warp_instructions += alu_n
                            app.thread_instructions += alu_n * warp_size
                            app.alu_instructions += alu_n
                            wake = issue_start + alu_n * warp.dep_gap
                            if n_tx:
                                warp.mem_pending = True
                            else:
                                warp.pc = pc = warp.pc + 1
                                if pc >= warp.prog_end:
                                    warp.done = True
                            if wake < issue_free:
                                wake = issue_free
                            wake = int(wake)
                        age = warp.age
                        last_issued_age = age
                        if wake <= t:
                            wake = t + 1
                        heapreplace(
                            ready,
                            (wake,
                             -1 if gto else (age - rr_pointer) % 1_000_000,
                             age, warp))
                        issued += 1
                    isf_a[smi] = srv_issue_free
                    lsf_a[smi] = srv_lsu_free
                    lia_a[smi] = last_issued_age
                    if not gto:
                        rrp_a[smi] = rr_pointer + issued
                    if l1h_c:
                        l1h_a[smi] += l1h_c
                    if l1m_c:
                        l1m_a[smi] += l1m_c
                    if l1e_c:
                        l1e_a[smi] += l1e_c
                # ---- end inlined batch ----
                events += 1
                if ready:
                    t_next = ready[0][0]
                    if not self._dispatch_needed and (
                            not heap or t_next < (heap[0] >> 44)):
                        chained_t = t_next
                        continue
                    seq_n += 1
                    pending = (t_next << 44) | (seq_n << 12) | smi
                if self._dispatch_needed:
                    self._dispatch_needed = False
                    if pending is not None:
                        heappush(heap, pending)
                        pending = None
                    self._seq_n = seq_n
                    _flush_sched()
                    if self.distributor.dispatch(self.cycle):
                        for s in sms:
                            self._push_sm(s)
                    seq_n = self._seq_n
            self._seq_n = seq_n
            if pending is not None:
                heappush(heap, pending)
            if chained_t is not None:
                self._push_sm(sms[smi])
        finally:
            self._seq_n = max(self._seq_n, seq_n)
            _flush()
            if gc_was_enabled:
                gc.enable()
        self.events_processed = events
        return self.result()

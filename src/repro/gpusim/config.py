"""GPU hardware configuration (Table 4.1 of the paper).

The default :func:`gtx480` configuration reproduces the paper's
experimental setup: a GTX-480-like device with 60 SMs, 48 warps and
8 blocks per SM, 16 kB L1 per SM, 768 kB shared L2, GTO warp scheduling
and FR-FCFS memory scheduling.  :func:`small_test_config` is a scaled-down
device used by the unit tests to keep runs fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class DramTiming:
    """Per-bank/bus service times in core cycles.

    ``row_hit`` / ``row_miss`` are the bank-occupancy times of a request
    that hits / misses the open row (the FR-FCFS approximation: row hits
    occupy the bank for far fewer cycles, so streams with row locality see
    proportionally more bandwidth — this is what makes class M favored by
    the default memory scheduler, cf. §3.2.2).  ``bus`` is the data-bus
    occupancy per line, which caps per-partition bandwidth.
    """

    row_hit: int = 3
    row_miss: int = 40
    bus: int = 3
    extra_latency: int = 160  # fixed DRAM access latency component
    #: FR-FCFS reordering capacity, modeled as a per-bank window of
    #: recently open rows: a request "row-hits" when its row is among the
    #: last `row_window` distinct rows the bank served.  Concurrent
    #: streams beyond the window thrash each other — the mechanism behind
    #: class M's destructive interference (§3.2.2).
    row_window: int = 34


@dataclass(frozen=True)
class GPUConfig:
    """Full device description consumed by :class:`repro.gpusim.gpu.GPU`."""

    name: str = "GTX480"
    num_sms: int = 60
    core_clock_mhz: int = 700
    max_warps_per_sm: int = 48
    max_blocks_per_sm: int = 8
    warp_size: int = 32
    issue_width: int = 1
    scheduler: str = "gto"  # "gto" | "lrr"

    # Caches ------------------------------------------------------------
    line_size: int = 128
    l1_size_kb: int = 16
    l1_assoc: int = 4
    l1_latency: int = 28
    l2_size_kb: int = 768
    l2_assoc: int = 8
    l2_latency: int = 100
    l2_service: int = 2  # slice bus occupancy per line (cycles)
    #: L2 insertion policy: "bip" (thrash-resistant bimodal insertion,
    #: the default) or "lru" (classic MRU insertion; ablation knob).
    l2_insertion: str = "bip"

    # Memory system -------------------------------------------------------
    num_partitions: int = 6
    banks_per_partition: int = 8
    row_size_bytes: int = 2048
    dram: DramTiming = field(default_factory=DramTiming)
    interconnect_latency: int = 10

    # Memory scheduler: "frfcfs" charges row_hit/row_miss; "fcfs" charges
    # the average of the two for every request (no row-hit prioritization).
    mem_scheduler: str = "frfcfs"

    def __post_init__(self):
        if self.scheduler not in ("gto", "lrr"):
            raise ValueError(f"unknown warp scheduler {self.scheduler!r}")
        if self.mem_scheduler not in ("frfcfs", "fcfs"):
            raise ValueError(f"unknown memory scheduler {self.mem_scheduler!r}")
        if self.l2_insertion not in ("bip", "lru"):
            raise ValueError(f"unknown L2 insertion {self.l2_insertion!r}")
        if self.num_sms < 1 or self.num_partitions < 1:
            raise ValueError("device must have at least one SM and partition")

    # -- derived quantities -------------------------------------------------
    @property
    def l1_lines(self) -> int:
        return self.l1_size_kb * 1024 // self.line_size

    @property
    def l1_sets(self) -> int:
        return self.l1_lines // self.l1_assoc

    @property
    def l2_slice_kb(self) -> int:
        return self.l2_size_kb // self.num_partitions

    @property
    def l2_slice_sets(self) -> int:
        return self.l2_slice_kb * 1024 // self.line_size // self.l2_assoc

    @property
    def lines_per_row(self) -> int:
        return self.row_size_bytes // self.line_size

    @property
    def peak_ipc(self) -> float:
        """Device peak thread-instructions per cycle."""
        return float(self.num_sms * self.issue_width * self.warp_size)

    @property
    def peak_dram_bandwidth_gbps(self) -> float:
        """Peak DRAM bandwidth implied by the bus service time."""
        lines_per_cycle = self.num_partitions / self.dram.bus
        return lines_per_cycle * self.line_size * self.core_clock_mhz * 1e6 / 1e9

    def bytes_per_cycle_to_gbps(self, bytes_per_cycle: float) -> float:
        """Convert an on-chip rate (bytes/core-cycle) to GB/s."""
        return bytes_per_cycle * self.core_clock_mhz * 1e6 / 1e9

    def with_sms(self, num_sms: int) -> "GPUConfig":
        """A copy with a different SM count (used by scalability sweeps)."""
        return replace(self, num_sms=num_sms)


def gtx480(**overrides) -> GPUConfig:
    """The paper's experimental setup (Table 4.1)."""
    return replace(GPUConfig(), **overrides) if overrides else GPUConfig()


def small_test_config(**overrides) -> GPUConfig:
    """A small fast device for unit tests (4 SMs, 2 partitions)."""
    base = GPUConfig(
        name="TestGPU",
        num_sms=4,
        max_warps_per_sm=16,
        max_blocks_per_sm=4,
        l1_size_kb=4,
        l2_size_kb=64,
        num_partitions=2,
        banks_per_partition=4,
    )
    return replace(base, **overrides) if overrides else base

"""Memory partitions: shared L2 slices plus DRAM banks with row buffers.

Timing model
------------
Each partition is a pair of fluid servers plus per-bank row-buffer state:

* The **L2 slice** is a set-associative cache with a slice bus that can
  move one line every ``l2_service`` cycles.  L2 hits never touch DRAM.
* Each **bank** tracks its open row and a ``busy_until`` time.  A request
  occupies its bank for ``row_hit`` cycles when it targets the open row and
  ``row_miss`` cycles otherwise (precharge + activate).  This approximates
  FR-FCFS: row-locality-rich streams occupy banks briefly and therefore
  achieve far higher service rates — the mechanism by which class M
  monopolizes memory controllers in the paper (§3.2.2).  With
  ``mem_scheduler="fcfs"`` every request is charged the hit/miss average,
  removing the streaming advantage (used by the ablation bench).
* The **data bus** of a partition moves one line per ``bus`` cycles,
  capping partition bandwidth; queueing delay under load is
  ``max(0, busy_until - arrival)`` on both servers, so co-running
  applications slow each other exactly through these queues.

The per-line entry point is :meth:`MemorySystem.access_line`; it is the
third-hottest call in the whole simulator (after the SM issue loop and the
L1 probe), so the partition/bank/row decode of
:meth:`~repro.gpusim.address.AddressMap.locate_line` and the body of
:meth:`MemoryPartition.access` are folded into it with every per-access
constant precomputed at construction time.  :meth:`MemoryPartition.access`
remains as the readable reference implementation (and public API); the two
must stay in sync.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .address import AddressMap
from .cache import SetAssocCache
from .config import GPUConfig
from .stats import StatsBoard


class DramBank:
    """One DRAM bank behind an FR-FCFS scheduler.

    The scheduler's request-queue reordering is modeled as a window of the
    last ``row_window`` distinct rows: a request whose row is inside the
    window is served as a row hit (FR-FCFS would have batched it with the
    other requests of that row), otherwise it pays the precharge+activate
    miss cost.  When more concurrent streams than the window can hold
    target one bank, they evict each other's rows and every stream
    degrades — which is exactly how memory-intensive applications destroy
    their co-runners in the paper.
    """

    __slots__ = ("rows", "window", "busy_until", "accesses", "row_hits")

    def __init__(self, window: int = 16):
        self.rows: Dict[int, None] = {}
        self.window = max(1, window)
        self.busy_until: int = 0
        self.accesses = 0
        self.row_hits = 0

    def service(self, row: int, arrival: int, t_hit: int, t_miss: int,
                fcfs_time: Optional[int]) -> Tuple[int, bool]:
        """Serve a request for `row` arriving at `arrival`.

        Returns ``(finish_time, was_row_hit)``.  ``fcfs_time`` overrides
        the hit/miss split when the FCFS ablation scheduler is active.
        """
        start = max(arrival, self.busy_until)
        rows = self.rows
        hit = row in rows
        if hit:
            del rows[row]  # refresh recency
        elif len(rows) >= self.window:
            rows.pop(next(iter(rows)))
        rows[row] = None
        if fcfs_time is not None:
            occupancy = fcfs_time
        else:
            occupancy = t_hit if hit else t_miss
        self.busy_until = start + occupancy
        self.accesses += 1
        if hit:
            self.row_hits += 1
        return self.busy_until, hit

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class MemoryPartition:
    """An L2 slice plus its DRAM channel (banks + data bus)."""

    __slots__ = ("index", "config", "stats", "l2", "banks",
                 "l2_busy_until", "bus_busy_until", "_fcfs_time",
                 "_l2_service", "_l2_latency", "_line_size",
                 "_row_hit", "_row_miss", "_bus", "_extra_latency")

    def __init__(self, index: int, config: GPUConfig, stats: StatsBoard):
        self.index = index
        self.config = config
        self.stats = stats
        self.l2 = SetAssocCache(config.l2_slice_sets, config.l2_assoc,
                                insertion=config.l2_insertion)
        self.banks: List[DramBank] = [
            DramBank(config.dram.row_window)
            for _ in range(config.banks_per_partition)]
        self.l2_busy_until = 0
        self.bus_busy_until = 0
        self._fcfs_time: Optional[int] = None
        if config.mem_scheduler == "fcfs":
            # No row-hit prioritization: everyone pays the blended cost.
            self._fcfs_time = (config.dram.row_hit + config.dram.row_miss) // 2
        # Hot-path copies of the config fields charged on every access.
        self._l2_service = config.l2_service
        self._l2_latency = config.l2_latency
        self._line_size = config.line_size
        self._row_hit = config.dram.row_hit
        self._row_miss = config.dram.row_miss
        self._bus = config.dram.bus
        self._extra_latency = config.dram.extra_latency

    def access(self, line: int, bank: int, row: int, arrival: int,
               app_id: int) -> int:
        """Serve one line request; returns the completion cycle.

        The L2 slice is probed first.  A hit is served across the slice
        bus; a miss goes to the bank and data bus and fills the L2.

        This is the reference implementation; the device hot path is the
        inlined copy in :meth:`MemorySystem.access_line`.
        """
        app = self.stats[app_id]

        l2_start = max(arrival, self.l2_busy_until)
        self.l2_busy_until = l2_start + self._l2_service
        if self.l2.access(line):
            app.l2_hits += 1
            app.l2_to_l1_bytes += self._line_size
            return l2_start + self._l2_latency

        # L2 miss → DRAM.  (The line was allocated by the L2 access above,
        # modeling fill-on-miss.)
        bank_done, row_hit = self.banks[bank].service(
            row, l2_start, self._row_hit, self._row_miss,
            self._fcfs_time)
        bus_start = max(bank_done, self.bus_busy_until)
        self.bus_busy_until = bus_start + self._bus
        done = bus_start + self._bus + self._extra_latency

        app.dram_accesses += 1
        app.dram_bytes += self._line_size
        if row_hit:
            app.dram_row_hits += 1
        return done

    @property
    def l2_hit_rate(self) -> float:
        return self.l2.hit_rate

    def row_hit_rate(self) -> float:
        total = sum(b.accesses for b in self.banks)
        hits = sum(b.row_hits for b in self.banks)
        return hits / total if total else 0.0


class MemorySystem:
    """All partitions behind the interconnect."""

    __slots__ = ("config", "stats", "amap", "partitions",
                 "_num_partitions", "_banks", "_lines_per_row",
                 "_bank_row_span", "_icnt", "_l2_service", "_l2_latency",
                 "_line_size", "_row_hit", "_row_miss", "_bus",
                 "_extra_latency", "_fcfs_time", "_l2_mask", "_l2_nsets",
                 "_l2_assoc", "_l2_bip", "_l2_eps", "_parts",
                 "access_line")

    def __init__(self, config: GPUConfig, stats: StatsBoard):
        self.config = config
        self.stats = stats
        self.amap = AddressMap(config)
        self.partitions = [MemoryPartition(i, config, stats)
                           for i in range(config.num_partitions)]
        # Address-decode and latency constants of the hot path
        # (cf. AddressMap.locate_line: the two nested floor divisions
        # compose into one division by banks * lines_per_row).  Every
        # partition shares one config, so the timing constants and the
        # L2 slice geometry are hoisted here once.
        self._num_partitions = config.num_partitions
        self._banks = config.banks_per_partition
        self._lines_per_row = config.lines_per_row
        self._bank_row_span = self._banks * self._lines_per_row
        self._icnt = config.interconnect_latency
        self._l2_service = config.l2_service
        self._l2_latency = config.l2_latency
        self._line_size = config.line_size
        self._row_hit = config.dram.row_hit
        self._row_miss = config.dram.row_miss
        self._bus = config.dram.bus
        self._extra_latency = config.dram.extra_latency
        self._fcfs_time = self.partitions[0]._fcfs_time
        l2 = self.partitions[0].l2
        self._l2_mask = l2._set_mask
        self._l2_nsets = l2.num_sets
        self._l2_assoc = l2.assoc
        self._l2_bip = l2._bip
        self._l2_eps = l2.bip_epsilon
        #: (partition, its L2 cache, its L2 set list, its bank list) per
        #: partition — one indexed unpack replaces four attribute loads.
        self._parts = [(p, p.l2, p.l2.sets, p.banks)
                       for p in self.partitions]
        #: The hot entry point is compiled per device as a closure so
        #: every constant above is a free variable instead of a
        #: ``self._x`` attribute load.
        self.access_line = self._build_access_line()

    def _build_access_line(self):
        """Build the per-device `access_line` closure (hot path).

        The returned function routes one line request through
        interconnect + partition and returns the cycle at which data is
        back at the SM.  `app` may carry the caller's cached
        :class:`AppStats` to skip the per-access board lookup (the SM
        issue loop always passes it).

        The body mirrors AddressMap.locate_line + MemoryPartition.access
        + SetAssocCache.access + DramBank.service; keep them in sync.
        """
        parts = tuple(self._parts)
        num_partitions = self._num_partitions
        banks_per = self._banks
        bank_row_span = self._bank_row_span
        icnt = self._icnt
        l2_service = self._l2_service
        l2_latency = self._l2_latency
        line_size = self._line_size
        row_hit_t = self._row_hit
        row_miss_t = self._row_miss
        bus = self._bus
        extra_latency = self._extra_latency
        fcfs_time = self._fcfs_time
        l2_mask = self._l2_mask
        l2_nsets = self._l2_nsets
        l2_assoc = self._l2_assoc
        l2_bip = self._l2_bip
        l2_eps = self._l2_eps
        apps = self.stats.apps  # dict identity is stable

        def access_line(line: int, now: int, app_id: int, app=None) -> int:
            part, l2, l2_sets, banks = parts[line % num_partitions]
            local = line // num_partitions
            arrival = now + icnt
            if app is None:
                app = apps[app_id]

            l2_start = part.l2_busy_until
            if arrival > l2_start:
                l2_start = arrival
            part.l2_busy_until = l2_start + l2_service
            # Open-coded SetAssocCache.access (incl. BIP) for the L2.
            s = l2_sets[line & l2_mask if l2_mask is not None
                        else line % l2_nsets]
            if line in s:
                s.move_to_end(line)
                l2.hits += 1
                app.l2_hits += 1
                app.l2_to_l1_bytes += line_size
                return l2_start + l2_latency + icnt
            l2.misses += 1
            if len(s) >= l2_assoc:
                s.popitem(last=False)
                l2.evictions += 1
            s[line] = None
            if l2_bip:
                l2._bip_counter = bip_count = l2._bip_counter + 1
                if bip_count % l2_eps:
                    s.move_to_end(line, last=False)  # insert at LRU

            # Open-coded DramBank.service.
            bank = banks[local % banks_per]
            row = local // bank_row_span
            start = bank.busy_until
            if l2_start > start:
                start = l2_start
            rows = bank.rows
            row_hit = row in rows
            if row_hit:
                del rows[row]  # refresh recency
            elif len(rows) >= bank.window:
                rows.pop(next(iter(rows)))
            rows[row] = None
            if fcfs_time is not None:
                occupancy = fcfs_time
            else:
                occupancy = row_hit_t if row_hit else row_miss_t
            bank.busy_until = bank_done = start + occupancy
            bank.accesses += 1
            if row_hit:
                bank.row_hits += 1
            bus_start = part.bus_busy_until
            if bank_done > bus_start:
                bus_start = bank_done
            part.bus_busy_until = bus_start + bus

            app.dram_accesses += 1
            app.dram_bytes += line_size
            if row_hit:
                app.dram_row_hits += 1
            return bus_start + bus + extra_latency + icnt

        return access_line

    def l2_hit_rate(self) -> float:
        hits = sum(p.l2.hits for p in self.partitions)
        total = sum(p.l2.accesses for p in self.partitions)
        return hits / total if total else 0.0

    def row_hit_rate(self) -> float:
        total = sum(b.accesses for p in self.partitions for b in p.banks)
        hits = sum(b.row_hits for p in self.partitions for b in p.banks)
        return hits / total if total else 0.0

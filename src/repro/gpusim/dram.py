"""Memory partitions: shared L2 slices plus DRAM banks with row buffers.

Timing model
------------
Each partition is a pair of fluid servers plus per-bank row-buffer state:

* The **L2 slice** is a set-associative cache with a slice bus that can
  move one line every ``l2_service`` cycles.  L2 hits never touch DRAM.
* Each **bank** tracks its open row and a ``busy_until`` time.  A request
  occupies its bank for ``row_hit`` cycles when it targets the open row and
  ``row_miss`` cycles otherwise (precharge + activate).  This approximates
  FR-FCFS: row-locality-rich streams occupy banks briefly and therefore
  achieve far higher service rates — the mechanism by which class M
  monopolizes memory controllers in the paper (§3.2.2).  With
  ``mem_scheduler="fcfs"`` every request is charged the hit/miss average,
  removing the streaming advantage (used by the ablation bench).
* The **data bus** of a partition moves one line per ``bus`` cycles,
  capping partition bandwidth; queueing delay under load is
  ``max(0, busy_until - arrival)`` on both servers, so co-running
  applications slow each other exactly through these queues.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .address import AddressMap
from .cache import SetAssocCache
from .config import GPUConfig
from .stats import StatsBoard


class DramBank:
    """One DRAM bank behind an FR-FCFS scheduler.

    The scheduler's request-queue reordering is modeled as a window of the
    last ``row_window`` distinct rows: a request whose row is inside the
    window is served as a row hit (FR-FCFS would have batched it with the
    other requests of that row), otherwise it pays the precharge+activate
    miss cost.  When more concurrent streams than the window can hold
    target one bank, they evict each other's rows and every stream
    degrades — which is exactly how memory-intensive applications destroy
    their co-runners in the paper.
    """

    __slots__ = ("rows", "window", "busy_until", "accesses", "row_hits")

    def __init__(self, window: int = 16):
        self.rows: Dict[int, None] = {}
        self.window = max(1, window)
        self.busy_until: int = 0
        self.accesses = 0
        self.row_hits = 0

    def service(self, row: int, arrival: int, t_hit: int, t_miss: int,
                fcfs_time: Optional[int]) -> tuple:
        """Serve a request for `row` arriving at `arrival`.

        Returns ``(finish_time, was_row_hit)``.  ``fcfs_time`` overrides
        the hit/miss split when the FCFS ablation scheduler is active.
        """
        start = max(arrival, self.busy_until)
        rows = self.rows
        hit = row in rows
        if hit:
            del rows[row]  # refresh recency
        elif len(rows) >= self.window:
            rows.pop(next(iter(rows)))
        rows[row] = None
        if fcfs_time is not None:
            occupancy = fcfs_time
        else:
            occupancy = t_hit if hit else t_miss
        self.busy_until = start + occupancy
        self.accesses += 1
        if hit:
            self.row_hits += 1
        return self.busy_until, hit

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class MemoryPartition:
    """An L2 slice plus its DRAM channel (banks + data bus)."""

    def __init__(self, index: int, config: GPUConfig, stats: StatsBoard):
        self.index = index
        self.config = config
        self.stats = stats
        self.l2 = SetAssocCache(config.l2_slice_sets, config.l2_assoc,
                                insertion=config.l2_insertion)
        self.banks: List[DramBank] = [
            DramBank(config.dram.row_window)
            for _ in range(config.banks_per_partition)]
        self.l2_busy_until = 0
        self.bus_busy_until = 0
        self._fcfs_time: Optional[int] = None
        if config.mem_scheduler == "fcfs":
            # No row-hit prioritization: everyone pays the blended cost.
            self._fcfs_time = (config.dram.row_hit + config.dram.row_miss) // 2

    def access(self, line: int, bank: int, row: int, arrival: int,
               app_id: int) -> int:
        """Serve one line request; returns the completion cycle.

        The L2 slice is probed first.  A hit is served across the slice
        bus; a miss goes to the bank and data bus and fills the L2.
        """
        cfg = self.config
        app = self.stats[app_id]

        l2_start = max(arrival, self.l2_busy_until)
        self.l2_busy_until = l2_start + cfg.l2_service
        if self.l2.access(line):
            app.l2_hits += 1
            app.l2_to_l1_bytes += cfg.line_size
            return l2_start + cfg.l2_latency

        # L2 miss → DRAM.  (The line was allocated by the L2 access above,
        # modeling fill-on-miss.)
        bank_done, row_hit = self.banks[bank].service(
            row, l2_start, cfg.dram.row_hit, cfg.dram.row_miss,
            self._fcfs_time)
        bus_start = max(bank_done, self.bus_busy_until)
        self.bus_busy_until = bus_start + cfg.dram.bus
        done = bus_start + cfg.dram.bus + cfg.dram.extra_latency

        app.dram_accesses += 1
        app.dram_bytes += cfg.line_size
        if row_hit:
            app.dram_row_hits += 1
        return done

    @property
    def l2_hit_rate(self) -> float:
        return self.l2.hit_rate

    def row_hit_rate(self) -> float:
        total = sum(b.accesses for b in self.banks)
        hits = sum(b.row_hits for b in self.banks)
        return hits / total if total else 0.0


class MemorySystem:
    """All partitions behind the interconnect."""

    def __init__(self, config: GPUConfig, stats: StatsBoard):
        self.config = config
        self.amap = AddressMap(config)
        self.partitions = [MemoryPartition(i, config, stats)
                           for i in range(config.num_partitions)]

    def access_line(self, line: int, now: int, app_id: int) -> int:
        """Route one line request through interconnect + partition.

        Returns the cycle at which data is back at the SM.
        """
        loc = self.amap.locate_line(line)
        arrival = now + self.config.interconnect_latency
        done = self.partitions[loc.partition].access(
            line, loc.bank, loc.row, arrival, app_id)
        return done + self.config.interconnect_latency

    def l2_hit_rate(self) -> float:
        hits = sum(p.l2.hits for p in self.partitions)
        total = sum(p.l2.accesses for p in self.partitions)
        return hits / total if total else 0.0

    def row_hit_rate(self) -> float:
        total = sum(b.accesses for p in self.partitions for b in p.banks)
        hits = sum(b.row_hits for p in self.partitions for b in p.banks)
        return hits / total if total else 0.0

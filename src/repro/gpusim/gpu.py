"""Top-level GPU device: event loop, concurrent kernels, results.

The device advances through an event heap of SM wake-up times (plus
periodic controller callbacks, e.g. the SMRA interval).  Because the
memory system is a set of fluid servers, nothing needs to run on idle
cycles and simulation cost is proportional to instructions executed, not
cycles simulated.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .config import GPUConfig
from .dispatcher import WorkDistributor, even_partition
from .dram import MemorySystem
from .kernel import Application, BlockContext
from .sm import SM
from .stats import AppStats, StatsBoard


@dataclass
class DeviceResult:
    """Outcome of a simulation run."""

    config: GPUConfig
    cycles: int
    app_stats: Dict[int, AppStats]
    app_names: Dict[int, str] = field(default_factory=dict)

    @property
    def device_throughput(self) -> float:
        """Thread-instructions per cycle over the whole run (Eq. 1.1)."""
        total = sum(s.thread_instructions for s in self.app_stats.values())
        return total / max(1, self.cycles)

    @property
    def device_utilization(self) -> float:
        return self.device_throughput / self.config.peak_ipc

    def app_cycles(self, app_id: int) -> int:
        s = self.app_stats[app_id]
        return (s.finish_cycle if s.finish_cycle is not None else self.cycles)

    def by_name(self, name: str) -> AppStats:
        for app_id, app_name in self.app_names.items():
            if app_name == name:
                return self.app_stats[app_id]
        raise KeyError(name)


class Callback:
    """A periodic controller hook run every `interval` cycles."""

    __slots__ = ("interval", "fn", "next_at")

    def __init__(self, interval: int, fn: Callable[["GPU", int], None]):
        if interval < 1:
            raise ValueError("callback interval must be >= 1 cycle")
        self.interval = interval
        self.fn = fn
        self.next_at = interval


class GPU:
    """A simulated GPU executing one or more applications concurrently."""

    def __init__(self, config: GPUConfig):
        self.config = config
        self.stats = StatsBoard(config)
        self.memory = MemorySystem(config, self.stats)
        self.sms: List[SM] = [
            SM(i, config, self.memory, self.stats, self._block_done)
            for i in range(config.num_sms)]
        self.distributor = WorkDistributor(self)
        self.apps: Dict[int, Application] = {}
        self.cycle = 0
        self.reassign_on_finish = True

        self._heap: List = []
        self._seq = itertools.count()
        self._dispatch_needed = False
        self._next_app_id = 0

    # -- launch -------------------------------------------------------------
    def launch(self, apps: Sequence[Application],
               partitions: Optional[Sequence[Sequence[int]]] = None) -> None:
        """Launch applications, each owning a group of SMs.

        `partitions[i]` lists the SM indices of `apps[i]`; defaults to an
        even contiguous split (the paper's Even baseline allocation).
        """
        apps = list(apps)
        if not apps:
            raise ValueError("launch requires at least one application")
        if partitions is None:
            partitions = even_partition(self.config.num_sms, len(apps))
        if len(partitions) != len(apps):
            raise ValueError("one SM group per application required")
        seen: set = set()
        for group in partitions:
            for idx in group:
                if idx in seen:
                    raise ValueError(f"SM {idx} assigned twice")
                seen.add(idx)
        for app, group in zip(apps, partitions):
            if not group:
                raise ValueError(f"application {app.name} got no SMs")
            app.app_id = self._next_app_id
            self._next_app_id += 1
            app.blocks_dispatched = 0
            app.blocks_completed = 0
            self.apps[app.app_id] = app
            self.stats.register(app.app_id, app.name, start_cycle=self.cycle)
            self.distributor.assign(app, group)
        self._dispatch_needed = True

    # -- event plumbing -------------------------------------------------------
    def _push_sm(self, sm: SM) -> None:
        t = sm.next_event()
        if t is not None:
            heapq.heappush(self._heap, (t, next(self._seq), sm.index))

    def _block_done(self, sm: SM, block: BlockContext) -> None:
        app = self.apps[block.app_id]
        app.blocks_completed += 1
        self.stats[block.app_id].blocks_completed += 1
        self._dispatch_needed = True
        if app.finished:
            self.stats[app.app_id].finish_cycle = self.cycle
            if self.reassign_on_finish:
                self._redistribute_sms_of(app)

    def _redistribute_sms_of(self, done_app: Application) -> None:
        """Hand the finished application's SMs to the remaining apps."""
        survivors = [a for a in self.apps.values() if not a.finished]
        freed = [sm for sm in self.sms
                 if sm.owner == done_app.app_id or
                 (sm.draining and sm.pending_owner == done_app.app_id)]
        if not survivors:
            for sm in freed:
                sm.set_owner(None)
            return
        for i, sm in enumerate(freed):
            sm.set_owner(survivors[i % len(survivors)].app_id)

    def _all_finished(self) -> bool:
        return all(a.finished for a in self.apps.values())

    # -- main loop ------------------------------------------------------------
    def run(self, max_cycles: int = 50_000_000,
            callbacks: Sequence[Callback] = ()) -> DeviceResult:
        """Run until every launched application completes."""
        if not self.apps:
            raise RuntimeError("no applications launched")
        callbacks = list(callbacks)
        for cb in callbacks:
            cb.next_at = self.cycle + cb.interval

        if self._dispatch_needed:
            self.distributor.dispatch(self.cycle)
            self._dispatch_needed = False
            for sm in self.sms:
                self._push_sm(sm)

        while not self._all_finished():
            if not self._heap:
                # Everything blocked on dispatch (e.g. after migration).
                if self.distributor.dispatch(self.cycle):
                    for sm in self.sms:
                        self._push_sm(sm)
                    continue
                raise RuntimeError(
                    "simulation deadlock: no events and nothing to dispatch")
            t, _seq, sm_index = heapq.heappop(self._heap)
            sm = self.sms[sm_index]
            if sm.next_event() != t:
                continue  # stale entry
            if t > max_cycles:
                self.cycle = max_cycles
                break

            # Fire periodic callbacks scheduled before this event.
            for cb in callbacks:
                while cb.next_at <= t:
                    self.cycle = cb.next_at
                    cb.fn(self, self.cycle)
                    cb.next_at += cb.interval

            self.cycle = t
            sm.step(t)
            self._push_sm(sm)
            if self._dispatch_needed:
                self._dispatch_needed = False
                if self.distributor.dispatch(self.cycle):
                    for s in self.sms:
                        self._push_sm(s)
        return self.result()

    def result(self) -> DeviceResult:
        return DeviceResult(
            config=self.config,
            cycles=self.cycle,
            app_stats=dict(self.stats.apps),
            app_names={i: a.name for i, a in self.apps.items()})


def simulate(config: GPUConfig, apps: Sequence[Application],
             partitions: Optional[Sequence[Sequence[int]]] = None,
             callbacks: Sequence[Callback] = (),
             max_cycles: int = 50_000_000) -> DeviceResult:
    """Convenience one-shot simulation of `apps` on a fresh device."""
    gpu = GPU(config)
    gpu.launch(apps, partitions)
    return gpu.run(max_cycles=max_cycles, callbacks=callbacks)

"""Top-level GPU device: event loop, concurrent kernels, results.

The device advances through an event heap of SM wake-up times (plus
periodic controller callbacks, e.g. the SMRA interval).  Because the
memory system is a set of fluid servers, nothing needs to run on idle
cycles and simulation cost is proportional to instructions executed, not
cycles simulated.
"""

from __future__ import annotations

import gc
import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .config import GPUConfig
from .dispatcher import WorkDistributor, even_partition
from .dram import MemorySystem
from .kernel import Application, BlockContext
from .sm import SM, issue_batch
from .stats import AppStats, StatsBoard

#: Default simulation cutoff: far beyond any calibrated workload's
#: completion, it only triggers on runaway configurations.  Single
#: source of truth — the scheduler and runtime import it.
DEFAULT_MAX_CYCLES = 50_000_000


@dataclass
class DeviceResult:
    """Outcome of a simulation run."""

    config: GPUConfig
    cycles: int
    app_stats: Dict[int, AppStats]
    app_names: Dict[int, str] = field(default_factory=dict)
    #: Heap events the run processed — the denominator-free volume
    #: figure perf harnesses turn into events/second.
    events: int = 0

    @property
    def device_throughput(self) -> float:
        """Thread-instructions per cycle over the whole run (Eq. 1.1)."""
        total = sum(s.thread_instructions for s in self.app_stats.values())
        return total / max(1, self.cycles)

    @property
    def device_utilization(self) -> float:
        return self.device_throughput / self.config.peak_ipc

    def app_cycles(self, app_id: int) -> int:
        s = self.app_stats[app_id]
        return (s.finish_cycle if s.finish_cycle is not None else self.cycles)

    def by_name(self, name: str) -> AppStats:
        for app_id, app_name in self.app_names.items():
            if app_name == name:
                return self.app_stats[app_id]
        raise KeyError(name)


class Callback:
    """A periodic controller hook run every `interval` cycles."""

    __slots__ = ("interval", "fn", "next_at")

    def __init__(self, interval: int, fn: Callable[["GPU", int], None]):
        if interval < 1:
            raise ValueError("callback interval must be >= 1 cycle")
        self.interval = interval
        self.fn = fn
        self.next_at = interval


class GPU:
    """A simulated GPU executing one or more applications concurrently."""

    __slots__ = ("config", "stats", "memory", "sms", "distributor", "apps",
                 "cycle", "reassign_on_finish", "_heap", "_seq_n",
                 "_dispatch_needed", "_next_app_id", "_unfinished",
                 "_all_dispatched", "_dispatch_barred", "events_processed")

    def __init__(self, config: GPUConfig):
        self.config = config
        self.stats = StatsBoard(config)
        self.memory = MemorySystem(config, self.stats)
        self.sms: List[SM] = [
            SM(i, config, self.memory, self.stats, self._block_done)
            for i in range(config.num_sms)]
        self.distributor = WorkDistributor(self)
        self.apps: Dict[int, Application] = {}
        self.cycle = 0
        self.reassign_on_finish = True

        self._heap: List = []
        self._seq_n = 0  # heap-entry tiebreak counter (monotonic)
        self._dispatch_needed = False
        self._next_app_id = 0
        #: Live count of launched-but-unfinished applications, so the main
        #: loop never scans `apps` per event (see _all_finished).
        self._unfinished = 0
        #: True once every launched app has dispatched all its blocks —
        #: from then on block completions cannot enable new dispatch work
        #: (maintained by WorkDistributor.dispatch; see _block_done).
        self._all_dispatched = False
        #: True while every pending block is behind a kernel-launch
        #: barrier (all per-app budgets zero): only a completion that
        #: crosses a launch boundary can open new dispatch work then.
        self._dispatch_barred = False
        #: Events processed by `run` (heap pops that fired an SM step);
        #: the perf harness reports events/second from this.
        self.events_processed = 0

    # -- launch -------------------------------------------------------------
    def launch(self, apps: Sequence[Application],
               partitions: Optional[Sequence[Sequence[int]]] = None) -> None:
        """Launch applications, each owning a group of SMs.

        `partitions[i]` lists the SM indices of `apps[i]`; defaults to an
        even contiguous split (the paper's Even baseline allocation).
        """
        apps = list(apps)
        if not apps:
            raise ValueError("launch requires at least one application")
        if partitions is None:
            partitions = even_partition(self.config.num_sms, len(apps))
        if len(partitions) != len(apps):
            raise ValueError("one SM group per application required")
        seen: set = set()
        for group in partitions:
            for idx in group:
                if idx in seen:
                    raise ValueError(f"SM {idx} assigned twice")
                seen.add(idx)
        for app, group in zip(apps, partitions):
            if not group:
                raise ValueError(f"application {app.name} got no SMs")
            app.app_id = self._next_app_id
            self._next_app_id += 1
            app.blocks_dispatched = 0
            app.blocks_completed = 0
            self.apps[app.app_id] = app
            self._unfinished += 1
            self.stats.register(app.app_id, app.name, start_cycle=self.cycle)
            self.distributor.assign(app, group)
        self._dispatch_needed = True
        self._all_dispatched = False
        self._dispatch_barred = False

    # -- event plumbing -------------------------------------------------------
    def _push_sm(self, sm: SM) -> None:
        t = sm.next_event()
        if t is not None:
            self._seq_n = n = self._seq_n + 1
            heapq.heappush(self._heap, (t, n, sm.index))

    def _block_done(self, sm: SM, block: BlockContext) -> None:
        app = self.apps[block.app_id]
        app.blocks_completed += 1
        self.stats[block.app_id].blocks_completed += 1
        if not self._all_dispatched and (
                not self._dispatch_barred or
                app.blocks_completed % app.spec.blocks == 0):
            # Skip provably no-op dispatch sweeps: with everything
            # dispatched there is nothing left, and while every pending
            # block waits behind a launch barrier only a completion that
            # crosses a launch boundary (blocks_completed a multiple of
            # the grid size, advancing current_launch) can change any
            # dispatch budget.
            self._dispatch_needed = True
        if app.finished:
            self._unfinished -= 1
            self.stats[app.app_id].finish_cycle = self.cycle
            if self.reassign_on_finish:
                self._redistribute_sms_of(app)

    def _redistribute_sms_of(self, done_app: Application) -> None:
        """Hand the finished application's SMs to the remaining apps."""
        survivors = [a for a in self.apps.values() if not a.finished]
        freed = [sm for sm in self.sms
                 if sm.owner == done_app.app_id or
                 (sm.draining and sm.pending_owner == done_app.app_id)]
        if not survivors:
            for sm in freed:
                sm.set_owner(None)
            return
        for i, sm in enumerate(freed):
            sm.set_owner(survivors[i % len(survivors)].app_id)

    def _all_finished(self) -> bool:
        return self._unfinished == 0

    # -- main loop ------------------------------------------------------------
    def run(self, max_cycles: int = DEFAULT_MAX_CYCLES,
            callbacks: Sequence[Callback] = ()) -> DeviceResult:
        """Run until every launched application completes.

        Per-event work is kept to a handful of local operations: the
        finished check is a live counter maintained by `_block_done`, and
        `_push_sm`/`next_event` are inlined as direct peeks at the SM's
        ready heap.

        Note the per-event re-push of every SM after a dispatch is
        semantically load-bearing and must NOT be deduplicated: an SM with
        same-cycle work left over from the issue batch cap fires once per
        live heap entry, so dropping "duplicate" entries would reorder
        same-cycle steps across SMs and change results (the memory fluid
        servers are call-ordered).
        """
        if not self.apps:
            raise RuntimeError("no applications launched")
        callbacks = list(callbacks)
        for cb in callbacks:
            cb.next_at = self.cycle + cb.interval

        if self._dispatch_needed:
            self.distributor.dispatch(self.cycle)
            self._dispatch_needed = False
            for sm in self.sms:
                self._push_sm(sm)

        heap = self._heap
        sms = self.sms
        seq_n = self._seq_n  # local mirror; flushed around dispatch paths
        heappop, heappush = heapq.heappop, heapq.heappush
        heappushpop = heapq.heappushpop
        events = self.events_processed
        # Device-wide issue-loop constants, hoisted once per run.  Every
        # SM shares this GPU's config, so SM 0's precomputed fields are
        # the single source of truth — see sm.issue_batch.
        sm0 = sms[0]
        issue_width = sm0._issue_width
        mem_issue_cost = sm0._mem_issue_cost
        max_issue = sm0._max_issue
        warp_size = sm0._warp_size
        l1_latency = sm0._l1_latency
        gto = sm0._gto
        access = self.memory.access_line
        batch = issue_batch
        readies = [sm._ready for sm in sms]  # list identity is stable
        # The loop allocates heavily (heap entries, line lists) but never
        # drops cyclic garbage, so collector sweeps are pure overhead.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            chained_t = None   # time of a direct-chained event (see below)
            pending = None     # entry to push lazily via heappushpop
            sm = sm_ready = None
            while self._unfinished:
                if chained_t is None:
                    if pending is not None:
                        # push-then-pop in one sift; when `pending` is
                        # itself the minimum it comes straight back with
                        # no heap movement at all.
                        entry = heappushpop(heap, pending)
                        pending = None
                    elif heap:
                        entry = heappop(heap)
                    else:
                        # Everything blocked on dispatch (e.g. after
                        # migration).
                        self._seq_n = seq_n
                        if self.distributor.dispatch(self.cycle):
                            for s in self.sms:
                                self._push_sm(s)
                            seq_n = self._seq_n
                            continue
                        raise RuntimeError(
                            "simulation deadlock: no events and nothing "
                            "to dispatch")
                    t, _seq, sm_index = entry
                    sm_ready = readies[sm_index]
                    if not sm_ready or sm_ready[0][0] != t:
                        continue  # stale entry
                    sm = sms[sm_index]
                else:
                    # Chained: `sm`/`sm_ready` carry over from last event.
                    t = chained_t
                    chained_t = None
                if t > max_cycles:
                    self.cycle = max_cycles
                    break

                # Fire periodic callbacks scheduled before this event.
                if callbacks:
                    for cb in callbacks:
                        while cb.next_at <= t:
                            self.cycle = cb.next_at
                            cb.fn(self, self.cycle)
                            cb.next_at += cb.interval

                self.cycle = t
                batch(sm, t, issue_width, mem_issue_cost, max_issue,
                      warp_size, l1_latency, gto, access)
                events += 1
                if sm_ready:
                    t_next = sm_ready[0][0]
                    # Direct chaining: when this SM's next event strictly
                    # precedes everything in the device heap and no
                    # dispatch is pending, the heap round-trip would pop
                    # our own entry right back — skip it.  Strict `<`
                    # keeps the pop order identical: at equal times the
                    # heap entry (older seq) fires first.
                    if not self._dispatch_needed and (
                            not heap or t_next < heap[0][0]):
                        chained_t = t_next
                        continue
                    seq_n += 1
                    pending = (t_next, seq_n, sm.index)
                if self._dispatch_needed:
                    self._dispatch_needed = False
                    if pending is not None:
                        heappush(heap, pending)
                        pending = None
                    self._seq_n = seq_n
                    if self.distributor.dispatch(self.cycle):
                        for s in sms:
                            self._push_sm(s)
                    seq_n = self._seq_n
            self._seq_n = seq_n
            if pending is not None:
                # Leave the heap complete for a later resumed run.
                heappush(heap, pending)
            if chained_t is not None:
                self._push_sm(sm)
        finally:
            self._seq_n = max(self._seq_n, seq_n)
            if gc_was_enabled:
                gc.enable()
        self.events_processed = events
        return self.result()

    def result(self) -> DeviceResult:
        return DeviceResult(
            config=self.config,
            cycles=self.cycle,
            app_stats=dict(self.stats.apps),
            app_names={i: a.name for i, a in self.apps.items()},
            events=self.events_processed)


def simulate(config: GPUConfig, apps: Sequence[Application],
             partitions: Optional[Sequence[Sequence[int]]] = None,
             callbacks: Sequence[Callback] = (),
             max_cycles: int = DEFAULT_MAX_CYCLES,
             engine: Optional[type] = None) -> DeviceResult:
    """Convenience one-shot simulation of `apps` on a fresh device.

    `engine` optionally substitutes the engine *class* (an
    ``engine-backends`` registry entry resolved by the caller — this
    package stays registry-free); the default is the event engine.
    """
    gpu = (engine or GPU)(config)
    gpu.launch(apps, partitions)
    return gpu.run(max_cycles=max_cycles, callbacks=callbacks)

"""Work distributor: assigns SMs to applications and dispatches blocks.

This models the modified stream-queue / work-distributor of Fig. 2.2: each
SM has exactly one owner application at a time; thread blocks of an
application are only dispatched to SMs it owns.  SM reallocation (SMRA)
goes through :meth:`WorkDistributor.set_sm_owner`, which follows the
paper's method 3 — the SM finishes its resident blocks, then flips owner.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .kernel import (AddressStream, Application, BlockContext, WarpContext)


def even_partition(num_sms: int, n_apps: int) -> List[List[int]]:
    """Split SM indices into `n_apps` contiguous near-equal groups."""
    if n_apps < 1:
        raise ValueError("need at least one application")
    base, extra = divmod(num_sms, n_apps)
    groups, start = [], 0
    for i in range(n_apps):
        size = base + (1 if i < extra else 0)
        groups.append(list(range(start, start + size)))
        start += size
    return groups


def proportional_partition(num_sms: int, weights: Sequence[float]
                           ) -> List[List[int]]:
    """Split SMs proportionally to `weights` (each app gets >= 1 SM)."""
    n = len(weights)
    if n < 1:
        raise ValueError("need at least one weight")
    if num_sms < n:
        raise ValueError("fewer SMs than applications")
    total = sum(weights)
    if total <= 0:
        return even_partition(num_sms, n)
    raw = [max(1.0, w / total * num_sms) for w in weights]
    counts = [int(r) for r in raw]
    # Distribute the remainder to the largest fractional parts.
    remainder = num_sms - sum(counts)
    order = sorted(range(n), key=lambda i: raw[i] - counts[i], reverse=True)
    for i in range(abs(remainder)):
        counts[order[i % n]] += 1 if remainder > 0 else -1
    counts = [max(1, c) for c in counts]
    while sum(counts) > num_sms:
        counts[counts.index(max(counts))] -= 1
    groups, start = [], 0
    for c in counts:
        groups.append(list(range(start, start + c)))
        start += c
    return groups


class WorkDistributor:
    """Owns the SM→application map and dispatches thread blocks."""

    def __init__(self, gpu):
        self._gpu = gpu
        self._programs: Dict[int, list] = {}  # app_id -> shared program

    # -- SM ownership -------------------------------------------------------
    def assign(self, app: Application, sm_indices: Sequence[int]) -> None:
        for idx in sm_indices:
            self._gpu.sms[idx].set_owner(app.app_id)

    def set_sm_owner(self, sm_index: int, app_id: Optional[int]) -> None:
        self._gpu.sms[sm_index].set_owner(app_id)

    def sms_of(self, app_id: int) -> List[int]:
        """SMs currently owned by (or draining toward) the application."""
        out = []
        for sm in self._gpu.sms:
            effective = sm.pending_owner if sm.draining else sm.owner
            if effective == app_id:
                out.append(sm.index)
        return out

    # -- block dispatch -----------------------------------------------------
    def _program_of(self, app: Application) -> list:
        program = self._programs.get(app.app_id)
        if program is None:
            program = app.spec.build_program()
            self._programs[app.app_id] = program
        return program

    def _make_block(self, app: Application, now: int):
        cfg = self._gpu.config
        spec = app.spec
        block_id = app.blocks_dispatched
        block = BlockContext(app.app_id, block_id, spec.warps_per_block)
        program = self._program_of(app)
        warps = []
        row_stride = cfg.num_partitions * cfg.banks_per_partition
        for w in range(spec.warps_per_block):
            warp_index = block_id * spec.warps_per_block + w
            stream = AddressStream(spec, app.base_line, warp_index,
                                   cfg.line_size, cfg.lines_per_row,
                                   row_stride=row_stride)
            warps.append(WarpContext(app.app_id, block, program, stream,
                                     age=0, dep_gap=spec.dep_gap))
        app.blocks_dispatched += 1
        return block, warps

    def dispatch(self, now: int) -> int:
        """Fill free SM capacity with pending blocks.  Returns #dispatched.

        Blocks are handed out round-robin over the owning application's
        SMs so occupancy stays balanced (one block per SM per sweep).
        """
        dispatched = 0
        progress = True
        while progress:
            progress = False
            for sm in self._gpu.sms:
                if sm.owner is None or sm.draining:
                    continue
                app = self._gpu.apps.get(sm.owner)
                if app is None or not app.dispatchable:
                    continue
                if not sm.can_host(app.spec.warps_per_block):
                    continue
                cap = app.spec.max_blocks_per_sm
                if cap is not None and sum(
                        1 for b in sm.blocks if b.app_id == app.app_id) >= cap:
                    continue
                block, warps = self._make_block(app, now)
                sm.admit_block(block, warps, now)
                dispatched += 1
                progress = True
        return dispatched

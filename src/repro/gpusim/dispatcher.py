"""Work distributor: assigns SMs to applications and dispatches blocks.

This models the modified stream-queue / work-distributor of Fig. 2.2: each
SM has exactly one owner application at a time; thread blocks of an
application are only dispatched to SMs it owns.  SM reallocation (SMRA)
goes through :meth:`WorkDistributor.set_sm_owner`, which follows the
paper's method 3 — the SM finishes its resident blocks, then flips owner.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .kernel import (AddressStream, Application, BlockContext, WarpContext)


def even_partition(num_sms: int, n_apps: int) -> List[List[int]]:
    """Split SM indices into `n_apps` contiguous near-equal groups."""
    if n_apps < 1:
        raise ValueError("need at least one application")
    base, extra = divmod(num_sms, n_apps)
    groups, start = [], 0
    for i in range(n_apps):
        size = base + (1 if i < extra else 0)
        groups.append(list(range(start, start + size)))
        start += size
    return groups


def proportional_partition(num_sms: int, weights: Sequence[float]
                           ) -> List[List[int]]:
    """Split SMs proportionally to `weights` (each app gets >= 1 SM)."""
    n = len(weights)
    if n < 1:
        raise ValueError("need at least one weight")
    if num_sms < n:
        raise ValueError("fewer SMs than applications")
    total = sum(weights)
    if total <= 0:
        return even_partition(num_sms, n)
    raw = [max(1.0, w / total * num_sms) for w in weights]
    counts = [int(r) for r in raw]
    # Distribute the remainder to the largest fractional parts.
    remainder = num_sms - sum(counts)
    order = sorted(range(n), key=lambda i: raw[i] - counts[i], reverse=True)
    for i in range(abs(remainder)):
        counts[order[i % n]] += 1 if remainder > 0 else -1
    counts = [max(1, c) for c in counts]
    while sum(counts) > num_sms:
        counts[counts.index(max(counts))] -= 1
    groups, start = [], 0
    for c in counts:
        groups.append(list(range(start, start + c)))
        start += c
    return groups


class WorkDistributor:
    """Owns the SM→application map and dispatches thread blocks."""

    def __init__(self, gpu):
        self._gpu = gpu
        self._programs: Dict[int, list] = {}  # app_id -> shared program
        # Block-build constants (read once per warp otherwise).
        cfg = gpu.config
        self._line_size = cfg.line_size
        self._lines_per_row = cfg.lines_per_row
        self._row_stride = cfg.num_partitions * cfg.banks_per_partition

    # -- SM ownership -------------------------------------------------------
    def assign(self, app: Application, sm_indices: Sequence[int]) -> None:
        for idx in sm_indices:
            self._gpu.sms[idx].set_owner(app.app_id)

    def set_sm_owner(self, sm_index: int, app_id: Optional[int]) -> None:
        self._gpu.sms[sm_index].set_owner(app_id)

    def sms_of(self, app_id: int) -> List[int]:
        """SMs currently owned by (or draining toward) the application."""
        out = []
        for sm in self._gpu.sms:
            effective = sm.pending_owner if sm.draining else sm.owner
            if effective == app_id:
                out.append(sm.index)
        return out

    # -- block dispatch -----------------------------------------------------
    def _program_of(self, app: Application) -> list:
        program = self._programs.get(app.app_id)
        if program is None:
            program = app.spec.build_program()
            self._programs[app.app_id] = program
        return program

    def _make_block(self, app: Application, now: int):
        spec = app.spec
        block_id = app.blocks_dispatched
        block = BlockContext(app.app_id, block_id, spec.warps_per_block)
        program = self._program_of(app)
        warps = []
        app_stats = self._gpu.stats.apps.get(app.app_id)
        has_mem = any(n_tx for _alu, n_tx in program)
        base_line = app.base_line
        for w in range(spec.warps_per_block):
            warp_index = block_id * spec.warps_per_block + w
            stream = AddressStream(spec, base_line, warp_index,
                                   self._line_size, self._lines_per_row,
                                   row_stride=self._row_stride)
            warp = WarpContext(app.app_id, block, program, stream,
                               age=0, dep_gap=spec.dep_gap,
                               stats=app_stats)
            if has_mem:
                # Pregenerate the warp's whole line stream (identical RNG
                # draws, consumed per event by index — see WarpContext).
                warp.lines = stream.pregenerate(program)
            warps.append(warp)
        app.blocks_dispatched += 1
        return block, warps

    def dispatch(self, now: int) -> int:
        """Fill free SM capacity with pending blocks.  Returns #dispatched.

        Blocks are handed out round-robin over the owning application's
        SMs so occupancy stays balanced (one block per SM per sweep).
        """
        gpu = self._gpu
        apps = gpu.apps
        sms = gpu.sms
        cfg = gpu.config
        max_blocks = cfg.max_blocks_per_sm
        max_warps = cfg.max_warps_per_sm
        # `app.dispatchable` is a property chain re-evaluated per SM per
        # sweep; since blocks_completed cannot change while dispatching
        # (programs are never empty, so no block can retire inside
        # admit_block), it reduces to a per-app countdown computed once.
        budget: Dict[int, int] = {}
        for app_id, app in apps.items():
            spec = app.spec
            limit = min(spec.total_blocks,
                        (app.current_launch + 1) * spec.blocks)
            budget[app_id] = limit - app.blocks_dispatched
        if not any(b > 0 for b in budget.values()):
            # Nothing dispatchable (the common case mid-launch: a block
            # completed but its successor launch is still barred) — skip
            # the SM sweep entirely.
            gpu._all_dispatched = all_done = all(a.all_dispatched
                                                 for a in apps.values())
            gpu._dispatch_barred = not all_done
            return 0
        dispatched = 0
        progress = True
        while progress:
            progress = False
            for sm in sms:
                owner = sm.owner
                if owner is None or sm.pending_owner is not None:
                    continue
                if budget.get(owner, 0) <= 0:
                    continue
                app = apps[owner]
                spec = app.spec
                if (len(sm.blocks) >= max_blocks or
                        sm.resident_warps + spec.warps_per_block > max_warps):
                    continue
                cap = spec.max_blocks_per_sm
                if cap is not None and sum(
                        1 for b in sm.blocks if b.app_id == owner) >= cap:
                    continue
                block, warps = self._make_block(app, now)
                sm.admit_block(block, warps, now)
                budget[owner] -= 1
                dispatched += 1
                progress = True
        gpu._all_dispatched = all_done = all(a.all_dispatched
                                             for a in apps.values())
        # Barred: blocks remain but every budget drained at a launch
        # barrier; capacity freed by ordinary completions can't help.
        gpu._dispatch_barred = (not all_done and
                                not any(b > 0 for b in budget.values()))
        return dispatched

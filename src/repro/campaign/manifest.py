"""The campaign manifest: the contract between shards and the merge.

``campaign_manifest.json`` records, for every planned shard, its
content address (``spec_hash``), its result file, its ``status``
(``pending`` / ``done``), and the sha256 of the committed result file
(``result_hash``).  The merge refuses to fold anything the manifest
cannot vouch for, and resume skips exactly the shards whose committed
bytes still match — which is what makes *kill → rerun → byte-identical
output* a structural property instead of a hope.

The same row schema extends ``repro sweep``'s per-point manifest
(``sweep_manifest.json``), so an old sweep output directory is a valid
resume source for a by-point campaign whose shards are single points:
:func:`load_manifest` reads either layout.

All writes are atomic (temp file + ``os.replace``) so a kill mid-write
never leaves a torn manifest, and the manifest contains no volatile
data (no timestamps, no host names) — a resumed campaign's final
manifest is byte-identical to an uninterrupted one's.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Dict, List, Mapping, Optional, Union

from .plan import CampaignPlan, PlannedShard

#: Version of the campaign/sweep manifest row schema.
MANIFEST_SCHEMA_VERSION = 1

#: File names inside a campaign / sweep output directory.
MANIFEST_NAME = "campaign_manifest.json"
SWEEP_MANIFEST_NAME = "sweep_manifest.json"
RESULT_NAME = "campaign_result.json"

STATUS_PENDING = "pending"
STATUS_DONE = "done"


def result_hash(text: Union[str, bytes]) -> str:
    """sha256 content address of a committed result file."""
    if isinstance(text, str):
        text = text.encode("utf-8")
    return hashlib.sha256(text).hexdigest()


def atomic_write(path: Union[str, pathlib.Path], text: str) -> None:
    """Write `text` to `path` with no torn intermediate state."""
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def manifest_dict(plan: CampaignPlan,
                  statuses: Optional[Mapping[int, Dict[str, Any]]] = None
                  ) -> Dict[str, Any]:
    """The manifest encoding of `plan`.

    `statuses` optionally maps shard index → ``{"status", "result_hash"}``
    for shards already committed; everything else starts ``pending``.
    """
    statuses = statuses or {}
    shards: List[Dict[str, Any]] = []
    for shard in plan.shards:
        row: Dict[str, Any] = {
            "index": shard.index,
            "file": shard.filename,
            "spec_hash": shard.spec_hash,
            "units": len(shard.units),
            "overrides": [u.overrides for u in shard.units],
            "status": STATUS_PENDING,
            "result_hash": None,
        }
        row.update(statuses.get(shard.index, {}))
        shards.append(row)
    data: Dict[str, Any] = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "kind": "campaign",
        "campaign_hash": plan.campaign_hash,
        "shards": shards,
    }
    if plan.spec.name:
        data["name"] = plan.spec.name
    return data


def manifest_json(data: Mapping[str, Any]) -> str:
    """Canonical manifest encoding (byte-identical across equal plans)."""
    return json.dumps(data, sort_keys=True, indent=2) + "\n"


def write_manifest(out_dir: Union[str, pathlib.Path],
                   data: Mapping[str, Any]) -> pathlib.Path:
    path = pathlib.Path(out_dir) / MANIFEST_NAME
    atomic_write(path, manifest_json(data))
    return path


def load_manifest(out_dir: Union[str, pathlib.Path]
                  ) -> Optional[Dict[str, Any]]:
    """The manifest in `out_dir`, normalized to campaign row form.

    Reads ``campaign_manifest.json``, falling back to a ``repro
    sweep`` manifest (``sweep_manifest.json``) whose ``points`` rows
    are translated into shard rows — old sweep outputs predating the
    status/result_hash fields resume too (their rows arrive with
    ``status="done"`` and no result hash; the ``verify`` policy then
    checks the file's embedded spec hash instead).  Returns ``None``
    when the directory has no manifest at all.
    """
    out_dir = pathlib.Path(out_dir)
    path = out_dir / MANIFEST_NAME
    if path.exists():
        data = json.loads(path.read_text())
        _check_version(data, str(path))
        return data
    sweep_path = out_dir / SWEEP_MANIFEST_NAME
    if not sweep_path.exists():
        return None
    data = json.loads(sweep_path.read_text())
    _check_version(data, str(sweep_path))
    shards = []
    for point in data.get("points", []):
        shards.append({
            "index": point["index"],
            "file": point["file"],
            "spec_hash": point.get("spec_hash"),
            "units": 1,
            "overrides": [point.get("overrides", {})],
            # Pre-manifest-v1 sweeps wrote every point before the
            # manifest, so a listed point is a committed one.
            "status": point.get("status", STATUS_DONE),
            "result_hash": point.get("result_hash"),
        })
    return {
        "schema_version": data.get("schema_version",
                                   MANIFEST_SCHEMA_VERSION),
        "kind": "sweep",
        "campaign_hash": None,
        "shards": shards,
    }


def _check_version(data: Mapping[str, Any], context: str) -> None:
    version = data.get("schema_version", MANIFEST_SCHEMA_VERSION)
    if version != MANIFEST_SCHEMA_VERSION:
        raise ValueError(
            f"{context}: unsupported manifest schema_version "
            f"{version!r}; this build reads version "
            f"{MANIFEST_SCHEMA_VERSION}")


def _verify_embedded_hash(path: pathlib.Path,
                          shard: PlannedShard) -> bool:
    """Fallback verification for rows without a result hash (old sweep
    manifests): a single-unit shard file is a ``RunResult`` whose
    provenance carries the scenario's spec hash."""
    if len(shard.units) != 1:
        return False
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    return (data.get("provenance", {}).get("spec_hash")
            == shard.spec_hash)


def committed_shards(out_dir: Union[str, pathlib.Path],
                     plan: CampaignPlan,
                     manifest: Optional[Mapping[str, Any]],
                     policy: str) -> Dict[int, Dict[str, Any]]:
    """Which planned shards are already committed in `out_dir`.

    A shard counts as committed when a manifest row with its index is
    ``done``, the row's ``spec_hash`` matches the *plan's* (content
    addressing: a changed spec never reuses stale results), and its
    file exists.  Under the ``verify`` policy the file's sha256 must
    additionally match the row's ``result_hash`` (recomputed from the
    file when the row predates result hashes, after checking the
    embedded spec hash).  Returns shard index →
    ``{"status", "result_hash"}`` ready for :func:`manifest_dict`.
    """
    if manifest is None:
        return {}
    out_dir = pathlib.Path(out_dir)
    rows = {row.get("index"): row
            for row in manifest.get("shards", [])}
    committed: Dict[int, Dict[str, Any]] = {}
    for shard in plan.shards:
        row = rows.get(shard.index)
        if row is None or row.get("status") != STATUS_DONE:
            continue
        if row.get("spec_hash") != shard.spec_hash:
            continue
        path = out_dir / row["file"]
        if not path.exists():
            continue
        digest = result_hash(path.read_bytes())
        if policy == "verify":
            expected = row.get("result_hash")
            if expected is not None:
                if digest != expected:
                    continue
            elif not _verify_embedded_hash(path, shard):
                continue
        committed[shard.index] = {"status": STATUS_DONE,
                                  "result_hash": digest,
                                  "file": row["file"]}
    return committed

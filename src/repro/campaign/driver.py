"""The campaign driver: plan → fan out shards → commit → merge.

One call, :func:`run_campaign`, drives a :class:`CampaignSpec` end to
end against an output directory:

1. **Plan** — :func:`~.plan.plan_campaign` (pure, deterministic).
2. **Resume** — with ``resume=True``, committed shards whose manifest
   row, planned ``spec_hash``, and (under the ``verify`` policy) file
   sha256 all agree are skipped; everything else reruns.
3. **Run** — pending shards fan out through the PR-2 executor pool
   (:func:`repro.runtime.make_executor`); each worker runs its shard's
   unit scenarios with a serial executor (shard-level parallelism
   replaces run-level parallelism, so pools never nest).  Every
   finished shard is committed atomically — result file first, then
   the manifest row — so a kill at any instant loses at most the
   in-flight shards.
4. **Merge** — when every shard is committed, the shard-ordered fold
   of :func:`~.result.merge_campaign` writes ``campaign_result.json``.

Campaign-level counters (shards planned / skipped / run, units, apps)
land in a :class:`~repro.obs.MetricsRegistry` and wall-clock phase
timings in a :class:`~repro.obs.PhaseProfiler`; both are written to
``campaign_counters.json`` as a **side channel** — exactly like
``RunResult.speculation`` — so the merged result stays byte-identical
between fresh, resumed, serial, and pooled invocations.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.api.runner import RunResult, run_scenario
from repro.api.scenario import Scenario
from repro.obs import MetricsRegistry, PhaseProfiler

from .manifest import (MANIFEST_NAME, RESULT_NAME, STATUS_DONE,
                       atomic_write, committed_shards, load_manifest,
                       manifest_dict, result_hash, write_manifest)
from .plan import plan_campaign
from .result import CampaignResult, merge_campaign
from .spec import CampaignSpec

#: Side-channel file with campaign counters and phase timings (never
#: part of the merged result).
COUNTERS_NAME = "campaign_counters.json"


def shard_job(scenario_dicts: List[Dict[str, Any]]) -> str:
    """Run one shard's unit scenarios; return the shard file text.

    Module-level and dict-in/str-out so the process pool can pickle
    it.  Units run with ``workers=1`` (a serial executor) — the
    campaign parallelizes across shards, never inside them — and the
    returned text is canonical: a single-unit shard file is exactly
    the ``RunResult.to_json()`` bytes ``repro run`` would write for
    that scenario, a multi-unit file wraps the unit results in a
    ``results`` list.
    """
    from repro.runtime import SerialExecutor
    results: List[RunResult] = []
    for data in scenario_dicts:
        scenario = Scenario.from_dict(data)
        results.append(run_scenario(scenario,
                                    executor=SerialExecutor()))
    if len(results) == 1:
        return results[0].to_json()
    return json.dumps({
        "schema_version": 1,
        "kind": "campaign-shard",
        "results": [r.to_dict() for r in results],
    }, sort_keys=True, indent=2) + "\n"


@dataclass
class CampaignOutcome:
    """What one :func:`run_campaign` invocation did."""

    complete: bool
    shards_total: int
    shards_skipped: int
    shards_run: int
    manifest_path: pathlib.Path
    result_path: Optional[pathlib.Path]
    result: Optional[CampaignResult]
    counters: Dict[str, Any] = field(default_factory=dict)


def run_campaign(spec: CampaignSpec,
                 out_dir: Union[str, pathlib.Path],
                 resume: bool = False,
                 shard_workers: int = 1,
                 max_shards: Optional[int] = None,
                 progress=None) -> CampaignOutcome:
    """Drive `spec` to a merged result under `out_dir`.

    `resume` skips shards already committed there (per the spec's
    resume policy); `shard_workers` sizes the shard process pool;
    `max_shards` bounds how many pending shards this invocation
    commits (the deterministic kill switch the CI interruption test
    uses) — when it stops the campaign early, no merge happens and
    the outcome reports ``complete=False``.  `progress` is an optional
    ``callable(str)`` the driver narrates commits through (the CLI
    passes ``print``).
    """
    from repro.runtime import make_executor
    if max_shards is not None and max_shards < 1:
        raise ValueError(f"max_shards must be >= 1, got {max_shards!r}")
    say = progress or (lambda _message: None)
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    registry = MetricsRegistry()
    profiler = PhaseProfiler()

    with profiler.phase("plan"):
        plan = plan_campaign(spec)
        existing = load_manifest(out_dir) if resume else None
        statuses = committed_shards(out_dir, plan, existing,
                                    spec.resume)
        manifest_path = write_manifest(out_dir,
                                       manifest_dict(plan, statuses))
    skipped = len(statuses)
    say(f"planned {len(plan.shards)} shard(s) / {plan.total_units} "
        f"unit(s)" + (f", {skipped} already committed" if skipped
                      else ""))
    registry.counter("campaign.shards.planned").inc(len(plan.shards))
    registry.counter("campaign.shards.skipped").inc(skipped)
    registry.counter("campaign.units.planned").inc(plan.total_units)

    pending = [s for s in plan.shards if s.index not in statuses]
    budget = len(pending) if max_shards is None else min(max_shards,
                                                         len(pending))
    to_run = pending[:budget]
    with profiler.phase("run"):
        executor = make_executor(shard_workers)
        try:
            futures = [
                (shard,
                 executor.submit_job(
                     shard_job,
                     [u.scenario.to_dict() for u in shard.units]))
                for shard in to_run]
            for shard, future in futures:
                text = future.result()
                # Commit order: result bytes first, manifest row
                # second — a kill between the two leaves a file the
                # next resume re-verifies by content hash.
                atomic_write(out_dir / shard.filename, text)
                statuses[shard.index] = {
                    "status": STATUS_DONE,
                    "result_hash": result_hash(text),
                }
                write_manifest(out_dir, manifest_dict(plan, statuses))
                registry.counter("campaign.shards.run").inc()
                registry.counter("campaign.units.run").inc(
                    len(shard.units))
                say(f"[{len(statuses)}/{len(plan.shards)}] committed "
                    f"{shard.filename}")
        finally:
            executor.close()

    complete = len(statuses) == len(plan.shards)
    result = None
    result_path = None
    if complete:
        with profiler.phase("merge"):
            manifest_data = manifest_dict(plan, statuses)
            result = merge_campaign(plan, out_dir, manifest_data)
            result_path = out_dir / RESULT_NAME
            atomic_write(result_path, result.to_json())
        registry.counter("campaign.apps.merged").inc(
            result.metrics["apps"])

    counters = {
        "metrics": registry.to_dict(),
        "phases": profiler.to_dict(),
    }
    atomic_write(out_dir / COUNTERS_NAME,
                 json.dumps(counters, sort_keys=True, indent=2) + "\n")
    return CampaignOutcome(
        complete=complete,
        shards_total=len(plan.shards),
        shards_skipped=skipped,
        shards_run=len(to_run),
        manifest_path=manifest_path,
        result_path=result_path,
        result=result,
        counters=counters,
    )

"""The :class:`CampaignSpec` tree: one serializable campaign description.

A campaign is a base :class:`~repro.api.scenario.Scenario` × parameter
grid (the sweep model) plus a **shard strategy** that cuts the work
into independently runnable units, and a **resume policy** that decides
how committed shards are trusted on restart.  The spec follows every
Scenario API rule: strict ``__post_init__`` validation, unknown-key
rejection in ``from_dict``, a lossless JSON round-trip, and a
:meth:`CampaignSpec.spec_hash` normalized exactly like
``Scenario.spec_hash`` (the base's worker count and
speculation/telemetry blocks never change what a campaign computes).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Sequence

from repro.api.registry import REGISTRY
from repro.api.scenario import SCHEMA_VERSION, Scenario

#: How a restarted campaign treats shards the manifest marks done:
#: ``verify`` re-hashes every committed shard file against the
#: manifest's result hash (and the planned spec hash) before skipping
#: it; ``trust`` skips on manifest status + file presence alone.
RESUME_POLICIES = ("verify", "trust")


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(message)


@dataclass(frozen=True)
class ShardSpec:
    """How a campaign's work is cut into shards.

    ``strategy`` names a ``shard-strategies`` registry entry:

    * ``by-point`` — one unit per grid point; shards are chunks of at
      most ``max_shard_size`` consecutive points.
    * ``by-trace-slice`` — each grid point's arrival stream is split
      into contiguous slices of about ``slice_apps`` arrivals (see
      :func:`repro.workloads.slice_arrivals`); every slice is a unit,
      chunked into shards the same way.

    ``max_shard_size`` bounds the units per shard — the granularity of
    checkpointing and of the multi-process fan-out.
    """

    strategy: str = "by-point"
    #: units (points or slices) per shard.
    max_shard_size: int = 1
    #: target arrivals per slice for ``strategy="by-trace-slice"``.
    slice_apps: int = 0

    def __post_init__(self):
        # Delegate to the registry for the did-you-mean error.
        REGISTRY.get("shard-strategies", self.strategy)
        _require(isinstance(self.max_shard_size, int)
                 and not isinstance(self.max_shard_size, bool)
                 and self.max_shard_size >= 1,
                 f"max_shard_size must be a positive integer, got "
                 f"{self.max_shard_size!r}")
        _require(isinstance(self.slice_apps, int)
                 and not isinstance(self.slice_apps, bool)
                 and self.slice_apps >= 0,
                 f"slice_apps must be a non-negative integer, got "
                 f"{self.slice_apps!r}")
        if self.strategy == "by-trace-slice":
            _require(self.slice_apps >= 1,
                     "shard strategy 'by-trace-slice' needs slice_apps "
                     ">= 1 (the target arrivals per slice)")
        else:
            _require(self.slice_apps == 0,
                     f"slice_apps is only valid with "
                     f"strategy='by-trace-slice', not "
                     f"{self.strategy!r}")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardSpec":
        if not isinstance(data, Mapping):
            raise ValueError(f"shard must be an object, got "
                             f"{type(data).__name__}")
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - fields)
        if unknown:
            raise ValueError(f"shard has unknown key(s): "
                             f"{', '.join(unknown)} (known: "
                             f"{', '.join(sorted(fields))})")
        return cls(**data)


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative campaign: base scenario × grid, sharded."""

    base: Scenario
    #: dotted-path grid, exactly the sweep format (may be empty).
    grid: Dict[str, Sequence[Any]] = field(default_factory=dict)
    shard: ShardSpec = field(default_factory=ShardSpec)
    #: committed-shard acceptance on restart (see RESUME_POLICIES).
    resume: str = "verify"
    #: free-form label, carried into the manifest and result.
    name: str = ""

    def __post_init__(self):
        if isinstance(self.base, Mapping):
            object.__setattr__(self, "base",
                               Scenario.from_dict(self.base))
        _require(isinstance(self.base, Scenario),
                 f"base must be a scenario object, got {self.base!r}")
        if isinstance(self.shard, Mapping):
            object.__setattr__(self, "shard",
                               ShardSpec.from_dict(self.shard))
        _require(isinstance(self.shard, ShardSpec),
                 f"shard must be a shard spec object, got "
                 f"{self.shard!r}")
        _require(isinstance(self.grid, Mapping),
                 f"grid must be an object mapping dotted paths to value "
                 f"lists, got {type(self.grid).__name__}")
        for path, values in self.grid.items():
            _require(isinstance(path, str) and bool(path),
                     f"grid keys must be non-empty dotted paths, got "
                     f"{path!r}")
            _require(isinstance(values, Sequence)
                     and not isinstance(values, str) and len(values) > 0,
                     f"grid values for {path!r} must be a non-empty "
                     f"list, got {values!r}")
        object.__setattr__(self, "grid",
                           {path: list(self.grid[path])
                            for path in self.grid})
        _require(self.resume in RESUME_POLICIES,
                 f"unknown resume policy {self.resume!r}; expected one "
                 f"of {list(RESUME_POLICIES)}")
        _require(isinstance(self.name, str),
                 f"name must be a string, got {self.name!r}")
        if self.shard.strategy == "by-trace-slice":
            _require(self.base.kind in ("stream", "fleet"),
                     "shard strategy 'by-trace-slice' splits an arrival "
                     "timeline; queue scenarios have none")
        _require(self.base.workload.slice is None,
                 "the campaign base scenario must be unsliced — the "
                 "shard planner assigns workload.slice itself")

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "base": self.base.to_dict(),
            "grid": {path: list(values)
                     for path, values in self.grid.items()},
            "shard": self.shard.to_dict(),
            "resume": self.resume,
        }
        if self.name:
            data["name"] = self.name
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        if not isinstance(data, Mapping):
            raise ValueError(f"campaign must be an object, got "
                             f"{type(data).__name__}")
        data = dict(data)
        version = data.pop("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported campaign schema_version {version!r}; this "
                f"build reads version {SCHEMA_VERSION}")
        known = {"base", "grid", "shard", "resume", "name"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"campaign has unknown key(s): "
                             f"{', '.join(unknown)} (known: "
                             f"{', '.join(sorted(known))})")
        if "base" not in data:
            raise ValueError("campaign is missing the required 'base' "
                             "scenario")
        return cls(
            base=Scenario.from_dict(data["base"]),
            grid=data.get("grid", {}),
            shard=ShardSpec.from_dict(data.get("shard", {})),
            resume=data.get("resume", "verify"),
            name=data.get("name", ""),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"campaign is not valid JSON: {exc}") \
                from None
        return cls.from_dict(data)

    # -- identity ----------------------------------------------------------

    def spec_hash(self) -> str:
        """sha256 identity of the campaign's *experiment*.

        The base scenario is normalized the way
        :meth:`Scenario.spec_hash` normalizes itself — workers to 1,
        speculation and telemetry dropped — so a ``--shard-workers 8``
        rerun of a campaign shares the hash (and the manifest) of the
        serial one.
        """
        data = self.to_dict()
        data["base"]["execution"]["workers"] = 1
        data["base"]["execution"].pop("speculation", None)
        data["base"]["execution"].pop("telemetry", None)
        canon = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

"""The campaign layer: sharded, resumable sweeps with streaming merges.

ROADMAP direction #3 — million-app campaigns — as a subsystem above
the fleet/runtime stack (see ``docs/campaign.md``):

* **spec** (:mod:`.spec`) — :class:`CampaignSpec`: base scenario ×
  grid + shard strategy + resume policy, with the Scenario API's
  validation / JSON round-trip / spec-hash discipline;
* **plan** (:mod:`.plan`) — the deterministic shard planner
  (``shard-strategies`` registry kind: ``by-point``,
  ``by-trace-slice``) producing content-addressed
  :class:`PlannedShard`\\ s;
* **manifest** (:mod:`.manifest`) — the shard ↔ merge contract:
  per-shard ``spec_hash`` / ``status`` / ``result_hash`` rows,
  written atomically, readable from old ``repro sweep`` outputs too;
* **driver** (:mod:`.driver`) — :func:`run_campaign`: multi-process
  shard fan-out over the PR-2 executor pool, atomic per-shard
  commits, checkpoint/resume that skips verified shards;
* **result** (:mod:`.result`) — :func:`merge_campaign`: the
  shard-ordered O(1)-memory fold into one :class:`CampaignResult`.

The CLI front end is ``python -m repro campaign <campaign.json>
--out-dir DIR [--resume] [--shard-workers N]``.
"""

from .driver import (COUNTERS_NAME, CampaignOutcome, run_campaign,
                     shard_job)
from .manifest import (MANIFEST_NAME, MANIFEST_SCHEMA_VERSION,
                       RESULT_NAME, SWEEP_MANIFEST_NAME, atomic_write,
                       committed_shards, load_manifest, manifest_dict,
                       result_hash, write_manifest)
from .plan import (CampaignPlan, PlannedShard, PlannedUnit,
                   plan_campaign)
from .result import CampaignResult, MergeError, merge_campaign
from .spec import RESUME_POLICIES, CampaignSpec, ShardSpec

__all__ = [
    "CampaignSpec", "ShardSpec", "RESUME_POLICIES",
    "CampaignPlan", "PlannedShard", "PlannedUnit", "plan_campaign",
    "MANIFEST_NAME", "SWEEP_MANIFEST_NAME", "RESULT_NAME",
    "MANIFEST_SCHEMA_VERSION", "manifest_dict", "write_manifest",
    "load_manifest", "committed_shards", "result_hash", "atomic_write",
    "CampaignResult", "MergeError", "merge_campaign",
    "CampaignOutcome", "run_campaign", "shard_job", "COUNTERS_NAME",
]

"""The campaign merge: committed shard files → one ``CampaignResult``.

The merge is a **deterministic shard-ordered fold**: shard files are
read in shard-index order, one at a time, and their per-application
records are pushed through the O(1)-state estimators of
:mod:`repro.analysis.incremental`.  Nothing depends on *how* the
shards were produced — serial or pooled, fresh or resumed — only on
the committed bytes and the fold order, which is why a killed-and-
resumed campaign merges to output byte-identical to an uninterrupted
run's.

Memory is bounded by the largest single shard (one shard file is
parsed at a time) plus the constant estimator state; the merge never
holds the campaign's full record set.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Union

from repro import __version__
from repro.analysis.incremental import StreamAccumulator
from repro.api.scenario import SCHEMA_VERSION

from .manifest import MANIFEST_SCHEMA_VERSION, result_hash
from .plan import CampaignPlan

#: Unit metric keys summed across a campaign when present (the fleet
#: fault/admission scorecard).
_SUMMED_METRICS = ("arrivals", "served", "rejected")


class MergeError(ValueError):
    """A shard file is missing, torn, or contradicts the manifest."""


@dataclass(frozen=True)
class CampaignResult:
    """One campaign's merged outcome (plain data, canonical JSON)."""

    campaign: Dict[str, Any]
    metrics: Dict[str, Any]
    per_shard: List[Dict[str, Any]]
    provenance: Dict[str, Any]
    name: str = ""

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "kind": "campaign",
            "campaign": self.campaign,
            "metrics": self.metrics,
            "per_shard": self.per_shard,
            "provenance": self.provenance,
        }
        if self.name:
            data["name"] = self.name
        return data

    def to_json(self, indent: int = 2) -> str:
        """Canonical encoding: byte-identical across equal results."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          indent=indent) + "\n"


def _normalized_campaign(plan: CampaignPlan) -> Dict[str, Any]:
    """The campaign spec as embedded in results (base workers
    normalized to 1, speculation/telemetry dropped — the same rule as
    ``RunResult``'s embedded scenario)."""
    data = plan.spec.to_dict()
    data["base"]["execution"]["workers"] = 1
    data["base"]["execution"].pop("speculation", None)
    data["base"]["execution"].pop("telemetry", None)
    return data


def _unit_results(shard_data: Mapping[str, Any],
                  context: str) -> List[Mapping[str, Any]]:
    """The unit ``RunResult`` dicts inside one shard file."""
    if "results" in shard_data:
        results = shard_data["results"]
        if not isinstance(results, list):
            raise MergeError(f"{context}: shard 'results' must be a "
                             f"list")
        return results
    return [shard_data]


def merge_campaign(plan: CampaignPlan,
                   out_dir: Union[str, pathlib.Path],
                   manifest: Mapping[str, Any]) -> CampaignResult:
    """Fold every committed shard of `plan` into a CampaignResult.

    `manifest` must be the final manifest: every shard row ``done``
    with a ``result_hash``.  Each file is re-hashed and checked against
    both the manifest row and the planned ``spec_hash`` before its
    records enter the fold — the merge contract.
    """
    out_dir = pathlib.Path(out_dir)
    rows = {row["index"]: row for row in manifest["shards"]}
    acc = StreamAccumulator()
    per_shard: List[Dict[str, Any]] = []
    shard_provenance: List[Dict[str, Any]] = []
    summed: Dict[str, int] = {}
    engine_versions = set()
    makespan_max = 0
    total_units = 0
    for shard in plan.shards:
        row = rows.get(shard.index)
        if row is None or row.get("status") != "done":
            raise MergeError(f"shard {shard.index} is not committed; "
                             f"cannot merge an incomplete campaign")
        if row.get("spec_hash") != shard.spec_hash:
            raise MergeError(
                f"shard {shard.index} manifest spec_hash "
                f"{row.get('spec_hash')!r} does not match the plan's "
                f"{shard.spec_hash!r}")
        path = out_dir / row["file"]
        if not path.exists():
            raise MergeError(f"shard {shard.index} result file "
                             f"{row['file']!r} is missing")
        raw = path.read_bytes()
        digest = result_hash(raw)
        if row.get("result_hash") not in (None, digest):
            raise MergeError(
                f"shard {shard.index} result file {row['file']!r} "
                f"hash {digest} does not match the manifest's "
                f"{row['result_hash']}")
        shard_data = json.loads(raw)
        shard_apps = 0
        for unit in _unit_results(shard_data,
                                  f"shard {shard.index}"):
            prov = unit.get("provenance", {})
            if "engine_version" in prov:
                engine_versions.add(prov["engine_version"])
            metrics = unit.get("metrics", {})
            makespan_max = max(makespan_max,
                               metrics.get("makespan", 0))
            for key in _SUMMED_METRICS:
                if key in metrics:
                    summed[key] = summed.get(key, 0) + metrics[key]
            for app in unit.get("apps", []):
                shard_apps += 1
                if "solo_cycles" in app:
                    acc.push_app(app)
            total_units += 1
        per_shard.append({
            "index": shard.index,
            "file": row["file"],
            "spec_hash": shard.spec_hash,
            "result_hash": digest,
            "units": len(shard.units),
            "apps": shard_apps,
        })
        shard_provenance.append({
            "index": shard.index,
            "spec_hash": shard.spec_hash,
            "result_hash": digest,
            "file": row["file"],
        })
    if len(engine_versions) > 1:
        raise MergeError(
            f"shards were produced by different engine versions: "
            f"{sorted(engine_versions)} — rerun the stale shards")
    metrics: Dict[str, Any] = {
        "shards": len(plan.shards),
        "units": total_units,
        "makespan_max": makespan_max,
    }
    metrics.update(acc.metrics())
    for key in _SUMMED_METRICS:
        if key in summed:
            metrics[key] = summed[key]
    provenance: Dict[str, Any] = {
        "engine_version": (sorted(engine_versions)[0]
                           if engine_versions else None),
        "schema_version": SCHEMA_VERSION,
        "manifest_schema_version": MANIFEST_SCHEMA_VERSION,
        "repro_version": __version__,
        "campaign_hash": plan.campaign_hash,
        "shards": shard_provenance,
    }
    return CampaignResult(
        campaign=_normalized_campaign(plan),
        metrics=metrics,
        per_shard=per_shard,
        provenance=provenance,
        name=plan.spec.name,
    )

"""The shard planner: a :class:`CampaignSpec` → content-addressed shards.

Planning is pure and deterministic: the same spec always produces the
same :class:`CampaignPlan` — same unit scenarios, same shard chunking,
same per-shard spec hashes and file names — which is what makes a
manifest from one invocation verifiable by the next.

Shard strategies are registry components (kind ``shard-strategies``),
so downstream code can plug in its own splitter::

    @REGISTRY.register("shard-strategies", "my-split")
    def _make():
        def split(spec):            # -> List[PlannedUnit]
            ...
        return split
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.api.registry import REGISTRY
from repro.api.scenario import Scenario
from repro.api.sweep import expand_grid

from .spec import CampaignSpec


@dataclass(frozen=True)
class PlannedUnit:
    """One runnable scenario of a campaign (a grid point, or one slice
    of a grid point's arrival stream)."""

    scenario: Scenario
    #: dotted-path overrides that turn the campaign base into this
    #: unit's scenario (grid overrides plus ``workload.slice`` for
    #: sliced units) — the manifest's human-readable identity.
    overrides: Dict[str, Any]


@dataclass(frozen=True)
class PlannedShard:
    """One unit of checkpointing: a chunk of consecutive units."""

    index: int
    spec_hash: str
    filename: str
    units: Tuple[PlannedUnit, ...]


@dataclass(frozen=True)
class CampaignPlan:
    """The full deterministic execution plan of one campaign."""

    spec: CampaignSpec
    campaign_hash: str
    shards: Tuple[PlannedShard, ...]

    @property
    def total_units(self) -> int:
        return sum(len(s.units) for s in self.shards)


def _shard_hash(units: Tuple[PlannedUnit, ...]) -> str:
    """Content address of a shard.

    A single-unit shard's hash IS its scenario's ``spec_hash()`` — the
    same value ``repro sweep`` stamps into its manifest, which is what
    lets a campaign resume from an old sweep output directory.
    Multi-unit shards hash the joined unit hashes.
    """
    hashes = [u.scenario.spec_hash() for u in units]
    if len(hashes) == 1:
        return hashes[0]
    joined = "\n".join(hashes)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def _shard_filename(spec: CampaignSpec, index: int,
                    spec_hash: str) -> str:
    stem = spec.name or spec.base.name or "campaign"
    safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in stem)
    return f"{safe}_shard_{index:04d}_{spec_hash[:10]}.json"


def _chunk(units: List[PlannedUnit], size: int
           ) -> List[Tuple[PlannedUnit, ...]]:
    return [tuple(units[i:i + size]) for i in range(0, len(units), size)]


def _point_units(spec: CampaignSpec) -> List[PlannedUnit]:
    """One unit per grid point, in sweep expansion order."""
    return [PlannedUnit(scenario=scenario, overrides=dict(overrides))
            for overrides, scenario
            in expand_grid(spec.base.to_dict(), spec.grid)]


def _slice_units(spec: CampaignSpec) -> List[PlannedUnit]:
    """Each grid point split into contiguous arrival slices.

    The full arrival stream is built once per point (cheap — no
    simulation) to count arrivals; the slice count is
    ``ceil(arrivals / slice_apps)`` and each slice becomes a unit whose
    scenario carries ``workload.slice = (k, count)``.  A point whose
    stream fits in one slice stays unsliced, so its unit hash equals
    the plain point hash.
    """
    from repro.api.runner import build_arrivals
    target = spec.shard.slice_apps
    units: List[PlannedUnit] = []
    for overrides, scenario in expand_grid(spec.base.to_dict(),
                                           spec.grid):
        arrivals = len(build_arrivals(scenario))
        count = max(1, -(-arrivals // target))
        if count == 1:
            units.append(PlannedUnit(scenario=scenario,
                                     overrides=dict(overrides)))
            continue
        for k in range(count):
            workload = dataclasses.replace(scenario.workload,
                                           slice=(k, count))
            sliced = dataclasses.replace(scenario, workload=workload)
            unit_overrides = dict(overrides)
            unit_overrides["workload.slice"] = [k, count]
            units.append(PlannedUnit(scenario=sliced,
                                     overrides=unit_overrides))
    return units


def plan_campaign(spec: CampaignSpec) -> CampaignPlan:
    """Expand, split, and chunk `spec` into its deterministic plan."""
    splitter = REGISTRY.create("shard-strategies", spec.shard.strategy)
    units = splitter(spec)
    shards: List[PlannedShard] = []
    for index, chunk in enumerate(_chunk(units,
                                         spec.shard.max_shard_size)):
        digest = _shard_hash(chunk)
        shards.append(PlannedShard(
            index=index, spec_hash=digest,
            filename=_shard_filename(spec, index, digest),
            units=chunk))
    return CampaignPlan(spec=spec, campaign_hash=spec.spec_hash(),
                        shards=tuple(shards))


# -- registry wiring ---------------------------------------------------------
# The factory contract is ``factory() -> splitter`` where
# ``splitter(spec) -> List[PlannedUnit]`` in deterministic order.

REGISTRY.register("shard-strategies", "by-point",
                  lambda: _point_units)
REGISTRY.register("shard-strategies", "by-trace-slice",
                  lambda: _slice_units)

"""Fleet metrics: how well a placement policy balanced a device fleet.

Builds on the per-application stream metrics
(:func:`~repro.analysis.streams.summarize_stream` applies unchanged to a
:class:`~repro.cluster.FleetOutcome` — fleet ANTT/STP/percentiles) and
adds the fleet-level view:

* **per-device utilization** — each device's busy fraction of the fleet
  makespan (idle tails show up as low utilization on that device);
* **load imbalance** — max/mean of per-device busy cycles: 1.0 is a
  perfectly balanced fleet, 2.0 means the hottest device did twice the
  mean work (and the fleet's makespan is hostage to it);
* **per-device-class breakdowns** — heterogeneous (big/little) fleets
  group devices by their configuration name; utilization and imbalance
  are reported per class, so a little device pinned at 100% is visible
  next to an underused big one even when the fleet-wide mean looks
  healthy;
* **queue-depth timelines** — waiting-application count over time, per
  device or fleet-wide, for burst-absorption plots;
* **fault metrics** (:func:`summarize_faults`) — availability,
  goodput vs admitted vs rejected accounting, retry histograms, and
  per-device downtime for runs with fault injection or admission
  control (:mod:`repro.cluster.faults`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .streams import deadline_attainment, summarize_stream


def load_imbalance(busy_cycles: Sequence[int]) -> float:
    """``max/mean`` of per-device busy cycles (1.0 = perfectly balanced).

    An all-idle fleet is balanced by definition (1.0) rather than a
    division by zero.
    """
    if not busy_cycles:
        raise ValueError("load_imbalance of an empty fleet")
    mean = sum(busy_cycles) / len(busy_cycles)
    if mean == 0:
        return 1.0
    return max(busy_cycles) / mean


@dataclass(frozen=True)
class FleetSummary:
    """One placement policy's scorecard over one arrival stream.

    ``per_device_config`` names each device's configuration (device-id
    order); ``per_config_utilization`` / ``per_config_imbalance`` fold
    the per-device numbers by that name — on a homogeneous fleet both
    dicts have a single entry equal to the fleet-wide figures.
    """

    placement: str
    policy: str
    devices: int
    apps: int
    makespan: int
    fleet_throughput: float              # instructions/cycle, fleet-wide
    antt: float
    stp: float
    utilization: float                   # mean of per-device utilizations
    per_device_utilization: Tuple[float, ...]
    per_device_apps: Tuple[int, ...]
    load_imbalance: float
    per_device_config: Tuple[str, ...]
    per_config_utilization: Dict[str, float]
    per_config_imbalance: Dict[str, float]
    wait_p50: float
    wait_p99: float
    latency_p50: float
    latency_p99: float


def _device_config_names(outcome) -> Tuple[str, ...]:
    """Each device's config name, falling back to the fleet config."""
    fallback = getattr(getattr(outcome, "config", None), "name", "") or \
        "default"
    return tuple(getattr(d, "config_name", "") or fallback
                 for d in outcome.devices)


def summarize_fleet(outcome, solo_cycles: Mapping[str, int],
                    device_configs: Optional[Sequence[str]] = None
                    ) -> FleetSummary:
    """Compute the :class:`FleetSummary` of one fleet outcome.

    `device_configs` optionally overrides the per-device config labels
    (device-id order).  The scenario runner passes the ``gpu-configs``
    registry names here so one result JSON speaks a single identifier
    domain (``provenance.device_configs``, ``devices[].config``, and the
    per-config metrics all join on the same keys); without it the
    labels default to each device's :attr:`GPUConfig.name`.
    """
    stream = summarize_stream(outcome, solo_cycles)
    makespan = max(1, outcome.makespan)
    utils = tuple(d.busy_cycles / makespan for d in outcome.devices)
    served: Dict[int, int] = {d.device_id: 0 for d in outcome.devices}
    for record in outcome.records.values():
        served[record.device] += 1
    if device_configs is not None:
        if len(device_configs) != len(outcome.devices):
            raise ValueError(
                f"device_configs lists {len(device_configs)} labels for "
                f"{len(outcome.devices)} device(s)")
        config_names = tuple(device_configs)
    else:
        config_names = _device_config_names(outcome)
    by_config: Dict[str, List[int]] = {}
    for name, device in zip(config_names, outcome.devices):
        by_config.setdefault(name, []).append(device.busy_cycles)
    per_config_utilization = {
        name: sum(busy) / (len(busy) * makespan)
        for name, busy in sorted(by_config.items())}
    per_config_imbalance = {name: load_imbalance(busy)
                            for name, busy in sorted(by_config.items())}
    return FleetSummary(
        placement=outcome.placement,
        policy=outcome.policy,
        devices=len(outcome.devices),
        apps=stream.apps,
        makespan=stream.makespan,
        fleet_throughput=outcome.device_throughput,
        antt=stream.antt,
        stp=stream.stp,
        utilization=sum(utils) / len(utils),
        per_device_utilization=utils,
        per_device_apps=tuple(served[d.device_id]
                              for d in outcome.devices),
        load_imbalance=load_imbalance(
            [d.busy_cycles for d in outcome.devices]),
        per_device_config=config_names,
        per_config_utilization=per_config_utilization,
        per_config_imbalance=per_config_imbalance,
        wait_p50=stream.wait_p50,
        wait_p99=stream.wait_p99,
        latency_p50=stream.latency_p50,
        latency_p99=stream.latency_p99,
    )


def availability_timeline(fault_events, num_devices: int
                          ) -> List[List[int]]:
    """UP-device count over time: ``[[cycle, up_count], ...]``.

    `fault_events` is the applied-events list of a
    :class:`~repro.cluster.FleetOutcome` (sorted; down before up within
    a cycle).  The timeline starts at ``[0, num_devices]`` (every fleet
    boots fully UP) and records the count *after* all of a cycle's
    events; same-cycle down+up pairs therefore coalesce into one step.
    """
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices!r}")
    timeline: List[List[int]] = [[0, num_devices]]
    up = num_devices
    for event in sorted(fault_events,
                        key=lambda e: (e.cycle, e.device, e.kind == "up")):
        up += 1 if event.kind == "up" else -1
        if timeline[-1][0] == event.cycle:
            timeline[-1][1] = up
        else:
            timeline.append([event.cycle, up])
    return timeline


def summarize_faults(outcome, deadline_cycles: int = 0) -> Dict[str, Any]:
    """Fault/admission scorecard of one fleet outcome, as plain data.

    Complements :func:`summarize_fleet` (which describes the *served*
    stream) with what fault injection and admission control did to the
    offered load: every key is JSON-ready, so the scenario runner can
    merge this dict straight into ``RunResult.metrics``.

    Accounting invariants: ``served + rejected == arrivals``;
    ``admitted`` excludes only admission-stage rejections (reason =
    policy name), so arrivals later dropped by graceful degradation
    (reason ``no-device``) still count as admitted;
    ``goodput_cycles`` is busy minus lost — cycles spent on groups that
    actually retired.  ``deadline_attainment`` (served apps finishing
    within `deadline_cycles`) is included only when a deadline is set.
    """
    arrivals = len(outcome.records) + len(outcome.rejected)
    admission_rejects = [r for r in outcome.rejected
                         if r.reason != "no-device"]
    by_reason: Dict[str, int] = {}
    for r in outcome.rejected:
        by_reason[r.reason] = by_reason.get(r.reason, 0) + 1
    retries: Dict[str, int] = {}
    for name, rec in outcome.records.items():
        retries[name] = rec.retries
    for r in outcome.rejected:
        retries[r.name] = r.retries
    histogram: Dict[str, int] = {}
    for count in retries.values():
        histogram[str(count)] = histogram.get(str(count), 0) + 1
    makespan = max(1, outcome.makespan)
    num_devices = len(outcome.devices)
    downtime = [d.down_cycles for d in outcome.devices]
    busy = sum(d.busy_cycles for d in outcome.devices)
    lost = sum(d.lost_cycles for d in outcome.devices)
    summary: Dict[str, Any] = {
        "arrivals": arrivals,
        "admitted": arrivals - len(admission_rejects),
        "served": len(outcome.records),
        "rejected": len(outcome.rejected),
        "rejected_by_reason": dict(sorted(by_reason.items())),
        "rejected_apps": [
            {"name": r.name, "arrival_cycle": r.arrival_cycle,
             "cycle": r.cycle, "reason": r.reason, "retries": r.retries}
            for r in sorted(outcome.rejected,
                            key=lambda r: (r.cycle, r.name))],
        "goodput_cycles": busy - lost,
        "lost_cycles": lost,
        "retries_total": sum(retries.values()),
        "retry_histogram": dict(sorted(histogram.items())),
        "failed_groups": sum(len(d.failed_groups)
                             for d in outcome.devices),
        "fault_events": len(outcome.fault_events),
        "per_device_downtime": downtime,
        "availability": 1.0 - sum(downtime) / (num_devices * makespan),
        "availability_timeline": availability_timeline(
            outcome.fault_events, num_devices),
    }
    if deadline_cycles > 0:
        summary["deadline_attainment"] = (
            deadline_attainment(outcome.records, deadline_cycles)
            if outcome.records else 0.0)
    return summary


def queue_depth_timeline(outcome, device: Optional[int] = None,
                         max_points: Optional[int] = None
                         ) -> List[Tuple[int, int]]:
    """Waiting-application count over time: ``[(cycle, depth), ...]``.

    Depth counts applications that have arrived (and been placed on
    `device`, or anywhere when `device` is None) but whose group has not
    launched yet.  The returned steps are sorted by cycle; each entry is
    the depth *after* all of that cycle's arrivals and launches.

    `max_points` optionally bounds the returned series through the
    deterministic :class:`.incremental.BoundedTimeline` decimation —
    the campaign-scale form, where a million-arrival trace must not
    produce a million-step timeline.
    """
    deltas: Dict[int, int] = {}
    for record in outcome.records.values():
        if device is not None and record.device != device:
            continue
        deltas[record.arrival_cycle] = deltas.get(record.arrival_cycle,
                                                  0) + 1
        deltas[record.start_cycle] = deltas.get(record.start_cycle, 0) - 1
    bounded = None
    if max_points is not None:
        from .incremental import BoundedTimeline
        bounded = BoundedTimeline(max_points)
    timeline: List[Tuple[int, int]] = []
    depth = 0
    for cycle in sorted(deltas):
        depth += deltas[cycle]
        if bounded is not None:
            bounded.push(cycle, depth)
        else:
            timeline.append((cycle, depth))
    if bounded is not None:
        return [(int(c), int(v)) for c, v in bounded.points()]
    return timeline

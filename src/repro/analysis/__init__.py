"""Analysis helpers: evaluation metrics and plain-text chart rendering."""

from .fleet import (FleetSummary, availability_timeline, load_imbalance,
                    queue_depth_timeline, summarize_faults, summarize_fleet)
from .incremental import (DEFAULT_EXACT_LIMIT, BoundedTimeline,
                          OnlineMoments, P2Quantile, StreamAccumulator)
from .metrics import (average_normalized_turnaround, fairness, geometric_mean,
                      harmonic_mean, normalize, slowdown, speedup, throughput,
                      utilization, weighted_speedup)
from .streams import (StreamSummary, deadline_attainment, per_app_slowdown,
                      percentile, summarize_stream)
from .tables import render_bars, render_grouped_bars, render_table

__all__ = [
    "throughput", "utilization", "speedup", "slowdown", "weighted_speedup",
    "average_normalized_turnaround", "fairness", "harmonic_mean",
    "geometric_mean", "normalize",
    "percentile", "StreamSummary", "summarize_stream", "per_app_slowdown",
    "deadline_attainment",
    "OnlineMoments", "P2Quantile", "BoundedTimeline", "StreamAccumulator",
    "DEFAULT_EXACT_LIMIT",
    "FleetSummary", "summarize_fleet", "load_imbalance",
    "queue_depth_timeline", "summarize_faults", "availability_timeline",
    "render_table", "render_bars", "render_grouped_bars",
]

"""Evaluation metrics: throughput, utilization, and speedup families.

Definitions follow the paper (§1.2) plus the standard multi-programming
metrics used to analyze co-scheduling results (weighted speedup, average
normalized turnaround time, fairness).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def throughput(instructions: int, cycles: int) -> float:
    """Eq. 1.1: instructions executed per cycle simulated."""
    return instructions / max(1, cycles)


def utilization(ipc: float, peak_ipc: float) -> float:
    """§1.2.2: achieved throughput over the device's peak throughput."""
    if peak_ipc <= 0:
        raise ValueError("peak IPC must be positive")
    return ipc / peak_ipc


def speedup(baseline_cycles: int, cycles: int) -> float:
    """How much faster than a baseline (>1 = faster)."""
    return baseline_cycles / max(1, cycles)


def slowdown(solo_cycles: int, shared_cycles: int) -> float:
    """§3.2.2: shared completion time over solo completion time."""
    return shared_cycles / max(1, solo_cycles)


def weighted_speedup(solo_cycles: Mapping[str, int],
                     shared_cycles: Mapping[str, int]) -> float:
    """Σ_i solo_i / shared_i — the system-throughput view of co-running."""
    if set(solo_cycles) != set(shared_cycles):
        raise ValueError("weighted speedup needs matching app sets")
    if not solo_cycles:
        raise ValueError("weighted speedup of an empty set is undefined")
    return sum(solo_cycles[k] / max(1, shared_cycles[k]) for k in solo_cycles)


def average_normalized_turnaround(solo_cycles: Mapping[str, int],
                                  shared_cycles: Mapping[str, int]) -> float:
    """ANTT: mean per-application slowdown (lower is better)."""
    if set(solo_cycles) != set(shared_cycles):
        raise ValueError("ANTT needs matching app sets")
    if not solo_cycles:
        raise ValueError("ANTT of an empty set is undefined")
    return sum(shared_cycles[k] / max(1, solo_cycles[k])
               for k in solo_cycles) / len(solo_cycles)


def fairness(solo_cycles: Mapping[str, int],
             shared_cycles: Mapping[str, int]) -> float:
    """min slowdown over max slowdown across apps (1 = perfectly fair)."""
    if not solo_cycles:
        raise ValueError("fairness of an empty set is undefined")
    ratios = [shared_cycles[k] / max(1, solo_cycles[k]) for k in solo_cycles]
    return min(ratios) / max(ratios)


def harmonic_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("harmonic mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def normalize(values: Mapping[str, float], baseline_key: str
              ) -> Dict[str, float]:
    """Normalize a metric dict to one entry (the paper's Even baseline)."""
    base = values[baseline_key]
    if base == 0:
        raise ValueError(f"baseline {baseline_key!r} is zero")
    return {k: v / base for k, v in values.items()}

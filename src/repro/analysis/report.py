"""Experiment report assembly.

Collects figure/table renderings into a single markdown document — the
benchmark harness writes one section per reproduced experiment, and
:func:`write_report` stitches them together with a summary header.  This
is how ``benchmarks/results/`` can be flattened into a shareable
artifact (see ``examples/build_report.py``).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

PathLike = Union[str, pathlib.Path]


@dataclass
class Section:
    """One experiment's rendered output plus commentary."""

    experiment_id: str          # e.g. "Fig 4.1"
    title: str
    body: str                   # preformatted table / bars
    commentary: str = ""
    verdict: str = ""           # e.g. "shape reproduced"

    def to_markdown(self) -> str:
        lines = [f"## {self.experiment_id} — {self.title}", ""]
        if self.verdict:
            lines.append(f"**Verdict:** {self.verdict}")
            lines.append("")
        lines.append("```text")
        lines.append(self.body.rstrip())
        lines.append("```")
        if self.commentary:
            lines.append("")
            lines.append(self.commentary)
        lines.append("")
        return "\n".join(lines)


@dataclass
class Report:
    """An ordered collection of experiment sections."""

    title: str = "Reproduction report"
    preamble: str = ""
    sections: List[Section] = field(default_factory=list)

    def add(self, experiment_id: str, title: str, body: str,
            commentary: str = "", verdict: str = "") -> Section:
        section = Section(experiment_id, title, body, commentary, verdict)
        self.sections.append(section)
        return section

    def section_ids(self) -> List[str]:
        return [s.experiment_id for s in self.sections]

    def get(self, experiment_id: str) -> Section:
        for section in self.sections:
            if section.experiment_id == experiment_id:
                return section
        raise KeyError(experiment_id)

    def to_markdown(self) -> str:
        lines = [f"# {self.title}", ""]
        if self.preamble:
            lines.append(self.preamble)
            lines.append("")
        if self.sections:
            lines.append("## Contents")
            lines.append("")
            for section in self.sections:
                lines.append(f"- {section.experiment_id} — {section.title}")
            lines.append("")
        for section in self.sections:
            lines.append(section.to_markdown())
        return "\n".join(lines)


def load_results_dir(results_dir: PathLike,
                     titles: Optional[Dict[str, str]] = None) -> Report:
    """Build a report from a directory of ``*.txt`` renderings.

    File stems become experiment ids (``fig4_1_two_app_throughput`` →
    ``fig4_1 two app throughput`` unless overridden via `titles`).
    """
    results_dir = pathlib.Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no results directory at {results_dir}")
    report = Report(title="GPU co-scheduling reproduction — results")
    for path in sorted(results_dir.glob("*.txt")):
        stem = path.stem
        title = (titles or {}).get(stem, stem.replace("_", " "))
        report.add(stem, title, path.read_text().rstrip())
    return report


def write_report(report: Report, path: PathLike) -> pathlib.Path:
    """Serialize `report` as markdown to `path`."""
    path = pathlib.Path(path)
    path.write_text(report.to_markdown() + "\n")
    return path

"""Plain-text rendering of the paper's tables and bar charts.

The benchmark harness prints every reproduced figure as an ASCII table
or horizontal bar chart so the rows/series the paper reports can be
compared directly from the terminal.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, ndigits: int = 2) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{ndigits}f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 ndigits: int = 2, title: str = "") -> str:
    """A fixed-width table with a header rule."""
    text_rows = [[format_cell(c, ndigits) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in text_rows:
        lines.append("  ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def _numeric(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


def render_bars(values: Mapping[str, float], width: int = 40,
                title: str = "", ndigits: int = 2,
                baseline: Optional[float] = None) -> str:
    """A horizontal bar chart (one bar per key).

    When `baseline` is given, a ``|`` marker shows where it falls — the
    paper's figures all normalize to the Even baseline at 1.0.
    """
    if not values:
        raise ValueError("nothing to plot")
    peak = max(values.values())
    if baseline is not None:
        peak = max(peak, baseline)
    if peak <= 0:
        peak = 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for key, val in values.items():
        n = int(round(val / peak * width))
        bar = "#" * n
        if baseline is not None:
            mark = int(round(baseline / peak * width))
            if mark < width:
                bar = (bar + " " * width)[:width]
                bar = bar[:mark] + "|" + bar[mark + 1:]
                bar = bar.rstrip()
        lines.append(f"{key.ljust(label_w)}  {format_cell(val, ndigits).rjust(7)}  {bar}")
    return "\n".join(lines)


def render_grouped_bars(groups: Mapping[str, Mapping[str, float]],
                        series_order: Optional[List[str]] = None,
                        ndigits: int = 2, title: str = "") -> str:
    """Render grouped series (e.g. per-benchmark × per-policy) as a table."""
    if not groups:
        raise ValueError("nothing to render")
    if series_order is None:
        series_order = list(next(iter(groups.values())).keys())
    headers = [""] + list(series_order)
    rows = []
    for key, series in groups.items():
        rows.append([key] + [series.get(s, float("nan")) for s in series_order])
    return render_table(headers, rows, ndigits=ndigits, title=title)

"""Bounded-memory streaming estimators for campaign-scale aggregation.

The in-memory summaries in :mod:`.streams` hold every per-application
record, which is fine for a 200-app stream and impossible for a
million-arrival campaign.  This module provides the O(1)-state
counterparts the campaign merge folds shard results through:

* :class:`OnlineMoments` — running count/sum/min/max plus Welford's
  M2, merged across shards with Chan's parallel update.  The mean is
  served from the plain running sum, so pushing values in the same
  order as a ``sum(xs) / len(xs)`` computes the *bit-identical* float.
* :class:`P2Quantile` — the Jain & Chlamtac P² algorithm (five markers,
  parabolic adjustment) with an **exact-small-N fallback**: below
  ``exact_limit`` observations the estimator keeps the raw values and
  answers through :func:`.streams.percentile`, so small shards (and
  every existing test-sized stream) see exact quantiles; past the
  limit the state is five markers regardless of stream length.
* :class:`BoundedTimeline` — deterministic stride-doubling decimation
  of a (cycle, value) series; never stores more than ``max_points``.
* :class:`StreamAccumulator` — the record-level fold used by campaign
  merges: consumes ``RunResult.apps`` rows and produces the
  ANTT/STP/slowdown/percentile scorecard without retaining records.

Determinism contract: every estimator is a pure fold — state depends
only on the pushed values and their order, merges are explicit binary
operations, and nothing reads clocks or global RNG state.  The
campaign layer always folds shards in shard-index order, so a resumed
campaign reproduces the uninterrupted result byte-for-byte.

Accuracy contract (documented for the property tests): with at most
``exact_limit`` observations all answers are exact; beyond it the mean
/ min / max / sums stay exact and P² quantiles are approximations —
on smooth unimodal data the error is typically well under 1% of the
value spread, and the tests in ``tests/analysis/test_incremental.py``
pin a 5%-of-range tolerance on mixed workload shapes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .streams import percentile

#: Default size of the exact-fallback buffer: quantiles over streams of
#: at most this many values are exact (and byte-identical to
#: :func:`.streams.percentile`).
DEFAULT_EXACT_LIMIT = 64


class OnlineMoments:
    """Running count / mean / variance / min / max of a value stream.

    ``mean`` divides a plain left-to-right running sum, so it is
    bit-identical to ``sum(xs) / len(xs)`` over the same push order.
    ``variance`` comes from Welford's M2 update (population variance),
    merged across shards with Chan's formula.
    """

    __slots__ = ("count", "total", "m2", "minimum", "maximum", "_mean")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._mean = 0.0  # Welford running mean, feeds M2 only

    def push(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self.m2 += delta * (value - self._mean)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of an empty moment accumulator")
        return self.total / self.count

    @property
    def variance(self) -> float:
        """Population variance (0.0 for a single observation)."""
        if self.count == 0:
            raise ValueError("variance of an empty moment accumulator")
        return self.m2 / self.count

    def merge(self, other: "OnlineMoments") -> "OnlineMoments":
        """Chan's parallel combine: ``self`` then ``other``, new object."""
        out = OnlineMoments()
        if self.count == 0 and other.count == 0:
            return out
        out.count = self.count + other.count
        out.total = self.total + other.total
        if self.count == 0 or other.count == 0:
            src = other if self.count == 0 else self
            out.m2 = src.m2
            out._mean = src._mean
            out.minimum = src.minimum
            out.maximum = src.maximum
            return out
        delta = other._mean - self._mean
        out._mean = (self._mean
                     + delta * other.count / out.count)
        out.m2 = (self.m2 + other.m2
                  + delta * delta * self.count * other.count / out.count)
        out.minimum = min(self.minimum, other.minimum)
        out.maximum = max(self.maximum, other.maximum)
        return out

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"count": self.count, "sum": self.total}
        if self.count:
            data.update(mean=self.mean, variance=self.variance,
                        min=self.minimum, max=self.maximum)
        return data


#: Marker quantile increments for P² (``p`` the target as a fraction):
#: min, halfway below, target, halfway above, max.
def _p2_increments(p: float) -> Tuple[float, ...]:
    return (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)


class P2Quantile:
    """P² streaming quantile with an exact-small-N fallback.

    `q` is the percentile in ``[0, 100]`` (matching
    :func:`.streams.percentile`).  Up to `exact_limit` observations the
    raw values are buffered and :meth:`value` is the exact
    linear-interpolation percentile; the first push past the limit
    promotes the state to the five P² markers (seeded by replaying the
    buffer in insertion order) and the memory footprint stays constant
    from then on.
    """

    __slots__ = ("q", "exact_limit", "count", "_buffer",
                 "_heights", "_positions", "_desired")

    def __init__(self, q: float, exact_limit: int = DEFAULT_EXACT_LIMIT
                 ) -> None:
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if exact_limit < 5:
            raise ValueError("exact_limit must be >= 5 (P2 needs five "
                             "markers)")
        self.q = float(q)
        self.exact_limit = int(exact_limit)
        self.count = 0
        #: raw values in insertion order while in the exact regime;
        #: ``None`` once promoted to markers.
        self._buffer: Optional[List[float]] = []
        self._heights: List[float] = []
        self._positions: List[int] = []
        self._desired: List[float] = []

    @property
    def exact(self) -> bool:
        """True while answers are exact (buffered regime)."""
        return self._buffer is not None

    def push(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if self._buffer is not None:
            self._buffer.append(value)
            if len(self._buffer) > self.exact_limit:
                self._promote()
            return
        self._p2_push(value)

    def _promote(self) -> None:
        """Replay the buffer through the marker updates and drop it."""
        values, self._buffer = self._buffer, None
        for v in values:
            self._p2_push(v)

    def _p2_push(self, value: float) -> None:
        """One marker update; ``count`` is managed by :meth:`push`."""
        h, n = self._heights, self._positions
        if len(h) < 5:
            h.append(value)
            h.sort()
            if len(h) == 5:
                p = self.q / 100.0
                self._positions = [1, 2, 3, 4, 5]
                self._desired = [1.0 + 4.0 * dn
                                 for dn in _p2_increments(p)]
            return
        # Locate the cell and clamp the extremes.
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = 0
            while k < 3 and not value < h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1
        for i, dn in enumerate(_p2_increments(self.q / 100.0)):
            self._desired[i] += dn
        # Adjust the three interior markers toward their desired ranks.
        for i in (1, 2, 3):
            d = self._desired[i] - n[i]
            if ((d >= 1.0 and n[i + 1] - n[i] > 1)
                    or (d <= -1.0 and n[i - 1] - n[i] < -1)):
                step = 1 if d >= 1.0 else -1
                candidate = self._parabolic(i, step)
                if not h[i - 1] < candidate < h[i + 1]:
                    candidate = self._linear(i, step)
                h[i] = candidate
                n[i] += step

    def _parabolic(self, i: int, d: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1])
            / (n[i] - n[i - 1]))

    def _linear(self, i: int, d: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + d * (h[i + d] - h[i]) / (n[i + d] - n[i])

    def value(self) -> float:
        """The current quantile estimate (exact in the buffered regime)."""
        if self.count == 0:
            raise ValueError("quantile of an empty estimator")
        if self._buffer is not None:
            return percentile(self._buffer, self.q)
        if len(self._heights) < 5:
            return percentile(self._heights, self.q)
        return float(self._heights[2])

    def merge(self, other: "P2Quantile") -> "P2Quantile":
        """Deterministic binary combine (``self`` ⊕ ``other``).

        *Both buffered and the union fits*: concatenate the buffers —
        the merge is exact.  *Otherwise*: replay buffered values into
        the promoted side, or — when both sides are promoted —
        count-weight the marker heights (endpoints take the true
        min/max).  The approximation is deterministic; accuracy is
        covered by the documented tolerance.
        """
        if (self.q, self.exact_limit) != (other.q, other.exact_limit):
            raise ValueError("cannot merge estimators with different "
                             "q/exact_limit")
        if other.count == 0:
            return self._copy()
        if self.count == 0:
            return other._copy()
        if (self._buffer is not None and other._buffer is not None
                and self.count + other.count <= self.exact_limit):
            out = P2Quantile(self.q, self.exact_limit)
            for v in self._buffer + other._buffer:
                out.push(v)
            return out
        if self._buffer is not None or other._buffer is not None:
            promoted = other if self._buffer is not None else self
            buffered = self if self._buffer is not None else other
            out = promoted._copy()
            for v in buffered._buffer:
                out.push(v)
            return out
        out = P2Quantile(self.q, self.exact_limit)
        out._buffer = None
        total = self.count + other.count
        wa, wb = self.count / total, other.count / total
        out._heights = [a * wa + b * wb
                        for a, b in zip(self._heights, other._heights)]
        out._heights[0] = min(self._heights[0], other._heights[0])
        out._heights[4] = max(self._heights[4], other._heights[4])
        p = self.q / 100.0
        out._desired = [1.0 + (total - 1) * dn
                        for dn in _p2_increments(p)]
        positions: List[int] = []
        for want in out._desired:
            pos = int(round(want))
            if positions:
                pos = max(pos, positions[-1] + 1)
            positions.append(max(1, pos))
        positions[-1] = max(total, positions[-1])
        out._positions = positions
        out.count = total
        return out

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"q": self.q, "count": self.count,
                                "exact": self.exact}
        if self.count:
            data["value"] = self.value()
        return data

    def _copy(self) -> "P2Quantile":
        out = P2Quantile(self.q, self.exact_limit)
        out.count = self.count
        out._buffer = list(self._buffer) if self._buffer is not None \
            else None
        out._heights = list(self._heights)
        out._positions = list(self._positions)
        out._desired = list(self._desired)
        return out


class BoundedTimeline:
    """A (cycle, value) series that never stores more than `max_points`.

    Deterministic stride-doubling decimation: points are kept every
    ``stride`` pushes; when the store fills, every other kept point is
    dropped and the stride doubles.  The result is an evenly thinned
    timeline whose shape depends only on the pushed sequence.
    """

    __slots__ = ("max_points", "stride", "_index", "_points")

    def __init__(self, max_points: int = 512) -> None:
        if max_points < 2:
            raise ValueError("max_points must be >= 2")
        self.max_points = int(max_points)
        self.stride = 1
        self._index = 0
        self._points: List[Tuple[int, float]] = []

    def push(self, cycle: int, value: float) -> None:
        if self._index % self.stride == 0:
            self._points.append((int(cycle), float(value)))
            if len(self._points) > self.max_points:
                self._points = self._points[::2]
                self.stride *= 2
        self._index += 1

    def points(self) -> List[List[float]]:
        """The kept timeline as ``[[cycle, value], ...]`` (JSON-ready)."""
        return [[c, v] for c, v in self._points]

    def __len__(self) -> int:
        return len(self._points)


class StreamAccumulator:
    """O(1)-state fold over per-application stream records.

    Consumes the ``RunResult.apps`` row schema (``arrival_cycle`` /
    ``start_cycle`` / ``finish_cycle`` / ``solo_cycles``) and produces
    the :class:`.streams.StreamSummary` scorecard figures without
    retaining the records.  Sums and means are pushed left-to-right,
    so over a single stream the ANTT / STP / service-slowdown figures
    are bit-identical to the in-memory :func:`.streams.summarize_stream`
    path; quantiles are exact up to `exact_limit` records.
    """

    QUANTILES = (50, 90, 99)

    def __init__(self, exact_limit: int = DEFAULT_EXACT_LIMIT) -> None:
        self.apps = 0
        self.antt = OnlineMoments()
        self.stp = OnlineMoments()
        self.service = OnlineMoments()
        self.wait: Dict[int, P2Quantile] = {
            q: P2Quantile(q, exact_limit) for q in self.QUANTILES}
        self.latency: Dict[int, P2Quantile] = {
            q: P2Quantile(q, exact_limit) for q in self.QUANTILES}

    def push(self, arrival_cycle: int, start_cycle: int,
             finish_cycle: int, solo_cycles: int) -> None:
        solo = int(solo_cycles)
        turnaround = finish_cycle - arrival_cycle
        wait = float(start_cycle - arrival_cycle)
        service = finish_cycle - start_cycle
        self.apps += 1
        # Same clamping as metrics.average_normalized_turnaround /
        # weighted_speedup so the running sums match them bit-for-bit.
        self.antt.push(turnaround / max(1, solo))
        self.stp.push(solo / max(1, turnaround))
        self.service.push(service / max(1, solo))
        for q in self.QUANTILES:
            self.wait[q].push(wait)
            self.latency[q].push(turnaround)

    def push_app(self, app: Mapping[str, Any]) -> None:
        """Consume one ``RunResult.apps`` row."""
        self.push(app["arrival_cycle"], app["start_cycle"],
                  app["finish_cycle"], app["solo_cycles"])

    def merge(self, other: "StreamAccumulator") -> "StreamAccumulator":
        out = StreamAccumulator()
        out.apps = self.apps + other.apps
        out.antt = self.antt.merge(other.antt)
        out.stp = self.stp.merge(other.stp)
        out.service = self.service.merge(other.service)
        out.wait = {q: self.wait[q].merge(other.wait[q])
                    for q in self.QUANTILES}
        out.latency = {q: self.latency[q].merge(other.latency[q])
                       for q in self.QUANTILES}
        return out

    def metrics(self) -> Dict[str, float]:
        """The scorecard figures (0.0-valued when no records were seen,
        matching the empty-stream semantics of ``summarize_stream``)."""
        if self.apps == 0:
            data = {"apps": 0, "antt": 0.0, "antt_variance": 0.0,
                    "stp": 0.0, "service_slowdown": 0.0}
            for q in self.QUANTILES:
                data[f"wait_p{q}"] = 0.0
                data[f"latency_p{q}"] = 0.0
            return data
        data = {
            "apps": self.apps,
            "antt": self.antt.mean,
            "antt_variance": self.antt.variance,
            "stp": self.stp.total,
            "service_slowdown": self.service.mean,
        }
        for q in self.QUANTILES:
            data[f"wait_p{q}"] = self.wait[q].value()
            data[f"latency_p{q}"] = self.latency[q].value()
        return data

"""Stream metrics: how well an online policy served an arrival stream.

Works on the per-application records of a
:class:`repro.runtime.StreamOutcome` (duck-typed: anything exposing
``records`` with ``arrival_cycle`` / ``start_cycle`` / ``finish_cycle``
per app, plus ``policy`` / ``makespan`` / ``total_instructions``).

Metric definitions (standard multi-programming metrics, solo times from
the profiler):

* **ANTT** — average normalized turnaround time: mean over apps of
  ``(finish − arrival) / solo``; 1.0 is a private machine with no
  queueing, lower is better.
* **STP** — system throughput: ``Σ solo / (finish − arrival)``, the
  number of "solo machines" the shared device replaced.
* **service slowdown** — mean ``(finish − start) / solo``: interference
  only, the §3.2.2 slowdown without the queueing wait.
* **wait / latency percentiles** — distribution of queueing wait
  (``start − arrival``) and completion latency (``finish − arrival``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence

from .metrics import average_normalized_turnaround, weighted_speedup


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100])."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = q / 100.0 * (len(ordered) - 1)
    low = int(rank)
    frac = rank - low
    if low + 1 >= len(ordered):
        return float(ordered[-1])
    return ordered[low] * (1.0 - frac) + ordered[low + 1] * frac


@dataclass(frozen=True)
class StreamSummary:
    """One policy's scorecard over one arrival stream."""

    policy: str
    apps: int
    makespan: int
    device_throughput: float
    utilization: float
    antt: float
    stp: float
    service_slowdown: float
    wait_p50: float
    wait_p90: float
    wait_p99: float
    latency_p50: float
    latency_p90: float
    latency_p99: float


def per_app_slowdown(outcome, solo_cycles: Mapping[str, int]
                     ) -> Dict[str, float]:
    """Per-app normalized turnaround ``(finish − arrival) / solo``."""
    out = {}
    for name, rec in outcome.records.items():
        out[name] = rec.turnaround_cycles / max(1, solo_cycles[name])
    return out


def deadline_attainment(records: Mapping[str, Any],
                        deadline_cycles: int) -> float:
    """Fraction of served applications finishing within the deadline.

    An application attains its deadline when its turnaround (arrival →
    finish) is at most `deadline_cycles`.  Only *served* records count —
    rejected arrivals never attain anything, so SLO reporting divides
    by arrivals separately when it wants the stricter figure.
    """
    if deadline_cycles <= 0:
        raise ValueError(f"deadline_cycles must be > 0, got "
                         f"{deadline_cycles!r}")
    if not records:
        raise ValueError("deadline attainment of an empty record set")
    met = sum(1 for rec in records.values()
              if rec.turnaround_cycles <= deadline_cycles)
    return met / len(records)


def _empty_summary(outcome) -> StreamSummary:
    """Defined zero-completion semantics: a stream where nothing was
    served (e.g. every arrival rejected by admission control) summarizes
    to an all-zero scorecard instead of crashing in ``percentile()``.
    Zeros (not NaN) keep the summary JSON-portable — strict JSON has no
    NaN literal — and ``apps == 0`` is the unambiguous emptiness flag.
    """
    return StreamSummary(
        policy=outcome.policy, apps=0, makespan=outcome.makespan,
        device_throughput=outcome.device_throughput,
        utilization=outcome.utilization,
        antt=0.0, stp=0.0, service_slowdown=0.0,
        wait_p50=0.0, wait_p90=0.0, wait_p99=0.0,
        latency_p50=0.0, latency_p90=0.0, latency_p99=0.0)


def _streaming_summary(outcome, records, solo_cycles) -> StreamSummary:
    """O(1)-memory scorecard via :mod:`.incremental` estimators."""
    from .incremental import StreamAccumulator
    acc = StreamAccumulator()
    for rec in records:
        acc.push(rec.arrival_cycle, rec.start_cycle, rec.finish_cycle,
                 solo_cycles[rec.name])
    m = acc.metrics()
    return StreamSummary(
        policy=outcome.policy, apps=acc.apps, makespan=outcome.makespan,
        device_throughput=outcome.device_throughput,
        utilization=outcome.utilization,
        antt=m["antt"], stp=m["stp"],
        service_slowdown=m["service_slowdown"],
        wait_p50=m["wait_p50"], wait_p90=m["wait_p90"],
        wait_p99=m["wait_p99"],
        latency_p50=m["latency_p50"], latency_p90=m["latency_p90"],
        latency_p99=m["latency_p99"])


def summarize_stream(outcome, solo_cycles: Mapping[str, int],
                     streaming: bool = False) -> StreamSummary:
    """Compute the :class:`StreamSummary` of one stream outcome.

    With ``streaming=True`` the percentiles come from the
    bounded-memory estimators in :mod:`.incremental` instead of sorted
    in-memory lists — exact (bit-identical) below the estimators'
    ``exact_limit``, within the documented P² tolerance above it.  The
    default in-memory path is untouched either way.
    """
    records = list(outcome.records.values())
    if not records:
        return _empty_summary(outcome)
    missing = [r.name for r in records if r.name not in solo_cycles]
    if missing:
        raise ValueError(f"missing solo cycles for: {', '.join(missing)}")
    if streaming:
        return _streaming_summary(outcome, records, solo_cycles)

    # ANTT / STP come from the shared metric definitions in
    # :mod:`.metrics`, fed with turnaround (arrival → finish) as the
    # "shared" time — one source of truth with the batch figures.
    solo = {r.name: solo_cycles[r.name] for r in records}
    turnaround = {r.name: r.turnaround_cycles for r in records}
    service: List[float] = []
    waits: List[float] = []
    latencies: List[float] = []
    for rec in records:
        service.append(rec.service_cycles / max(1, solo[rec.name]))
        waits.append(float(rec.wait_cycles))
        latencies.append(float(rec.turnaround_cycles))

    return StreamSummary(
        policy=outcome.policy,
        apps=len(records),
        makespan=outcome.makespan,
        device_throughput=outcome.device_throughput,
        utilization=outcome.utilization,
        antt=average_normalized_turnaround(solo, turnaround),
        stp=weighted_speedup(solo, turnaround),
        service_slowdown=sum(service) / len(service),
        wait_p50=percentile(waits, 50),
        wait_p90=percentile(waits, 90),
        wait_p99=percentile(waits, 99),
        latency_p50=percentile(latencies, 50),
        latency_p90=percentile(latencies, 90),
        latency_p99=percentile(latencies, 99),
    )

"""Virtual-clock tracing: typed events, a recording tracer, exporters.

Every interesting decision of the execution loops — arrivals, admission
verdicts, placement choices with per-candidate scores, launches, group
retirements, faults, recoveries, requeues, speculation predict/hit/miss
and run-ahead window open/commit/rollback — becomes one
:class:`TraceEvent` stamped with the **virtual** cycle at which it
happened.  Wall-clock time never appears in an event, which is what
makes a trace comparable across worker counts: the same scenario run at
``--workers 1`` and ``--workers 4`` produces byte-identical traces.

Two exporters:

* :func:`export_jsonl` — one sorted-keys JSON object per line; the
  stable, diff-able, machine-checkable format
  (``tools/validate_trace.py`` lints it).
* :func:`export_chrome` — the Chrome ``trace_event`` JSON array format
  (load it in ``chrome://tracing`` or https://ui.perfetto.dev):
  devices map to processes, a device's group slots map to threads,
  virtual cycles map to microsecond timestamps.  Launch events carry
  their duration, so group executions render as solid spans.

The tracer is **rollback-aware by construction**: the fleet loop
detaches device/policy tracers while a run-ahead window executes
optimistically and re-emits only the committed entries (see
``cluster/fleet.py``), so a trace always describes the committed
timeline regardless of speculation strategy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Mapping, Optional, Tuple

#: Bumped when the shape of exported events changes incompatibly.
TRACE_SCHEMA_VERSION = 1

#: The closed event taxonomy (see docs/observability.md).  ``emit``
#: rejects unknown kinds so typos fail fast instead of producing
#: unvalidatable traces.
EVENT_KINDS: Tuple[str, ...] = (
    "arrival",          # application delivered to the loop
    "admission",        # admission-control verdict (admit/defer/reject)
    "reject",           # application dropped (no device will ever serve it)
    "placement",        # placement decision + per-candidate scores
    "plan",             # online policy (re)planned its backlog
    "launch",           # group started on a device
    "group_finish",     # group retired successfully
    "group_failed",     # group hit a transient fault and will retry
    "fault",            # device went DOWN
    "recover",          # device came back UP
    "requeue",          # displaced/failed work re-entered a queue
    "predict",          # speculation submitted pre-simulations
    "spec_hit",         # a needed group was already pre-simulated
    "spec_miss",        # a needed group had to be simulated on demand
    "window_open",      # Time-Warp run-ahead window opened
    "window_commit",    # window results committed to the real timeline
    "window_rollback",  # one device's optimistic window state discarded
)

_KIND_SET = frozenset(EVENT_KINDS)

#: Chrome trace_event process id used for fleet-level events (arrival,
#: admission, placement, windows) that belong to no single device.
#: Device ``d`` maps to pid ``d + 1``.
FLEET_PID = 0


@dataclass(frozen=True)
class TraceEvent:
    """One virtual-clock event.  Immutable, wall-clock free."""

    kind: str
    cycle: int
    device: Optional[int] = None
    app: str = ""
    data: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "cycle": self.cycle}
        if self.device is not None:
            out["device"] = self.device
        if self.app:
            out["app"] = self.app
        if self.data:
            out["data"] = dict(self.data)
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceEvent":
        return cls(kind=payload["kind"], cycle=payload["cycle"],
                   device=payload.get("device"), app=payload.get("app", ""),
                   data=dict(payload.get("data", {})))


class Tracer:
    """Tracer protocol: loops call :meth:`emit`, nothing else.

    The base class is also the explicit no-op — every loop guards its
    emissions with ``if tracer is not None`` instead, so the base class
    mostly documents the interface.
    """

    enabled = False

    def emit(self, kind: str, cycle: int, device: Optional[int] = None,
             app: str = "", **data: Any) -> None:
        """Record one event.  ``data`` must be JSON-serializable."""

    def __deepcopy__(self, memo: Dict[int, Any]) -> "Tracer":
        # Policies are deep-copied for speculative prediction and for
        # run-ahead window snapshots; a tracer riding along must stay
        # shared by identity, never duplicated (a copy would fork the
        # event list and double-emit on restore).
        return self


class RecordingTracer(Tracer):
    """Append-only in-memory tracer; the only concrete implementation.

    Events are kept in emission order, which for the serial commit path
    is the canonical order: non-decreasing per device, globally ordered
    by the coordinating loop's virtual clock.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, kind, cycle, device=None, app="", **data):
        if kind not in _KIND_SET:
            raise ValueError(f"unknown trace event kind {kind!r}")
        self.events.append(TraceEvent(kind=kind, cycle=int(cycle),
                                      device=device, app=app, data=data))

    def __len__(self) -> int:
        return len(self.events)


# -- exporters ---------------------------------------------------------------

def export_jsonl(events: Iterable[TraceEvent]) -> str:
    """One sorted-keys JSON object per line (trailing newline included)."""
    lines = [json.dumps(ev.to_dict(), sort_keys=True, separators=(",", ":"))
             for ev in events]
    return "\n".join(lines) + ("\n" if lines else "")


def _chrome_pid(event: TraceEvent) -> int:
    return FLEET_PID if event.device is None else event.device + 1


def export_chrome(events: Iterable[TraceEvent]) -> str:
    """Chrome ``trace_event`` JSON (the ``{"traceEvents": [...]}`` form).

    Mapping: device → process (pid = device + 1; pid 0 is the fleet
    coordinator), group slot → thread (tid = the device's running group
    index from the launch event, 0 otherwise), virtual cycle →
    timestamp in microseconds.  ``launch`` events become ``"X"``
    complete events spanning their group's cycles; everything else is
    an ``"i"`` instant.  Every exported event carries the original
    ``kind``/``app``/``data`` in ``args`` so a Chrome trace can be
    validated (and round-tripped) by ``tools/validate_trace.py``.
    """
    events = list(events)
    out: List[Dict[str, Any]] = []
    pids: Dict[int, str] = {FLEET_PID: "fleet"}
    for ev in events:
        if ev.device is not None:
            pids.setdefault(ev.device + 1, f"device {ev.device}")
    for pid in sorted(pids):
        out.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": pids[pid]}})
    for ev in events:
        pid = _chrome_pid(ev)
        args: Dict[str, Any] = {"kind": ev.kind}
        if ev.app:
            args["app"] = ev.app
        args.update(ev.data)
        entry: Dict[str, Any] = {
            "name": ev.kind if not ev.app else f"{ev.kind} {ev.app}",
            "cat": "repro", "pid": pid,
            "tid": int(ev.data.get("group_index", 0)),
            "ts": ev.cycle, "args": args,
        }
        if ev.kind == "launch" and "cycles" in ev.data:
            entry["ph"] = "X"
            entry["dur"] = int(ev.data["cycles"])
            entry["name"] = "group " + ",".join(ev.data.get("members", ()))
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        out.append(entry)
    return json.dumps({"traceEvents": out,
                       "displayTimeUnit": "ms",
                       "otherData": {"schema": TRACE_SCHEMA_VERSION}},
                      sort_keys=True, separators=(",", ":")) + "\n"


TRACE_FORMATS: Tuple[str, ...] = ("jsonl", "chrome")


def render_trace(events: Iterable[TraceEvent], fmt: str) -> str:
    if fmt == "jsonl":
        return export_jsonl(events)
    if fmt == "chrome":
        return export_chrome(events)
    raise ValueError(f"unknown trace format {fmt!r} "
                     f"(expected one of {TRACE_FORMATS})")


def write_trace(events: Iterable[TraceEvent], path: str, fmt: str) -> str:
    """Render ``events`` as ``fmt`` into ``path``; returns ``path``."""
    text = render_trace(events, fmt)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return path


def load_events(path: str) -> List[TraceEvent]:
    """Read a trace file (either format) back into events.

    JSONL loads verbatim.  Chrome traces are recognized by their
    ``traceEvents`` envelope and reconstructed from the ``args`` echo
    of each event (metadata records are skipped), so both formats are
    first-class inputs to the validator.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    # A Chrome trace is ONE JSON document with a "traceEvents" key;
    # JSONL is many lines that each parse alone (a multi-line file
    # fails the single-document parse with "Extra data").
    payload = None
    if stripped.startswith("{"):
        try:
            payload = json.loads(stripped)
        except ValueError:
            payload = None
    if isinstance(payload, dict) and "traceEvents" in payload:
        events: List[TraceEvent] = []
        for entry in payload.get("traceEvents", []):
            if entry.get("ph") == "M":
                continue
            args = dict(entry.get("args", {}))
            kind = args.pop("kind", None)
            if kind is None:
                continue
            app = args.pop("app", "")
            pid = entry.get("pid", FLEET_PID)
            device = None if pid == FLEET_PID else pid - 1
            events.append(TraceEvent(kind=kind, cycle=int(entry["ts"]),
                                     device=device, app=app, data=args))
        return events
    return [TraceEvent.from_dict(json.loads(line))
            for line in text.splitlines() if line.strip()]

"""Wall-clock phase profiling — strictly outside the virtual clock.

:class:`PhaseProfiler` times named phases of the host process
(``simulate`` / ``predict`` / ``commit-check`` / ``placement`` /
``solver`` / ``merge``) with ``time.perf_counter``.  Wall-clock numbers
never feed back into any scheduling decision, never enter a
:class:`~repro.obs.trace.TraceEvent`, and never reach the canonical
``RunResult`` JSON — they exist only for the ``--profile`` summary
table and the ``telemetry_overhead`` benchmark entry.

Usage::

    prof = PhaseProfiler()
    with prof.phase("placement"):
        device = placement.choose(entry, now, up, ctx)
    print(prof.format_table())

``phase()`` on a ``None`` profiler is the hot-path concern, so loops
guard with ``if profiler is not None`` — the context manager itself is
two ``perf_counter`` calls and a dict update.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Tuple

#: Canonical phase names used by the engines (callers may add more).
PHASES: Tuple[str, ...] = ("simulate", "predict", "commit-check",
                           "placement", "solver", "merge")


class PhaseProfiler:
    """Accumulates wall-clock time per named phase."""

    def __init__(self) -> None:
        #: name -> [calls, total_seconds, max_seconds]
        self._phases: Dict[str, List[float]] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            slot = self._phases.get(name)
            if slot is None:
                self._phases[name] = [1, elapsed, elapsed]
            else:
                slot[0] += 1
                slot[1] += elapsed
                if elapsed > slot[2]:
                    slot[2] = elapsed

    def __len__(self) -> int:
        return len(self._phases)

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """Phase → {calls, total_s, max_s, mean_s}, sorted by name."""
        out: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._phases):
            calls, total, peak = self._phases[name]
            out[name] = {"calls": int(calls),
                         "total_s": round(total, 6),
                         "max_s": round(peak, 6),
                         "mean_s": round(total / calls, 6) if calls else 0.0}
        return out

    def merge(self, other: "PhaseProfiler") -> None:
        for name, (calls, total, peak) in other._phases.items():
            slot = self._phases.get(name)
            if slot is None:
                self._phases[name] = [calls, total, peak]
            else:
                slot[0] += calls
                slot[1] += total
                if peak > slot[2]:
                    slot[2] = peak

    def format_table(self) -> str:
        """The ``--profile`` summary table (phases sorted by total time)."""
        rows = sorted(self._phases.items(), key=lambda kv: (-kv[1][1], kv[0]))
        if not rows:
            return "profile: no phases recorded"
        grand = sum(slot[1] for _, slot in rows) or 1.0
        lines = [f"{'phase':<14} {'calls':>8} {'total s':>10} "
                 f"{'mean ms':>10} {'max ms':>10} {'share':>7}"]
        for name, (calls, total, peak) in rows:
            mean_ms = 1e3 * total / calls if calls else 0.0
            lines.append(f"{name:<14} {int(calls):>8} {total:>10.4f} "
                         f"{mean_ms:>10.4f} {1e3 * peak:>10.4f} "
                         f"{100.0 * total / grand:>6.1f}%")
        return "\n".join(lines)

    def __deepcopy__(self, memo: Dict[int, Any]) -> "PhaseProfiler":
        return self

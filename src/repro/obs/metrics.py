"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

The registry follows the PR-7 ``SpeculationCounters`` discipline:
every update happens on the coordinating loop's thread, in **serial
commit order** — the order in which results are merged back from the
executor, which is identical at any worker count.  Worker processes
never touch a registry; whatever they compute flows back through the
executor's deterministic merge and is counted by the coordinator.  Two
runs of the same scenario therefore produce byte-identical
``to_dict()`` snapshots at ``--workers 1`` and ``--workers 4``.

Histograms use fixed power-of-two bucket edges instead of adaptive
ones: adaptive buckets would depend on observation order nuances and
float summaries; integer counts in pinned buckets compare with ``==``.

Nothing here is ever serialized into the canonical ``RunResult`` JSON
— the registry rides the same side-channel as ``RunResult.speculation``
(a ``ClassVar`` the dataclass serializer ignores).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Upper bucket edges for histograms: 1, 2, 4, ... 2**30, +inf.
#: Fixed and global so any two histograms merge bucket-by-bucket.
HISTOGRAM_EDGES: Tuple[int, ...] = tuple(1 << i for i in range(31))


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_value(self) -> int:
        return self.value


class Gauge:
    """Last-write-wins integer gauge that also remembers its peak."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.peak = 0

    def set(self, value: int) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def to_value(self) -> Dict[str, int]:
        return {"value": self.value, "peak": self.peak}


class Histogram:
    """Integer histogram over the fixed power-of-two edges."""

    __slots__ = ("name", "counts", "total", "count", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts = [0] * (len(HISTOGRAM_EDGES) + 1)
        self.total = 0
        self.count = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        value = int(value)
        idx = len(HISTOGRAM_EDGES)
        for i, edge in enumerate(HISTOGRAM_EDGES):
            if value <= edge:
                idx = i
                break
        self.counts[idx] += 1
        self.total += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def to_value(self) -> Dict[str, Any]:
        buckets = {}
        for i, n in enumerate(self.counts):
            if n:
                label = (f"le_{HISTOGRAM_EDGES[i]}"
                         if i < len(HISTOGRAM_EDGES) else "inf")
                buckets[label] = n
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max, "buckets": buckets}


class MetricsRegistry:
    """Name → instrument table, created on first touch.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create (a name
    is pinned to its first instrument type; mixing types is an error).
    ``merge`` folds another registry in — used by ``run_fleet`` to fold
    per-device registries into the run registry in device-id order,
    i.e. the same serial commit order the result merge uses.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(f"metric {name!r} is a "
                            f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def to_dict(self) -> Dict[str, Any]:
        """Sorted, JSON-ready snapshot — the comparison currency."""
        return {name: self._metrics[name].to_value()
                for name in sorted(self._metrics)}

    def merge(self, other: "MetricsRegistry") -> None:
        for name in sorted(other._metrics):
            metric = other._metrics[name]
            if isinstance(metric, Counter):
                self.counter(name).inc(metric.value)
            elif isinstance(metric, Gauge):
                mine = self.gauge(name)
                mine.set(metric.value)
                if metric.peak > mine.peak:
                    mine.peak = metric.peak
            elif isinstance(metric, Histogram):
                mine = self.histogram(name)
                for i, n in enumerate(metric.counts):
                    mine.counts[i] += n
                mine.total += metric.total
                mine.count += metric.count
                for bound in (metric.min,):
                    if bound is not None:
                        mine.min = (bound if mine.min is None
                                    else min(mine.min, bound))
                for bound in (metric.max,):
                    if bound is not None:
                        mine.max = (bound if mine.max is None
                                    else max(mine.max, bound))

    def __deepcopy__(self, memo: Dict[int, Any]) -> "MetricsRegistry":
        # Shared by identity for the same reason as Tracer: snapshots
        # of policies/devices must not fork the instrument table.
        return self

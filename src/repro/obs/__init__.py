"""Deterministic observability: tracing, metrics, profiling.

Three instruments, one bundle (:class:`Telemetry`), zero overhead when
off — every emission site in the execution loops is guarded by a plain
``is not None`` check, so a run without telemetry executes the exact
seed code path:

* :mod:`.trace` — virtual-clock :class:`TraceEvent` stream with JSONL
  and Chrome ``trace_event`` exporters (open a fleet run in Perfetto).
* :mod:`.metrics` — deterministic, worker-count-invariant counters /
  gauges / histograms in the ``SpeculationCounters`` discipline.
* :mod:`.profiling` — wall-clock phase timers for ``--profile``,
  strictly outside the virtual-clock path.

The hard invariant (tested, CI-enforced): canonical ``RunResult`` JSON
is byte-identical with telemetry off vs on, at any worker count.
Telemetry observes the timeline; it never participates in it.

Registry kinds (``REGISTRY`` kind ``"telemetry"``): ``none`` (no-op,
canonicalized away by :class:`~repro.api.scenario.TelemetrySpec`),
``trace``, ``metrics``, ``profile``, ``full``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.api.registry import REGISTRY

from .metrics import (Counter, Gauge, Histogram, HISTOGRAM_EDGES,
                      MetricsRegistry)
from .profiling import PHASES, PhaseProfiler
from .trace import (EVENT_KINDS, FLEET_PID, TRACE_FORMATS,
                    TRACE_SCHEMA_VERSION, RecordingTracer, TraceEvent,
                    Tracer, export_chrome, export_jsonl, load_events,
                    render_trace, write_trace)

__all__ = [
    "Telemetry", "make_telemetry",
    "Tracer", "RecordingTracer", "TraceEvent", "EVENT_KINDS",
    "TRACE_FORMATS", "TRACE_SCHEMA_VERSION", "FLEET_PID",
    "export_jsonl", "export_chrome", "render_trace", "write_trace",
    "load_events",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "HISTOGRAM_EDGES",
    "PhaseProfiler", "PHASES",
]


class Telemetry:
    """The bundle threaded through engines: tracer + metrics + profiler.

    Any of the three may be ``None`` (the registry kinds build the
    combinations).  ``sinks``/``path`` remember where a trace should be
    written; :meth:`export` performs the writes after a run.  A single
    sink writes ``path`` verbatim; multiple sinks write
    ``{path}.{format}`` each so both renderings of one run can coexist.
    """

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 profiler: Optional[PhaseProfiler] = None,
                 sinks: Sequence[str] = (), path: str = "") -> None:
        for fmt in sinks:
            if fmt not in TRACE_FORMATS:
                raise ValueError(f"unknown trace sink {fmt!r} "
                                 f"(expected one of {TRACE_FORMATS})")
        if sinks and not path:
            raise ValueError("telemetry sinks need a path")
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        self.sinks = tuple(sinks)
        self.path = path

    @property
    def events(self) -> List[TraceEvent]:
        if isinstance(self.tracer, RecordingTracer):
            return self.tracer.events
        return []

    def sink_paths(self) -> Dict[str, str]:
        if not self.sinks or not self.path:
            return {}
        if len(self.sinks) == 1:
            return {self.sinks[0]: self.path}
        return {fmt: f"{self.path}.{fmt}" for fmt in self.sinks}

    def export(self) -> List[str]:
        """Write every configured sink; returns the paths written."""
        written = []
        for fmt, path in self.sink_paths().items():
            written.append(write_trace(self.events, path, fmt))
        return written

    def snapshot(self) -> Dict[str, Any]:
        """Side-channel summary for ``RunResult.telemetry``.

        Everything except ``profile`` is deterministic and
        worker-count-invariant; ``profile`` is wall-clock and exists
        for human eyes only.  None of this ever enters the canonical
        result JSON.
        """
        out: Dict[str, Any] = {}
        if self.tracer is not None:
            out["events"] = len(self.events)
        if self.metrics is not None:
            out["metrics"] = self.metrics.to_dict()
        if self.profiler is not None:
            out["profile"] = self.profiler.to_dict()
        return out

    def __deepcopy__(self, memo: Dict[int, Any]) -> "Telemetry":
        return self


# -- registry wiring ---------------------------------------------------------

def _make_none(sinks: Sequence[str] = (), path: str = "") -> None:
    return None


def _make_trace(sinks: Sequence[str] = (), path: str = "") -> Telemetry:
    return Telemetry(tracer=RecordingTracer(), sinks=sinks, path=path)


def _make_metrics(sinks: Sequence[str] = (), path: str = "") -> Telemetry:
    return Telemetry(metrics=MetricsRegistry())


def _make_profile(sinks: Sequence[str] = (), path: str = "") -> Telemetry:
    return Telemetry(profiler=PhaseProfiler())


def _make_full(sinks: Sequence[str] = (), path: str = "") -> Telemetry:
    return Telemetry(tracer=RecordingTracer(), metrics=MetricsRegistry(),
                     profiler=PhaseProfiler(), sinks=sinks, path=path)


REGISTRY.register("telemetry", "none", _make_none)
REGISTRY.register("telemetry", "trace", _make_trace)
REGISTRY.register("telemetry", "metrics", _make_metrics)
REGISTRY.register("telemetry", "profile", _make_profile)
REGISTRY.register("telemetry", "full", _make_full)


def make_telemetry(kind: str, sinks: Sequence[str] = (),
                   path: str = "") -> Optional[Telemetry]:
    """Build the telemetry bundle registered under ``kind``."""
    return REGISTRY.create("telemetry", kind, sinks=tuple(sinks), path=path)

"""Pattern enumeration for the contention-minimization ILP (§3.2.3).

A *pattern* is a multiset of ``NC`` application classes that could run
concurrently — Eq. 3.1 writes it as a count vector over the ``NT``
classes.  The number of patterns is ``NP = C(NT + NC - 1, NC)`` (Eq. 3.2):
10 for two concurrent applications over four classes, 20 for three.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from .classification import CLASS_ORDER, NUM_CLASSES, AppClass


@dataclass(frozen=True)
class Pattern:
    """A multiset of classes of size NC, as a count vector (Eq. 3.1)."""

    counts: Tuple[int, ...]

    def __post_init__(self):
        if len(self.counts) != NUM_CLASSES:
            raise ValueError("pattern must have one count per class")
        if any(c < 0 for c in self.counts):
            raise ValueError("pattern counts must be non-negative")

    @property
    def size(self) -> int:
        """NC — how many applications the pattern describes."""
        return sum(self.counts)

    @property
    def classes(self) -> Tuple[AppClass, ...]:
        """The multiset expanded to a class tuple, e.g. (MC, MC)."""
        out: List[AppClass] = []
        for cls, count in zip(CLASS_ORDER, self.counts):
            out.extend([cls] * count)
        return tuple(out)

    def count_of(self, app_class: AppClass) -> int:
        return self.counts[CLASS_ORDER.index(app_class)]

    @property
    def label(self) -> str:
        """Human-readable form, e.g. ``"M-C"`` or ``"MC-MC-A"``."""
        return "-".join(str(c) for c in self.classes)

    @classmethod
    def from_classes(cls, classes: Iterable[AppClass]) -> "Pattern":
        counts = [0] * NUM_CLASSES
        for c in classes:
            counts[CLASS_ORDER.index(c)] += 1
        return cls(tuple(counts))


def num_patterns(nc: int, nt: int = NUM_CLASSES) -> int:
    """NP of Eq. 3.2: multisets of size `nc` over `nt` classes."""
    return math.comb(nt + nc - 1, nc)


def enumerate_patterns(nc: int) -> List[Pattern]:
    """All patterns of size `nc`, in lexicographic class order.

    For NC=2 this reproduces the Appendix A listing:
    M-M, M-MC, M-C, M-A, MC-MC, MC-C, MC-A, C-C, C-A, A-A.
    """
    if nc < 1:
        raise ValueError("NC must be >= 1")
    patterns = [
        Pattern.from_classes(combo)
        for combo in itertools.combinations_with_replacement(CLASS_ORDER, nc)
    ]
    assert len(patterns) == num_patterns(nc)
    return patterns


def pattern_matrix(patterns: Sequence[Pattern]) -> List[List[int]]:
    """The [P1 P2 ... PNP] matrix of Eq. 3.6 (rows = classes)."""
    return [[p.counts[row] for p in patterns] for row in range(NUM_CLASSES)]

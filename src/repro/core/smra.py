"""Dynamic SM reallocation — Algorithm 1 of §3.2.4 (SMRA).

Every ``TC`` cycles the controller samples per-application IPC and DRAM
bandwidth utilization over the window, scores each application
(+1 for IPC below ``IPCthr``, +2 for bandwidth above ``BWthr`` — so an
app hitting both scores 3, exactly the paper's "if both conditions are
true then V[i] = 3"), and migrates ``nr`` SMs from the highest-scoring
application (low IPC and/or memory-hog: it wastes compute resources) to
the lowest-scoring one.  If device throughput dropped since the previous
window, the last migration is rolled back.  An application is never
driven below ``Rmin`` SMs; at the floor its score is pinned negative so
it becomes a preferred *recipient*, per the paper's description.

SM migration uses the paper's method 3: the SM finishes its resident
blocks, then flips to the new owner (implemented by the work
distributor / SM drain logic in :mod:`repro.gpusim`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.gpusim import GPU, Callback, GPUConfig


@dataclass(frozen=True)
class SMRAParams:
    """Tunables of Algorithm 1."""

    interval: int = 3000          # TC: cycles between reallocation decisions
    ipc_thr: float = 150.0        # IPCthr (thread-instructions / cycle)
    bw_thr: float = 0.45          # BWthr as a fraction of peak DRAM bandwidth
    nr: int = 2                   # SMs moved per decision
    r_min: int = 4                # Rmin: minimum SMs per application

    def __post_init__(self):
        if self.interval < 1 or self.nr < 1 or self.r_min < 1:
            raise ValueError("interval, nr and r_min must be positive")


@dataclass
class SMRADecision:
    """Record of one controller tick (for analysis / tests)."""

    cycle: int
    throughput: float
    scores: Dict[int, int]
    moved_from: Optional[int] = None
    moved_to: Optional[int] = None
    moved_sms: int = 0
    reverted: bool = False


class SMRAController:
    """Algorithm 1, attached to a GPU run as a periodic callback."""

    def __init__(self, params: SMRAParams = SMRAParams()):
        self.params = params
        self.decisions: List[SMRADecision] = []
        self._prev_throughput: Optional[float] = None
        self._last_move: Optional[Tuple[int, int, int]] = None

    def callback(self) -> Callback:
        return Callback(self.params.interval, self._tick)

    # -- internals ----------------------------------------------------------
    def _running_apps(self, gpu: GPU) -> List[int]:
        return [app_id for app_id, app in gpu.apps.items() if not app.finished]

    def _move_sms(self, gpu: GPU, src: int, dst: int, count: int) -> int:
        """Migrate up to `count` SMs from app `src` to app `dst`."""
        src_sms = gpu.distributor.sms_of(src)
        movable = len(src_sms) - self.params.r_min
        count = min(count, max(0, movable))
        moved = 0
        # Prefer idle SMs (they flip instantly); busy ones drain first
        # per the paper's method 3 and only migrate when none are idle.
        ordered = sorted(src_sms,
                         key=lambda i: (not gpu.sms[i].idle, -i))
        for sm_index in ordered:
            if moved >= count:
                break
            gpu.distributor.set_sm_owner(sm_index, dst)
            moved += 1
        return moved

    def _tick(self, gpu: GPU, now: int) -> None:
        params = self.params
        running = self._running_apps(gpu)
        board = gpu.stats

        # Window statistics (inputs (i)-(iii) of Algorithm 1).
        window_instr = 0
        window_cycles = 1
        samples = {}
        for app_id in running:
            sample = board.window_delta(app_id, now)
            samples[app_id] = sample
            window_instr += sample.thread_instructions
            window_cycles = max(window_cycles, sample.cycles)
        throughput = window_instr / window_cycles
        decision = SMRADecision(cycle=now, throughput=throughput, scores={})

        if len(running) < 2:
            board.mark_window(now)
            self._prev_throughput = throughput
            self._last_move = None
            self.decisions.append(decision)
            return

        # Rollback: the previous move hurt device throughput.
        if (self._last_move is not None and self._prev_throughput is not None
                and throughput < self._prev_throughput):
            src, dst, count = self._last_move
            if src in running and dst in running:
                self._move_sms(gpu, dst, src, count)
                decision.reverted = True
            self._last_move = None
            self._prev_throughput = throughput
            board.mark_window(now)
            self.decisions.append(decision)
            return

        # Scoring.
        scores: Dict[int, int] = {}
        for app_id in running:
            sample = samples[app_id]
            score = 0
            if sample.ipc < params.ipc_thr:
                score += 1
            if sample.bandwidth_utilization(gpu.config) > params.bw_thr:
                score += 2
            if len(gpu.distributor.sms_of(app_id)) <= params.r_min:
                score = -1  # at the floor: becomes a preferred recipient
            scores[app_id] = score
        decision.scores = scores

        worst = max(running, key=lambda a: (scores[a], a))
        best = min(running, key=lambda a: (scores[a], a))
        if scores[worst] > scores[best]:
            moved = self._move_sms(gpu, worst, best, params.nr)
            if moved:
                decision.moved_from, decision.moved_to = worst, best
                decision.moved_sms = moved
                self._last_move = (worst, best, moved)
            else:
                self._last_move = None
        else:
            self._last_move = None

        self._prev_throughput = throughput
        board.mark_window(now)
        self.decisions.append(decision)

    @property
    def total_migrations(self) -> int:
        return sum(d.moved_sms for d in self.decisions)

    @property
    def total_rollbacks(self) -> int:
        return sum(1 for d in self.decisions if d.reverted)

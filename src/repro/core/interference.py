"""Per-class interference measurement (§3.2.2, Fig. 3.4).

Every class is co-run against every other class (via representative
benchmark pairs on an evenly split device) and the slowdown of each side
relative to its solo execution is recorded.  Aggregating by class pair
yields the slowdown matrix ``S[i][j]`` — the average slowdown a class-*i*
application suffers when co-executing with a class-*j* application — from
which the ILP's inverse-slowdown coefficients (Eq. 3.4) are computed.

For three concurrent applications the pairwise matrix is composed
additively: ``S(a | {b, c}) = S[a][b] + S[a][c] − 1`` (excess slowdowns
add).  The paper states its two-application methodology "can be
replicated for three application execution" without giving the
composition rule; the additive model is the standard first-order choice
and is validated against direct 3-way co-runs in the test suite.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.gpusim import (ENGINE_VERSION, Application, GPUConfig, KernelSpec,
                          simulate)

from .classification import (CLASS_ORDER, NUM_CLASSES, AppClass,
                             ClassificationThresholds, classify)
from .patterns import Pattern
from .profiling import CacheDir, Profiler, fingerprint, warm_profiles


@dataclass
class InterferenceModel:
    """The class-level slowdown matrix and the e-coefficients built on it."""

    slowdown: Tuple[Tuple[float, ...], ...]  # S[i][j], indices per CLASS_ORDER
    samples: Dict[Tuple[str, str], Tuple[float, float]] = field(
        default_factory=dict)

    def __post_init__(self):
        if len(self.slowdown) != NUM_CLASSES or any(
                len(row) != NUM_CLASSES for row in self.slowdown):
            raise ValueError("slowdown matrix must be NT x NT")
        if any(s < 1.0 - 1e-9 for row in self.slowdown for s in row):
            raise ValueError("slowdowns must be >= 1")

    def pair_slowdown(self, victim: AppClass, aggressor: AppClass) -> float:
        return self.slowdown[CLASS_ORDER.index(victim)][
            CLASS_ORDER.index(aggressor)]

    def group_slowdown(self, victim: AppClass,
                       others: Sequence[AppClass]) -> float:
        """Slowdown of `victim` co-running with `others` (additive model)."""
        if not others:
            return 1.0
        total = 1.0
        for other in others:
            total += self.pair_slowdown(victim, other) - 1.0
        return total

    def pattern_coefficient(self, pattern: Pattern) -> float:
        """e_k of Eq. 3.4: mean inverse slowdown of the pattern's members."""
        members = pattern.classes
        inv_sum = 0.0
        for i, victim in enumerate(members):
            others = members[:i] + members[i + 1:]
            inv_sum += 1.0 / self.group_slowdown(victim, list(others))
        return inv_sum / len(members)

    def coefficients(self, patterns: Sequence[Pattern]) -> List[float]:
        return [self.pattern_coefficient(p) for p in patterns]


def _pick_pairs(by_class: Mapping[AppClass, Sequence[str]],
                ci: AppClass, cj: AppClass,
                samples: int) -> List[Tuple[str, str]]:
    """Deterministic benchmark pairs representing the class pair (ci, cj)."""
    left, right = list(by_class[ci]), list(by_class[cj])
    if ci == cj:
        combos = (list(itertools.combinations(left, 2))
                  or [(left[0], left[0])])
        return combos[:samples]
    # Diagonal sampling: rotate through *both* class member lists so every
    # benchmark of a class eventually appears as aggressor and as victim —
    # sampling only the first member would hide within-class variance
    # (e.g. BLK vs GUPS are very different class-M aggressors).
    pairs = []
    seen = set()
    k = 0
    while len(pairs) < samples and k < len(left) * len(right):
        pair = (left[k % len(left)], right[k % len(right)])
        if pair not in seen:
            seen.add(pair)
            pairs.append(pair)
        k += 1
    return pairs


def interference_cache_key(config: GPUConfig,
                           suite: Mapping[str, KernelSpec],
                           thresholds: ClassificationThresholds,
                           samples_per_pair: int,
                           profiler_config: Optional[GPUConfig] = None
                           ) -> str:
    """Disk-cache key of one interference-matrix measurement.

    `profiler_config` is the device the solo-cycle denominators were
    profiled on; it is part of the key so a caller passing a profiler
    built for a different config cannot poison (or read) the entries of
    the matching-config case."""
    return fingerprint(ENGINE_VERSION, config,
                       sorted((n, s) for n, s in suite.items()),
                       thresholds, samples_per_pair,
                       profiler_config if profiler_config is not None
                       else config)


def _model_to_json(model: InterferenceModel) -> str:
    return json.dumps({
        "slowdown": [list(row) for row in model.slowdown],
        "samples": [[a, b, sa, sb]
                    for (a, b), (sa, sb) in sorted(model.samples.items())],
    }, indent=1, sort_keys=True)


def _model_from_json(text: str) -> InterferenceModel:
    data = json.loads(text)
    return InterferenceModel(
        slowdown=tuple(tuple(row) for row in data["slowdown"]),
        samples={(a, b): (sa, sb) for a, b, sa, sb in data["samples"]})


def _pair_jobs(by_class: Mapping[AppClass, Sequence[str]],
               samples_per_pair: int) -> List[Tuple[int, int, str, str]]:
    """The full, deterministically ordered list of pair co-runs to
    measure: (victim class index, aggressor class index, name_a, name_b)."""
    jobs: List[Tuple[int, int, str, str]] = []
    for i, ci in enumerate(CLASS_ORDER):
        for j in range(i, NUM_CLASSES):
            cj = CLASS_ORDER[j]
            if not by_class[ci] or not by_class[cj]:
                continue
            for name_a, name_b in _pick_pairs(by_class, ci, cj,
                                              samples_per_pair):
                jobs.append((i, j, name_a, name_b))
    return jobs


def measure_interference(config: GPUConfig,
                         suite: Mapping[str, KernelSpec],
                         profiler: Optional[Profiler] = None,
                         thresholds: Optional[ClassificationThresholds] = None,
                         samples_per_pair: int = 2,
                         cache_dir: CacheDir = None,
                         executor=None) -> InterferenceModel:
    """Build the Fig. 3.4 slowdown matrix by running class-pair co-runs.

    Parameters
    ----------
    suite:
        name → kernel spec of the benchmark suite to sample from.
    samples_per_pair:
        How many distinct benchmark pairs to average per class pair.
    cache_dir:
        Optional persistent cache directory: the measured matrix (and its
        per-pair samples) is stored keyed by a content hash of config,
        suite, thresholds, sampling, and engine version — identical
        reruns load instead of co-running dozens of simulations.
    executor:
        Optional :class:`repro.runtime.executors.Executor`.  A parallel
        executor fans the solo profiles and the pair co-runs across
        worker processes (sharing profiles through the on-disk cache);
        slowdowns are then accumulated in the same deterministic order
        as the serial path, so the resulting matrix is identical.
    """
    profiler = profiler or Profiler(config)
    thresholds = thresholds or ClassificationThresholds.for_device(config)
    parallel = executor is not None and getattr(executor, "workers", 1) > 1

    cache_path = None
    if cache_dir is not None:
        key = interference_cache_key(config, suite, thresholds,
                                     samples_per_pair,
                                     profiler_config=profiler.config)
        cache_path = (pathlib.Path(cache_dir) /
                      f"interference_{key[:20]}.json")
        try:
            return _model_from_json(cache_path.read_text())
        except (OSError, ValueError, KeyError, TypeError):
            pass  # missing or corrupt → measure and rewrite

    if parallel:
        # Solo profiles fan out across workers (sharing the disk cache)
        # so the `profiler.profile` calls below are pure hits.
        warm_profiles(profiler, executor, suite.items())

    by_class: Dict[AppClass, List[str]] = {c: [] for c in CLASS_ORDER}
    solo: Dict[str, int] = {}
    for name, spec in suite.items():
        metrics = profiler.profile(name, spec)
        by_class[classify(metrics, thresholds)].append(name)
        solo[name] = metrics.solo_cycles

    jobs = _pair_jobs(by_class, samples_per_pair)
    if parallel:
        finishes = executor.run_pairs(config, [
            ((name_a, suite[name_a]), (f"{name_b}#co", suite[name_b]))
            for _i, _j, name_a, name_b in jobs])
    else:
        finishes = []
        for _i, _j, name_a, name_b in jobs:
            result = simulate(config, [
                Application(name_a, suite[name_a]),
                Application(f"{name_b}#co", suite[name_b])])
            # `or result.cycles` mirrors the parallel _pair_job exactly:
            # an app cut off at max_cycles counts the full run instead of
            # crashing on a None finish cycle.
            finishes.append(
                (result.app_stats[0].finish_cycle or result.cycles,
                 result.app_stats[1].finish_cycle or result.cycles))

    sums = [[0.0] * NUM_CLASSES for _ in range(NUM_CLASSES)]
    counts = [[0] * NUM_CLASSES for _ in range(NUM_CLASSES)]
    samples: Dict[Tuple[str, str], Tuple[float, float]] = {}

    for (i, j, name_a, name_b), (finish_a, finish_b) in zip(jobs, finishes):
        s_a = finish_a / solo[name_a]
        s_b = finish_b / solo[name_b]
        s_a, s_b = max(1.0, s_a), max(1.0, s_b)
        samples[(name_a, name_b)] = (s_a, s_b)
        sums[i][j] += s_a
        counts[i][j] += 1
        sums[j][i] += s_b
        counts[j][i] += 1

    matrix = tuple(
        tuple(sums[i][j] / counts[i][j] if counts[i][j] else 1.0
              for j in range(NUM_CLASSES))
        for i in range(NUM_CLASSES))
    model = InterferenceModel(slowdown=matrix, samples=samples)
    if cache_path is not None:
        try:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = cache_path.with_suffix(".tmp")
            tmp.write_text(_model_to_json(model))
            os.replace(tmp, cache_path)
        except OSError:
            pass  # read-only checkouts never block measurement
    return model


#: The paper's Appendix A coefficients (Eq. 5.1), derived from its
#: Fig. 3.4 measurements.  Order matches ``enumerate_patterns(2)``:
#: M-M, M-MC, M-C, M-A, MC-MC, MC-C, MC-A, C-C, C-A, A-A.
PAPER_APPENDIX_E: Tuple[float, ...] = (
    0.0072, 0.0110, 0.0146, 0.03584, 0.0204,
    0.0202, 0.0698, 0.0178, 0.0412, 0.166)

"""Queue execution: run a policy's planned groups and collect results.

The scheduler executes each planned group on a fresh device (groups run
back-to-back, as in the paper's evaluation where the queue drains group
by group), accumulates total cycles and instructions, and reports the
device throughput of Eq. 1.1 plus per-application figures used by the
per-benchmark charts (Fig. 4.4–4.8, 4.12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gpusim import (Application, DeviceResult, GPU, GPUConfig,
                          even_partition)

from .classification import ClassificationThresholds
from .interference import InterferenceModel, measure_interference
from .policies import PlannedGroup, Policy, PolicyContext, Queue
from .profiling import Profiler, default_cache_dir, shared_profiler
from .smra import SMRAController, SMRAParams


@dataclass
class GroupOutcome:
    """Result of one co-executed group."""

    members: List[str]
    cycles: int
    result: DeviceResult
    smra: Optional[SMRAController] = None

    def finish_cycle_of(self, name: str) -> int:
        return self.result.by_name(name).finish_cycle or self.cycles


@dataclass
class QueueOutcome:
    """Result of draining a whole queue under one policy."""

    policy: str
    groups: List[GroupOutcome]
    config: GPUConfig

    @property
    def total_cycles(self) -> int:
        return sum(g.cycles for g in self.groups)

    @property
    def total_instructions(self) -> int:
        return sum(s.thread_instructions
                   for g in self.groups
                   for s in g.result.app_stats.values())

    @property
    def device_throughput(self) -> float:
        """Eq. 1.1 over the full queue drain."""
        return self.total_instructions / max(1, self.total_cycles)

    def app_throughput(self, name: str) -> float:
        """Per-application throughput: its instructions over its group's
        completion time for it (the per-benchmark bars of Fig. 4.4)."""
        for group in self.groups:
            for member in group.members:
                if member == name:
                    stats = group.result.by_name(name)
                    cycles = stats.finish_cycle or group.cycles
                    return stats.thread_instructions / max(1, cycles)
        raise KeyError(name)

    def app_finish_cycles(self, name: str) -> int:
        for group in self.groups:
            if name in group.members:
                return group.finish_cycle_of(name)
        raise KeyError(name)

    def group_of(self, name: str) -> GroupOutcome:
        for group in self.groups:
            if name in group.members:
                return group
        raise KeyError(name)


def run_group(group: PlannedGroup, config: GPUConfig,
              smra_params: SMRAParams = SMRAParams(),
              max_cycles: int = 50_000_000) -> GroupOutcome:
    """Co-execute one planned group on a fresh device."""
    gpu = GPU(config)
    apps = [Application(name, spec) for name, spec in group.members]
    gpu.launch(apps, group.partitions)
    controller: Optional[SMRAController] = None
    callbacks = ()
    if group.use_smra:
        controller = SMRAController(smra_params)
        callbacks = (controller.callback(),)
    result = gpu.run(max_cycles=max_cycles, callbacks=callbacks)
    return GroupOutcome(members=[name for name, _ in group.members],
                        cycles=result.cycles, result=result, smra=controller)


def run_queue(queue: Queue, policy: Policy, ctx: PolicyContext,
              max_cycles: int = 50_000_000) -> QueueOutcome:
    """Plan and execute `queue` under `policy`."""
    groups = policy.plan(queue, ctx)
    outcomes = [run_group(g, ctx.config, ctx.smra_params, max_cycles)
                for g in groups]
    return QueueOutcome(policy=policy.name, groups=outcomes,
                        config=ctx.config)


#: Memoized interference models — measuring the Fig. 3.4 matrix costs tens
#: of co-runs, and every ILP-family policy in the benchmark suite needs it.
_INTERFERENCE_CACHE: Dict[tuple, InterferenceModel] = {}


def make_context(config: GPUConfig, suite: Optional[Dict] = None,
                 need_interference: bool = False,
                 samples_per_pair: int = 1,
                 smra_params: SMRAParams = SMRAParams()) -> PolicyContext:
    """Build a :class:`PolicyContext`, sharing the process-wide profiler.

    When `need_interference` is set, the Fig. 3.4 class matrix is measured
    from `suite` (required then); profiler and interference caches make
    this a one-time cost per device configuration.
    """
    profiler = shared_profiler(config)
    thresholds = ClassificationThresholds.for_device(config)
    interference = None
    if need_interference:
        if suite is None:
            raise ValueError("interference measurement requires a suite")
        key = (config, tuple(sorted(suite.items())), samples_per_pair)
        interference = _INTERFERENCE_CACHE.get(key)
        if interference is None:
            interference = measure_interference(
                config, suite, profiler=profiler, thresholds=thresholds,
                samples_per_pair=samples_per_pair,
                cache_dir=default_cache_dir())
            _INTERFERENCE_CACHE[key] = interference
    return PolicyContext(config=config, profiler=profiler,
                         thresholds=thresholds, interference=interference,
                         smra_params=smra_params)

"""Queue execution: run a policy's planned groups and collect results.

The scheduler executes each planned group on a fresh device (groups run
back-to-back, as in the paper's evaluation where the queue drains group
by group), accumulates total cycles and instructions, and reports the
device throughput of Eq. 1.1 plus per-application figures used by the
per-benchmark charts (Fig. 4.4–4.8, 4.12).

``run_queue`` is now a thin wrapper over the online runtime
(:mod:`repro.runtime`): planning stays with the batch policy, execution
goes through an executor — the default :class:`SerialExecutor`
reproduces the seed scheduler bit-for-bit, while a
:class:`~repro.runtime.executors.ParallelExecutor` fans the independent
groups across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gpusim import (DEFAULT_MAX_CYCLES, Application, DeviceResult,
                          GPU, GPUConfig, even_partition)

from .classification import ClassificationThresholds
from .interference import (InterferenceModel, interference_cache_key,
                           measure_interference)
from .policies import PlannedGroup, Policy, PolicyContext, Queue
from .profiling import Profiler, default_cache_dir, shared_profiler
from .smra import SMRAController, SMRAParams


@dataclass
class GroupOutcome:
    """Result of one co-executed group."""

    members: List[str]
    cycles: int
    result: DeviceResult
    smra: Optional[SMRAController] = None

    def finish_cycle_of(self, name: str) -> int:
        return self.result.by_name(name).finish_cycle or self.cycles


@dataclass
class QueueOutcome:
    """Result of draining a whole queue under one policy."""

    policy: str
    groups: List[GroupOutcome]
    config: GPUConfig
    #: Lazily built name → group index: the per-benchmark figure suite
    #: calls the accessors below for every app of every queue, and the
    #: old O(groups × members) scan per lookup added up at stream scale.
    _group_index: Optional[Dict[str, GroupOutcome]] = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def total_cycles(self) -> int:
        return sum(g.cycles for g in self.groups)

    @property
    def total_instructions(self) -> int:
        return sum(s.thread_instructions
                   for g in self.groups
                   for s in g.result.app_stats.values())

    @property
    def device_throughput(self) -> float:
        """Eq. 1.1 over the full queue drain."""
        return self.total_instructions / max(1, self.total_cycles)

    def app_throughput(self, name: str) -> float:
        """Per-application throughput: its instructions over its group's
        completion time for it (the per-benchmark bars of Fig. 4.4)."""
        group = self.group_of(name)
        stats = group.result.by_name(name)
        cycles = stats.finish_cycle or group.cycles
        return stats.thread_instructions / max(1, cycles)

    def app_finish_cycles(self, name: str) -> int:
        return self.group_of(name).finish_cycle_of(name)

    def group_of(self, name: str) -> GroupOutcome:
        index = self._group_index
        if index is None:
            # Queue names are unique by contract; first occurrence wins
            # to mirror the previous linear scan.
            index = {}
            for group in self.groups:
                for member in group.members:
                    index.setdefault(member, group)
            self._group_index = index
        try:
            return index[name]
        except KeyError:
            raise KeyError(name) from None


#: Backend name → engine class.  "event" is pre-seeded so the default
#: path (and the seed-comparison A/B harness, whose child processes run
#: against trees that predate the registry) never imports ``repro.api``.
_ENGINE_CLASSES: Dict[str, type] = {"event": GPU}


def _engine_class(backend: str) -> type:
    try:
        return _ENGINE_CLASSES[backend]
    except KeyError:
        pass
    # Lazy upward import: the api layer builds on core, so core may
    # only reach the registry at call time, never at import time.
    from repro.api.engines import engine_class
    cls = engine_class(backend)
    _ENGINE_CLASSES[backend] = cls
    return cls


def run_group(group: PlannedGroup, config: GPUConfig,
              smra_params: SMRAParams = SMRAParams(),
              max_cycles: int = DEFAULT_MAX_CYCLES,
              backend: str = "event") -> GroupOutcome:
    """Co-execute one planned group on a fresh device.

    `backend` names the ``engine-backends`` registry entry used to
    simulate the group; every backend returns bit-identical results,
    so the outcome does not depend on the choice.
    """
    gpu = _engine_class(backend)(config)
    apps = [Application(name, spec) for name, spec in group.members]
    gpu.launch(apps, group.partitions)
    controller: Optional[SMRAController] = None
    callbacks = ()
    if group.use_smra:
        controller = SMRAController(smra_params)
        callbacks = (controller.callback(),)
    result = gpu.run(max_cycles=max_cycles, callbacks=callbacks)
    return GroupOutcome(members=[name for name, _ in group.members],
                        cycles=result.cycles, result=result, smra=controller)


def run_queue(queue: Queue, policy: Policy, ctx: PolicyContext,
              max_cycles: int = DEFAULT_MAX_CYCLES,
              executor=None, telemetry=None) -> QueueOutcome:
    """Plan and execute `queue` under `policy`.

    `executor` is an optional :class:`repro.runtime.executors.Executor`;
    the default serial executor reproduces the seed scheduler exactly.
    `telemetry` is an optional :class:`repro.obs.Telemetry` — observe
    only, never steer: the outcome is identical with it on or off.
    """
    # Local import: the runtime package builds on this module.
    from repro.runtime.engine import drain_queue
    return drain_queue(queue, policy, ctx, max_cycles=max_cycles,
                       executor=executor, telemetry=telemetry)


#: Memoized interference models — measuring the Fig. 3.4 matrix costs tens
#: of co-runs, and every ILP-family policy in the benchmark suite needs it.
#: Keyed by the same content hash as the PR-1 disk cache, so re-built or
#: re-ordered (but content-equal) suites hit, and suites with unhashable
#: members cannot blow up the key.
_INTERFERENCE_CACHE: Dict[str, InterferenceModel] = {}


def make_context(config: GPUConfig, suite: Optional[Dict] = None,
                 need_interference: bool = False,
                 samples_per_pair: int = 1,
                 smra_params: SMRAParams = SMRAParams(),
                 executor=None, backend: str = "event") -> PolicyContext:
    """Build a :class:`PolicyContext`, sharing the process-wide profiler.

    When `need_interference` is set, the Fig. 3.4 class matrix is measured
    from `suite` (required then); profiler and interference caches make
    this a one-time cost per device configuration.  A parallel `executor`
    fans the solo profiles and pair co-runs of that measurement across
    worker processes (results are identical either way).

    `backend` selects the engine backend for group simulations made
    through this context.  Profiling and interference measurement stay
    on the event engine regardless: their results are bit-identical
    across backends and their disk/memory caches are keyed without the
    backend, so a warm cache serves every backend.
    """
    profiler = shared_profiler(config)
    thresholds = ClassificationThresholds.for_device(config)
    interference = None
    if need_interference:
        if suite is None:
            raise ValueError("interference measurement requires a suite")
        key = interference_cache_key(config, suite, thresholds,
                                     samples_per_pair,
                                     profiler_config=profiler.config)
        interference = _INTERFERENCE_CACHE.get(key)
        if interference is None:
            interference = measure_interference(
                config, suite, profiler=profiler, thresholds=thresholds,
                samples_per_pair=samples_per_pair,
                cache_dir=default_cache_dir(), executor=executor)
            _INTERFERENCE_CACHE[key] = interference
    return PolicyContext(config=config, profiler=profiler,
                         thresholds=thresholds, interference=interference,
                         smra_params=smra_params, backend=backend)

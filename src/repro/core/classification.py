"""Application classification (§3.2.1, Tables 3.1/3.2).

Applications are profiled solo and binned into four classes:

* **M** — memory intensive: DRAM bandwidth above α.
* **MC** — memory *and* cache intensive: DRAM bandwidth between β and α.
* **C** — cache intensive: modest DRAM bandwidth but heavy L2→L1 traffic
  (or a high memory-to-compute ratio) and low IPC.
* **A** — compute intensive: everything else.

The thresholds follow the paper: α = 0.55·MBmax, β = 0.30·MBmax (the
thesis text swaps the two factors — see DESIGN.md §6), γ = 100 GB/s and
ε = 200 IPC.  The rule tree is evaluated top-down (M, MC, C, A), which
reproduces every row of Table 3.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.gpusim import GPUConfig

from .profiling import ProfileMetrics


class AppClass(enum.Enum):
    """The four application classes of §3.2.1."""

    M = "M"
    MC = "MC"
    C = "C"
    A = "A"

    def __str__(self):
        return self.value


#: Fixed class ordering used for pattern/interference indexing.
CLASS_ORDER = (AppClass.M, AppClass.MC, AppClass.C, AppClass.A)

#: Number of classes (NT in the paper's notation).
NUM_CLASSES = len(CLASS_ORDER)


@dataclass(frozen=True)
class ClassificationThresholds:
    """α, β, γ (GB/s) and ε (IPC) of Table 3.1."""

    alpha_gbps: float
    beta_gbps: float
    gamma_gbps: float = 100.0
    epsilon_ipc: float = 200.0
    #: Memory-to-compute ratio boundary used by both the C and A rules.
    ratio: float = 0.2

    def __post_init__(self):
        if self.beta_gbps >= self.alpha_gbps:
            raise ValueError("β must be below α (M above MC)")

    @classmethod
    def for_device(cls, config: GPUConfig, alpha_frac: float = 0.55,
                   beta_frac: float = 0.30, gamma_gbps: float = 100.0,
                   epsilon_ipc: float = 200.0) -> "ClassificationThresholds":
        """Thresholds relative to the device's peak DRAM bandwidth.

        The paper picks α and β as fractions of MBmax of the GTX 480; this
        constructor applies the same fractions to any simulated device.
        """
        peak = config.peak_dram_bandwidth_gbps
        return cls(alpha_gbps=alpha_frac * peak, beta_gbps=beta_frac * peak,
                   gamma_gbps=gamma_gbps, epsilon_ipc=epsilon_ipc)


def classify(metrics: ProfileMetrics,
             thresholds: ClassificationThresholds) -> AppClass:
    """Apply the Table 3.1 rule tree to solo-profiling metrics."""
    if metrics.memory_bandwidth_gbps > thresholds.alpha_gbps:
        return AppClass.M
    if metrics.memory_bandwidth_gbps > thresholds.beta_gbps:
        return AppClass.MC
    cache_pressure = (metrics.l2_to_l1_gbps > thresholds.gamma_gbps
                      or metrics.mem_compute_ratio > thresholds.ratio)
    if cache_pressure and metrics.ipc < thresholds.epsilon_ipc:
        return AppClass.C
    return AppClass.A


def class_index(app_class: AppClass) -> int:
    """Position of a class in :data:`CLASS_ORDER`."""
    return CLASS_ORDER.index(app_class)

"""Contention minimization via ILP (§3.2.3, Appendix A).

Given a queue of classified applications and the interference model, the
optimizer chooses how many times each class *pattern* should be formed
(the integer variables ``L_1..L_NP``), maximizing the total inverse
slowdown ``f = Σ e_i · L_i`` (Eq. 3.3) subject to class availability
(Eq. 3.6, as ≤ per the Appendix) and the total group count (Eq. 3.7).
The pattern counts are then *realized* into concrete application groups
by matching queued applications FCFS within their class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ilp import Model, Solution, linear_sum

from .classification import CLASS_ORDER, NUM_CLASSES, AppClass
from .interference import InterferenceModel
from .patterns import Pattern, enumerate_patterns


@dataclass
class GroupingPlan:
    """Result of the ILP: pattern counts plus realized application groups."""

    nc: int
    pattern_counts: Dict[Pattern, int]
    objective: float
    groups: List[List[str]]
    leftovers: List[str] = field(default_factory=list)
    solution: Optional[Solution] = None

    @property
    def all_groups(self) -> List[List[str]]:
        """Realized groups plus leftover apps chunked into final groups."""
        extra = [self.leftovers[i:i + self.nc]
                 for i in range(0, len(self.leftovers), self.nc)]
        return self.groups + extra


def class_counts(queue_classes: Sequence[AppClass]) -> List[int]:
    """N_q^c per class (Eq. 3.5's decomposition of the queue)."""
    counts = [0] * NUM_CLASSES
    for cls in queue_classes:
        counts[CLASS_ORDER.index(cls)] += 1
    return counts


def build_grouping_model(queue_classes: Sequence[AppClass], nc: int,
                         coefficients: Sequence[float],
                         patterns: Optional[Sequence[Pattern]] = None
                         ) -> Tuple[Model, List[Pattern]]:
    """Construct the Eq. 3.3–3.7 ILP for a queue.

    Returns the model and the pattern list aligned with its variables
    ``L0..L{NP-1}``.
    """
    patterns = list(patterns) if patterns is not None else enumerate_patterns(nc)
    if len(coefficients) != len(patterns):
        raise ValueError("one coefficient per pattern required")
    total_groups = len(queue_classes) // nc
    counts = class_counts(queue_classes)

    model = Model(f"grouping-nc{nc}")
    ls = [model.add_var(f"L{i}", lb=0, ub=total_groups, integer=True)
          for i in range(len(patterns))]
    # Eq. 3.6 (as inequalities, per Appendix Eq. 5.5): the chosen patterns
    # cannot use more applications of a class than the queue holds.
    for row, cls in enumerate(CLASS_ORDER):
        usage = linear_sum(p.counts[row] * l for p, l in zip(patterns, ls))
        model.add_constraint(usage <= counts[row], name=f"class_{cls}")
    # Eq. 3.7: exactly L groups are formed.
    model.add_constraint(linear_sum(ls) == total_groups, name="total_groups")
    # Eq. 3.3.
    model.maximize(linear_sum(e * l for e, l in zip(coefficients, ls)))
    return model, patterns


def realize_groups(queue: Sequence[Tuple[str, AppClass]],
                   pattern_counts: Dict[Pattern, int],
                   nc: int) -> Tuple[List[List[str]], List[str]]:
    """Materialize pattern counts into named application groups.

    Queued applications are consumed FCFS within their class, so two apps
    of the same class keep their arrival order.  Returns (groups,
    leftover app names).
    """
    pools: Dict[AppClass, List[str]] = {c: [] for c in CLASS_ORDER}
    for name, cls in queue:
        pools[cls].append(name)

    groups: List[List[str]] = []
    for pattern, count in pattern_counts.items():
        for _ in range(count):
            members = []
            for cls in pattern.classes:
                if not pools[cls]:
                    raise ValueError(
                        f"pattern {pattern.label} needs a {cls} app but the "
                        f"queue has none left")
            for cls in pattern.classes:
                members.append(pools[cls].pop(0))
            groups.append(members)
    leftovers = [name for cls in CLASS_ORDER for name in pools[cls]]
    return groups, leftovers


def optimize_grouping(queue: Sequence[Tuple[str, AppClass]], nc: int,
                      interference: InterferenceModel) -> GroupingPlan:
    """Full §3.2.3 pipeline: build the ILP, solve it, realize the groups."""
    if nc < 2:
        raise ValueError("contention minimization needs NC >= 2")
    queue = list(queue)
    classes = [cls for _name, cls in queue]
    patterns = enumerate_patterns(nc)
    coefficients = interference.coefficients(patterns)
    model, patterns = build_grouping_model(classes, nc, coefficients,
                                           patterns)
    solution = model.solve()
    if not solution.is_optimal:
        raise RuntimeError(f"grouping ILP not solved: {solution.status}")

    pattern_counts = {
        p: int(round(solution[f"L{i}"]))
        for i, p in enumerate(patterns)
        if round(solution[f"L{i}"]) > 0
    }
    groups, leftovers = realize_groups(queue, pattern_counts, nc)
    return GroupingPlan(nc=nc, pattern_counts=pattern_counts,
                        objective=solution.objective, groups=groups,
                        leftovers=leftovers, solution=solution)

"""Scheduling policies: Serial, Even/FCFS, Profile-based, ILP, ILP-SMRA.

A policy takes an application queue (arrival-ordered ``(name, spec)``
pairs) and plans *groups* of applications to co-execute, each with an SM
partition and optionally the SMRA controller:

* **Serial** — one application at a time on the whole device (Fig. 4.1's
  baseline).
* **Even / FCFS** — groups of NC in arrival order, equal SM split (the
  baseline of Fig. 4.3; the paper uses "Even" and "FCFS" for the same
  selection rule).
* **Profile-based** — arrival-order groups, but the SM split is
  proportional to each application's profiled SM demand (how many SMs its
  grid can actually occupy), modeling the offline-profiling spatial
  multitasking of Adriaens et al. [17].
* **ILP** — groups chosen by the §3.2.3 contention-minimization ILP,
  equal SM split.
* **ILP-SMRA** — ILP groups plus the §3.2.4 dynamic SM reallocation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gpusim import GPUConfig, KernelSpec, even_partition, proportional_partition

from repro.api.registry import REGISTRY

from .classification import AppClass, ClassificationThresholds, classify
from .contention import optimize_grouping
from .interference import InterferenceModel
from .profiling import Profiler
from .smra import SMRAParams

#: An application queue: arrival-ordered (unique name, kernel spec).
Queue = Sequence[Tuple[str, KernelSpec]]


@dataclass
class PlannedGroup:
    """One co-execution the scheduler should run."""

    members: List[Tuple[str, KernelSpec]]
    partitions: Optional[List[List[int]]] = None  # None = even split
    use_smra: bool = False


@dataclass
class PolicyContext:
    """Shared state policies may need: profiles, classes, interference."""

    config: GPUConfig
    profiler: Profiler
    thresholds: ClassificationThresholds
    interference: Optional[InterferenceModel] = None
    smra_params: SMRAParams = field(default_factory=SMRAParams)
    #: ``engine-backends`` name for group simulations run through this
    #: context; results are bit-identical across backends.
    backend: str = "event"

    def class_of(self, name: str, spec: KernelSpec) -> AppClass:
        """Profile-and-classify one application (profile caches make
        repeated queries a one-time cost per distinct kernel spec)."""
        return classify(self.profiler.profile(name, spec), self.thresholds)

    def classify_queue(self, queue: Queue) -> List[Tuple[str, AppClass]]:
        return [(name, self.class_of(name, spec)) for name, spec in queue]


def cached_class_of(cache: Dict[str, AppClass],
                    entry: Tuple[str, KernelSpec],
                    ctx: PolicyContext) -> AppClass:
    """`entry`'s class via a name-keyed memo dict.

    `cache` may be pre-seeded by callers that already classified their
    stream (tests, ablation harnesses); misses fall through to
    :meth:`PolicyContext.class_of` and are remembered.  Shared by every
    interference-aware component (backfill policy, placement).
    """
    name, spec = entry
    cls = cache.get(name)
    if cls is None:
        cls = ctx.class_of(name, spec)
        cache[name] = cls
    return cls


class Policy:
    """Base class: turn a queue into planned co-execution groups."""

    name = "base"
    nc = 1
    #: True when plan() requires ctx.interference (the Fig. 3.4 matrix);
    #: callers use it to decide whether to pay the measurement cost.
    needs_interference = False

    def plan(self, queue: Queue, ctx: PolicyContext) -> List[PlannedGroup]:
        raise NotImplementedError

    @staticmethod
    def _chunk(queue: Queue, nc: int) -> List[List[Tuple[str, KernelSpec]]]:
        queue = list(queue)
        return [queue[i:i + nc] for i in range(0, len(queue), nc)]


class SerialPolicy(Policy):
    """Each application alone on the full device."""

    name = "Serial"
    nc = 1

    def plan(self, queue: Queue, ctx: PolicyContext) -> List[PlannedGroup]:
        return [PlannedGroup(members=[entry]) for entry in queue]


class EvenPolicy(Policy):
    """Arrival-order groups of NC, equal SM split (the Even baseline)."""

    name = "Even"

    def __init__(self, nc: int = 2):
        if nc < 1:
            raise ValueError("NC must be >= 1")
        self.nc = nc

    def plan(self, queue: Queue, ctx: PolicyContext) -> List[PlannedGroup]:
        return [PlannedGroup(members=chunk)
                for chunk in self._chunk(queue, self.nc)]


class FCFSPolicy(EvenPolicy):
    """Alias of Even — the paper's FCFS selection with equal resources."""

    name = "FCFS"


def sm_demand(spec: KernelSpec, config: GPUConfig) -> int:
    """SMs the kernel can actually occupy (profile-derived).

    A grid of B blocks can keep at most ``min(num_sms, B)`` SMs busy —
    LUD's 12-block grid cannot use more than 12 SMs no matter how many it
    is given (Fig. 3.5), which is exactly the information the
    profile-based allocator of [17] exploits.
    """
    return max(1, min(config.num_sms, spec.blocks))


class ProfileBasedPolicy(Policy):
    """Arrival-order groups with profile-proportional SM partitioning [17]."""

    name = "Profile-based"

    def __init__(self, nc: int = 2):
        self.nc = nc

    def plan(self, queue: Queue, ctx: PolicyContext) -> List[PlannedGroup]:
        groups = []
        for chunk in self._chunk(queue, self.nc):
            weights = []
            for _name, spec in chunk:
                usable = sm_demand(spec, ctx.config)
                weights.append(float(usable))
            if len(chunk) == 1:
                groups.append(PlannedGroup(members=chunk))
                continue
            partitions = proportional_partition(ctx.config.num_sms, weights)
            groups.append(PlannedGroup(members=chunk, partitions=partitions))
        return groups


class ILPPolicy(Policy):
    """Contention-minimizing group selection (§3.2.3), equal SM split."""

    name = "ILP"
    needs_interference = True

    def __init__(self, nc: int = 2):
        if nc < 2:
            raise ValueError("the grouping ILP needs NC >= 2")
        self.nc = nc

    def _groups(self, queue: Queue, ctx: PolicyContext) -> List[List[str]]:
        if ctx.interference is None:
            raise ValueError(f"{self.name} policy requires an interference "
                             f"model in the context")
        classified = ctx.classify_queue(queue)
        plan = optimize_grouping(classified, self.nc, ctx.interference)
        return plan.all_groups

    def plan(self, queue: Queue, ctx: PolicyContext) -> List[PlannedGroup]:
        specs = dict(queue)
        return [
            PlannedGroup(members=[(name, specs[name]) for name in group])
            for group in self._groups(queue, ctx)
        ]


class ILPSMRAPolicy(ILPPolicy):
    """ILP grouping plus run-time SM reallocation (§3.2.4)."""

    name = "ILP-SMRA"

    def plan(self, queue: Queue, ctx: PolicyContext) -> List[PlannedGroup]:
        groups = super().plan(queue, ctx)
        for group in groups:
            group.use_smra = len(group.members) > 1
        return groups


def default_policies(nc: int = 2) -> List[Policy]:
    """The comparison set of Fig. 4.3/4.11."""
    return [EvenPolicy(nc), ProfileBasedPolicy(nc), ILPPolicy(nc),
            ILPSMRAPolicy(nc)]


# -- registry wiring ---------------------------------------------------------
# The batch policies under the ``policies`` kind (the CLI's old
# ``POLICY_FACTORIES``).  Every factory takes the group arity ``nc``;
# Serial ignores it (one app at a time by definition).
REGISTRY.register("policies", "serial", lambda nc=1: SerialPolicy())
REGISTRY.register("policies", "even", lambda nc=2: EvenPolicy(nc))
REGISTRY.register("policies", "fcfs", lambda nc=2: FCFSPolicy(nc))
REGISTRY.register("policies", "profile",
                  lambda nc=2: ProfileBasedPolicy(nc))
REGISTRY.register("policies", "ilp", lambda nc=2: ILPPolicy(nc))
REGISTRY.register("policies", "ilp-smra", lambda nc=2: ILPSMRAPolicy(nc))


def batch_policy(key: str, nc: int = 2) -> Policy:
    """Build the batch policy registered under `key`."""
    return REGISTRY.create("policies", key, nc)

"""The paper's methodology: classify → interfere → ILP-match → SMRA.

Public API
----------
:class:`Profiler`, :class:`ProfileMetrics`
    Solo profiling (§3.2 step 1).
:class:`AppClass`, :class:`ClassificationThresholds`, :func:`classify`
    Application classification (§3.2.1).
:class:`InterferenceModel`, :func:`measure_interference`
    Per-class slowdown matrix (§3.2.2, Fig. 3.4).
:class:`Pattern`, :func:`enumerate_patterns`, :func:`num_patterns`
    Class patterns (Eq. 3.1/3.2).
:func:`optimize_grouping`, :func:`build_grouping_model`, :class:`GroupingPlan`
    Contention-minimization ILP (§3.2.3).
:class:`SMRAController`, :class:`SMRAParams`
    Dynamic SM reallocation, Algorithm 1 (§3.2.4).
:class:`SerialPolicy`, :class:`EvenPolicy`, :class:`FCFSPolicy`,
:class:`ProfileBasedPolicy`, :class:`ILPPolicy`, :class:`ILPSMRAPolicy`
    The evaluated scheduling policies.
:func:`run_queue`, :func:`make_context`, :class:`QueueOutcome`
    Queue execution harness.
"""

from .classification import (CLASS_ORDER, NUM_CLASSES, AppClass,
                             ClassificationThresholds, class_index, classify)
from .contention import (GroupingPlan, build_grouping_model, class_counts,
                         optimize_grouping, realize_groups)
from .interference import (PAPER_APPENDIX_E, InterferenceModel,
                           measure_interference)
from .patterns import Pattern, enumerate_patterns, num_patterns, pattern_matrix
from .policies import (EvenPolicy, FCFSPolicy, ILPPolicy, ILPSMRAPolicy,
                       PlannedGroup, Policy, PolicyContext,
                       ProfileBasedPolicy, SerialPolicy, default_policies,
                       sm_demand)
from .profiling import (Profiler, ProfileMetrics, default_cache_dir,
                        fingerprint, metrics_from_result, profile_cache_key,
                        shared_profiler, warm_profiles)
from .scheduler import (GroupOutcome, QueueOutcome, make_context, run_group,
                        run_queue)
from .smra import SMRAController, SMRADecision, SMRAParams

__all__ = [
    "AppClass", "CLASS_ORDER", "NUM_CLASSES", "ClassificationThresholds",
    "classify", "class_index",
    "Profiler", "ProfileMetrics", "metrics_from_result", "shared_profiler",
    "default_cache_dir", "fingerprint", "profile_cache_key", "warm_profiles",
    "InterferenceModel", "measure_interference", "PAPER_APPENDIX_E",
    "Pattern", "enumerate_patterns", "num_patterns", "pattern_matrix",
    "GroupingPlan", "build_grouping_model", "optimize_grouping",
    "realize_groups", "class_counts",
    "SMRAController", "SMRAParams", "SMRADecision",
    "Policy", "PolicyContext", "PlannedGroup", "SerialPolicy", "EvenPolicy",
    "FCFSPolicy", "ProfileBasedPolicy", "ILPPolicy", "ILPSMRAPolicy",
    "default_policies", "sm_demand",
    "run_queue", "run_group", "make_context", "QueueOutcome", "GroupOutcome",
]

"""Solo profiling of applications (step 1 of the methodology).

Each application is executed alone on the full device; the profiler
extracts the Table 3.2 metric vector — DRAM bandwidth, L2→L1 bandwidth,
IPC, and memory-to-compute ratio — plus the solo completion time used as
the denominator of every slowdown in §3.2.2.

Profiles are memoized at two levels:

* **in process** per (kernel-spec, device-config) pair, because the
  benchmark suite re-profiles the same 14 applications across many
  experiments; and
* **on disk** (optional) under ``benchmarks/results/cache/``, keyed by a
  content hash of the device config, the kernel spec, and the engine
  version (:data:`repro.gpusim.ENGINE_VERSION`), so repeated figure-suite
  runs never re-simulate an identical solo run.  Any change to a config
  field, a spec field, or the engine version changes the key and thus
  invalidates the entry; stale files are simply never read again.

Set the ``REPRO_PROFILE_CACHE`` environment variable to a directory to
relocate the disk cache, or to ``off`` / ``0`` to disable it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.gpusim import (ENGINE_VERSION, Application, DeviceResult,
                          GPUConfig, KernelSpec, simulate)

CacheDir = Optional[Union[str, pathlib.Path]]


def fingerprint(*objs) -> str:
    """Stable content hash of dataclasses / plain JSON-able values."""
    def canon(o):
        if dataclasses.is_dataclass(o) and not isinstance(o, type):
            return {"__dc__": type(o).__name__,
                    **{k: canon(v)
                       for k, v in dataclasses.asdict(o).items()}}
        if isinstance(o, dict):
            return {str(k): canon(v) for k, v in sorted(o.items())}
        if isinstance(o, (list, tuple)):
            return [canon(v) for v in o]
        return o
    payload = json.dumps(canon(objs), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def profile_cache_key(config: GPUConfig, spec: KernelSpec) -> str:
    """Disk-cache key of one solo profile (see module docstring)."""
    return fingerprint(ENGINE_VERSION, config, spec)


def default_cache_dir() -> Optional[pathlib.Path]:
    """The repo-local persistent cache dir, honoring REPRO_PROFILE_CACHE."""
    env = os.environ.get("REPRO_PROFILE_CACHE")
    if env is not None:
        if env.strip().lower() in ("", "0", "off", "none", "disabled"):
            return None
        return pathlib.Path(env)
    # src/repro/core/profiling.py -> repo root is three levels up from
    # the package directory; only use it when it looks like the repo.
    root = pathlib.Path(__file__).resolve().parents[3]
    bench = root / "benchmarks"
    if bench.is_dir():
        return bench / "results" / "cache"
    return None


@dataclass(frozen=True)
class ProfileMetrics:
    """Solo-run profile of one application (the Table 3.2 columns)."""

    name: str
    memory_bandwidth_gbps: float
    l2_to_l1_gbps: float
    ipc: float
    mem_compute_ratio: float
    solo_cycles: int
    thread_instructions: int
    utilization: float

    @property
    def columns(self) -> Tuple[float, float, float, float]:
        """(MB, L2→L1, IPC, R) — the Table 3.2 metric columns."""
        return (self.memory_bandwidth_gbps, self.l2_to_l1_gbps, self.ipc,
                self.mem_compute_ratio)


def metrics_from_result(result: DeviceResult, app_id: int = 0
                        ) -> ProfileMetrics:
    """Extract :class:`ProfileMetrics` from a finished solo run."""
    stats = result.app_stats[app_id]
    cycles = stats.finish_cycle if stats.finish_cycle else result.cycles
    cfg = result.config
    return ProfileMetrics(
        name=result.app_names.get(app_id, stats.name),
        memory_bandwidth_gbps=stats.memory_bandwidth_gbps(cycles, cfg),
        l2_to_l1_gbps=stats.l2_to_l1_bandwidth_gbps(cycles, cfg),
        ipc=stats.ipc(cycles),
        mem_compute_ratio=stats.mem_compute_ratio,
        solo_cycles=cycles,
        thread_instructions=stats.thread_instructions,
        utilization=stats.ipc(cycles) / cfg.peak_ipc)


class Profiler:
    """Runs and memoizes solo profiles (in memory, optionally on disk)."""

    def __init__(self, config: GPUConfig, cache_dir: CacheDir = None):
        self.config = config
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir else None
        self._cache: Dict[KernelSpec, ProfileMetrics] = {}
        #: Simulations actually executed (cache misses) — test hook.
        self.simulations_run = 0

    # -- disk layer ---------------------------------------------------------
    def _cache_path(self, spec: KernelSpec) -> Optional[pathlib.Path]:
        if self.cache_dir is None:
            return None
        key = profile_cache_key(self.config, spec)
        safe_name = "".join(c if c.isalnum() else "-" for c in spec.name)
        return self.cache_dir / f"profile_{safe_name}_{key[:20]}.json"

    def _load_disk(self, path: pathlib.Path) -> Optional[ProfileMetrics]:
        try:
            data = json.loads(path.read_text())
            return ProfileMetrics(**data)
        except (OSError, ValueError, TypeError):
            return None  # missing or corrupt → treat as a miss

    def _store_disk(self, path: pathlib.Path,
                    metrics: ProfileMetrics) -> None:
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(dataclasses.asdict(metrics),
                                      indent=1, sort_keys=True))
            os.replace(tmp, path)  # atomic: parallel runs can't corrupt
        except OSError:
            pass  # a read-only checkout never blocks profiling

    # -- public API ---------------------------------------------------------
    def profile(self, name: str, spec: KernelSpec) -> ProfileMetrics:
        cached = self._cache.get(spec)
        if cached is not None:
            return cached
        path = self._cache_path(spec)
        if path is not None:
            metrics = self._load_disk(path)
            if metrics is not None:
                self._cache[spec] = metrics
                return metrics
        result = simulate(self.config, [Application(name, spec)])
        metrics = metrics_from_result(result)
        self.simulations_run += 1
        self._cache[spec] = metrics
        if path is not None:
            self._store_disk(path, metrics)
        return metrics

    def peek(self, spec: KernelSpec) -> Optional[ProfileMetrics]:
        """The in-memory entry for `spec`, or None (no simulation)."""
        return self._cache.get(spec)

    def prime(self, spec: KernelSpec, metrics: ProfileMetrics) -> None:
        """Seed the in-memory cache with an externally computed profile
        (e.g. one returned by a parallel executor's worker)."""
        self._cache[spec] = metrics

    def solo_cycles(self, name: str, spec: KernelSpec) -> int:
        return self.profile(name, spec).solo_cycles

    def invalidate(self) -> None:
        self._cache.clear()


def warm_profiles(profiler: Profiler, executor, entries) -> None:
    """Warm `profiler`'s cache for ``(name, spec)`` `entries` in parallel.

    With a multi-worker executor (anything exposing ``workers > 1`` and
    ``run_profiles``), the not-yet-cached specs — deduplicated, so
    repeated kernels profile once — are solo-profiled in worker
    processes (each writing through the shared disk cache) and the
    results primed into `profiler`; subsequent ``profiler.profile``
    calls are pure hits.  A serial executor (or ``None``) is a no-op:
    the inline profiling path is already optimal there.
    """
    if executor is None or getattr(executor, "workers", 1) <= 1:
        return
    todo = []
    seen = set()
    for name, spec in entries:
        if profiler.peek(spec) is None and spec not in seen:
            seen.add(spec)
            todo.append((name, spec))
    if not todo:
        return
    metrics = executor.run_profiles(profiler.config, todo,
                                    cache_dir=profiler.cache_dir)
    for (name, spec), m in zip(todo, metrics):
        profiler.prime(spec, m)


#: Process-wide profiler cache, keyed by config.  The benchmark harness
#: profiles the same suite dozens of times; sharing one profiler per
#: configuration keeps the full figure suite tractable.  Shared
#: profilers also persist to the repo-local disk cache so whole figure
#: *sessions* reuse each other's solo runs.
_PROFILERS: Dict[GPUConfig, Profiler] = {}


def shared_profiler(config: GPUConfig) -> Profiler:
    profiler = _PROFILERS.get(config)
    if profiler is None:
        profiler = Profiler(config, cache_dir=default_cache_dir())
        _PROFILERS[config] = profiler
    return profiler

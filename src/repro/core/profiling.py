"""Solo profiling of applications (step 1 of the methodology).

Each application is executed alone on the full device; the profiler
extracts the Table 3.2 metric vector — DRAM bandwidth, L2→L1 bandwidth,
IPC, and memory-to-compute ratio — plus the solo completion time used as
the denominator of every slowdown in §3.2.2.

Profiles are memoized per (kernel-spec, device-config) pair, because the
benchmark suite re-profiles the same 14 applications across many
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.gpusim import Application, DeviceResult, GPUConfig, KernelSpec, simulate


@dataclass(frozen=True)
class ProfileMetrics:
    """Solo-run profile of one application (the Table 3.2 columns)."""

    name: str
    memory_bandwidth_gbps: float
    l2_to_l1_gbps: float
    ipc: float
    mem_compute_ratio: float
    solo_cycles: int
    thread_instructions: int
    utilization: float

    @property
    def columns(self) -> Tuple[float, float, float, float]:
        """(MB, L2→L1, IPC, R) — the Table 3.2 metric columns."""
        return (self.memory_bandwidth_gbps, self.l2_to_l1_gbps, self.ipc,
                self.mem_compute_ratio)


def metrics_from_result(result: DeviceResult, app_id: int = 0
                        ) -> ProfileMetrics:
    """Extract :class:`ProfileMetrics` from a finished solo run."""
    stats = result.app_stats[app_id]
    cycles = stats.finish_cycle if stats.finish_cycle else result.cycles
    cfg = result.config
    return ProfileMetrics(
        name=result.app_names.get(app_id, stats.name),
        memory_bandwidth_gbps=stats.memory_bandwidth_gbps(cycles, cfg),
        l2_to_l1_gbps=stats.l2_to_l1_bandwidth_gbps(cycles, cfg),
        ipc=stats.ipc(cycles),
        mem_compute_ratio=stats.mem_compute_ratio,
        solo_cycles=cycles,
        thread_instructions=stats.thread_instructions,
        utilization=stats.ipc(cycles) / cfg.peak_ipc)


class Profiler:
    """Runs and memoizes solo profiles."""

    def __init__(self, config: GPUConfig):
        self.config = config
        self._cache: Dict[KernelSpec, ProfileMetrics] = {}

    def profile(self, name: str, spec: KernelSpec) -> ProfileMetrics:
        cached = self._cache.get(spec)
        if cached is not None:
            return cached
        result = simulate(self.config, [Application(name, spec)])
        metrics = metrics_from_result(result)
        self._cache[spec] = metrics
        return metrics

    def solo_cycles(self, name: str, spec: KernelSpec) -> int:
        return self.profile(name, spec).solo_cycles

    def invalidate(self) -> None:
        self._cache.clear()


#: Process-wide profiler cache, keyed by config.  The benchmark harness
#: profiles the same suite dozens of times; sharing one profiler per
#: configuration keeps the full figure suite tractable.
_PROFILERS: Dict[GPUConfig, Profiler] = {}


def shared_profiler(config: GPUConfig) -> Profiler:
    profiler = _PROFILERS.get(config)
    if profiler is None:
        profiler = Profiler(config)
        _PROFILERS[config] = profiler
    return profiler

"""Engine-backend registration: kind ``engine-backends``.

An engine backend is the thing that actually simulates one device: a
class constructed as ``cls(config)`` whose instances expose
``launch(apps, partitions)`` and ``run(max_cycles, callbacks)``
returning a ``DeviceResult``.  Every layer above the engine — streams,
fleets, speculation windows, campaign shards — is backend-agnostic;
the backend is selected by name through :data:`~repro.api.registry.REGISTRY`
from ``ExecutionSpec.backend``.

The registry factory returns the engine *class*, not an instance:
engines are constructed per simulation (one device, one group), so the
factory runs once per process and the class is then called as
``cls(config)`` at each simulation site.

The backend contract (see docs/api.md, "Writing a backend"):

* ``cls(config)`` — accept a :class:`~repro.gpusim.GPUConfig`.
* ``launch(apps, partitions=None)`` — stage applications, optional
  explicit SM partition list.
* ``run(max_cycles, callbacks=())`` — simulate and return the same
  ``DeviceResult`` the event engine returns.
* **Bit identity**: results (cycles, per-app stats, event counts) must
  be byte-identical to the event engine for the same inputs, or
  ``ENGINE_VERSION`` must be bumped with goldens re-captured and the
  divergence documented.  ``benchmarks/perf/run_bench.py --ab A:B``
  enforces this before any bench numbers are written.

Like :mod:`repro.api.devices` this module lives on the api side so the
``repro.gpusim`` package itself stays registry-free (bottom layer, no
upward imports).  Imports inside the factories are lazy so listing
backends (``repro list --kind engine-backends``) does not pull in the
native extension build.
"""

from __future__ import annotations

from typing import Dict

from repro.api.registry import REGISTRY


@REGISTRY.register("engine-backends", "event")
def _event_engine():
    """The original event-driven engine (the reference semantics)."""
    from repro.gpusim import GPU
    return GPU


@REGISTRY.register("engine-backends", "vector")
def _vector_engine():
    """Vectorized array-of-structs core (native C fast path when the
    toolchain allows, pure-Python flat-array loop otherwise); results
    bit-identical to the event engine."""
    from repro.gpusim.vector import VectorGPU
    return VectorGPU


#: Backend name → engine class, memoized: the factory import runs once
#: per process, after which resolution is a dict hit on the hot path.
_CLASS_CACHE: Dict[str, type] = {}


def engine_class(backend: str) -> type:
    """Resolve a backend name to its engine class (memoized)."""
    try:
        return _CLASS_CACHE[backend]
    except KeyError:
        pass
    cls = REGISTRY.create("engine-backends", backend)
    _CLASS_CACHE[backend] = cls
    return cls

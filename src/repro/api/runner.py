"""``run_scenario``: one entry point for queue, stream, and fleet runs.

Dispatches a :class:`~repro.api.scenario.Scenario` to the matching
engine — batch :func:`~repro.core.scheduler.run_queue`, online
:func:`~repro.runtime.run_stream`, or :func:`~repro.cluster.run_fleet` —
and normalizes the outcome into one :class:`RunResult` schema:

* ``metrics`` — the headline scorecard (throughput for queues;
  ANTT/STP/utilization/percentiles for streams; plus imbalance and
  per-device aggregates for fleets);
* ``apps`` — one record per application (arrival/start/finish cycles,
  group index, serving device, solo cycles where measured);
* ``groups`` — the scheduled timeline (members, cycles, start, device);
* ``devices`` — the per-device breakdown (fleet scenarios);
* ``provenance`` — engine version, schema version, seed, spec hash.

Everything in a :class:`RunResult` is deterministic data: no wall-clock
timestamps, no host names, no worker counts.  Running the same scenario
twice — serially or through a 4-worker executor — produces byte-equal
``to_json()`` output, which the CI scenario smoke job and the
determinism tests assert.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Mapping, Optional

from repro import __version__
from repro.gpusim import ENGINE_VERSION, GPUConfig

from .registry import REGISTRY
from .scenario import SCHEMA_VERSION, Scenario

#: Standard kwargs handed to every ``streams`` registry factory (each
#: factory keyword-consumes what it needs and ``**_``-ignores the rest).
_ARRIVAL_KEYS = ("mean_gap", "burst_size", "burst_gap", "seed")


@dataclass
class RunResult:
    """One scenario's outcome, normalized across run kinds."""

    kind: str
    #: the scenario as authored, except ``execution.workers`` is
    #: normalized to 1 — results never depend on the worker count, so
    #: a serial run and a ``--workers 4`` run of the same experiment
    #: serialize byte-identically.
    scenario: Dict[str, Any]
    #: headline scorecard; always includes ``policy`` and ``makespan``.
    metrics: Dict[str, Any]
    #: per-application lifecycle records.
    apps: List[Dict[str, Any]]
    #: scheduled groups in launch order (fleet: per-device order).
    groups: List[Dict[str, Any]]
    #: per-device breakdown; ``None`` for queue/stream scenarios.
    devices: Optional[List[Dict[str, Any]]]
    #: engine version, schema version, seed, spec hash.
    provenance: Dict[str, Any]

    #: Speculation counters (hits/misses/rollbacks…), attached by
    #: :func:`run_scenario` when the scenario enables speculation.
    #: Deliberately a ``ClassVar``, not a dataclass field: counters
    #: describe how the run executed, not what it computed, so they
    #: stay out of ``to_dict``/``to_json`` — a speculative result file
    #: is byte-identical to the serial one.
    speculation: ClassVar[Optional[Dict[str, Any]]] = None

    #: Telemetry snapshot (trace event count, metrics registry dump,
    #: profiler phases), attached by :func:`run_scenario` when the
    #: scenario enables telemetry.  Same ``ClassVar`` side-channel as
    #: ``speculation``: how the run was observed is not part of what it
    #: computed, so a traced result file is byte-identical to a plain
    #: one.
    telemetry: ClassVar[Optional[Dict[str, Any]]] = None

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def to_json(self, indent: int = 2) -> str:
        """Canonical encoding: byte-identical across equal results."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          indent=indent) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - fields)
        if unknown:
            raise ValueError(f"result has unknown key(s): "
                             f"{', '.join(unknown)}")
        missing = sorted(fields - set(data))
        if missing:
            raise ValueError(f"result is missing key(s): "
                             f"{', '.join(missing)}")
        return cls(**{name: data[name] for name in fields})


def _provenance(scenario: Scenario) -> Dict[str, Any]:
    data = {
        "engine_version": ENGINE_VERSION,
        "schema_version": SCHEMA_VERSION,
        "repro_version": __version__,
        "seed": scenario.workload.seed,
        "spec_hash": scenario.spec_hash(),
        #: the resolved gpu-configs name of every device, in device-id
        #: order (one entry for queue/stream scenarios) — the record a
        #: heterogeneous result needs to be replayed or audited.
        "device_configs": list(scenario.devices.config_names()),
    }
    # Optional keys: fault-free results stay byte-identical to builds
    # that predate fault injection.
    if scenario.faults is not None:
        data["faults"] = scenario.faults.kind
    if scenario.admission is not None:
        data["admission"] = scenario.admission.kind
    # The backend actually used — recorded only when non-default, so
    # event-engine results stay byte-identical to pre-backend builds.
    if scenario.execution.backend != "event":
        data["backend"] = scenario.execution.backend
    return data


def _embedded_scenario(scenario: Scenario) -> Dict[str, Any]:
    """The scenario dict stored in results (workers normalized to 1,
    speculation, telemetry and backend dropped) — all four are
    execution strategy or observation, never part of what the run
    computed.  The backend actually used is recorded in provenance."""
    data = scenario.to_dict()
    data["execution"]["workers"] = 1
    data["execution"].pop("speculation", None)
    data["execution"].pop("telemetry", None)
    data["execution"].pop("backend", None)
    return data


def _build_speculation(scenario: Scenario, executor):
    """The scenario's :class:`SpeculativeSimulator`, or ``None``."""
    from repro.runtime.speculation import make_speculation
    spec = scenario.execution.speculation
    if spec is None:
        return None
    strategy = REGISTRY.create("speculation", spec.kind, **spec.params())
    return make_speculation(strategy, executor,
                            backend=scenario.execution.backend)


def _build_telemetry(scenario: Scenario, telemetry=None):
    """The run's :class:`~repro.obs.Telemetry`, or ``None``.

    An explicit `telemetry` instance (the CLI builds one from
    ``--trace``/``--profile``) wins over the scenario's declarative
    ``execution.telemetry`` block.
    """
    if telemetry is not None:
        return telemetry
    spec = scenario.execution.telemetry
    if spec is None:
        return None
    return REGISTRY.create("telemetry", spec.kind, **spec.params())


def build_queue(scenario: Scenario):
    """The application queue a scenario's workload describes."""
    from repro.workloads import (distribution_queue, paper_queue,
                                 paper_queue_three, stream_queue)
    w = scenario.workload
    if w.source == "paper":
        builder = (paper_queue if scenario.policy.nc != 3
                   else paper_queue_three)
        return builder(scale=w.scale)
    if w.source == "distribution":
        return distribution_queue(w.distribution, length=w.length,
                                  seed=w.seed, scale=w.scale)
    if w.source == "stream":
        return stream_queue(w.apps, seed=w.seed,
                            synthetic_fraction=w.synthetic_fraction,
                            scale=w.scale)
    raise ValueError(f"workload source {w.source!r} builds an arrival "
                     f"trace, not a queue")


def build_arrivals(scenario: Scenario):
    """The arrival stream a scenario's workload describes.

    Every random draw (stream mix, synthetic specs, inter-arrival gaps)
    derives from ``workload.seed``, so an identical scenario JSON
    replays the identical stream.
    """
    from repro.workloads import load_trace, slice_arrivals
    w = scenario.workload
    if w.source == "trace":
        arrivals = load_trace(w.trace, scale=w.scale)
    else:
        queue = build_queue(scenario)
        arrivals = REGISTRY.create(
            "streams", w.arrival, queue,
            **{key: getattr(w, key) for key in _ARRIVAL_KEYS})
    if not arrivals:
        raise ValueError("the arrival stream is empty (trace with no "
                         "entries?)")
    if w.slice is not None:
        # Campaign trace sharding: the full stream is built (so every
        # slice sees identical names/specs/cycles), then the scenario's
        # contiguous window is cut out deterministically.
        arrivals = slice_arrivals(arrivals, *w.slice)
    return arrivals


def _build_policy(scenario: Scenario):
    return REGISTRY.create(scenario._policy_kind(), scenario.policy.name,
                           scenario.policy.nc)


def _solo_cycles(ctx, executor, arrivals) -> Dict[str, int]:
    """ANTT/STP denominators — parallel warm, then served from cache."""
    from repro.core import warm_profiles
    warm_profiles(ctx.profiler, executor,
                  [(a.name, a.spec) for a in arrivals])
    return {a.name: ctx.profiler.profile(a.name, a.spec).solo_cycles
            for a in arrivals}


def _summary_dict(summary) -> Dict[str, Any]:
    data = dataclasses.asdict(summary)
    for key, value in data.items():
        if isinstance(value, tuple):
            data[key] = list(value)
    return data


def _group_dicts(scheduled, device: Optional[int] = None
                 ) -> List[Dict[str, Any]]:
    out = []
    for g in scheduled:
        entry = {"start_cycle": g.start_cycle,
                 "members": list(g.outcome.members),
                 "cycles": g.outcome.cycles}
        if device is not None:
            entry["device"] = device
        out.append(entry)
    return out


def _record_dicts(records, solo: Mapping[str, int],
                  with_device: bool = False,
                  with_retries: bool = False) -> List[Dict[str, Any]]:
    out = []
    for name in sorted(records):
        rec = records[name]
        entry = {"name": rec.name,
                 "arrival_cycle": rec.arrival_cycle,
                 "start_cycle": rec.start_cycle,
                 "finish_cycle": rec.finish_cycle,
                 "group_index": rec.group_index,
                 "solo_cycles": solo[rec.name]}
        if with_device:
            entry["device"] = rec.device
        if with_retries:
            entry["retries"] = rec.retries
        out.append(entry)
    return out


def run_scenario(scenario: Scenario, executor=None,
                 telemetry=None) -> RunResult:
    """Run `scenario` end-to-end; return its normalized :class:`RunResult`.

    `executor` optionally supplies a shared
    :class:`~repro.runtime.executors.Executor` (the CLI reuses one
    across a policy comparison); by default one is built from
    ``scenario.execution.workers`` and closed on return.  The executor
    affects wall-clock only — results are bit-identical for any worker
    count.

    `telemetry` optionally supplies a pre-built
    :class:`~repro.obs.Telemetry` (the CLI builds one from ``--trace``
    and ``--profile``), overriding the scenario's declarative
    ``execution.telemetry`` block.  Telemetry observes the run and
    never steers it: the returned result is byte-identical with it on
    or off.  The snapshot lands on ``result.telemetry`` (a side
    channel, like ``result.speculation``) and configured trace sinks
    are written before returning.
    """
    from repro.core import SMRAParams, make_context
    from repro.runtime import make_executor
    from repro.workloads import RODINIA_SPECS

    owned = executor is None
    if owned:
        executor = make_executor(scenario.execution.workers)
    try:
        config: GPUConfig = REGISTRY.create("gpu-configs",
                                            scenario.devices.config)
        policy = _build_policy(scenario)
        placement = None
        need_interference = policy.needs_interference
        if scenario.kind == "fleet":
            placement = REGISTRY.create("placements",
                                        scenario.placement.name)
            need_interference = (need_interference
                                 or placement.needs_interference)
        ctx = make_context(config, suite=dict(RODINIA_SPECS),
                           need_interference=need_interference,
                           samples_per_pair=(scenario.execution
                                             .samples_per_pair),
                           smra_params=SMRAParams(), executor=executor,
                           backend=scenario.execution.backend)
        max_cycles = scenario.execution.max_cycles

        tel = _build_telemetry(scenario, telemetry)
        if scenario.kind == "queue":
            result = _run_queue_scenario(scenario, policy, ctx, executor,
                                         max_cycles, tel)
        else:
            speculation = _build_speculation(scenario, executor)
            if scenario.kind == "stream":
                result = _run_stream_scenario(scenario, policy, ctx,
                                              executor, max_cycles,
                                              speculation, tel)
            else:
                result = _run_fleet_scenario(scenario, placement, ctx,
                                             executor, max_cycles,
                                             speculation, tel)
            if speculation is not None:
                # Side-channel observability (CLI report/stdout): the
                # counters never enter to_dict()/to_json().
                result.speculation = speculation.counters.to_dict()
        if tel is not None:
            result.telemetry = tel.snapshot()
            tel.export()
        return result
    finally:
        if owned:
            executor.close()


def _run_queue_scenario(scenario, policy, ctx, executor,
                        max_cycles, telemetry=None) -> RunResult:
    from repro.core import run_queue
    queue = build_queue(scenario)
    outcome = run_queue(queue, policy, ctx, max_cycles=max_cycles,
                        executor=executor, telemetry=telemetry)
    # Queue drains run back-to-back: reconstruct the absolute timeline
    # so app/group cycles mean the same thing they do for streams
    # (every application "arrives" at cycle 0, the batch scenario).
    apps = []
    groups = []
    start = 0
    for index, group in enumerate(outcome.groups):
        groups.append({"start_cycle": start,
                       "members": list(group.members),
                       "cycles": group.cycles})
        for name in group.members:
            apps.append({"name": name,
                         "arrival_cycle": 0,
                         "start_cycle": start,
                         "finish_cycle": start + group.finish_cycle_of(name),
                         "group_index": index})
        start += group.cycles
    apps.sort(key=lambda a: a["name"])
    metrics = {
        "policy": outcome.policy,
        "groups": len(outcome.groups),
        "makespan": outcome.total_cycles,
        "total_cycles": outcome.total_cycles,
        "total_instructions": outcome.total_instructions,
        "device_throughput": outcome.device_throughput,
    }
    return RunResult(kind="queue", scenario=_embedded_scenario(scenario),
                     metrics=metrics, apps=apps, groups=groups,
                     devices=None, provenance=_provenance(scenario))


def _run_stream_scenario(scenario, policy, ctx, executor,
                         max_cycles, speculation=None,
                         telemetry=None) -> RunResult:
    from repro.analysis import summarize_stream
    from repro.runtime import run_stream
    arrivals = build_arrivals(scenario)
    solo = _solo_cycles(ctx, executor, arrivals)
    outcome = run_stream(arrivals, policy, ctx, max_cycles=max_cycles,
                         speculation=speculation, telemetry=telemetry)
    summary = summarize_stream(outcome, solo)
    return RunResult(kind="stream", scenario=_embedded_scenario(scenario),
                     metrics=_summary_dict(summary),
                     apps=_record_dicts(outcome.records, solo),
                     groups=_group_dicts(outcome.groups),
                     devices=None, provenance=_provenance(scenario))


def _device_contexts(scenario, ctx, executor):
    """One :class:`PolicyContext` per device for a heterogeneous fleet.

    Contexts are shared between devices of the same configuration (the
    profiler and interference caches are per config anyway); the
    homogeneous case returns ``None`` so :func:`repro.cluster.run_fleet`
    keeps its bit-identical classic path.
    """
    if not scenario.devices.heterogeneous:
        return None
    from repro.core import SMRAParams, make_context
    from repro.workloads import RODINIA_SPECS
    need = ctx.interference is not None
    contexts: Dict[str, Any] = {}
    for name in scenario.devices.config_names():
        if name not in contexts:
            contexts[name] = make_context(
                REGISTRY.create("gpu-configs", name),
                suite=dict(RODINIA_SPECS), need_interference=need,
                samples_per_pair=scenario.execution.samples_per_pair,
                smra_params=SMRAParams(), executor=executor,
                backend=scenario.execution.backend)
    return [contexts[name] for name in scenario.devices.config_names()]


def _per_device_solo(device_contexts, outcome, executor,
                     arrivals) -> Dict[str, int]:
    """Device-correct ANTT/STP denominators for a heterogeneous fleet:
    each application's solo run is measured on the configuration of the
    device that served it, warmed per config in one executor batch."""
    from repro.core import warm_profiles
    specs = {a.name: a.spec for a in arrivals}
    by_ctx: Dict[int, Any] = {}
    entries: Dict[int, List] = {}
    for name, record in sorted(outcome.records.items()):
        dctx = device_contexts[record.device]
        by_ctx.setdefault(id(dctx), dctx)
        entries.setdefault(id(dctx), []).append((name, specs[name]))
    for key, dctx in by_ctx.items():
        warm_profiles(dctx.profiler, executor, entries[key])
    return {name: device_contexts[record.device]
            .profiler.profile(name, specs[name]).solo_cycles
            for name, record in outcome.records.items()}


def _run_fleet_scenario(scenario, placement, ctx, executor,
                        max_cycles, speculation=None,
                        telemetry=None) -> RunResult:
    from repro.analysis import summarize_faults, summarize_fleet
    from repro.cluster import run_fleet
    arrivals = build_arrivals(scenario)
    device_contexts = _device_contexts(scenario, ctx, executor)
    if device_contexts is None:
        solo = _solo_cycles(ctx, executor, arrivals)
    faults = admission = None
    if scenario.faults is not None:
        faults = REGISTRY.create("faults", scenario.faults.kind,
                                 scenario.devices.count,
                                 **scenario.faults.params())
    if scenario.admission is not None:
        admission = REGISTRY.create("admission", scenario.admission.kind,
                                    **scenario.admission.params())
    # Spec-level, not object-level: whether the author asked for fault
    # semantics decides the result shape (extra metrics/app/device keys).
    fault_mode = (scenario.faults is not None
                  or scenario.admission is not None)
    outcome = run_fleet(
        arrivals, placement,
        lambda _i: _build_policy(scenario), ctx,
        num_devices=scenario.devices.count, executor=executor,
        max_cycles=max_cycles, device_contexts=device_contexts,
        faults=faults, admission=admission, speculation=speculation,
        telemetry=telemetry)
    if device_contexts is not None:
        solo = _per_device_solo(device_contexts, outcome, executor,
                                arrivals)
    config_names = scenario.devices.config_names()
    if outcome.records:
        summary = summarize_fleet(outcome, solo,
                                  device_configs=config_names)
        metrics = _summary_dict(summary)
    else:
        # Fully-degraded fleet: every arrival was rejected, there is no
        # served stream to summarize — report the skeleton scorecard
        # and let the fault metrics below carry the story.
        metrics = {
            "placement": outcome.placement,
            "policy": outcome.policy,
            "devices": len(outcome.devices),
            "apps": 0,
            "makespan": outcome.makespan,
        }
    if fault_mode:
        deadline = (scenario.admission.deadline_cycles
                    if scenario.admission is not None
                    and scenario.admission.kind == "deadline" else 0)
        metrics.update(summarize_faults(outcome,
                                        deadline_cycles=deadline))
    groups: List[Dict[str, Any]] = []
    devices = []
    for dev in outcome.devices:
        groups.extend(_group_dicts(dev.groups, device=dev.device_id))
        entry = {
            "device_id": dev.device_id,
            "policy": dev.policy,
            "config": config_names[dev.device_id],
            "groups": len(dev.groups),
            "apps_served": dev.apps_served,
            "busy_cycles": dev.busy_cycles,
            "utilization": dev.busy_cycles / max(1, outcome.makespan),
        }
        if fault_mode:
            entry["lost_cycles"] = dev.lost_cycles
            entry["down_cycles"] = dev.down_cycles
            entry["failed_groups"] = len(dev.failed_groups)
        devices.append(entry)
    return RunResult(kind="fleet", scenario=_embedded_scenario(scenario),
                     metrics=metrics,
                     apps=_record_dicts(outcome.records, solo,
                                        with_device=True,
                                        with_retries=fault_mode),
                     groups=groups, devices=devices,
                     provenance=_provenance(scenario))

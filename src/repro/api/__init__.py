"""The declarative Scenario/Experiment API: one entry point for runs.

Three pieces (see ``docs/api.md``):

* **registry** (:mod:`.registry`) — the single pluggable kind → name →
  factory table behind every policy / placement / stream / benchmark /
  config lookup, with decorator-based extension;
* **scenario** (:mod:`.scenario`) — the :class:`Scenario` dataclass
  tree (workload, policy, placement, devices, execution) with strict
  validation and a lossless JSON round-trip;
* **runner** (:mod:`.runner`) — :func:`run_scenario` dispatches a
  scenario to the queue / stream / fleet engine and normalizes the
  outcome into one serializable :class:`RunResult` (headline metrics,
  per-app records, per-device breakdown, provenance block);
  :mod:`.sweep` expands a base scenario × parameter grid into points.

The CLI front ends are ``python -m repro run <scenario.json>`` and
``python -m repro sweep <sweep.json>``; the classic ``run-queue`` /
``run-stream`` / ``run-fleet`` subcommands are thin wrappers over the
same path.
"""

from .registry import BUILTIN_KINDS, REGISTRY, Registry, RegistryError
from .runner import RunResult, build_arrivals, build_queue, run_scenario
from .scenario import (KINDS, SCHEMA_VERSION, SOURCES, AdmissionSpec,
                       DeviceSpec, ExecutionSpec, FaultSpec, PlacementSpec,
                       PolicySpec, Scenario, SpeculationSpec, TelemetrySpec,
                       WorkloadSpec)
from .sweep import expand_grid, load_sweep, point_filename

#: Campaign-layer specs re-exported through the Scenario API.  Lazy
#: (module __getattr__): repro.campaign imports the submodules above,
#: so an eager import here would be circular whichever side loads
#: first.
_CAMPAIGN_EXPORTS = ("CampaignSpec", "ShardSpec")


def __getattr__(name):
    if name in _CAMPAIGN_EXPORTS:
        import repro.campaign
        return getattr(repro.campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute "
                         f"{name!r}")


__all__ = [
    "REGISTRY", "Registry", "RegistryError", "BUILTIN_KINDS",
    "Scenario", "WorkloadSpec", "PolicySpec", "PlacementSpec",
    "DeviceSpec", "ExecutionSpec", "FaultSpec", "AdmissionSpec",
    "SpeculationSpec", "TelemetrySpec", "KINDS", "SOURCES",
    "SCHEMA_VERSION",
    "RunResult", "run_scenario", "build_queue", "build_arrivals",
    "expand_grid", "load_sweep", "point_filename",
    "CampaignSpec", "ShardSpec",
]

"""The declarative Scenario tree: one serializable run description.

A :class:`Scenario` fully describes one queue / stream / fleet run —
workload, policy, placement, devices, execution — as plain data with a
lossless JSON round-trip (``Scenario.from_dict(s.to_dict()) == s``).
It is the single input format of :func:`repro.api.runner.run_scenario`,
the ``python -m repro run`` CLI, and the sweep expander; the classic
``run-queue`` / ``run-stream`` / ``run-fleet`` subcommands are thin
wrappers that build a :class:`Scenario` from their flags.

Design rules
------------
* **Strict validation at construction.**  Every spec validates in
  ``__post_init__``; a malformed dict never becomes a half-usable
  object.  Registry names (policy, placement, config, arrival) are
  validated against :data:`~repro.api.registry.REGISTRY` so a typo
  fails at load time with a did-you-mean message, not mid-run.
* **Strict decoding.**  ``from_dict`` rejects unknown keys and wrong
  schema versions with errors naming the offending key.
* **Deterministic identity.**  :meth:`Scenario.spec_hash` is a sha256
  over the canonical JSON encoding with ``execution.workers``
  normalized to 1 — the worker count changes wall-clock only, never
  results, so two runs of the same experiment share one hash.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from .registry import REGISTRY

#: Version of the Scenario/RunResult JSON schema.  Bump on any change
#: that alters field meaning; ``from_dict`` rejects other versions.
SCHEMA_VERSION = 1

#: The run kinds :func:`repro.api.runner.run_scenario` dispatches on.
KINDS = ("queue", "stream", "fleet")

#: Workload sources understood by :class:`WorkloadSpec`.
SOURCES = ("paper", "distribution", "stream", "trace")

#: The distribution-queue orientations of §4.1 (mirrors
#: ``repro.workloads.DISTRIBUTIONS`` without importing the heavyweight
#: workloads package at decode time).
_DISTRIBUTIONS = ("equal", "M", "MC", "C", "A")

#: Simulation budget default (mirrors ``repro.gpusim.DEFAULT_MAX_CYCLES``).
_DEFAULT_MAX_CYCLES = 50_000_000


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(message)


def _check_registry(kind: str, name: str) -> None:
    # Delegates to the registry so the error carries the did-you-mean
    # hint; RegistryError is a ValueError, the decode contract.
    REGISTRY.get(kind, name)


def _decode(cls, data: Mapping[str, Any], context: str):
    """Build dataclass `cls` from `data`, rejecting unknown keys."""
    if not isinstance(data, Mapping):
        raise ValueError(f"{context} must be an object, got "
                         f"{type(data).__name__}")
    fields = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - fields)
    if unknown:
        raise ValueError(f"{context} has unknown key(s): "
                         f"{', '.join(unknown)} (known: "
                         f"{', '.join(sorted(fields))})")
    return cls(**data)


@dataclass(frozen=True)
class WorkloadSpec:
    """What applications arrive, and when.

    ``source`` selects the queue builder:

    * ``paper`` — the paper's 14-app queue (12-app when the policy runs
      NC=3 groups), Fig. 4.1/4.2;
    * ``distribution`` — a §4.1 class-distribution queue
      (``distribution`` + ``length``);
    * ``stream`` — the Rodinia+synthetic mixed queue of the online
      scenarios (``apps`` + ``synthetic_fraction``);
    * ``trace`` — replay a ``<cycle> <benchmark>`` file (``trace``).

    ``arrival`` selects the arrival process layered on top (a name of
    the ``streams`` registry kind): ``batch`` (everything at cycle 0 —
    the only choice for ``queue`` scenarios), ``poisson`` or ``bursty``.
    A ``trace`` source carries its own arrival cycles.

    Every stochastic choice — the stream mix, synthetic specs, Poisson
    and bursty gaps, the distribution-queue shuffle — derives from
    ``seed`` alone, so one scenario JSON reproduces bit-identical
    results.
    """

    source: str = "paper"
    #: class orientation for ``source="distribution"``.
    distribution: str = "equal"
    #: queue length for ``source="distribution"``.
    length: int = 20
    #: stream length for ``source="stream"``.
    apps: int = 50
    #: synthetic share of the stream mix for ``source="stream"``.
    synthetic_fraction: float = 0.5
    #: trace file path for ``source="trace"``.
    trace: str = ""
    #: kernel scale factor (smaller = faster runs).
    scale: float = 1.0
    #: master seed for mix + arrival randomness.
    seed: int = 42
    #: arrival process (``streams`` registry kind).
    arrival: str = "batch"
    #: mean Poisson inter-arrival gap in cycles.
    mean_gap: float = 5000.0
    #: arrivals per burst for ``arrival="bursty"``.
    burst_size: int = 8
    #: mean quiet gap between bursts in cycles.
    burst_gap: float = 50000.0
    #: campaign shard window ``(index, count)``: run only the
    #: ``index``-th of ``count`` contiguous arrival slices (see
    #: :func:`repro.workloads.slice_arrivals`).  ``None`` (the default)
    #: runs the whole stream.  Unlike ``workers``, a slice changes what
    #: the run computes, so it IS part of :meth:`Scenario.spec_hash`.
    slice: Optional[Tuple[int, int]] = None

    def __post_init__(self):
        if self.slice is not None:
            # JSON decodes to lists; normalize to the hashable tuple.
            object.__setattr__(self, "slice", tuple(self.slice))
            _require(len(self.slice) == 2
                     and all(isinstance(v, int)
                             and not isinstance(v, bool)
                             for v in self.slice),
                     f"slice must be an [index, count] integer pair, got "
                     f"{list(self.slice)!r}")
            index, count = self.slice
            _require(count >= 1,
                     f"slice count must be >= 1, got {count!r}")
            _require(0 <= index < count,
                     f"slice index must be in [0, {count}), got {index!r}")
        _require(self.source in SOURCES,
                 f"unknown workload source {self.source!r}; expected one "
                 f"of {list(SOURCES)}")
        _require(self.distribution in _DISTRIBUTIONS,
                 f"unknown distribution {self.distribution!r}; expected "
                 f"one of {list(_DISTRIBUTIONS)}")
        _require(isinstance(self.length, int) and self.length >= 1,
                 f"length must be a positive integer, got {self.length!r}")
        _require(isinstance(self.apps, int) and self.apps >= 1,
                 f"apps must be a positive integer, got {self.apps!r}")
        _require(0.0 <= self.synthetic_fraction <= 1.0,
                 f"synthetic_fraction must be in [0, 1], got "
                 f"{self.synthetic_fraction!r}")
        _require(self.scale > 0,
                 f"scale must be > 0, got {self.scale!r}")
        _require(isinstance(self.seed, int) and self.seed >= 0,
                 f"seed must be a non-negative integer, got {self.seed!r}")
        _require(self.source != "trace" or bool(self.trace),
                 "a trace workload needs a trace file path")
        _require(self.source == "trace" or not self.trace,
                 f"trace path is only valid with source='trace', not "
                 f"{self.source!r}")
        if self.source != "trace":
            _check_registry("streams", self.arrival)
        _require(self.mean_gap > 0,
                 f"mean_gap must be > 0, got {self.mean_gap!r}")
        _require(isinstance(self.burst_size, int) and self.burst_size >= 1,
                 f"burst_size must be a positive integer, got "
                 f"{self.burst_size!r}")
        _require(self.burst_gap > 0,
                 f"burst_gap must be > 0, got {self.burst_gap!r}")

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        if data["slice"] is None:
            # Absent-when-unset: an unsliced workload serializes exactly
            # as it did before slices existed, so spec hashes, embedded
            # scenarios, and golden files are untouched.
            del data["slice"]
        else:
            data["slice"] = list(data["slice"])
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        return _decode(cls, data, "workload")


@dataclass(frozen=True)
class PolicySpec:
    """Which scheduling policy forms groups, and its arity.

    ``name`` is a ``policies`` registry name for queue scenarios and an
    ``online-policies`` name for stream/fleet scenarios (the scenario's
    ``kind`` decides which; :meth:`Scenario.__post_init__` validates).
    """

    name: str = "fcfs"
    #: concurrent applications per group.
    nc: int = 2

    def __post_init__(self):
        _require(bool(self.name) and isinstance(self.name, str),
                 f"policy name must be a non-empty string, got "
                 f"{self.name!r}")
        _require(isinstance(self.nc, int) and self.nc >= 1,
                 f"nc must be a positive integer, got {self.nc!r}")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicySpec":
        return _decode(cls, data, "policy")


@dataclass(frozen=True)
class PlacementSpec:
    """Which device an arriving application joins (fleet scenarios)."""

    name: str = "least-loaded"

    def __post_init__(self):
        _check_registry("placements", self.name)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlacementSpec":
        return _decode(cls, data, "placement")


@dataclass(frozen=True)
class DeviceSpec:
    """How many devices, and which named configuration they run.

    ``per_device`` lists one ``gpu-configs`` name per device for
    **heterogeneous** (big/little) fleets; its length must equal
    ``count``.  A homogeneous ``per_device`` list (every entry equal)
    is canonicalized into the plain ``config`` form — the two spellings
    describe the same fleet, so they compare equal, serialize
    identically, and share one :meth:`Scenario.spec_hash`.  When
    ``per_device`` mixes configs, ``config`` is normalized to the first
    entry (device 0's configuration) so the encoding stays canonical.
    """

    count: int = 1
    #: a ``gpu-configs`` registry name.
    config: str = "gtx480"
    #: per-device config names (heterogeneous fleets); length must
    #: equal ``count``.  ``None`` means every device runs ``config``.
    per_device: Optional[Tuple[str, ...]] = None

    def __post_init__(self):
        _require(isinstance(self.count, int) and self.count >= 1,
                 f"device count must be a positive integer, got "
                 f"{self.count!r}")
        _check_registry("gpu-configs", self.config)
        if self.per_device is not None:
            # JSON decodes to lists; normalize to the hashable tuple.
            object.__setattr__(self, "per_device", tuple(self.per_device))
            _require(len(self.per_device) == self.count,
                     f"per_device lists {len(self.per_device)} configs "
                     f"for {self.count} device(s)")
            for name in self.per_device:
                _check_registry("gpu-configs", name)
            if len(set(self.per_device)) == 1:
                # Canonical form: a homogeneous list IS the config path.
                object.__setattr__(self, "config", self.per_device[0])
                object.__setattr__(self, "per_device", None)
            else:
                object.__setattr__(self, "config", self.per_device[0])

    @property
    def heterogeneous(self) -> bool:
        """True when the fleet mixes device configurations."""
        return self.per_device is not None

    def config_names(self) -> Tuple[str, ...]:
        """One ``gpu-configs`` name per device, in device-id order."""
        if self.per_device is not None:
            return self.per_device
        return (self.config,) * self.count

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        if data["per_device"] is not None:
            data["per_device"] = list(data["per_device"])
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeviceSpec":
        return _decode(cls, data, "devices")


@dataclass(frozen=True)
class SpeculationSpec:
    """Speculative-execution strategy for a stream or fleet scenario.

    ``kind`` names a ``speculation`` registry strategy:

    * ``none`` — no speculation; canonicalized away (the spec compares
      and serializes identically to leaving ``speculation`` out);
    * ``groups`` — predict + pre-simulate each device's likely next
      groups while the clock is blocked on an in-flight one;
    * ``devices`` — fleet devices run ahead of the global clock up to
      the safe horizon, with rollback (Time-Warp style);
    * ``full`` — both.

    Speculation is an execution strategy, never part of the result's
    identity: results are bit-identical with any kind (and any worker
    count), so :meth:`Scenario.spec_hash` normalizes the block away.
    ``commit_check`` re-simulates every speculative hit serially and
    raises on any divergence — the paranoid mode of the determinism
    tests.
    """

    kind: str = "none"
    #: successor groups predicted per launch.
    depth: int = 2
    #: re-verify every speculative hit against a serial rerun.
    commit_check: bool = False

    def __post_init__(self):
        _check_registry("speculation", self.kind)
        _require(isinstance(self.depth, int)
                 and not isinstance(self.depth, bool) and self.depth >= 1,
                 f"speculation depth must be a positive integer, got "
                 f"{self.depth!r}")
        _require(isinstance(self.commit_check, bool),
                 f"commit_check must be a boolean, got "
                 f"{self.commit_check!r}")

    def params(self) -> Dict[str, Any]:
        """Keyword arguments for the ``speculation`` registry factory."""
        data = dataclasses.asdict(self)
        del data["kind"]
        return data

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpeculationSpec":
        return _decode(cls, data, "speculation")


#: Trace sink formats understood by :class:`TelemetrySpec` (mirrors
#: ``repro.obs.TRACE_FORMATS`` without importing obs at decode time).
_TRACE_SINKS = ("jsonl", "chrome")

#: Telemetry kinds that record trace events (and hence accept sinks).
_TRACING_KINDS = ("trace", "full")


@dataclass(frozen=True)
class TelemetrySpec:
    """Observability for any scenario kind (see :mod:`repro.obs`).

    ``kind`` names a ``telemetry`` registry bundle:

    * ``none`` — no telemetry; canonicalized away (the spec compares
      and serializes identically to leaving ``telemetry`` out);
    * ``trace`` — record virtual-clock :class:`~repro.obs.TraceEvent`\\ s;
    * ``metrics`` — deterministic counters/gauges/histograms only;
    * ``profile`` — wall-clock phase timers only;
    * ``full`` — all three.

    ``sinks`` lists trace export formats (``jsonl``, ``chrome``) and is
    only valid with a tracing kind; ``path`` is where the trace is
    written after the run (with two sinks, each writes
    ``{path}.{format}``).  Telemetry observes a run without
    participating in it — results are byte-identical with any kind —
    so :meth:`Scenario.spec_hash` normalizes the block away exactly
    like ``speculation``.
    """

    kind: str = "none"
    #: trace export formats written after the run.
    sinks: Tuple[str, ...] = ()
    #: output path for the trace sinks.
    path: str = ""

    def __post_init__(self):
        _check_registry("telemetry", self.kind)
        # JSON decodes to lists; normalize to the hashable tuple.
        object.__setattr__(self, "sinks", tuple(self.sinks))
        for fmt in self.sinks:
            _require(fmt in _TRACE_SINKS,
                     f"unknown trace sink {fmt!r}; expected one of "
                     f"{list(_TRACE_SINKS)}")
        _require(len(set(self.sinks)) == len(self.sinks),
                 f"duplicate trace sinks in {list(self.sinks)}")
        _require(not self.sinks or self.kind in _TRACING_KINDS,
                 f"trace sinks are only valid with kind in "
                 f"{list(_TRACING_KINDS)}, not {self.kind!r}")
        _require(not self.sinks or bool(self.path),
                 "telemetry sinks need an output path")
        _require(not self.path or bool(self.sinks),
                 "a telemetry path needs at least one sink")
        _require(isinstance(self.path, str),
                 f"telemetry path must be a string, got {self.path!r}")

    def params(self) -> Dict[str, Any]:
        """Keyword arguments for the ``telemetry`` registry factory."""
        return {"sinks": self.sinks, "path": self.path}

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["sinks"] = list(self.sinks)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TelemetrySpec":
        return _decode(cls, data, "telemetry")


@dataclass(frozen=True)
class ExecutionSpec:
    """Resources and budgets: never part of the result's identity.

    ``workers`` fans independent simulations across processes — the
    engines guarantee bit-identical results for any worker count, so
    :meth:`Scenario.spec_hash` normalizes it away.  ``samples_per_pair``
    sizes the Fig. 3.4 interference measurement; ``max_cycles`` is the
    per-simulation safety budget.  ``speculation`` selects the
    speculative-execution strategy (see :class:`SpeculationSpec`) — a
    ``kind="none"`` spec canonicalizes to ``None``, so a
    speculation-free scenario serializes byte-identically whether the
    block was given or not.  ``telemetry`` selects the observability
    bundle (see :class:`TelemetrySpec`) with the same canonicalization
    — telemetry observes a run without changing its results.
    ``backend`` names the ``engine-backends`` registry entry that
    simulates each device — every backend is bit-identical to the
    reference ``"event"`` engine, so like ``workers`` it is
    resources-not-identity: :meth:`Scenario.spec_hash` normalizes it
    away and the default ``"event"`` serializes to no key.
    """

    workers: int = 1
    max_cycles: int = _DEFAULT_MAX_CYCLES
    samples_per_pair: int = 1
    speculation: Optional[SpeculationSpec] = None
    telemetry: Optional[TelemetrySpec] = None
    backend: str = "event"

    def __post_init__(self):
        _require(isinstance(self.workers, int)
                 and not isinstance(self.workers, bool)
                 and self.workers >= 1,
                 f"workers must be a positive integer, got "
                 f"{self.workers!r}")
        _require(isinstance(self.max_cycles, int) and self.max_cycles >= 1,
                 f"max_cycles must be a positive integer, got "
                 f"{self.max_cycles!r}")
        _require(isinstance(self.samples_per_pair, int)
                 and self.samples_per_pair >= 1,
                 f"samples_per_pair must be a positive integer, got "
                 f"{self.samples_per_pair!r}")
        if isinstance(self.speculation, Mapping):
            # from_dict hands the nested block through as a plain dict.
            object.__setattr__(self, "speculation",
                               SpeculationSpec.from_dict(self.speculation))
        _require(self.speculation is None
                 or isinstance(self.speculation, SpeculationSpec),
                 f"speculation must be a speculation spec object, got "
                 f"{self.speculation!r}")
        if self.speculation is not None and self.speculation.kind == "none":
            # Canonical form: a no-op spec IS the absent-spec path.
            object.__setattr__(self, "speculation", None)
        if isinstance(self.telemetry, Mapping):
            object.__setattr__(self, "telemetry",
                               TelemetrySpec.from_dict(self.telemetry))
        _require(self.telemetry is None
                 or isinstance(self.telemetry, TelemetrySpec),
                 f"telemetry must be a telemetry spec object, got "
                 f"{self.telemetry!r}")
        if self.telemetry is not None and self.telemetry.kind == "none":
            object.__setattr__(self, "telemetry", None)
        _require(isinstance(self.backend, str) and self.backend,
                 f"backend must be a non-empty string, got "
                 f"{self.backend!r}")
        _check_registry("engine-backends", self.backend)

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        if data["speculation"] is None:
            del data["speculation"]
        if data["backend"] == "event":
            # Canonical form: the default backend IS the absent key, so
            # pre-backend scenario files round-trip byte-identically.
            del data["backend"]
        if data["telemetry"] is None:
            del data["telemetry"]
        elif data["telemetry"]["sinks"] is not None:
            data["telemetry"]["sinks"] = list(data["telemetry"]["sinks"])
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionSpec":
        return _decode(cls, data, "execution")


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic fault injection for a fleet scenario.

    ``kind`` names a ``faults`` registry generator:

    * ``none`` — no faults; canonicalized away (the spec compares and
      serializes identically to leaving ``faults`` out entirely);
    * ``scheduled`` — explicit ``events`` list of
      ``[cycle, device, "down"|"up"]`` triples;
    * ``mtbf`` — seeded exponential churn: per-device outages drawn
      from ``mtbf``/``mttr`` means over ``horizon`` cycles;
    * ``transient`` — no outages, only group-level transient failures.

    ``fail_prob`` additionally arms transient group failures (a failed
    attempt burns its full duration, then its members requeue) under
    every kind; ``max_retries`` bounds attempts per application.  All
    randomness derives from ``seed``, so one spec reproduces
    bit-identical fault streams.
    """

    kind: str = "none"
    #: ``(cycle, device, "down"|"up")`` triples for ``kind="scheduled"``.
    events: Tuple[Tuple[int, int, str], ...] = ()
    #: mean cycles between failures per device (``kind="mtbf"``).
    mtbf: float = 500_000.0
    #: mean repair time in cycles (``kind="mtbf"``).
    mttr: float = 100_000.0
    #: cycle horizon for generated churn (``kind="mtbf"``).
    horizon: int = 2_000_000
    #: probability a launched group fails transiently.
    fail_prob: float = 0.0
    #: attempts per application before a transient failure is final.
    max_retries: int = 2
    #: seed for churn and transient-failure randomness.
    seed: int = 0

    def __post_init__(self):
        _check_registry("faults", self.kind)
        object.__setattr__(self, "events",
                           tuple(tuple(e) for e in self.events))
        if self.kind == "scheduled":
            _require(bool(self.events),
                     "faults kind 'scheduled' needs at least one "
                     "[cycle, device, 'down'|'up'] event")
        else:
            _require(not self.events,
                     f"fault events are only valid with kind='scheduled', "
                     f"not {self.kind!r}")
        if self.kind == "transient":
            _require(0.0 < self.fail_prob <= 1.0,
                     f"faults kind 'transient' needs fail_prob in (0, 1], "
                     f"got {self.fail_prob!r}")
        _require(0.0 <= self.fail_prob <= 1.0,
                 f"fail_prob must be in [0, 1], got {self.fail_prob!r}")
        _require(self.mtbf > 0, f"mtbf must be > 0, got {self.mtbf!r}")
        _require(self.mttr > 0, f"mttr must be > 0, got {self.mttr!r}")
        _require(isinstance(self.horizon, int) and self.horizon >= 1,
                 f"horizon must be a positive integer, got "
                 f"{self.horizon!r}")
        _require(isinstance(self.max_retries, int) and self.max_retries >= 0,
                 f"max_retries must be a non-negative integer, got "
                 f"{self.max_retries!r}")
        _require(isinstance(self.seed, int) and self.seed >= 0,
                 f"seed must be a non-negative integer, got {self.seed!r}")

    def params(self) -> Dict[str, Any]:
        """Keyword arguments for the ``faults`` registry factory."""
        data = dataclasses.asdict(self)
        del data["kind"]
        return data

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["events"] = [list(e) for e in self.events]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        return _decode(cls, data, "faults")


@dataclass(frozen=True)
class AdmissionSpec:
    """Admission control for a fleet scenario.

    ``kind`` names an ``admission`` registry policy: ``none``
    (canonicalized away, like :class:`FaultSpec`), ``queue-cap``
    (reject or defer arrivals while fleet-wide waiting depth is at
    ``queue_cap``), or ``deadline`` (reject arrivals whose optimistic
    completion bound already misses ``deadline_cycles``).
    """

    kind: str = "none"
    #: fleet-wide waiting-apps cap for ``kind="queue-cap"``.
    queue_cap: int = 8
    #: what happens at the cap: ``reject`` or ``defer``.
    mode: str = "reject"
    #: cycles between re-offers of a deferred arrival.
    defer_gap: int = 5_000
    #: re-offers before a deferred arrival is finally rejected.
    max_defers: int = 3
    #: turnaround budget in cycles for ``kind="deadline"``.
    deadline_cycles: int = 50_000

    def __post_init__(self):
        _check_registry("admission", self.kind)
        _require(isinstance(self.queue_cap, int) and self.queue_cap >= 1,
                 f"queue_cap must be a positive integer, got "
                 f"{self.queue_cap!r}")
        _require(self.mode in ("reject", "defer"),
                 f"admission mode must be 'reject' or 'defer', got "
                 f"{self.mode!r}")
        _require(isinstance(self.defer_gap, int) and self.defer_gap >= 1,
                 f"defer_gap must be a positive integer, got "
                 f"{self.defer_gap!r}")
        _require(isinstance(self.max_defers, int) and self.max_defers >= 0,
                 f"max_defers must be a non-negative integer, got "
                 f"{self.max_defers!r}")
        _require(isinstance(self.deadline_cycles, int)
                 and self.deadline_cycles >= 1,
                 f"deadline_cycles must be a positive integer, got "
                 f"{self.deadline_cycles!r}")

    def params(self) -> Dict[str, Any]:
        """Keyword arguments for the ``admission`` registry factory."""
        data = dataclasses.asdict(self)
        del data["kind"]
        return data

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdmissionSpec":
        return _decode(cls, data, "admission")


@dataclass(frozen=True)
class Scenario:
    """One declarative run: kind + workload + policy (+ placement).

    ``kind`` selects the engine — ``queue`` (batch drain), ``stream``
    (one device, online arrivals), ``fleet`` (N devices + placement).
    Fleet scenarios optionally carry ``faults`` (deterministic fault
    injection) and ``admission`` (admission control); a ``kind="none"``
    spec in either slot canonicalizes to ``None``, so a fault-free
    scenario serializes byte-identically whether the spec was given or
    not.
    """

    kind: str
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    policy: PolicySpec = field(default_factory=PolicySpec)
    placement: Optional[PlacementSpec] = None
    devices: DeviceSpec = field(default_factory=DeviceSpec)
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    faults: Optional[FaultSpec] = None
    admission: Optional[AdmissionSpec] = None
    #: free-form label, carried into results and sweep file names.
    name: str = ""

    def __post_init__(self):
        _require(self.kind in KINDS,
                 f"unknown scenario kind {self.kind!r}; expected one of "
                 f"{list(KINDS)}")
        _check_registry(self._policy_kind(), self.policy.name)
        if self.kind == "queue":
            _require(self.workload.arrival == "batch",
                     "queue scenarios drain a batch; set workload.arrival "
                     "to 'batch' (or use kind='stream')")
            _require(self.workload.source != "trace",
                     "queue scenarios have no arrival timeline; replay "
                     "traces with kind='stream'")
            _require(self.execution.speculation is None,
                     "speculation is only valid for stream and fleet "
                     "scenarios; queue drains already run every group "
                     "through the executor")
            _require(self.workload.slice is None,
                     "workload slices split an arrival timeline; queue "
                     "scenarios have none (use kind='stream')")
        if self.faults is not None and self.faults.kind == "none":
            # Canonical form: a no-op FaultSpec IS the absent-spec path.
            object.__setattr__(self, "faults", None)
        if self.admission is not None and self.admission.kind == "none":
            object.__setattr__(self, "admission", None)
        if self.kind == "fleet":
            if self.placement is None:
                object.__setattr__(self, "placement", PlacementSpec())
            if self.faults is not None:
                # Building the plan validates device ranges and the
                # all-DOWN-at-cycle-0 degenerate case at load time.
                REGISTRY.create("faults", self.faults.kind,
                                self.devices.count, **self.faults.params())
        else:
            _require(self.placement is None,
                     f"placement is only valid for fleet scenarios, not "
                     f"kind={self.kind!r}")
            _require(self.devices.count == 1,
                     f"{self.kind} scenarios run one device; use "
                     f"kind='fleet' for {self.devices.count}")
            _require(self.faults is None,
                     f"fault injection is only valid for fleet scenarios, "
                     f"not kind={self.kind!r}")
            _require(self.admission is None,
                     f"admission control is only valid for fleet "
                     f"scenarios, not kind={self.kind!r}")
        _require(isinstance(self.name, str),
                 f"name must be a string, got {self.name!r}")

    def _policy_kind(self) -> str:
        """The registry kind ``policy.name`` resolves in."""
        return "policies" if self.kind == "queue" else "online-policies"

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data encoding; ``from_dict`` inverts it losslessly."""
        data: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
            "workload": self.workload.to_dict(),
            "policy": self.policy.to_dict(),
            "devices": self.devices.to_dict(),
            "execution": self.execution.to_dict(),
        }
        if self.placement is not None:
            data["placement"] = self.placement.to_dict()
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        if self.admission is not None:
            data["admission"] = self.admission.to_dict()
        if self.name:
            data["name"] = self.name
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Strict decode: unknown keys / versions are :class:`ValueError`."""
        if not isinstance(data, Mapping):
            raise ValueError(f"scenario must be an object, got "
                             f"{type(data).__name__}")
        data = dict(data)
        version = data.pop("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported scenario schema_version {version!r}; this "
                f"build reads version {SCHEMA_VERSION}")
        known = {"kind", "workload", "policy", "placement", "devices",
                 "execution", "faults", "admission", "name"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"scenario has unknown key(s): "
                             f"{', '.join(unknown)} (known: "
                             f"{', '.join(sorted(known))})")
        if "kind" not in data:
            raise ValueError("scenario is missing the required 'kind' key")
        placement = data.get("placement")
        faults = data.get("faults")
        admission = data.get("admission")
        return cls(
            kind=data["kind"],
            workload=WorkloadSpec.from_dict(data.get("workload", {})),
            policy=PolicySpec.from_dict(data.get("policy", {})),
            placement=(PlacementSpec.from_dict(placement)
                       if placement is not None else None),
            devices=DeviceSpec.from_dict(data.get("devices", {})),
            execution=ExecutionSpec.from_dict(data.get("execution", {})),
            faults=(FaultSpec.from_dict(faults)
                    if faults is not None else None),
            admission=(AdmissionSpec.from_dict(admission)
                       if admission is not None else None),
            name=data.get("name", ""),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"scenario is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    # -- identity ----------------------------------------------------------

    def spec_hash(self) -> str:
        """sha256 identity of the *experiment* this scenario describes.

        ``execution.workers`` is normalized to 1 before hashing, and
        ``execution.speculation``, ``execution.telemetry`` and
        ``execution.backend`` are dropped: the engines produce
        bit-identical results for any worker count, any speculation
        strategy, any telemetry bundle, and any engine backend, so a
        serial run and a ``--workers 4 --speculation full --backend
        vector --trace out.jsonl`` run of the same scenario share one
        hash (and their result JSONs compare byte-equal).
        """
        data = self.to_dict()
        data["execution"]["workers"] = 1
        data["execution"].pop("speculation", None)
        data["execution"].pop("telemetry", None)
        data["execution"].pop("backend", None)
        canon = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

"""Parameter sweeps: a base scenario × a grid → one scenario per point.

A sweep file is JSON with two keys::

    {
      "base": { ...a scenario dict... },
      "grid": {
        "workload.seed": [1, 2, 3],
        "policy.name": ["fcfs", "backfill"]
      }
    }

``grid`` maps dotted paths into the scenario dict to lists of values;
:func:`expand_grid` takes the cartesian product (2 × 3 = 6 scenarios
above) in deterministic order — grid keys sorted, values in file order,
last key varying fastest.  Each point re-validates through
:meth:`Scenario.from_dict`, so an out-of-range grid value fails with
the same message a hand-written scenario would.

``python -m repro sweep`` runs every point through
:func:`~repro.api.runner.run_scenario` and writes one result JSON per
point — a 1-point grid writes byte-identically what ``repro run`` on
the base scenario writes.
"""

from __future__ import annotations

import copy
import itertools
import json
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from .scenario import Scenario


def _set_path(data: Dict[str, Any], path: str, value: Any) -> None:
    """Set ``data["a"]["b"] = value`` for ``path == "a.b"``."""
    keys = path.split(".")
    node = data
    for key in keys[:-1]:
        child = node.setdefault(key, {})
        if not isinstance(child, dict):
            raise ValueError(
                f"grid path {path!r} descends into non-object key "
                f"{key!r}")
        node = child
    node[keys[-1]] = value


def expand_grid(base: Mapping[str, Any],
                grid: Mapping[str, Sequence[Any]]
                ) -> List[Tuple[Dict[str, Any], Scenario]]:
    """All (overrides, scenario) points of ``base × grid``.

    `base` is a scenario dict; `grid` maps dotted paths to value lists.
    An empty grid yields the single base point.  Every point is decoded
    through :meth:`Scenario.from_dict` (strict validation).
    """
    if not isinstance(grid, Mapping):
        raise ValueError(f"grid must be an object mapping dotted paths "
                         f"to value lists, got {type(grid).__name__}")
    paths = sorted(grid)
    for path in paths:
        values = grid[path]
        if not isinstance(values, Sequence) or isinstance(values, str):
            raise ValueError(f"grid values for {path!r} must be a list, "
                             f"got {values!r}")
        if not values:
            raise ValueError(f"grid values for {path!r} are empty")
    points: List[Tuple[Dict[str, Any], Scenario]] = []
    for combo in itertools.product(*(grid[p] for p in paths)):
        overrides = dict(zip(paths, combo))
        data = copy.deepcopy(dict(base))
        for path, value in overrides.items():
            _set_path(data, path, value)
        points.append((overrides, Scenario.from_dict(data)))
    return points


def load_sweep(text: str) -> List[Tuple[Dict[str, Any], Scenario]]:
    """Parse a sweep JSON document into its expanded points."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"sweep file is not valid JSON: {exc}") from None
    if not isinstance(data, dict) or "base" not in data:
        raise ValueError("a sweep file is an object with a 'base' "
                         "scenario and an optional 'grid'")
    unknown = sorted(set(data) - {"base", "grid"})
    if unknown:
        raise ValueError(f"sweep file has unknown key(s): "
                         f"{', '.join(unknown)}")
    return expand_grid(data["base"], data.get("grid", {}))


def point_filename(scenario: Scenario, index: int) -> str:
    """Deterministic result file name for sweep point `index`."""
    stem = scenario.name or scenario.kind
    safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in stem)
    return f"{safe}_{index:04d}_{scenario.spec_hash()[:10]}.json"

"""Named device configurations for the ``gpu-configs`` registry kind.

A :class:`~repro.api.scenario.DeviceSpec` names its configuration
instead of embedding one, so a scenario JSON stays small and a config
change (e.g. recalibrating the GTX-480 model) propagates to every
stored scenario.  Register additional named configs here or downstream::

    @REGISTRY.register("gpu-configs", "my-lab-gpu")
    def _my_lab_gpu():
        return gtx480(num_sms=80)

Besides the paper's GTX-480 model (and the scaled-down test device),
the registry carries SM-scaled derivatives for heterogeneous big/little
fleets: ``gtx480-half`` / ``gtx480-double`` halve / double the SM count
while keeping the memory system identical, so a mixed fleet isolates
the compute-capability axis.  Each derivative has a distinct
``GPUConfig.name``, which keys the per-config profile and interference
caches and labels the per-device-class fleet metrics.
"""

from __future__ import annotations

from repro.gpusim import gtx480, small_test_config

from .registry import REGISTRY

REGISTRY.register("gpu-configs", "gtx480", gtx480)
REGISTRY.register("gpu-configs", "small-test", small_test_config)


@REGISTRY.register("gpu-configs", "gtx480-half")
def _gtx480_half():
    """A little sibling of the GTX-480: half the SMs, same memory."""
    return gtx480(name="GTX480-half").with_sms(30)


@REGISTRY.register("gpu-configs", "gtx480-double")
def _gtx480_double():
    """A big sibling of the GTX-480: double the SMs, same memory."""
    return gtx480(name="GTX480-double").with_sms(120)


@REGISTRY.register("gpu-configs", "small-test-half")
def _small_test_half():
    """Half-size test device, for fast heterogeneous-fleet tests."""
    return small_test_config(name="TestGPU-half").with_sms(2)

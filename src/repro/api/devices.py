"""Named device configurations for the ``gpu-configs`` registry kind.

A :class:`~repro.api.scenario.DeviceSpec` names its configuration
instead of embedding one, so a scenario JSON stays small and a config
change (e.g. recalibrating the GTX-480 model) propagates to every
stored scenario.  Register additional named configs here or downstream::

    @REGISTRY.register("gpu-configs", "my-lab-gpu")
    def _my_lab_gpu():
        return gtx480(num_sms=80)
"""

from __future__ import annotations

from repro.gpusim import gtx480, small_test_config

from .registry import REGISTRY

REGISTRY.register("gpu-configs", "gtx480", gtx480)
REGISTRY.register("gpu-configs", "small-test", small_test_config)

"""The single pluggable registry: kind → name → factory.

Every extensible component family of the reproduction registers here —
batch policies, online policies, placement policies, arrival-stream
builders, benchmark models, named device configurations.  The registry
replaces the three ad-hoc factory dicts that used to live in
``cli.py`` (``POLICY_FACTORIES``), ``runtime.online``
(``ONLINE_POLICY_FACTORIES``) and ``cluster.placement``
(``PLACEMENT_FACTORIES``): one lookup path, one error message, one
``repro list --kind`` view.

Registration is decorator-based, in the module that defines the
component, so downstream code can add a policy or placement without
touching core::

    from repro.api.registry import REGISTRY

    @REGISTRY.register("online-policies", "my-policy")
    def _make_my_policy(nc=2):
        return MyPolicy(nc)

This module is a dependency *leaf*: it imports nothing from the rest of
``repro``, so any layer (core, runtime, cluster, workloads) may import
it without cycles.  The modules that register the built-in components
are imported lazily, on first lookup, through :data:`_BUILTIN_MODULES`.
"""

from __future__ import annotations

import difflib
import importlib
from typing import Callable, Dict, List, Optional

#: Modules whose import registers the built-in components.  Lazy: pulled
#: in on the first registry lookup, never at import time (several of
#: them import this module for their ``@REGISTRY.register`` calls).
_BUILTIN_MODULES = (
    "repro.core.policies",      # kind "policies"
    "repro.runtime.online",     # kind "online-policies"
    "repro.runtime.speculation",  # kind "speculation"
    "repro.cluster.placement",  # kind "placements"
    "repro.cluster.faults",     # kinds "faults", "admission"
    "repro.workloads.rodinia",  # kind "benchmarks"
    "repro.workloads.streams",  # kind "streams"
    "repro.api.devices",        # kind "gpu-configs"
    "repro.api.engines",        # kind "engine-backends"
    "repro.obs",                # kind "telemetry"
    "repro.campaign.plan",      # kind "shard-strategies"
)

#: The component families the built-in registry serves (documentation
#: order; the registry itself accepts any kind string).
BUILTIN_KINDS = ("benchmarks", "policies", "online-policies",
                 "placements", "streams", "gpu-configs", "faults",
                 "admission", "speculation", "telemetry",
                 "shard-strategies", "engine-backends")


class RegistryError(ValueError):
    """Unknown kind/name or conflicting registration."""


def _singular(kind: str) -> str:
    """``online-policies`` → ``online-policy`` (error-message grammar)."""
    if kind.endswith("ies"):
        return kind[:-3] + "y"
    if kind.endswith("s"):
        return kind[:-1]
    return kind


class Registry:
    """A two-level factory registry with typo-suggesting lookups."""

    def __init__(self, builtin_modules: tuple = ()):
        self._factories: Dict[str, Dict[str, Callable]] = {}
        self._builtin_modules = tuple(builtin_modules)
        self._loaded = False

    # -- registration ------------------------------------------------------

    def register(self, kind: str, name: str,
                 factory: Optional[Callable] = None):
        """Register `factory` under ``(kind, name)``.

        Usable directly (``register(kind, name, factory)``) or as a
        decorator (``@register(kind, name)``) on a class or function.
        Re-registering an existing name is an error — shadowing a
        built-in silently is exactly the bug class this replaces.
        """
        if not kind or not isinstance(kind, str):
            raise RegistryError(f"registry kind must be a non-empty "
                                f"string, got {kind!r}")
        if not name or not isinstance(name, str):
            raise RegistryError(f"registry name must be a non-empty "
                                f"string, got {name!r}")

        def _add(fn: Callable) -> Callable:
            if not callable(fn):
                raise RegistryError(
                    f"factory for {kind}/{name} must be callable, "
                    f"got {fn!r}")
            family = self._factories.setdefault(kind, {})
            if name in family:
                raise RegistryError(
                    f"{kind} name {name!r} is already registered")
            family[name] = fn
            return fn

        if factory is None:
            return _add
        return _add(factory)

    # -- lookups -----------------------------------------------------------

    def _ensure_builtins(self) -> None:
        if self._loaded:
            return
        # Mark loaded only once every import succeeded: a failing
        # builtin module must keep raising its real ImportError on
        # later lookups, not decay into "unknown registry kind".
        for module in self._builtin_modules:
            importlib.import_module(module)
        self._loaded = True

    def _family(self, kind: str) -> Dict[str, Callable]:
        self._ensure_builtins()
        try:
            return self._factories[kind]
        except KeyError:
            raise RegistryError(
                f"unknown registry kind {kind!r}; expected one of "
                f"{sorted(self._factories)}") from None

    def get(self, kind: str, name: str) -> Callable:
        """The factory registered under ``(kind, name)``.

        An unknown name raises a :class:`RegistryError` naming the
        nearest registered match (``did you mean ...?``) — a typo'd
        policy name should read like a typo, not like a missing feature.
        """
        family = self._family(kind)
        try:
            return family[name]
        except KeyError:
            pass
        hint = ""
        close = difflib.get_close_matches(name, family, n=1, cutoff=0.5)
        if close:
            hint = f"; did you mean {close[0]!r}?"
        raise RegistryError(
            f"unknown {_singular(kind)} {name!r}{hint} "
            f"(registered: {', '.join(sorted(family))})")

    def create(self, kind: str, name: str, *args, **kwargs):
        """Instantiate ``(kind, name)`` — ``get(...)(*args, **kwargs)``."""
        return self.get(kind, name)(*args, **kwargs)

    def names(self, kind: str) -> List[str]:
        """Sorted names registered under `kind`."""
        return sorted(self._family(kind))

    def kinds(self) -> List[str]:
        """Sorted kinds with at least one registration."""
        self._ensure_builtins()
        return sorted(self._factories)

    def __contains__(self, kind_name) -> bool:
        kind, name = kind_name
        self._ensure_builtins()
        return name in self._factories.get(kind, {})


#: The process-wide registry every built-in component registers into.
REGISTRY = Registry(_BUILTIN_MODULES)

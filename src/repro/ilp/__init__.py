"""From-scratch linear and integer programming toolkit.

Public API
----------
:class:`Model`
    Build a model: :meth:`Model.add_var`, :meth:`Model.add_constraint`,
    :meth:`Model.maximize` / :meth:`Model.minimize`, :meth:`Model.solve`.
:class:`Variable`, :class:`LinExpr`, :class:`Constraint`, :func:`linear_sum`
    Expression building blocks.
:func:`solve_lp`
    Two-phase primal simplex for raw array-form LPs.
:func:`solve_milp`
    Branch-and-bound MILP solve of a :class:`Model`.
:func:`solve_enumerate`, :func:`solve_all_optima`
    Exact enumeration for small bounded integer programs.
:class:`Solution` plus status constants.
"""

from .branch_bound import solve as solve_milp
from .enumerate_solver import solve_all_optima, solve_enumerate
from .expr import Constraint, LinExpr, Variable, linear_sum
from .model import MAXIMIZE, MINIMIZE, Model
from .simplex import SimplexResult, solve_lp
from .solution import (INFEASIBLE, ITERATION_LIMIT, OPTIMAL, UNBOUNDED,
                       Solution)

__all__ = [
    "Model", "Variable", "LinExpr", "Constraint", "linear_sum",
    "solve_lp", "SimplexResult", "solve_milp", "solve_enumerate",
    "solve_all_optima", "Solution",
    "OPTIMAL", "INFEASIBLE", "UNBOUNDED", "ITERATION_LIMIT",
    "MAXIMIZE", "MINIMIZE",
]

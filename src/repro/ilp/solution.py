"""Solution containers returned by the LP/ILP solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Solver statuses.
OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"
ITERATION_LIMIT = "iteration_limit"


@dataclass
class Solution:
    """Outcome of a solve.

    Attributes
    ----------
    status:
        One of :data:`OPTIMAL`, :data:`INFEASIBLE`, :data:`UNBOUNDED`,
        :data:`ITERATION_LIMIT`.
    objective:
        Objective value in the *user's* sense (max problems report the
        maximum).  ``nan`` unless optimal.
    values:
        Variable name → value.  Empty unless optimal.
    nodes:
        Branch-and-bound nodes explored (0 for pure LPs).
    """

    status: str
    objective: float = float("nan")
    values: Dict[str, float] = field(default_factory=dict)
    nodes: int = 0

    @property
    def is_optimal(self) -> bool:
        return self.status == OPTIMAL

    def __getitem__(self, name: str) -> float:
        return self.values[name]

    def rounded(self, ndigits: int = 9) -> Dict[str, float]:
        """Values rounded for display / integer extraction."""
        return {k: round(v, ndigits) for k, v in self.values.items()}

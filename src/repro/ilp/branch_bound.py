"""Best-first branch-and-bound MILP solver on top of the simplex LP engine.

The search keeps a priority queue of subproblems ordered by their LP
relaxation bound; at each node the most fractional integer variable is
branched into floor/ceil children.  For the tiny pattern-selection ILPs in
this reproduction the tree is a handful of nodes, but the implementation is
a complete general-purpose solver (bounded or unbounded integer variables,
mixed continuous/integer models, maximize or minimize).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from .model import MAXIMIZE, Model
from .simplex import solve_lp
from .solution import (INFEASIBLE, ITERATION_LIMIT, OPTIMAL, UNBOUNDED,
                       Solution)

_INT_TOL = 1e-6


def _most_fractional(x: np.ndarray, int_idx: List[int]) -> Optional[int]:
    """Index of the fractional integer variable closest to .5, or None."""
    best_idx, best_score = None, math.inf
    for i in int_idx:
        frac = abs(x[i] - round(x[i]))
        if frac > _INT_TOL:
            score = abs(frac - 0.5)  # prefer the most ambiguous variable
            if score < best_score:
                best_idx, best_score = i, score
    return best_idx


def solve(model: Model, max_nodes: int = 100000,
          gap_tol: float = 1e-9) -> Solution:
    """Solve `model` exactly.  Returns a :class:`Solution`.

    Parameters
    ----------
    max_nodes:
        Safety cap on explored nodes; :data:`ITERATION_LIMIT` is reported
        when exceeded (with the incumbent if one exists).
    gap_tol:
        Absolute bound/incumbent gap at which a node is pruned.
    """
    c, A_ub, b_ub, A_eq, b_eq, bounds = model.to_arrays()
    int_idx = model.integer_indices
    names = [v.name for v in model.variables]
    sign = -1.0 if model.sense == MAXIMIZE else 1.0

    def lp(node_bounds) -> Tuple[str, Optional[np.ndarray], float]:
        res = solve_lp(c, A_ub if A_ub.size else None,
                       b_ub if b_ub.size else None,
                       A_eq if A_eq.size else None,
                       b_eq if b_eq.size else None, node_bounds)
        return res.status, res.x, res.objective

    root_status, root_x, root_obj = lp(bounds)
    if root_status == INFEASIBLE:
        return Solution(INFEASIBLE, nodes=1)
    if root_status == UNBOUNDED:
        return Solution(UNBOUNDED, nodes=1)
    if root_status != OPTIMAL:
        return Solution(ITERATION_LIMIT, nodes=1)

    if not int_idx:
        values = dict(zip(names, (float(v) for v in root_x)))
        return Solution(OPTIMAL, sign * root_obj, values, nodes=1)

    counter = itertools.count()
    # Heap entries: (lp_bound_min_sense, tiebreak, bounds, x, obj)
    heap = [(root_obj, next(counter), bounds, root_x, root_obj)]
    incumbent_obj = math.inf  # minimization sense
    incumbent_x: Optional[np.ndarray] = None
    nodes = 0

    while heap and nodes < max_nodes:
        bound, _tie, node_bounds, x, obj = heapq.heappop(heap)
        nodes += 1
        if bound >= incumbent_obj - gap_tol:
            continue  # cannot improve on the incumbent

        branch_var = _most_fractional(x, int_idx)
        if branch_var is None:
            # Integral LP optimum — candidate incumbent.
            if obj < incumbent_obj - gap_tol:
                incumbent_obj, incumbent_x = obj, x
            continue

        val = x[branch_var]
        lo, hi = node_bounds[branch_var]
        for new_lo, new_hi in (
                (lo, math.floor(val)),          # x <= floor(val)
                (math.ceil(val), hi)):          # x >= ceil(val)
            if new_hi is not None and new_hi < new_lo:
                continue
            child = list(node_bounds)
            child[branch_var] = (float(new_lo),
                                 None if new_hi is None else float(new_hi))
            status, cx, cobj = lp(child)
            if status != OPTIMAL:
                continue
            if cobj >= incumbent_obj - gap_tol:
                continue
            if _most_fractional(cx, int_idx) is None:
                if cobj < incumbent_obj - gap_tol:
                    incumbent_obj, incumbent_x = cobj, cx
            else:
                heapq.heappush(heap, (cobj, next(counter), child, cx, cobj))

    if incumbent_x is None:
        status = ITERATION_LIMIT if heap else INFEASIBLE
        return Solution(status, nodes=nodes)

    int_set = set(int_idx)
    values: Dict[str, float] = {
        name: float(round(v)) if i in int_set else float(v)
        for i, (name, v) in enumerate(zip(names, incumbent_x))
    }
    hit_node_limit = bool(heap) and nodes >= max_nodes
    status = ITERATION_LIMIT if hit_node_limit else OPTIMAL
    return Solution(status, sign * incumbent_obj, values, nodes=nodes)

"""ILP model container: variables, constraints, objective, and matrix export."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .expr import EQ, GE, LE, Constraint, LinExpr, Variable

MAXIMIZE = "maximize"
MINIMIZE = "minimize"


class Model:
    """A small linear/integer programming model.

    Usage::

        m = Model("pairing")
        x = m.add_var("x", lb=0, ub=5, integer=True)
        y = m.add_var("y", lb=0, ub=5, integer=True)
        m.add_constraint(x + y <= 7)
        m.maximize(3 * x + 2 * y)
        sol = m.solve()
    """

    def __init__(self, name: str = "model"):
        self.name = name
        self._vars: Dict[str, Variable] = {}
        self._order: List[str] = []
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.sense: str = MINIMIZE

    # -- variables -------------------------------------------------------
    def add_var(self, name: str, lb: float = 0.0, ub: Optional[float] = None,
                integer: bool = False) -> Variable:
        if name in self._vars:
            raise ValueError(f"duplicate variable {name!r}")
        var = Variable(name, lb=lb, ub=ub, integer=integer)
        self._vars[name] = var
        self._order.append(name)
        return var

    def add_vars(self, names: Sequence[str], lb: float = 0.0,
                 ub: Optional[float] = None,
                 integer: bool = False) -> List[Variable]:
        return [self.add_var(n, lb=lb, ub=ub, integer=integer) for n in names]

    @property
    def variables(self) -> List[Variable]:
        return [self._vars[n] for n in self._order]

    def variable(self, name: str) -> Variable:
        return self._vars[name]

    @property
    def num_vars(self) -> int:
        return len(self._order)

    # -- constraints / objective ------------------------------------------
    def add_constraint(self, constraint: Constraint,
                       name: str = "") -> Constraint:
        if not isinstance(constraint, Constraint):
            raise TypeError("expected a Constraint (use <=, >=, ==)")
        unknown = set(constraint.expr.coeffs) - set(self._vars)
        if unknown:
            raise ValueError(f"constraint uses unknown variables {unknown}")
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def _set_objective(self, expr: Union[LinExpr, Variable], sense: str) -> None:
        expr = LinExpr._coerce(expr)
        unknown = set(expr.coeffs) - set(self._vars)
        if unknown:
            raise ValueError(f"objective uses unknown variables {unknown}")
        self.objective = expr
        self.sense = sense

    def maximize(self, expr: Union[LinExpr, Variable]) -> None:
        self._set_objective(expr, MAXIMIZE)

    def minimize(self, expr: Union[LinExpr, Variable]) -> None:
        self._set_objective(expr, MINIMIZE)

    # -- matrix export -----------------------------------------------------
    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray, np.ndarray,
                                 List[Tuple[float, Optional[float]]]]:
        """Export as (c, A_ub, b_ub, A_eq, b_eq, bounds), minimization sense.

        ``>=`` rows are negated into ``<=`` rows; the objective is negated
        when the model maximizes.
        """
        index = {name: i for i, name in enumerate(self._order)}
        n = len(self._order)
        c = np.zeros(n)
        for name, coeff in self.objective.coeffs.items():
            c[index[name]] = coeff
        if self.sense == MAXIMIZE:
            c = -c

        ub_rows, ub_rhs, eq_rows, eq_rhs = [], [], [], []
        for con in self.constraints:
            row = np.zeros(n)
            for name, coeff in con.expr.coeffs.items():
                row[index[name]] = coeff
            rhs = con.rhs
            if con.sense == LE:
                ub_rows.append(row)
                ub_rhs.append(rhs)
            elif con.sense == GE:
                ub_rows.append(-row)
                ub_rhs.append(-rhs)
            elif con.sense == EQ:
                eq_rows.append(row)
                eq_rhs.append(rhs)

        A_ub = np.array(ub_rows) if ub_rows else np.zeros((0, n))
        b_ub = np.array(ub_rhs) if ub_rhs else np.zeros(0)
        A_eq = np.array(eq_rows) if eq_rows else np.zeros((0, n))
        b_eq = np.array(eq_rhs) if eq_rhs else np.zeros(0)
        bounds = [(self._vars[name].lb, self._vars[name].ub)
                  for name in self._order]
        return c, A_ub, b_ub, A_eq, b_eq, bounds

    @property
    def integer_indices(self) -> List[int]:
        return [i for i, name in enumerate(self._order)
                if self._vars[name].integer]

    def objective_value(self, assignment: Dict[str, float]) -> float:
        return self.objective.value(assignment)

    def is_feasible(self, assignment: Dict[str, float],
                    tol: float = 1e-7) -> bool:
        """Check constraints, bounds, and integrality of an assignment."""
        for name in self._order:
            var = self._vars[name]
            val = float(assignment.get(name, 0.0))
            if val < var.lb - tol:
                return False
            if var.ub is not None and val > var.ub + tol:
                return False
            if var.integer and abs(val - round(val)) > tol:
                return False
        return all(con.satisfied(assignment, tol) for con in self.constraints)

    def solve(self, **kwargs):
        """Solve with branch-and-bound (falls through to pure LP when no
        integer variables exist).  See :func:`repro.ilp.branch_bound.solve`.
        """
        from .branch_bound import solve as bb_solve
        return bb_solve(self, **kwargs)

    def __repr__(self):
        return (f"Model({self.name!r}, {self.num_vars} vars, "
                f"{len(self.constraints)} constraints, {self.sense})")

"""Exact enumeration solver for small, fully bounded integer programs.

The pattern-selection ILPs of the paper (Appendix A: 10 variables, each
bounded by the group count L = 7) are small enough to enumerate.  This
solver is used in tests as an independent oracle against branch-and-bound,
and by the contention minimizer when asked for *all* optimal solution sets
(the paper's ILP can have ties; enumerating them makes the benchmarks
deterministic and lets ablations inspect the tie structure).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

from .model import MAXIMIZE, Model
from .solution import INFEASIBLE, OPTIMAL, Solution


def _integer_box(model: Model) -> List[Tuple[str, int, int]]:
    """(name, lb, ub) for every variable; all must be integer and bounded."""
    box = []
    for var in model.variables:
        if not var.integer:
            raise ValueError(f"enumeration requires integer vars ({var.name})")
        if var.ub is None or not math.isfinite(var.ub):
            raise ValueError(f"enumeration requires bounded vars ({var.name})")
        box.append((var.name, int(math.ceil(var.lb)), int(math.floor(var.ub))))
    return box


def _assignments(box: List[Tuple[str, int, int]],
                 model: Model) -> Iterator[Dict[str, int]]:
    """Depth-first enumeration with partial-assignment constraint pruning.

    Pruning rule: a ``<=`` constraint whose remaining (unassigned) variables
    all have non-negative coefficients can be checked early with the
    remaining variables at their lower bounds (symmetrically for ``>=``).
    """
    names = [b[0] for b in box]
    n = len(box)

    # Precompute, per constraint, min/max contribution of each variable.
    cons = []
    for con in model.constraints:
        coeffs = con.coefficients()
        cons.append((con, coeffs))

    assignment: Dict[str, int] = {}

    def remaining_extremes(coeffs: Dict[str, float], depth: int):
        """(min, max) achievable contribution of variables at depth.. end."""
        lo = hi = 0.0
        for name, vlo, vhi in box[depth:]:
            c = coeffs.get(name, 0.0)
            if c >= 0:
                lo += c * vlo
                hi += c * vhi
            else:
                lo += c * vhi
                hi += c * vlo
        return lo, hi

    def feasible_so_far(depth: int) -> bool:
        for con, coeffs in cons:
            fixed = con.expr.constant + sum(
                coeffs.get(nm, 0.0) * assignment[nm] for nm in names[:depth]
                if nm in coeffs)
            lo, hi = remaining_extremes(coeffs, depth)
            if con.sense == "<=" and fixed + lo > 1e-9:
                return False
            if con.sense == ">=" and fixed + hi < -1e-9:
                return False
            if con.sense == "==" and (fixed + lo > 1e-9 or fixed + hi < -1e-9):
                return False
        return True

    def recurse(depth: int) -> Iterator[Dict[str, int]]:
        if depth == n:
            yield dict(assignment)
            return
        name, lo, hi = box[depth]
        for val in range(lo, hi + 1):
            assignment[name] = val
            if feasible_so_far(depth + 1):
                yield from recurse(depth + 1)
        del assignment[name]

    yield from recurse(0)


def solve_enumerate(model: Model) -> Solution:
    """Exhaustively solve a small bounded pure-integer model."""
    best = solve_all_optima(model, limit=1)
    if not best:
        return Solution(INFEASIBLE)
    values, objective, explored = best[0]
    return Solution(OPTIMAL, objective,
                    {k: float(v) for k, v in values.items()}, nodes=explored)


def solve_all_optima(model: Model, tol: float = 1e-9,
                     limit: Optional[int] = None
                     ) -> List[Tuple[Dict[str, int], float, int]]:
    """All optimal integer assignments as (values, objective, explored).

    ``limit`` caps how many optima are returned (the search still scans the
    full box to certify optimality).
    """
    box = _integer_box(model)
    sign = 1.0 if model.sense == MAXIMIZE else -1.0
    best_obj = -math.inf
    optima: List[Dict[str, int]] = []
    explored = 0
    for assignment in _assignments(box, model):
        explored += 1
        obj = sign * model.objective_value(assignment)
        if obj > best_obj + tol:
            best_obj = obj
            optima = [assignment]
        elif abs(obj - best_obj) <= tol:
            optima.append(assignment)
    if not optima:
        return []
    if limit is not None:
        optima = optima[:limit]
    return [(a, sign * best_obj, explored) for a in optima]

"""Dense two-phase primal simplex solver.

This is a from-scratch LP solver used as the relaxation engine of the
branch-and-bound MILP solver.  The interface is deliberately close to
``scipy.optimize.linprog`` (minimize ``c @ x`` subject to
``A_ub @ x <= b_ub``, ``A_eq @ x == b_eq``, ``lb <= x <= ub``) so tests can
cross-check the two.

Implementation notes
--------------------
* Variables are shifted so every lower bound becomes 0; finite upper bounds
  are appended as extra ``<=`` rows.  This keeps the tableau logic simple —
  the problems solved here (pattern-selection ILPs with tens of variables)
  are tiny, so the extra rows are irrelevant for performance.
* Phase 1 minimizes the sum of artificial variables; phase 2 proceeds on
  the feasible basis.  Bland's rule is used when degeneracy is detected to
  guarantee termination.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .solution import INFEASIBLE, ITERATION_LIMIT, OPTIMAL, UNBOUNDED

_TOL = 1e-9


class SimplexResult:
    """Raw result of :func:`solve_lp` (minimization sense)."""

    __slots__ = ("status", "x", "objective", "iterations")

    def __init__(self, status: str, x: Optional[np.ndarray],
                 objective: float, iterations: int):
        self.status = status
        self.x = x
        self.objective = objective
        self.iterations = iterations

    @property
    def is_optimal(self) -> bool:
        return self.status == OPTIMAL


def _pivot(tableau: np.ndarray, basis: List[int], row: int, col: int) -> None:
    """Pivot the tableau so `col` enters the basis at `row`."""
    pivot_val = tableau[row, col]
    tableau[row] /= pivot_val
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > _TOL:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _choose_entering(costs: np.ndarray, allowed: int, bland: bool) -> int:
    """Most-negative reduced cost (or Bland's lowest index). -1 = optimal."""
    best, best_col = -_TOL, -1
    for j in range(allowed):
        cj = costs[j]
        if cj < best:
            if bland:
                return j
            best, best_col = cj, j
    return best_col


def _choose_leaving(tableau: np.ndarray, col: int, bland: bool) -> int:
    """Minimum-ratio test over rows. -1 = unbounded."""
    m = tableau.shape[0] - 1
    best_ratio, best_row = math.inf, -1
    for i in range(m):
        a = tableau[i, col]
        if a > _TOL:
            ratio = tableau[i, -1] / a
            if ratio < best_ratio - _TOL or (
                    bland and abs(ratio - best_ratio) <= _TOL
                    and best_row != -1 and i < best_row):
                best_ratio, best_row = ratio, i
    return best_row


def _run_simplex(tableau: np.ndarray, basis: List[int], n_cols: int,
                 max_iter: int) -> Tuple[str, int]:
    """Iterate pivots until optimal/unbounded. Returns (status, iterations)."""
    degenerate_streak = 0
    for it in range(max_iter):
        bland = degenerate_streak > 2 * tableau.shape[0]
        col = _choose_entering(tableau[-1, :n_cols], n_cols, bland)
        if col < 0:
            return OPTIMAL, it
        row = _choose_leaving(tableau, col, bland)
        if row < 0:
            return UNBOUNDED, it
        if tableau[row, -1] <= _TOL:
            degenerate_streak += 1
        else:
            degenerate_streak = 0
        _pivot(tableau, basis, row, col)
    return ITERATION_LIMIT, max_iter


def solve_lp(c: Sequence[float],
             A_ub: Optional[Sequence[Sequence[float]]] = None,
             b_ub: Optional[Sequence[float]] = None,
             A_eq: Optional[Sequence[Sequence[float]]] = None,
             b_eq: Optional[Sequence[float]] = None,
             bounds: Optional[Sequence[Tuple[float, Optional[float]]]] = None,
             max_iter: int = 10000) -> SimplexResult:
    """Minimize ``c @ x`` s.t. ``A_ub x <= b_ub``, ``A_eq x == b_eq``,
    ``bounds[i][0] <= x_i <= bounds[i][1]``.

    ``bounds`` defaults to ``(0, None)`` for every variable.  Lower bounds
    must be finite (the modeling layer guarantees this).
    """
    c = np.asarray(c, dtype=float)
    n = c.size
    bounds = list(bounds) if bounds is not None else [(0.0, None)] * n
    if len(bounds) != n:
        raise ValueError("bounds length must match c")
    lower = np.array([b[0] for b in bounds], dtype=float)
    if not np.all(np.isfinite(lower)):
        raise ValueError("all lower bounds must be finite")

    A_ub = np.asarray(A_ub, dtype=float) if A_ub is not None else np.zeros((0, n))
    b_ub = np.asarray(b_ub, dtype=float) if b_ub is not None else np.zeros(0)
    A_eq = np.asarray(A_eq, dtype=float) if A_eq is not None else np.zeros((0, n))
    b_eq = np.asarray(b_eq, dtype=float) if b_eq is not None else np.zeros(0)
    if A_ub.size and A_ub.shape[1] != n:
        raise ValueError("A_ub column count must match c")
    if A_eq.size and A_eq.shape[1] != n:
        raise ValueError("A_eq column count must match c")

    # Shift x' = x - lb so all variables are >= 0.
    b_ub_s = b_ub - A_ub @ lower if A_ub.size else b_ub.copy()
    b_eq_s = b_eq - A_eq @ lower if A_eq.size else b_eq.copy()
    shift_obj = float(c @ lower)

    # Finite upper bounds become extra <= rows on the shifted variables.
    ub_rows, ub_rhs = [], []
    for i, (lo, hi) in enumerate(bounds):
        if hi is not None and math.isfinite(hi):
            row = np.zeros(n)
            row[i] = 1.0
            ub_rows.append(row)
            ub_rhs.append(hi - lo)
    if ub_rows:
        A_ub_s = np.vstack([A_ub, np.array(ub_rows)]) if A_ub.size else np.array(ub_rows)
        b_ub_s = np.concatenate([b_ub_s, np.array(ub_rhs)])
    else:
        A_ub_s = A_ub

    m_ub, m_eq = A_ub_s.shape[0] if A_ub_s.size else 0, A_eq.shape[0] if A_eq.size else 0
    m = m_ub + m_eq

    # Assemble A x (+ slack) = b with b >= 0 by flipping negative rows.
    A = np.zeros((m, n + m_ub))
    b = np.zeros(m)
    slack_sign = np.ones(m_ub)
    if m_ub:
        A[:m_ub, :n] = A_ub_s
        b[:m_ub] = b_ub_s
        for i in range(m_ub):
            A[i, n + i] = 1.0
            if b[i] < 0:
                A[i] *= -1.0
                b[i] *= -1.0
                slack_sign[i] = -1.0
    if m_eq:
        A[m_ub:, :n] = A_eq
        b[m_ub:] = b_eq_s
        for i in range(m_ub, m):
            if b[i] < 0:
                A[i] *= -1.0
                b[i] *= -1.0

    n_struct = n + m_ub  # structural + slack columns

    # Basis: slack column when it has +1 coefficient, else artificial.
    basis: List[int] = [-1] * m
    artificial_cols: List[int] = []
    for i in range(m_ub):
        if slack_sign[i] > 0:
            basis[i] = n + i
    n_art = sum(1 for bi in basis if bi < 0)
    A_full = np.hstack([A, np.zeros((m, n_art))])
    art = 0
    for i in range(m):
        if basis[i] < 0:
            col = n_struct + art
            A_full[i, col] = 1.0
            basis[i] = col
            artificial_cols.append(col)
            art += 1

    total_cols = n_struct + n_art
    tableau = np.zeros((m + 1, total_cols + 1))
    tableau[:m, :total_cols] = A_full
    tableau[:m, -1] = b

    iterations = 0
    if n_art:
        # Phase 1: minimize the sum of artificials.
        tableau[-1, :] = 0.0
        for col in artificial_cols:
            tableau[-1, col] = 1.0
        for i in range(m):
            if basis[i] in artificial_cols:
                tableau[-1] -= tableau[i]
        status, its = _run_simplex(tableau, basis, total_cols, max_iter)
        iterations += its
        if status != OPTIMAL:
            return SimplexResult(status, None, math.nan, iterations)
        if tableau[-1, -1] < -1e-7:
            return SimplexResult(INFEASIBLE, None, math.nan, iterations)
        # Drive any remaining artificials out of the basis.
        for i in range(m):
            if basis[i] in artificial_cols:
                for j in range(n_struct):
                    if abs(tableau[i, j]) > _TOL:
                        _pivot(tableau, basis, i, j)
                        break
        # Drop artificial columns.
        keep = list(range(n_struct)) + [tableau.shape[1] - 1]
        tableau = tableau[:, keep]

    # Phase 2 objective row: reduced costs of c over the current basis.
    tableau[-1, :] = 0.0
    tableau[-1, :n] = c
    for i in range(m):
        bi = basis[i]
        if bi < n_struct and abs(tableau[-1, bi]) > _TOL:
            tableau[-1] -= tableau[-1, bi] * tableau[i]
    status, its = _run_simplex(tableau, basis, n_struct, max_iter)
    iterations += its
    if status != OPTIMAL:
        return SimplexResult(status, None, math.nan, iterations)

    x_shift = np.zeros(n_struct)
    for i in range(m):
        if basis[i] < n_struct:
            x_shift[basis[i]] = tableau[i, -1]
    x = x_shift[:n] + lower
    objective = float(c @ x_shift[:n]) + shift_obj
    return SimplexResult(OPTIMAL, x, objective, iterations)

"""Linear expressions and constraints for the ILP modeling layer.

The modeling objects here are deliberately small: a :class:`Variable` is a
named column, a :class:`LinExpr` is a sparse mapping from variable names to
coefficients plus a constant offset, and a :class:`Constraint` is a linear
expression compared against zero.  Arithmetic operators build expressions,
and comparison operators build constraints, so models read like algebra::

    x = Variable("x", lb=0, ub=10, integer=True)
    y = Variable("y", lb=0, ub=10, integer=True)
    model.add_constraint(2 * x + y <= 14)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple, Union

Number = Union[int, float]

#: Comparison senses supported by :class:`Constraint`.
LE, GE, EQ = "<=", ">=", "=="


class Variable:
    """A decision variable.

    Parameters
    ----------
    name:
        Unique name used as the key in solutions.
    lb, ub:
        Inclusive bounds.  ``ub=None`` means unbounded above.
    integer:
        When true, branch-and-bound enforces integrality.
    """

    __slots__ = ("name", "lb", "ub", "integer")

    def __init__(self, name: str, lb: Number = 0.0, ub: Number = None,
                 integer: bool = False):
        if not name:
            raise ValueError("variable name must be non-empty")
        if ub is not None and ub < lb:
            raise ValueError(f"variable {name}: ub {ub} < lb {lb}")
        self.name = name
        self.lb = float(lb)
        self.ub = None if ub is None else float(ub)
        self.integer = bool(integer)

    # -- arithmetic ------------------------------------------------------
    def _expr(self) -> "LinExpr":
        return LinExpr({self.name: 1.0})

    def __add__(self, other):
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return (-self._expr()) + other

    def __mul__(self, other: Number):
        return self._expr() * other

    __rmul__ = __mul__

    def __neg__(self):
        return self._expr() * -1.0

    # -- comparisons -----------------------------------------------------
    def __le__(self, other):
        return self._expr() <= other

    def __ge__(self, other):
        return self._expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        return self._expr() == other

    def __hash__(self):
        return hash(self.name)

    def __repr__(self):
        kind = "int" if self.integer else "cont"
        return f"Variable({self.name!r}, [{self.lb}, {self.ub}], {kind})"


class LinExpr:
    """A sparse linear expression ``sum(coeff_i * var_i) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Mapping[str, Number] = None,
                 constant: Number = 0.0):
        self.coeffs: Dict[str, float] = {
            k: float(v) for k, v in (coeffs or {}).items() if v != 0
        }
        self.constant = float(constant)

    @staticmethod
    def _coerce(other) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return other._expr()
        if isinstance(other, (int, float)):
            return LinExpr({}, other)
        raise TypeError(f"cannot build a linear expression from {other!r}")

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.constant)

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other):
        other = self._coerce(other)
        out = dict(self.coeffs)
        for name, coeff in other.coeffs.items():
            out[name] = out.get(name, 0.0) + coeff
        return LinExpr(out, self.constant + other.constant)

    __radd__ = __add__

    def __sub__(self, other):
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other):
        return (self * -1.0) + other

    def __mul__(self, scalar: Number):
        if not isinstance(scalar, (int, float)):
            raise TypeError("linear expressions only scale by numbers")
        return LinExpr({k: v * scalar for k, v in self.coeffs.items()},
                       self.constant * scalar)

    __rmul__ = __mul__

    def __neg__(self):
        return self * -1.0

    # -- comparisons -----------------------------------------------------
    def __le__(self, other):
        return Constraint(self - self._coerce(other), LE)

    def __ge__(self, other):
        return Constraint(self - self._coerce(other), GE)

    def __eq__(self, other):  # type: ignore[override]
        return Constraint(self - self._coerce(other), EQ)

    def __hash__(self):
        return id(self)

    # -- evaluation ------------------------------------------------------
    def value(self, assignment: Mapping[str, Number]) -> float:
        """Evaluate the expression under a variable assignment."""
        return self.constant + sum(
            coeff * float(assignment.get(name, 0.0))
            for name, coeff in self.coeffs.items()
        )

    def variables(self) -> Iterable[str]:
        return self.coeffs.keys()

    def __repr__(self):
        terms = " + ".join(f"{v:g}*{k}" for k, v in sorted(self.coeffs.items()))
        if self.constant:
            terms = f"{terms} + {self.constant:g}" if terms else f"{self.constant:g}"
        return f"LinExpr({terms or '0'})"


def linear_sum(terms: Iterable[Union[LinExpr, Variable, Number]]) -> LinExpr:
    """Sum an iterable of expressions/variables/numbers into one LinExpr."""
    total = LinExpr()
    for term in terms:
        total = total + LinExpr._coerce(term)
    return total


@dataclass
class Constraint:
    """``expr (<=|>=|==) 0`` — the right-hand side is folded into the expr."""

    expr: LinExpr
    sense: str
    name: str = field(default="")

    def __post_init__(self):
        if self.sense not in (LE, GE, EQ):
            raise ValueError(f"bad constraint sense {self.sense!r}")

    @property
    def rhs(self) -> float:
        """Right-hand side when written as ``coeffs . x (sense) rhs``."""
        return -self.expr.constant

    def coefficients(self) -> Dict[str, float]:
        return dict(self.expr.coeffs)

    def satisfied(self, assignment: Mapping[str, Number],
                  tol: float = 1e-7) -> bool:
        lhs = self.expr.value(assignment)
        if self.sense == LE:
            return lhs <= tol
        if self.sense == GE:
            return lhs >= -tol
        return abs(lhs) <= tol

    def violation(self, assignment: Mapping[str, Number]) -> float:
        """Non-negative violation magnitude (0 when satisfied)."""
        lhs = self.expr.value(assignment)
        if self.sense == LE:
            return max(0.0, lhs)
        if self.sense == GE:
            return max(0.0, -lhs)
        return abs(lhs)

    def __repr__(self):
        return f"Constraint({self.expr!r} {self.sense} 0)"

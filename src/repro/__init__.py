"""repro - reproduction of "Throughput Optimization and Resource
Allocation on GPUs under Multi-Application Execution" (DATE 2018).

Subpackages
-----------
``repro.gpusim``
    Cycle-approximate GPU simulator (the GPGPU-Sim substitute).
``repro.workloads``
    Calibrated Rodinia benchmark models and queue builders.
``repro.core``
    The paper's methodology: classification, interference, the
    contention-minimization ILP, SMRA, and the scheduling policies.
``repro.ilp``
    From-scratch simplex / branch-and-bound integer programming.
``repro.runtime``
    Online scheduling runtime: arrival streams, pluggable executors.
``repro.cluster``
    Multi-device fleet simulation: placement + load balancing.
``repro.analysis``
    Metrics (throughput, utilization, speedups) and text rendering.
"""

__version__ = "1.0.0"

__all__ = ["gpusim", "workloads", "core", "ilp", "runtime", "cluster",
           "analysis", "__version__"]

"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``run``
    Execute one declarative scenario JSON (queue / stream / fleet)
    through :func:`repro.api.run_scenario`; print the headline metrics
    and optionally write the full :class:`~repro.api.RunResult` JSON.
``sweep``
    Expand a base scenario × parameter grid into scenarios and run each
    point, writing one results JSON per point plus a manifest.
``campaign``
    Run a sharded, resumable campaign (base scenario × grid cut into
    content-addressed shards) to a manifest-verified merged result;
    ``--resume`` skips shards already committed in the output
    directory (see ``docs/campaign.md``).
``profile``
    Solo-profile benchmarks and print their Table 3.2 metric rows.
``classify``
    Profile + classify (adds the class column and thresholds).
``interference``
    Measure and print the Fig. 3.4 class slowdown matrix.
``run-queue``
    Drain an application queue under one or more scheduling policies and
    print the device-throughput comparison (``--workers N`` fans the
    independent groups across worker processes).
``run-stream``
    Run an online arrival stream (Poisson / bursty / trace) under online
    scheduling policies and print ANTT/STP + latency percentiles.
``run-fleet``
    Drain one shared arrival stream across a fleet of simulated devices
    under one or more placement policies; print fleet ANTT/STP, load
    imbalance, and per-device utilization.  ``--faults`` /
    ``--admission`` add deterministic fault injection and admission
    control (availability, goodput, and rejection accounting).
``scalability``
    Sweep SM counts for selected benchmarks (Fig. 3.5/3.6).
``list``
    List the benchmark models, or any registry kind via ``--kind``.

``run-queue`` / ``run-stream`` / ``run-fleet`` are thin wrappers: each
builds a :class:`~repro.api.Scenario` per policy (or placement) and
routes it through the same :func:`~repro.api.run_scenario` path as
``run`` — component lookups all resolve in the single
:data:`~repro.api.REGISTRY`.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
from typing import List, Optional, Sequence

from repro.analysis import (normalize, render_bars, render_table,
                            summarize_fleet, summarize_stream)
from repro.api import (REGISTRY, AdmissionSpec, DeviceSpec, ExecutionSpec,
                       FaultSpec, PlacementSpec, PolicySpec, RunResult,
                       Scenario, SpeculationSpec, WorkloadSpec, load_sweep,
                       point_filename, run_scenario)
from repro.campaign import (MANIFEST_SCHEMA_VERSION, CampaignSpec,
                            result_hash, run_campaign)
from repro.core import (CLASS_ORDER, ClassificationThresholds, classify,
                        make_context, shared_profiler)
from repro.gpusim import Application, gtx480, simulate
from repro.runtime import make_executor
from repro.workloads import (ALL_BENCHMARKS, DISTRIBUTIONS, RODINIA_SPECS,
                             TABLE_3_2_CLASSES)


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer, rejected clearly."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive, finite rate/gap/scale."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}") from None
    if not value > 0 or value != value or value == float("inf"):
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def _fraction(text: str) -> float:
    """argparse type: a fraction in [0, 1]."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a fraction in [0, 1], got {text!r}") from None
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"must be in [0, 1], got {text}")
    return value


def _seed(text: str) -> int:
    """argparse type: a non-negative stream seed."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer seed, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"seed must be >= 0, got {value}")
    return value


def _nonneg_int(text: str) -> int:
    """argparse type: a non-negative integer count."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _select_benchmarks(names: Optional[Sequence[str]]) -> List[str]:
    if not names:
        return list(ALL_BENCHMARKS)
    unknown = [n for n in names if n not in RODINIA_SPECS]
    if unknown:
        raise SystemExit(f"unknown benchmark(s): {', '.join(unknown)}; "
                         f"choose from {', '.join(ALL_BENCHMARKS)}")
    return list(names)


def _run_or_exit(scenario: Scenario, executor=None,
                 telemetry=None) -> RunResult:
    """:func:`run_scenario` with CLI-grade errors (clean exit, no trace)."""
    try:
        return run_scenario(scenario, executor=executor,
                            telemetry=telemetry)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _telemetry_from_args(args, suffix: str = ""):
    """The ``--trace``/``--profile`` flags as a Telemetry (or None).

    `suffix` disambiguates sink paths when one invocation compares
    several policies or placements (each run writes its own trace).
    """
    from repro.obs import make_telemetry
    trace_path = getattr(args, "trace_out", None)
    profile = getattr(args, "profile", False)
    if not trace_path and not profile:
        return None
    if trace_path and profile:
        kind = "full"
    elif trace_path:
        kind = "trace"
    else:
        kind = "profile"
    sinks = (args.trace_format,) if trace_path else ()
    path = f"{trace_path}{suffix}" if trace_path else ""
    return make_telemetry(kind, sinks=sinks, path=path)


def _print_telemetry(result: RunResult, telemetry=None) -> None:
    """Report telemetry next to (never inside) the result."""
    snap = result.telemetry
    if snap is None:
        return
    if "events" in snap:
        line = f"telemetry: {snap['events']} trace event(s)"
        if telemetry is not None:
            paths = ", ".join(sorted(telemetry.sink_paths().values()))
            if paths:
                line += f" -> {paths}"
        print(line)
    if telemetry is not None and telemetry.profiler is not None:
        print(telemetry.profiler.format_table())


def cmd_list(args) -> int:
    kind = getattr(args, "kind", None)
    if kind and kind != "benchmarks":
        names = REGISTRY.names(kind)
        print(render_table(["name"], [[n] for n in names],
                           title=f"Registered {kind} ({len(names)})"))
        return 0
    rows = [(name, TABLE_3_2_CLASSES[name],
             RODINIA_SPECS[name].blocks, RODINIA_SPECS[name].warps_per_block,
             RODINIA_SPECS[name].kernel_launches)
            for name in ALL_BENCHMARKS]
    print(render_table(
        ["benchmark", "class", "blocks/launch", "warps/block", "launches"],
        rows, title="Calibrated Rodinia benchmark models"))
    return 0


def cmd_profile(args) -> int:
    config = gtx480()
    profiler = shared_profiler(config)
    rows = []
    for name in _select_benchmarks(args.benchmarks):
        m = profiler.profile(name, RODINIA_SPECS[name])
        rows.append((name, m.memory_bandwidth_gbps, m.l2_to_l1_gbps, m.ipc,
                     m.mem_compute_ratio, m.solo_cycles,
                     m.utilization * 100))
    print(render_table(
        ["benchmark", "MB (GB/s)", "L2->L1", "IPC", "R", "solo cycles",
         "util %"], rows, title="Solo profiles (GTX-480 configuration)"))
    return 0


def cmd_classify(args) -> int:
    config = gtx480()
    profiler = shared_profiler(config)
    thresholds = ClassificationThresholds.for_device(config)
    rows = []
    for name in _select_benchmarks(args.benchmarks):
        m = profiler.profile(name, RODINIA_SPECS[name])
        rows.append((name, m.memory_bandwidth_gbps, m.l2_to_l1_gbps,
                     m.ipc, m.mem_compute_ratio,
                     str(classify(m, thresholds)),
                     TABLE_3_2_CLASSES[name]))
    print(render_table(
        ["benchmark", "MB", "L2->L1", "IPC", "R", "class", "paper"],
        rows, title=f"Classification (alpha={thresholds.alpha_gbps:.1f}, "
                    f"beta={thresholds.beta_gbps:.1f})"))
    mismatches = [r[0] for r in rows if r[5] != r[6]]
    if mismatches:
        print(f"\nWARNING: classes differ from Table 3.2 for: "
              f"{', '.join(mismatches)}")
        return 1
    return 0


def cmd_interference(args) -> int:
    config = gtx480()
    with make_executor(args.workers) as executor:
        ctx = make_context(config, suite=dict(RODINIA_SPECS),
                           need_interference=True,
                           samples_per_pair=args.samples,
                           executor=executor)
    headers = ["victim \\ with"] + [str(c) for c in CLASS_ORDER]
    rows = [[str(v)] + list(r)
            for v, r in zip(CLASS_ORDER, ctx.interference.slowdown)]
    print(render_table(headers, rows,
                       title="Class slowdown matrix (Fig 3.4)"))
    return 0


def _unique(keys: Sequence[str]) -> List[str]:
    """Deduplicate, preserving first-seen order."""
    out: List[str] = []
    for key in keys:
        if key not in out:
            out.append(key)
    return out


def _policy_keys(keys: Sequence[str]) -> List[str]:
    """Expand the ``all`` shorthand, preserving order and uniqueness."""
    out: List[str] = []
    for key in keys:
        out.extend(REGISTRY.names("policies") if key == "all" else [key])
    return _unique(out)


# -- scenario construction from argparse namespaces --------------------------

def _queue_scenario(args, policy_key: str) -> Scenario:
    if args.queue == "paper":
        workload = WorkloadSpec(source="paper", seed=args.seed)
    else:
        workload = WorkloadSpec(source="distribution",
                                distribution=args.queue,
                                length=args.length, seed=args.seed)
    return Scenario(
        kind="queue",
        workload=workload,
        policy=PolicySpec(name=policy_key, nc=args.nc),
        execution=ExecutionSpec(workers=args.workers,
                                samples_per_pair=args.samples,
                                backend=args.backend))


def _stream_workload(args) -> WorkloadSpec:
    """The arrival stream an `args` namespace describes.

    Everything is reproducible from ``--seed``: the stream queue's
    kernel mix and the Poisson/bursty arrival process both derive from
    it (a trace replay is deterministic by construction).
    """
    if getattr(args, "trace", None):
        return WorkloadSpec(source="trace", trace=args.trace,
                            scale=args.scale, seed=args.seed)
    return WorkloadSpec(source="stream", apps=args.apps,
                        synthetic_fraction=args.synthetic_fraction,
                        scale=args.scale, seed=args.seed,
                        arrival=args.arrival, mean_gap=args.mean_gap,
                        burst_size=args.burst_size,
                        burst_gap=args.burst_gap)


def _speculation_spec(args) -> Optional[SpeculationSpec]:
    """The ``--speculation`` flag as a spec (``none`` → no spec)."""
    kind = getattr(args, "speculation", None)
    if not kind or kind == "none":
        return None
    return SpeculationSpec(kind=kind)


def _stream_scenario(args, policy_key: str) -> Scenario:
    return Scenario(
        kind="stream",
        workload=_stream_workload(args),
        policy=PolicySpec(name=policy_key, nc=args.nc),
        execution=ExecutionSpec(workers=args.workers,
                                samples_per_pair=args.samples,
                                speculation=_speculation_spec(args),
                                backend=args.backend))


def _fleet_devices(args) -> DeviceSpec:
    """The fleet's :class:`DeviceSpec` from ``--devices``/``--device-configs``.

    One config name applies to the whole fleet; N names (N = the device
    count) build a heterogeneous big/little fleet, device by device.
    """
    configs = getattr(args, "device_configs", None)
    if not configs:
        return DeviceSpec(count=args.devices)
    if len(configs) == 1:
        return DeviceSpec(count=args.devices, config=configs[0])
    if len(configs) != args.devices:
        raise SystemExit(
            f"--device-configs lists {len(configs)} config(s) for "
            f"--devices {args.devices}; give one name for a homogeneous "
            f"fleet or exactly one per device")
    return DeviceSpec(count=args.devices, config=configs[0],
                      per_device=tuple(configs))


def _parse_fault_event(text: str) -> List:
    """Decode one ``CYCLE:DEVICE:down|up`` flag into an event triple."""
    parts = text.split(":")
    if len(parts) != 3 or parts[2] not in ("down", "up"):
        raise SystemExit(
            f"--fault-events expects CYCLE:DEVICE:down|up, got {text!r}")
    try:
        cycle, device = int(parts[0]), int(parts[1])
    except ValueError:
        raise SystemExit(
            f"--fault-events expects integer cycle and device in "
            f"{text!r}") from None
    return [cycle, device, parts[2]]


def _fault_spec(args) -> Optional[FaultSpec]:
    """The run-fleet fault flags as a :class:`FaultSpec` (or None)."""
    if args.faults == "none":
        if args.fault_events:
            raise SystemExit("--fault-events needs --faults scheduled")
        return None
    if args.faults == "scheduled" and not args.fault_events:
        raise SystemExit("--faults scheduled needs at least one "
                         "--fault-events CYCLE:DEVICE:down|up")
    events = tuple(tuple(_parse_fault_event(text))
                   for text in args.fault_events or [])
    return FaultSpec(kind=args.faults, events=events, mtbf=args.mtbf,
                     mttr=args.mttr, horizon=args.fault_horizon,
                     fail_prob=args.fail_prob,
                     max_retries=args.max_retries, seed=args.fault_seed)


def _admission_spec(args) -> Optional[AdmissionSpec]:
    """The run-fleet admission flags as an :class:`AdmissionSpec`."""
    if args.admission == "none":
        return None
    return AdmissionSpec(kind=args.admission, queue_cap=args.queue_cap,
                         mode=args.admission_mode,
                         defer_gap=args.defer_gap,
                         max_defers=args.max_defers,
                         deadline_cycles=args.deadline)


def _fleet_scenario(args, placement_key: str) -> Scenario:
    return Scenario(
        kind="fleet",
        workload=_stream_workload(args),
        policy=PolicySpec(name=args.policy, nc=args.nc),
        placement=PlacementSpec(name=placement_key),
        devices=_fleet_devices(args),
        execution=ExecutionSpec(workers=args.workers,
                                samples_per_pair=args.samples,
                                speculation=_speculation_spec(args),
                                backend=args.backend),
        faults=_fault_spec(args),
        admission=_admission_spec(args))


# -- the declarative entry points --------------------------------------------

def _write_result(result: RunResult, path: str) -> None:
    pathlib.Path(path).write_text(result.to_json())


def _print_result_summary(result: RunResult) -> None:
    prov = result.provenance
    label = result.scenario.get("name") or result.metrics.get("policy", "")
    rows = [[key, value] for key, value in sorted(result.metrics.items())
            if not isinstance(value, (list, dict))]
    print(render_table(
        ["metric", "value"], rows,
        title=f"{result.kind} scenario {label!r} "
              f"(engine v{prov['engine_version']}, "
              f"spec {prov['spec_hash'][:10]})"))


def _print_speculation(result: RunResult,
                       report_path: Optional[str] = None) -> None:
    """Report speculation counters next to (never inside) the result."""
    counters = result.speculation
    if counters is None:
        return
    print(f"speculation: {counters['hits']} hit(s) / "
          f"{counters['misses']} miss(es) "
          f"(hit rate {counters['hit_rate']:.2f}), "
          f"{counters['submitted']} submitted, "
          f"{counters['discarded']} discarded, "
          f"{counters['windows']} window(s), "
          f"{counters['rollbacks']} rollback(s), "
          f"{counters['ahead_events']} ahead event(s)")
    if report_path:
        pathlib.Path(report_path).write_text(
            json.dumps(counters, sort_keys=True, indent=2) + "\n")
        print(f"wrote speculation counters to {report_path}")


def cmd_run(args) -> int:
    try:
        scenario = Scenario.from_json(
            pathlib.Path(args.scenario).read_text())
    except ValueError as exc:
        raise SystemExit(f"{args.scenario}: {exc}") from None
    if args.speculation is not None:
        # Override without touching the file; "none" disables (the
        # spec canonicalizes it to an absent block).
        try:
            scenario = dataclasses.replace(
                scenario,
                execution=dataclasses.replace(
                    scenario.execution,
                    speculation=SpeculationSpec(kind=args.speculation)))
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    if args.backend is not None:
        # Same override discipline: the backend is resources-not-
        # identity, so swapping it never changes the result bytes.
        try:
            scenario = dataclasses.replace(
                scenario,
                execution=dataclasses.replace(scenario.execution,
                                              backend=args.backend))
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    telemetry = _telemetry_from_args(args)
    executor = make_executor(args.workers) if args.workers else None
    try:
        result = _run_or_exit(scenario, executor=executor,
                              telemetry=telemetry)
    finally:
        if executor is not None:
            executor.close()
    _print_result_summary(result)
    _print_speculation(result, args.speculation_report)
    _print_telemetry(result, telemetry)
    if args.out:
        _write_result(result, args.out)
        print(f"\nwrote results to {args.out}")
    return 0


def cmd_sweep(args) -> int:
    try:
        points = load_sweep(pathlib.Path(args.sweep).read_text())
    except ValueError as exc:
        raise SystemExit(f"{args.sweep}: {exc}") from None
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    # One executor per distinct worker count, shared across every point
    # that uses it: a ParallelExecutor's process pool warms up once
    # instead of once per point.  Points still run one at a time in
    # grid order and merge results in submission order, so the written
    # files are byte-identical to per-point executors.
    executors = {}

    def _executor_for(scenario: Scenario):
        workers = args.workers or scenario.execution.workers
        if workers not in executors:
            executors[workers] = make_executor(workers)
        return executors[workers]

    manifest = []
    try:
        for index, (overrides, scenario) in enumerate(points):
            result = _run_or_exit(scenario, _executor_for(scenario))
            filename = point_filename(scenario, index)
            _write_result(result, out_dir / filename)
            # The campaign manifest row schema (status + result_hash on
            # top of index/file/spec_hash): a finished sweep directory
            # is a valid resume source for a by-point campaign.
            manifest.append({"index": index, "overrides": overrides,
                             "file": filename,
                             "spec_hash": result.provenance["spec_hash"],
                             "status": "done",
                             "result_hash": result_hash(result.to_json())})
            shown = ", ".join(f"{k}={v}" for k, v in overrides.items())
            print(f"[{index + 1}/{len(points)}] {filename}"
                  + (f"  ({shown})" if shown else ""))
    finally:
        for pool in executors.values():
            pool.close()
    (out_dir / "sweep_manifest.json").write_text(
        json.dumps({"schema_version": MANIFEST_SCHEMA_VERSION,
                    "kind": "sweep", "points": manifest},
                   sort_keys=True, indent=2) + "\n")
    print(f"\n{len(points)} point(s) written to {out_dir}")
    return 0


def cmd_campaign(args) -> int:
    try:
        spec = CampaignSpec.from_json(
            pathlib.Path(args.campaign).read_text())
    except ValueError as exc:
        raise SystemExit(f"{args.campaign}: {exc}") from None
    try:
        outcome = run_campaign(spec, args.out_dir, resume=args.resume,
                               shard_workers=args.shard_workers,
                               max_shards=args.max_shards,
                               progress=print)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    print(f"\n{outcome.shards_run} shard(s) run, "
          f"{outcome.shards_skipped} skipped, "
          f"{outcome.shards_total} total in {args.out_dir}")
    if not outcome.complete:
        print(f"campaign incomplete "
              f"({outcome.shards_total - outcome.shards_run - outcome.shards_skipped} "
              f"shard(s) pending) — rerun with --resume to continue")
        return 3
    result = outcome.result
    rows = [[key, value]
            for key, value in sorted(result.metrics.items())
            if not isinstance(value, (list, dict))]
    label = result.name or spec.base.kind
    print(render_table(
        ["metric", "value"], rows,
        title=f"campaign {label!r} ({result.metrics['shards']} shard(s), "
              f"hash {result.provenance['campaign_hash'][:10]})"))
    print(f"wrote merged result to {outcome.result_path}")
    return 0


# -- classic front doors (thin wrappers over run_scenario) -------------------

def cmd_run_queue(args) -> int:
    with make_executor(args.workers) as executor:
        throughputs = {}
        for key in _policy_keys(args.policies):
            result = _run_or_exit(_queue_scenario(args, key), executor)
            throughputs[result.metrics["policy"]] = \
                result.metrics["device_throughput"]
            if args.verbose:
                print(f"\n{result.metrics['policy']}:")
                for group in result.groups:
                    print(f"  {' + '.join(group['members']):40} "
                          f"{group['cycles']:>9,} cycles")

    baseline = list(throughputs)[0]
    print()
    print(render_bars(normalize(throughputs, baseline), width=40,
                      baseline=1.0,
                      title=f"Device throughput on the '{args.queue}' "
                            f"queue (NC={args.nc}, normalized to "
                            f"{baseline})"))
    return 0


def cmd_run_stream(args) -> int:
    rows = []
    apps = 0
    with make_executor(args.workers) as executor:
        keys = args.policies
        for key in keys:
            telemetry = _telemetry_from_args(
                args, suffix=f".{key}" if len(keys) > 1 else "")
            result = _run_or_exit(_stream_scenario(args, key), executor,
                                  telemetry)
            _print_speculation(result)
            _print_telemetry(result, telemetry)
            m = result.metrics
            apps = m["apps"]
            rows.append([m["policy"], m["antt"], m["stp"],
                         m["device_throughput"], 100.0 * m["utilization"],
                         m["wait_p50"], m["wait_p99"],
                         m["latency_p50"], m["latency_p99"]])
            if args.verbose:
                print(f"\n{m['policy']}: makespan {m['makespan']:,} "
                      f"cycles, {len(result.groups)} groups")
                for g in result.groups:
                    print(f"  @{g['start_cycle']:>10,} "
                          f"{' + '.join(g['members']):46} "
                          f"{g['cycles']:>9,} cycles")

    kind = f"trace:{args.trace}" if args.trace else args.arrival
    print()
    print(render_table(
        ["policy", "ANTT", "STP", "IPC", "util %", "wait p50", "wait p99",
         "lat p50", "lat p99"],
        rows,
        title=f"Online stream: {apps} apps, {kind} arrivals, "
              f"NC={args.nc} (ANTT lower / STP higher is better)"))
    return 0


def cmd_run_fleet(args) -> int:
    rows = []
    summaries = []
    apps = 0
    with make_executor(args.workers) as executor:
        keys = _unique(args.placement)
        for key in keys:
            try:
                scenario = _fleet_scenario(args, key)
            except ValueError as exc:
                raise SystemExit(str(exc)) from None
            telemetry = _telemetry_from_args(
                args, suffix=f".{key}" if len(keys) > 1 else "")
            result = _run_or_exit(scenario, executor, telemetry)
            _print_speculation(result)
            _print_telemetry(result, telemetry)
            m = result.metrics
            apps = m["apps"]
            summaries.append(m)
            if "antt" in m:
                rows.append([m["placement"], m["antt"], m["stp"],
                             m["fleet_throughput"],
                             100.0 * m["utilization"],
                             m["load_imbalance"], m["wait_p50"],
                             m["wait_p99"], m["latency_p99"]])
            else:
                # Fully-degraded run: nothing was served, so there is
                # no stream scorecard row to print.
                print(f"\n{m['placement']}: no applications served "
                      f"({m.get('rejected', 0)} rejected)")
            if args.verbose:
                print(f"\n{m['placement']}: makespan {m['makespan']:,} "
                      f"cycles")
                hetero = bool(result.scenario["devices"].get("per_device"))
                for dev in result.devices:
                    suffix = f" [{dev['config']}]" if hetero else ""
                    faulty = ""
                    if dev.get("down_cycles") or dev.get("lost_cycles"):
                        faulty = (f", {dev['down_cycles']:,} down / "
                                  f"{dev['lost_cycles']:,} lost cycles")
                    print(f"  device {dev['device_id']}: "
                          f"{dev['apps_served']:>3} apps in "
                          f"{dev['groups']:>3} groups, "
                          f"{dev['busy_cycles']:>12,} busy cycles"
                          f"{suffix}{faulty}")

    kind = f"trace:{args.trace}" if args.trace else args.arrival
    print()
    if rows:
        print(render_table(
            ["placement", "ANTT", "STP", "IPC", "util %", "imbalance",
             "wait p50", "wait p99", "lat p99"],
            rows,
            title=f"Fleet of {args.devices} devices x {args.policy}: "
                  f"{apps} apps, {kind} arrivals, NC={args.nc} "
                  f"(ANTT/imbalance lower, STP higher is better)"))
    for m in summaries:
        if "per_device_utilization" in m:
            utils = " ".join(f"{100.0 * u:.0f}%"
                             for u in m["per_device_utilization"])
            app_counts = " ".join(str(a) for a in m["per_device_apps"])
            print(f"{m['placement']:>14}: util/device = {utils}   "
                  f"apps/device = {app_counts}")
        if "availability" in m:
            reasons = ", ".join(f"{reason}: {count}" for reason, count
                                in m["rejected_by_reason"].items()) or "-"
            print(f"{m['placement']:>14}: availability = "
                  f"{100.0 * m['availability']:.1f}%   served "
                  f"{m['served']}/{m['arrivals']}   rejected "
                  f"{m['rejected']} ({reasons})   retries "
                  f"{m['retries_total']}")
    return 0


def cmd_scalability(args) -> int:
    config = gtx480()
    points = args.sms
    rows = []
    for name in _select_benchmarks(args.benchmarks):
        ipcs = []
        for sms in points:
            res = simulate(config.with_sms(sms),
                           [Application(name, RODINIA_SPECS[name])])
            ipcs.append(res.app_stats[0].ipc(res.cycles))
        rows.append([name] + ipcs)
    print(render_table(["benchmark"] + [f"{n} SMs" for n in points], rows,
                       ndigits=1, title="IPC vs SM count (Fig 3.5/3.6)"))
    return 0


def add_telemetry_arguments(p, trace_flag: str = "--trace-out") -> None:
    """Telemetry options shared by run / run-stream / run-fleet.

    The flag spelling differs per command (``repro run --trace``, but
    ``--trace-out`` on the stream/fleet wrappers where ``--trace``
    already means "replay this workload trace file"); the ``trace_out``
    destination is shared.  Telemetry never changes results — traced
    and plain runs serialize byte-identically.
    """
    p.add_argument(trace_flag, dest="trace_out", default=None,
                   metavar="PATH",
                   help="record the run's virtual-clock trace events "
                        "and write them here (results are "
                        "byte-identical with tracing on or off)")
    p.add_argument("--trace-format", default="jsonl",
                   choices=("jsonl", "chrome"),
                   help="trace sink format: jsonl lines or a Chrome "
                        "trace_event file for Perfetto (default jsonl)")
    p.add_argument("--profile", action="store_true",
                   help="time the run's wall-clock phases (simulate, "
                        "solver, placement, ...) and print a summary "
                        "table; wall-clock only, never the virtual "
                        "clock")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU multi-application co-scheduling reproduction "
                    "(DATE 2018)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list benchmark models or any "
                                    "registry kind")
    p.add_argument("--kind", default=None,
                   choices=sorted(REGISTRY.kinds()),
                   help="registry kind to list (default: the benchmark "
                        "table)")

    p = sub.add_parser("run", help="execute one scenario JSON")
    p.add_argument("scenario", help="path to a scenario .json file")
    p.add_argument("--out", default=None,
                   help="write the full RunResult JSON here")
    p.add_argument("--workers", type=_positive_int, default=None,
                   help="override the scenario's worker count (results "
                        "are bit-identical for any value)")
    p.add_argument("--speculation", default=None,
                   choices=REGISTRY.names("speculation"),
                   help="override the scenario's speculation strategy "
                        "(results are bit-identical for any value; "
                        "'none' disables)")
    p.add_argument("--backend", default=None,
                   choices=REGISTRY.names("engine-backends"),
                   help="override the scenario's engine backend "
                        "(results are bit-identical for any value)")
    p.add_argument("--speculation-report", default=None, metavar="PATH",
                   help="write the speculation counters (hits, misses, "
                        "rollbacks, ...) to this JSON file")
    add_telemetry_arguments(p, trace_flag="--trace")

    p = sub.add_parser("sweep", help="run a base scenario x parameter grid")
    p.add_argument("sweep", help="path to a sweep .json file "
                                 "({'base': scenario, 'grid': {path: "
                                 "[values]}})")
    p.add_argument("--out-dir", default="sweep-results",
                   help="directory for per-point result JSONs "
                        "(default sweep-results)")
    p.add_argument("--workers", type=_positive_int, default=None,
                   help="override every point's worker count")

    p = sub.add_parser("campaign", help="run a sharded, resumable "
                                        "campaign to a merged result")
    p.add_argument("campaign", help="path to a campaign .json file "
                                    "({'base': scenario, 'grid': {...}, "
                                    "'shard': {...}})")
    p.add_argument("--out-dir", default="campaign-results",
                   help="directory for shard results, the manifest, and "
                        "the merged result (default campaign-results)")
    p.add_argument("--resume", action="store_true",
                   help="skip shards already committed in --out-dir "
                        "(verified per the spec's resume policy)")
    p.add_argument("--shard-workers", type=_positive_int, default=1,
                   help="worker processes for the shard fan-out "
                        "(results are byte-identical for any value)")
    p.add_argument("--max-shards", type=_positive_int, default=None,
                   help="commit at most N pending shards then stop "
                        "without merging (exit 3; the deterministic "
                        "interruption the CI resume test uses)")

    p = sub.add_parser("profile", help="solo-profile benchmarks")
    p.add_argument("benchmarks", nargs="*", help="benchmark names "
                   "(default: all)")

    p = sub.add_parser("classify", help="profile and classify benchmarks")
    p.add_argument("benchmarks", nargs="*")

    p = sub.add_parser("interference",
                       help="measure the class slowdown matrix")
    p.add_argument("--samples", type=_positive_int, default=2,
                   help="benchmark pairs per class pair (default 2)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="worker processes for the pair co-runs")

    p = sub.add_parser("run-queue", help="drain a queue under policies")
    p.add_argument("--queue", default="paper",
                   choices=["paper"] + sorted(DISTRIBUTIONS),
                   help="queue to run (default: the paper's 14-app queue)")
    p.add_argument("--nc", type=int, default=2, choices=(2, 3),
                   help="concurrent applications per group")
    p.add_argument("--length", type=_positive_int, default=20,
                   help="queue length for distribution queues")
    p.add_argument("--seed", type=_seed, default=42)
    p.add_argument("--samples", type=_positive_int, default=2)
    p.add_argument("--policies", nargs="+",
                   default=["serial", "fcfs", "ilp", "ilp-smra"],
                   choices=REGISTRY.names("policies") + ["all"])
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="worker processes for group execution and "
                        "interference measurement (default: serial)")
    p.add_argument("--backend", default="event",
                   choices=REGISTRY.names("engine-backends"),
                   help="engine backend for group simulations (results "
                        "are bit-identical; default event)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print each group's members and cycles")

    def add_stream_arguments(p, default_apps):
        """Arrival-stream options shared by run-stream and run-fleet.

        Every random choice (queue mix, Poisson/bursty gaps) derives
        from ``--seed``, so a scenario is reproducible from its command
        line alone; rates and gaps reject non-positive values up front.
        """
        p.add_argument("--apps", type=_positive_int, default=default_apps,
                       help=f"stream length (default {default_apps})")
        p.add_argument("--arrival", default="poisson",
                       choices=REGISTRY.names("streams"),
                       help="arrival process (default poisson)")
        p.add_argument("--trace", default=None,
                       help="replay a '<cycle> <benchmark>' trace file "
                            "(overrides --arrival/--apps)")
        p.add_argument("--mean-gap", type=_positive_float, default=5000.0,
                       help="mean Poisson inter-arrival gap in cycles")
        p.add_argument("--burst-size", type=_positive_int, default=8)
        p.add_argument("--burst-gap", type=_positive_float, default=50000.0,
                       help="mean quiet gap between bursts in cycles")
        p.add_argument("--nc", type=int, default=2, choices=(2, 3),
                       help="concurrent applications per group")
        p.add_argument("--seed", type=_seed, default=42,
                       help="seed for the stream mix and arrival gaps "
                            "(default 42)")
        p.add_argument("--scale", type=_positive_float, default=1.0,
                       help="kernel scale factor (smaller = faster runs)")
        p.add_argument("--synthetic-fraction", type=_fraction, default=0.5,
                       help="fraction of stream apps drawn from the "
                            "synthetic generator (rest are Rodinia)")
        p.add_argument("--samples", type=_positive_int, default=1,
                       help="benchmark pairs per class pair for the "
                            "interference matrix")
        p.add_argument("--backend", default="event",
                       choices=REGISTRY.names("engine-backends"),
                       help="engine backend for group simulations "
                            "(results are bit-identical; default event)")

    p = sub.add_parser("run-stream",
                       help="run an online arrival stream under policies")
    add_stream_arguments(p, default_apps=50)
    p.add_argument("--policies", nargs="+",
                   default=["fcfs", "backfill", "ilp"],
                   choices=REGISTRY.names("online-policies"))
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="worker processes for profiling/interference")
    p.add_argument("--speculation", default="none",
                   choices=REGISTRY.names("speculation"),
                   help="pre-simulate predicted next groups on idle "
                        "workers (results are bit-identical; default "
                        "none)")
    add_telemetry_arguments(p)
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print the scheduled timeline per policy")

    p = sub.add_parser("run-fleet",
                       help="drain one arrival stream across a device fleet")
    add_stream_arguments(p, default_apps=200)
    p.add_argument("--devices", type=_positive_int, default=4,
                   help="number of simulated devices (default 4)")
    p.add_argument("--device-configs", nargs="+", default=None,
                   choices=REGISTRY.names("gpu-configs"),
                   help="gpu-config name(s): one name for the whole "
                        "fleet, or exactly --devices names for a "
                        "heterogeneous big/little fleet "
                        "(default: gtx480 everywhere)")
    p.add_argument("--placement", nargs="+",
                   default=["round-robin", "least-loaded", "interference"],
                   choices=REGISTRY.names("placements"),
                   help="placement policies to compare (default: all)")
    p.add_argument("--policy", default="fcfs",
                   choices=REGISTRY.names("online-policies"),
                   help="per-device online policy (default fcfs)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="worker processes for same-instant group "
                        "simulations and profiling")
    p.add_argument("--speculation", default="none",
                   choices=REGISTRY.names("speculation"),
                   help="speculative execution: pre-simulated groups "
                        "and/or out-of-order device run-ahead (results "
                        "are bit-identical; default none)")
    p.add_argument("--faults", default="none",
                   choices=REGISTRY.names("faults"),
                   help="fault injection: scheduled events, mtbf churn, "
                        "or transient group failures (default none)")
    p.add_argument("--fault-events", nargs="+", default=None,
                   metavar="CYCLE:DEVICE:down|up",
                   help="explicit outage events for --faults scheduled")
    p.add_argument("--mtbf", type=_positive_float, default=500000.0,
                   help="mean cycles between failures per device "
                        "(--faults mtbf)")
    p.add_argument("--mttr", type=_positive_float, default=100000.0,
                   help="mean repair time in cycles (--faults mtbf)")
    p.add_argument("--fault-horizon", type=_positive_int,
                   default=2000000,
                   help="cycle horizon for generated mtbf churn")
    p.add_argument("--fail-prob", type=_fraction, default=0.0,
                   help="transient group-failure probability")
    p.add_argument("--max-retries", type=_nonneg_int, default=2,
                   help="attempts per app before a transient failure "
                        "is final")
    p.add_argument("--fault-seed", type=_seed, default=0,
                   help="seed for churn and transient failures")
    p.add_argument("--admission", default="none",
                   choices=REGISTRY.names("admission"),
                   help="admission control policy (default none)")
    p.add_argument("--queue-cap", type=_positive_int, default=8,
                   help="fleet-wide waiting-apps cap "
                        "(--admission queue-cap)")
    p.add_argument("--admission-mode", default="reject",
                   choices=("reject", "defer"),
                   help="what happens at the cap (default reject)")
    p.add_argument("--defer-gap", type=_positive_int, default=5000,
                   help="cycles between re-offers of a deferred arrival")
    p.add_argument("--max-defers", type=_nonneg_int, default=3,
                   help="re-offers before a deferred arrival is "
                        "rejected")
    p.add_argument("--deadline", type=_positive_int, default=50000,
                   help="turnaround budget in cycles "
                        "(--admission deadline)")
    add_telemetry_arguments(p)
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print the per-device breakdown per placement")

    p = sub.add_parser("scalability", help="IPC vs SM count sweep")
    p.add_argument("benchmarks", nargs="*")
    p.add_argument("--sms", type=int, nargs="+",
                   default=[10, 15, 20, 25, 30, 60])

    return parser


COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "sweep": cmd_sweep,
    "campaign": cmd_campaign,
    "profile": cmd_profile,
    "classify": cmd_classify,
    "interference": cmd_interference,
    "run-queue": cmd_run_queue,
    "run-stream": cmd_run_stream,
    "run-fleet": cmd_run_fleet,
    "scalability": cmd_scalability,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

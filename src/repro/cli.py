"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``profile``
    Solo-profile benchmarks and print their Table 3.2 metric rows.
``classify``
    Profile + classify (adds the class column and thresholds).
``interference``
    Measure and print the Fig. 3.4 class slowdown matrix.
``run-queue``
    Drain an application queue under one or more scheduling policies and
    print the device-throughput comparison (``--workers N`` fans the
    independent groups across worker processes).
``run-stream``
    Run an online arrival stream (Poisson / bursty / trace) under online
    scheduling policies and print ANTT/STP + latency percentiles.
``run-fleet``
    Drain one shared arrival stream across a fleet of simulated devices
    under one or more placement policies; print fleet ANTT/STP, load
    imbalance, and per-device utilization.
``scalability``
    Sweep SM counts for selected benchmarks (Fig. 3.5/3.6).
``list``
    List the available benchmarks with their paper classes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis import (normalize, render_bars, render_table,
                            summarize_fleet, summarize_stream)
from repro.cluster import PLACEMENT_FACTORIES, placement_policy, run_fleet
from repro.core import (CLASS_ORDER, ClassificationThresholds, FCFSPolicy,
                        EvenPolicy, ILPPolicy, ILPSMRAPolicy,
                        ProfileBasedPolicy, SerialPolicy, SMRAParams,
                        classify, make_context, run_queue, shared_profiler,
                        warm_profiles)
from repro.gpusim import Application, gtx480, simulate
from repro.runtime import (ONLINE_POLICY_FACTORIES, make_executor,
                           online_policy, run_stream)
from repro.workloads import (ALL_BENCHMARKS, DISTRIBUTIONS, RODINIA_SPECS,
                             TABLE_3_2_CLASSES, batch_arrivals,
                             bursty_arrivals, distribution_queue, load_trace,
                             paper_queue, paper_queue_three,
                             poisson_arrivals, stream_queue)

POLICY_FACTORIES = {
    "serial": lambda nc: SerialPolicy(),
    "even": EvenPolicy,
    "fcfs": FCFSPolicy,
    "profile": ProfileBasedPolicy,
    "ilp": ILPPolicy,
    "ilp-smra": ILPSMRAPolicy,
}


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer, rejected clearly."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive, finite rate/gap/scale."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}") from None
    if not value > 0 or value != value or value == float("inf"):
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def _fraction(text: str) -> float:
    """argparse type: a fraction in [0, 1]."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a fraction in [0, 1], got {text!r}") from None
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"must be in [0, 1], got {text}")
    return value


def _seed(text: str) -> int:
    """argparse type: a non-negative stream seed."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer seed, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"seed must be >= 0, got {value}")
    return value


def _select_benchmarks(names: Optional[Sequence[str]]) -> List[str]:
    if not names:
        return list(ALL_BENCHMARKS)
    unknown = [n for n in names if n not in RODINIA_SPECS]
    if unknown:
        raise SystemExit(f"unknown benchmark(s): {', '.join(unknown)}; "
                         f"choose from {', '.join(ALL_BENCHMARKS)}")
    return list(names)


def cmd_list(_args) -> int:
    rows = [(name, TABLE_3_2_CLASSES[name],
             RODINIA_SPECS[name].blocks, RODINIA_SPECS[name].warps_per_block,
             RODINIA_SPECS[name].kernel_launches)
            for name in ALL_BENCHMARKS]
    print(render_table(
        ["benchmark", "class", "blocks/launch", "warps/block", "launches"],
        rows, title="Calibrated Rodinia benchmark models"))
    return 0


def cmd_profile(args) -> int:
    config = gtx480()
    profiler = shared_profiler(config)
    rows = []
    for name in _select_benchmarks(args.benchmarks):
        m = profiler.profile(name, RODINIA_SPECS[name])
        rows.append((name, m.memory_bandwidth_gbps, m.l2_to_l1_gbps, m.ipc,
                     m.mem_compute_ratio, m.solo_cycles,
                     m.utilization * 100))
    print(render_table(
        ["benchmark", "MB (GB/s)", "L2->L1", "IPC", "R", "solo cycles",
         "util %"], rows, title="Solo profiles (GTX-480 configuration)"))
    return 0


def cmd_classify(args) -> int:
    config = gtx480()
    profiler = shared_profiler(config)
    thresholds = ClassificationThresholds.for_device(config)
    rows = []
    for name in _select_benchmarks(args.benchmarks):
        m = profiler.profile(name, RODINIA_SPECS[name])
        rows.append((name, m.memory_bandwidth_gbps, m.l2_to_l1_gbps,
                     m.ipc, m.mem_compute_ratio,
                     str(classify(m, thresholds)),
                     TABLE_3_2_CLASSES[name]))
    print(render_table(
        ["benchmark", "MB", "L2->L1", "IPC", "R", "class", "paper"],
        rows, title=f"Classification (alpha={thresholds.alpha_gbps:.1f}, "
                    f"beta={thresholds.beta_gbps:.1f})"))
    mismatches = [r[0] for r in rows if r[5] != r[6]]
    if mismatches:
        print(f"\nWARNING: classes differ from Table 3.2 for: "
              f"{', '.join(mismatches)}")
        return 1
    return 0


def cmd_interference(args) -> int:
    config = gtx480()
    with make_executor(args.workers) as executor:
        ctx = make_context(config, suite=dict(RODINIA_SPECS),
                           need_interference=True,
                           samples_per_pair=args.samples,
                           executor=executor)
    headers = ["victim \\ with"] + [str(c) for c in CLASS_ORDER]
    rows = [[str(v)] + list(r)
            for v, r in zip(CLASS_ORDER, ctx.interference.slowdown)]
    print(render_table(headers, rows,
                       title="Class slowdown matrix (Fig 3.4)"))
    return 0


def _unique(keys: Sequence[str]) -> List[str]:
    """Deduplicate, preserving first-seen order."""
    out: List[str] = []
    for key in keys:
        if key not in out:
            out.append(key)
    return out


def _policy_keys(keys: Sequence[str]) -> List[str]:
    """Expand the ``all`` shorthand, preserving order and uniqueness."""
    out: List[str] = []
    for key in keys:
        out.extend(sorted(POLICY_FACTORIES) if key == "all" else [key])
    return _unique(out)


def cmd_run_queue(args) -> int:
    config = gtx480()
    with make_executor(args.workers) as executor:
        ctx = make_context(config, suite=dict(RODINIA_SPECS),
                           need_interference=True,
                           samples_per_pair=args.samples,
                           smra_params=SMRAParams(), executor=executor)
        if args.queue == "paper":
            queue = paper_queue() if args.nc == 2 else paper_queue_three()
        else:
            queue = distribution_queue(args.queue, length=args.length,
                                       seed=args.seed)

        throughputs = {}
        for key in _policy_keys(args.policies):
            policy = POLICY_FACTORIES[key](args.nc)
            outcome = run_queue(queue, policy, ctx, executor=executor)
            throughputs[policy.name] = outcome.device_throughput
            if args.verbose:
                print(f"\n{policy.name}:")
                for group in outcome.groups:
                    print(f"  {' + '.join(group.members):40} "
                          f"{group.cycles:>9,} cycles")

    baseline = list(throughputs)[0]
    print()
    print(render_bars(normalize(throughputs, baseline), width=40,
                      baseline=1.0,
                      title=f"Device throughput on the '{args.queue}' "
                            f"queue (NC={args.nc}, normalized to "
                            f"{baseline})"))
    return 0


def _build_arrivals(args):
    """The arrival stream an `args` namespace describes.

    Everything is reproducible from ``--seed``: the stream queue's
    kernel mix and the Poisson/bursty arrival process both derive from
    it (a trace replay is deterministic by construction).
    """
    if getattr(args, "trace", None):
        arrivals = load_trace(args.trace, scale=args.scale)
    else:
        queue = stream_queue(args.apps, seed=args.seed,
                             synthetic_fraction=args.synthetic_fraction,
                             scale=args.scale)
        if args.arrival == "poisson":
            arrivals = poisson_arrivals(queue, args.mean_gap,
                                        seed=args.seed)
        elif args.arrival == "bursty":
            arrivals = bursty_arrivals(queue, args.burst_size,
                                       args.burst_gap, seed=args.seed)
        else:
            arrivals = batch_arrivals(queue)
    if not arrivals:
        raise SystemExit("the arrival stream is empty (trace with no "
                         "entries?)")
    return arrivals


def cmd_run_stream(args) -> int:
    config = gtx480()
    # One policy instance per run; whether the Fig. 3.4 matrix must be
    # measured is the policies' own declaration, not CLI knowledge.
    policies = [online_policy(key, args.nc) for key in args.policies]
    with make_executor(args.workers) as executor:
        ctx = make_context(
            config, suite=dict(RODINIA_SPECS),
            need_interference=any(p.needs_interference for p in policies),
            samples_per_pair=args.samples,
            smra_params=SMRAParams(), executor=executor)

        arrivals = _build_arrivals(args)

        # Solo times (ANTT/STP denominators) — parallel warm, then cached.
        warm_profiles(ctx.profiler, executor,
                      [(a.name, a.spec) for a in arrivals])
        solo = {a.name: ctx.profiler.profile(a.name, a.spec).solo_cycles
                for a in arrivals}

        rows = []
        for policy in policies:
            outcome = run_stream(arrivals, policy, ctx)
            s = summarize_stream(outcome, solo)
            rows.append([s.policy, s.antt, s.stp, s.device_throughput,
                         100.0 * s.utilization, s.wait_p50, s.wait_p99,
                         s.latency_p50, s.latency_p99])
            if args.verbose:
                print(f"\n{s.policy}: makespan {outcome.makespan:,} cycles, "
                      f"{len(outcome.groups)} groups")
                for g in outcome.groups:
                    print(f"  @{g.start_cycle:>10,} "
                          f"{' + '.join(g.outcome.members):46} "
                          f"{g.outcome.cycles:>9,} cycles")

    kind = f"trace:{args.trace}" if args.trace else args.arrival
    print()
    print(render_table(
        ["policy", "ANTT", "STP", "IPC", "util %", "wait p50", "wait p99",
         "lat p50", "lat p99"],
        rows,
        title=f"Online stream: {len(arrivals)} apps, {kind} arrivals, "
              f"NC={args.nc} (ANTT lower / STP higher is better)"))
    return 0


def cmd_run_fleet(args) -> int:
    config = gtx480()
    placements = [placement_policy(key) for key in _unique(args.placement)]
    # Probe one policy instance: whether the Fig. 3.4 matrix is needed
    # is declared by the per-device policy and the placement policies.
    need_interference = (online_policy(args.policy, args.nc)
                         .needs_interference
                         or any(p.needs_interference for p in placements))
    with make_executor(args.workers) as executor:
        ctx = make_context(config, suite=dict(RODINIA_SPECS),
                           need_interference=need_interference,
                           samples_per_pair=args.samples,
                           smra_params=SMRAParams(), executor=executor)

        arrivals = _build_arrivals(args)

        # Solo times (ANTT/STP denominators) — parallel warm, then cached.
        warm_profiles(ctx.profiler, executor,
                      [(a.name, a.spec) for a in arrivals])
        solo = {a.name: ctx.profiler.profile(a.name, a.spec).solo_cycles
                for a in arrivals}

        rows = []
        summaries = []
        for placement in placements:
            outcome = run_fleet(
                arrivals, placement,
                lambda _i: online_policy(args.policy, args.nc), ctx,
                num_devices=args.devices, executor=executor)
            s = summarize_fleet(outcome, solo)
            summaries.append(s)
            rows.append([s.placement, s.antt, s.stp, s.fleet_throughput,
                         100.0 * s.utilization, s.load_imbalance,
                         s.wait_p50, s.wait_p99, s.latency_p99])
            if args.verbose:
                print(f"\n{s.placement}: makespan {outcome.makespan:,} "
                      f"cycles")
                for dev in outcome.devices:
                    print(f"  device {dev.device_id}: "
                          f"{dev.apps_served:>3} apps in "
                          f"{len(dev.groups):>3} groups, "
                          f"{dev.busy_cycles:>12,} busy cycles")

    kind = f"trace:{args.trace}" if args.trace else args.arrival
    print()
    print(render_table(
        ["placement", "ANTT", "STP", "IPC", "util %", "imbalance",
         "wait p50", "wait p99", "lat p99"],
        rows,
        title=f"Fleet of {args.devices} devices x {args.policy}: "
              f"{len(arrivals)} apps, {kind} arrivals, NC={args.nc} "
              f"(ANTT/imbalance lower, STP higher is better)"))
    for s in summaries:
        utils = " ".join(f"{100.0 * u:.0f}%"
                         for u in s.per_device_utilization)
        apps = " ".join(str(a) for a in s.per_device_apps)
        print(f"{s.placement:>14}: util/device = {utils}   "
              f"apps/device = {apps}")
    return 0


def cmd_scalability(args) -> int:
    config = gtx480()
    points = args.sms
    rows = []
    for name in _select_benchmarks(args.benchmarks):
        ipcs = []
        for sms in points:
            res = simulate(config.with_sms(sms),
                           [Application(name, RODINIA_SPECS[name])])
            ipcs.append(res.app_stats[0].ipc(res.cycles))
        rows.append([name] + ipcs)
    print(render_table(["benchmark"] + [f"{n} SMs" for n in points], rows,
                       ndigits=1, title="IPC vs SM count (Fig 3.5/3.6)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU multi-application co-scheduling reproduction "
                    "(DATE 2018)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark models")

    p = sub.add_parser("profile", help="solo-profile benchmarks")
    p.add_argument("benchmarks", nargs="*", help="benchmark names "
                   "(default: all)")

    p = sub.add_parser("classify", help="profile and classify benchmarks")
    p.add_argument("benchmarks", nargs="*")

    p = sub.add_parser("interference",
                       help="measure the class slowdown matrix")
    p.add_argument("--samples", type=_positive_int, default=2,
                   help="benchmark pairs per class pair (default 2)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="worker processes for the pair co-runs")

    p = sub.add_parser("run-queue", help="drain a queue under policies")
    p.add_argument("--queue", default="paper",
                   choices=["paper"] + sorted(DISTRIBUTIONS),
                   help="queue to run (default: the paper's 14-app queue)")
    p.add_argument("--nc", type=int, default=2, choices=(2, 3),
                   help="concurrent applications per group")
    p.add_argument("--length", type=_positive_int, default=20,
                   help="queue length for distribution queues")
    p.add_argument("--seed", type=_seed, default=42)
    p.add_argument("--samples", type=_positive_int, default=2)
    p.add_argument("--policies", nargs="+",
                   default=["serial", "fcfs", "ilp", "ilp-smra"],
                   choices=sorted(POLICY_FACTORIES) + ["all"])
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="worker processes for group execution and "
                        "interference measurement (default: serial)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print each group's members and cycles")

    def add_stream_arguments(p, default_apps):
        """Arrival-stream options shared by run-stream and run-fleet.

        Every random choice (queue mix, Poisson/bursty gaps) derives
        from ``--seed``, so a scenario is reproducible from its command
        line alone; rates and gaps reject non-positive values up front.
        """
        p.add_argument("--apps", type=_positive_int, default=default_apps,
                       help=f"stream length (default {default_apps})")
        p.add_argument("--arrival", default="poisson",
                       choices=["poisson", "bursty", "batch"],
                       help="arrival process (default poisson)")
        p.add_argument("--trace", default=None,
                       help="replay a '<cycle> <benchmark>' trace file "
                            "(overrides --arrival/--apps)")
        p.add_argument("--mean-gap", type=_positive_float, default=5000.0,
                       help="mean Poisson inter-arrival gap in cycles")
        p.add_argument("--burst-size", type=_positive_int, default=8)
        p.add_argument("--burst-gap", type=_positive_float, default=50000.0,
                       help="mean quiet gap between bursts in cycles")
        p.add_argument("--nc", type=int, default=2, choices=(2, 3),
                       help="concurrent applications per group")
        p.add_argument("--seed", type=_seed, default=42,
                       help="seed for the stream mix and arrival gaps "
                            "(default 42)")
        p.add_argument("--scale", type=_positive_float, default=1.0,
                       help="kernel scale factor (smaller = faster runs)")
        p.add_argument("--synthetic-fraction", type=_fraction, default=0.5,
                       help="fraction of stream apps drawn from the "
                            "synthetic generator (rest are Rodinia)")
        p.add_argument("--samples", type=_positive_int, default=1,
                       help="benchmark pairs per class pair for the "
                            "interference matrix")

    p = sub.add_parser("run-stream",
                       help="run an online arrival stream under policies")
    add_stream_arguments(p, default_apps=50)
    p.add_argument("--policies", nargs="+",
                   default=["fcfs", "backfill", "ilp"],
                   choices=sorted(ONLINE_POLICY_FACTORIES))
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="worker processes for profiling/interference")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print the scheduled timeline per policy")

    p = sub.add_parser("run-fleet",
                       help="drain one arrival stream across a device fleet")
    add_stream_arguments(p, default_apps=200)
    p.add_argument("--devices", type=_positive_int, default=4,
                   help="number of simulated devices (default 4)")
    p.add_argument("--placement", nargs="+",
                   default=["round-robin", "least-loaded", "interference"],
                   choices=sorted(PLACEMENT_FACTORIES),
                   help="placement policies to compare (default: all)")
    p.add_argument("--policy", default="fcfs",
                   choices=sorted(ONLINE_POLICY_FACTORIES),
                   help="per-device online policy (default fcfs)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="worker processes for same-instant group "
                        "simulations and profiling")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print the per-device breakdown per placement")

    p = sub.add_parser("scalability", help="IPC vs SM count sweep")
    p.add_argument("benchmarks", nargs="*")
    p.add_argument("--sms", type=int, nargs="+",
                   default=[10, 15, 20, 25, 30, 60])

    return parser


COMMANDS = {
    "list": cmd_list,
    "profile": cmd_profile,
    "classify": cmd_classify,
    "interference": cmd_interference,
    "run-queue": cmd_run_queue,
    "run-stream": cmd_run_stream,
    "run-fleet": cmd_run_fleet,
    "scalability": cmd_scalability,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""run_scenario tests: dispatch, normalization, determinism, provenance.

Scenarios here run on the ``small-test`` device configuration (or
heavily scaled kernels) so the suite stays fast; the engines underneath
are the same ones the full-scale CLI uses.
"""

import json

import pytest

from repro.api import (DeviceSpec, ExecutionSpec, PlacementSpec,
                       PolicySpec, RunResult, Scenario, WorkloadSpec,
                       run_scenario)
from repro.gpusim import ENGINE_VERSION
from repro.runtime import ParallelExecutor


def small_queue_scenario(policy="fcfs", seed=9):
    return Scenario(
        kind="queue",
        workload=WorkloadSpec(source="stream", apps=4,
                              synthetic_fraction=0.0, scale=0.1,
                              seed=seed),
        policy=PolicySpec(name=policy, nc=2),
        devices=DeviceSpec(config="small-test"))


def small_stream_scenario(seed=3, arrival="poisson", fraction=0.5):
    return Scenario(
        kind="stream",
        workload=WorkloadSpec(source="stream", apps=4,
                              synthetic_fraction=fraction, scale=0.1,
                              seed=seed, arrival=arrival, mean_gap=800.0,
                              burst_size=2, burst_gap=1500.0),
        policy=PolicySpec(name="fcfs", nc=2),
        devices=DeviceSpec(config="small-test"))


def small_fleet_scenario(seed=5):
    return Scenario(
        kind="fleet",
        workload=WorkloadSpec(source="stream", apps=6,
                              synthetic_fraction=0.0, scale=0.1,
                              seed=seed, arrival="poisson",
                              mean_gap=500.0),
        policy=PolicySpec(name="fcfs", nc=2),
        placement=PlacementSpec(name="least-loaded"),
        devices=DeviceSpec(count=2, config="small-test"))


class TestQueueDispatch:
    def test_matches_legacy_run_queue(self):
        from repro.core import FCFSPolicy, make_context, run_queue
        from repro.gpusim import small_test_config
        from repro.workloads import RODINIA_SPECS, stream_queue

        result = run_scenario(small_queue_scenario())

        queue = stream_queue(4, seed=9, synthetic_fraction=0.0, scale=0.1)
        ctx = make_context(small_test_config(),
                           suite=dict(RODINIA_SPECS))
        legacy = run_queue(queue, FCFSPolicy(2), ctx)

        assert result.metrics["policy"] == legacy.policy
        assert result.metrics["total_cycles"] == legacy.total_cycles
        assert result.metrics["total_instructions"] == \
            legacy.total_instructions
        assert result.metrics["device_throughput"] == \
            legacy.device_throughput
        assert [g["members"] for g in result.groups] == \
            [g.members for g in legacy.groups]

    def test_queue_timeline_is_back_to_back(self):
        result = run_scenario(small_queue_scenario())
        start = 0
        for group in result.groups:
            assert group["start_cycle"] == start
            start += group["cycles"]
        assert start == result.metrics["makespan"]
        # App records live on the same absolute timeline as the groups
        # (the stream/fleet convention): finishes fall inside their
        # group's window and the last finish is the makespan.
        for rec in result.apps:
            group = result.groups[rec["group_index"]]
            assert rec["arrival_cycle"] == 0
            assert rec["start_cycle"] == group["start_cycle"]
            assert group["start_cycle"] < rec["finish_cycle"] \
                <= group["start_cycle"] + group["cycles"]
        assert max(r["finish_cycle"] for r in result.apps) == \
            result.metrics["makespan"]

    def test_every_app_recorded_once(self):
        result = run_scenario(small_queue_scenario())
        names = [a["name"] for a in result.apps]
        assert len(names) == 4 and len(set(names)) == 4


class TestStreamDispatch:
    def test_records_and_metrics(self):
        result = run_scenario(small_stream_scenario())
        assert result.kind == "stream"
        assert result.devices is None
        assert result.metrics["apps"] == 4 == len(result.apps)
        for rec in result.apps:
            assert rec["arrival_cycle"] <= rec["start_cycle"] \
                <= rec["finish_cycle"]
            assert rec["solo_cycles"] > 0
        assert result.metrics["antt"] >= 1.0

    def test_trace_source(self, tmp_path):
        trace = tmp_path / "t.txt"
        trace.write_text("0 LUD\n500 NN\n")
        scenario = Scenario(
            kind="stream",
            workload=WorkloadSpec(source="trace", trace=str(trace),
                                  scale=0.1, seed=0),
            policy=PolicySpec(name="fcfs", nc=2),
            devices=DeviceSpec(config="small-test"))
        result = run_scenario(scenario)
        assert sorted(a["name"] for a in result.apps) == ["LUD", "NN"]

    def test_empty_trace_rejected(self, tmp_path):
        trace = tmp_path / "empty.txt"
        trace.write_text("# nothing\n")
        scenario = Scenario(
            kind="stream",
            workload=WorkloadSpec(source="trace", trace=str(trace)),
            policy=PolicySpec(name="fcfs", nc=2))
        with pytest.raises(ValueError, match="empty"):
            run_scenario(scenario)


class TestFleetDispatch:
    def test_per_device_breakdown(self):
        result = run_scenario(small_fleet_scenario())
        assert result.kind == "fleet"
        assert [d["device_id"] for d in result.devices] == [0, 1]
        assert sum(d["apps_served"] for d in result.devices) == 6
        served = {a["device"] for a in result.apps}
        assert served <= {0, 1}
        assert len(result.metrics["per_device_utilization"]) == 2
        assert result.metrics["placement"] == "least-loaded"


class TestDeterminism:
    def test_identical_scenario_json_reproduces_identical_results(self):
        # The seed-threading guarantee, end-to-end: one scenario JSON
        # (synthetic mix + Poisson gaps + distribution shuffle all
        # derived from workload.seed) → bit-identical result JSON.
        text = small_stream_scenario(arrival="poisson",
                                     fraction=0.5).to_json()
        first = run_scenario(Scenario.from_json(text)).to_json()
        second = run_scenario(Scenario.from_json(text)).to_json()
        assert first == second

    def test_bursty_and_distribution_seeds_thread_through(self):
        bursty = small_stream_scenario(arrival="bursty", fraction=0.5)
        assert run_scenario(bursty).to_json() == \
            run_scenario(bursty).to_json()
        dist = Scenario(
            kind="queue",
            workload=WorkloadSpec(source="distribution",
                                  distribution="equal", length=4,
                                  scale=0.1, seed=13),
            policy=PolicySpec(name="fcfs", nc=2),
            devices=DeviceSpec(config="small-test"))
        assert run_scenario(dist).to_json() == \
            run_scenario(dist).to_json()

    def test_different_seed_changes_results(self):
        a = run_scenario(small_stream_scenario(seed=1, fraction=0.5))
        b = run_scenario(small_stream_scenario(seed=2, fraction=0.5))
        assert a.to_json() != b.to_json()

    def test_parallel_executor_is_bit_identical(self):
        scenario = small_fleet_scenario()
        serial = run_scenario(scenario).to_json()
        with ParallelExecutor(2) as executor:
            parallel = run_scenario(scenario, executor=executor).to_json()
        assert serial == parallel

    def test_scenario_workers_field_does_not_change_results(self):
        scenario = small_fleet_scenario()
        data = scenario.to_dict()
        data["execution"]["workers"] = 2
        workers2 = Scenario.from_dict(data)
        assert run_scenario(scenario).to_json() == \
            run_scenario(workers2).to_json()


class TestResultSchema:
    def test_provenance_block(self):
        scenario = small_stream_scenario()
        result = run_scenario(scenario)
        prov = result.provenance
        assert prov["engine_version"] == ENGINE_VERSION
        assert prov["spec_hash"] == scenario.spec_hash()
        assert prov["seed"] == scenario.workload.seed
        assert prov["schema_version"] >= 1
        assert prov["repro_version"]

    def test_embedded_scenario_round_trips(self):
        scenario = small_fleet_scenario()
        result = run_scenario(scenario)
        assert Scenario.from_dict(result.scenario) == scenario

    def test_result_json_round_trips(self):
        result = run_scenario(small_queue_scenario())
        data = json.loads(result.to_json())
        rebuilt = RunResult.from_dict(data)
        assert rebuilt.to_json() == result.to_json()

    def test_result_from_dict_is_strict(self):
        data = json.loads(run_scenario(small_queue_scenario()).to_json())
        data["extra"] = 1
        with pytest.raises(ValueError, match="extra"):
            RunResult.from_dict(data)
        del data["extra"]
        del data["provenance"]
        with pytest.raises(ValueError, match="provenance"):
            RunResult.from_dict(data)

"""SpeculationSpec schema + end-to-end byte-identity of results.

The scenario layer's contract: ``speculation`` is pure execution
strategy.  A scenario's identity (``spec_hash``), its serialized form
with ``kind="none"``, and — the expensive half of this file — the
canonical result JSON of every committed fleet example are all
independent of the speculation kind and the worker count.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.api import ExecutionSpec, Scenario, SpeculationSpec, run_scenario

SCENARIO_DIR = (pathlib.Path(__file__).resolve().parents[2]
                / "examples" / "scenarios")

# The three fleet examples: homogeneous, heterogeneous (per-device
# configs), and faults + admission (rollback × requeue under run-ahead).
FLEET_EXAMPLES = ["fleet_small.json", "fleet_hetero.json",
                  "fleet_faults.json"]


def with_speculation(scenario, workers=1, **spec_kwargs):
    execution = dataclasses.replace(
        scenario.execution, workers=workers,
        speculation=SpeculationSpec(**spec_kwargs) if spec_kwargs else None)
    return dataclasses.replace(scenario, execution=execution)


class TestSpeculationSpecSchema:
    def test_defaults_canonicalize_away(self):
        execution = ExecutionSpec(speculation=SpeculationSpec())
        assert execution.speculation is None
        assert execution == ExecutionSpec()
        assert "speculation" not in execution.to_dict()

    def test_none_kind_serializes_byte_identically(self):
        given = ExecutionSpec.from_dict(
            {"workers": 2, "speculation": {"kind": "none"}})
        absent = ExecutionSpec.from_dict({"workers": 2})
        assert json.dumps(given.to_dict()) == json.dumps(absent.to_dict())

    def test_full_spec_round_trips_losslessly(self):
        spec = SpeculationSpec(kind="full", depth=3, commit_check=True)
        execution = ExecutionSpec(speculation=spec)
        decoded = ExecutionSpec.from_dict(execution.to_dict())
        assert decoded == execution
        assert decoded.speculation == spec

    def test_unknown_kind_rejected_with_choices(self):
        with pytest.raises(ValueError, match="full"):
            SpeculationSpec(kind="warp-drive")

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError, match="depth"):
            SpeculationSpec(kind="groups", depth=0)
        with pytest.raises(ValueError, match="depth"):
            SpeculationSpec(kind="groups", depth=True)

    def test_bad_commit_check_rejected(self):
        with pytest.raises(ValueError, match="commit_check"):
            SpeculationSpec(kind="groups", commit_check="yes")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            SpeculationSpec.from_dict({"kind": "full", "dept": 3})

    def test_queue_scenarios_reject_speculation(self):
        scenario = Scenario.from_json(
            (SCENARIO_DIR / "queue_paper.json").read_text())
        with pytest.raises(ValueError, match="queue"):
            with_speculation(scenario, kind="full")

    def test_spec_hash_ignores_speculation(self):
        scenario = Scenario.from_json(
            (SCENARIO_DIR / "fleet_small.json").read_text())
        assert with_speculation(scenario, workers=4, kind="full",
                                commit_check=True).spec_hash() \
            == scenario.spec_hash()


class TestResultByteIdentity:
    """The acceptance gate: every committed fleet example produces
    byte-identical canonical result JSON with speculation ``full`` —
    commit-checked — at workers 1 and 4, equal to speculation off."""

    @pytest.mark.parametrize("name", FLEET_EXAMPLES)
    def test_fleet_examples_identical_on_off_w1_w4(self, name):
        scenario = Scenario.from_json((SCENARIO_DIR / name).read_text())
        baseline = run_scenario(with_speculation(scenario)).to_json()
        for workers in (1, 4):
            run = with_speculation(scenario, workers=workers,
                                   kind="full", commit_check=True)
            result = run_scenario(run)
            assert result.to_json() == baseline, (name, workers)
            # Counters ride next to the result, never inside it.
            assert "speculation" not in json.loads(result.to_json())
            assert result.speculation is not None
            assert result.speculation["windows"] > 0

    def test_counters_deterministic_across_workers(self):
        scenario = Scenario.from_json(
            (SCENARIO_DIR / "fleet_faults.json").read_text())
        counters = [
            run_scenario(with_speculation(scenario, workers=w, kind="full",
                                          commit_check=True)).speculation
            for w in (1, 4)]
        assert counters[0] == counters[1]

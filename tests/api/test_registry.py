"""Registry tests: registration, lookup, and error quality."""

import pytest

from repro.api import BUILTIN_KINDS, REGISTRY, Registry, RegistryError


class TestRegistration:
    def test_direct_and_decorator_registration(self):
        reg = Registry()
        reg.register("widgets", "plain", lambda: "plain-widget")

        @reg.register("widgets", "fancy")
        def make_fancy():
            return "fancy-widget"

        assert reg.create("widgets", "plain") == "plain-widget"
        assert reg.create("widgets", "fancy") == "fancy-widget"
        assert reg.names("widgets") == ["fancy", "plain"]
        assert make_fancy() == "fancy-widget"  # decorator returns it

    def test_duplicate_name_rejected(self):
        reg = Registry()
        reg.register("widgets", "w", lambda: 1)
        with pytest.raises(RegistryError, match="already registered"):
            reg.register("widgets", "w", lambda: 2)

    def test_non_callable_factory_rejected(self):
        reg = Registry()
        with pytest.raises(RegistryError, match="callable"):
            reg.register("widgets", "w", 42)

    def test_empty_kind_or_name_rejected(self):
        reg = Registry()
        with pytest.raises(RegistryError):
            reg.register("", "w", lambda: 1)
        with pytest.raises(RegistryError):
            reg.register("widgets", "", lambda: 1)

    def test_contains(self):
        reg = Registry()
        reg.register("widgets", "w", lambda: 1)
        assert ("widgets", "w") in reg
        assert ("widgets", "x") not in reg
        assert ("gadgets", "w") not in reg


class TestLookupErrors:
    def test_unknown_kind_lists_known_kinds(self):
        reg = Registry()
        reg.register("widgets", "w", lambda: 1)
        with pytest.raises(RegistryError, match="widgets"):
            reg.names("gadgets")

    def test_registry_error_is_value_error(self):
        # The decode/validation contract: callers catch ValueError.
        assert issubclass(RegistryError, ValueError)

    def test_typo_suggests_nearest_match(self):
        # Golden error-message: a typo'd policy name must read as a
        # typo, naming the nearest registered policy.
        with pytest.raises(RegistryError) as err:
            REGISTRY.get("online-policies", "backfil")
        message = str(err.value)
        assert message.startswith(
            "unknown online-policy 'backfil'; did you mean 'backfill'?")
        assert "backfill-smra" in message  # the registered list is shown

    def test_no_suggestion_for_distant_names(self):
        with pytest.raises(RegistryError) as err:
            REGISTRY.get("placements", "zzzzzz")
        assert "did you mean" not in str(err.value)


class TestBuiltins:
    def test_all_builtin_kinds_populated(self):
        for kind in BUILTIN_KINDS:
            assert REGISTRY.names(kind), f"no registrations for {kind}"
        assert set(BUILTIN_KINDS) <= set(REGISTRY.kinds())

    def test_policy_kinds_share_keys(self):
        # Every batch policy is liftable online, so the online kind is
        # a superset of the batch kind.
        assert set(REGISTRY.names("policies")) <= \
            set(REGISTRY.names("online-policies"))

    def test_benchmark_factories_scale(self):
        spec = REGISTRY.create("benchmarks", "LUD")
        scaled = REGISTRY.create("benchmarks", "LUD", 0.5)
        assert scaled.instr_per_warp == spec.instr_per_warp // 2

    def test_gpu_config_factories(self):
        assert REGISTRY.create("gpu-configs", "gtx480").num_sms == 60
        assert REGISTRY.create("gpu-configs", "small-test").num_sms == 4

    def test_stream_factories_accept_standard_params(self):
        queue = [("A", REGISTRY.create("benchmarks", "LUD", 0.1))]
        for name in REGISTRY.names("streams"):
            arrivals = REGISTRY.create(
                "streams", name, queue, mean_gap=100.0, burst_size=2,
                burst_gap=200.0, seed=3)
            assert [a.name for a in arrivals] == ["A"]

"""Every committed example scenario must decode and round-trip.

The CI smoke jobs exercise one scenario end to end; this parametrized
test loads *all* of ``examples/scenarios/*.json`` through the strict
``Scenario.from_dict`` decoder so schema drift (a renamed field, a
retired registry name, a stale ``schema_version``) fails tier-1
immediately instead of surfacing only in the smoke job that happens to
touch the broken file.  Campaign documents (recognized by their
``base`` key) route through ``CampaignSpec`` the same way.
"""

import json
import pathlib

import pytest

from repro.api import CampaignSpec, Scenario

SCENARIO_DIR = (pathlib.Path(__file__).resolve().parents[2]
                / "examples" / "scenarios")
ALL_FILES = sorted(SCENARIO_DIR.glob("*.json"))
CAMPAIGN_FILES = [p for p in ALL_FILES
                  if "base" in json.loads(p.read_text())]
SCENARIO_FILES = [p for p in ALL_FILES if p not in CAMPAIGN_FILES]


def test_scenario_examples_exist():
    # A glob that silently matches nothing would turn the parametrized
    # tests below into a vacuous pass.
    assert len(SCENARIO_FILES) >= 4
    assert len(CAMPAIGN_FILES) >= 1


@pytest.mark.parametrize("path", SCENARIO_FILES,
                         ids=lambda p: p.name)
def test_example_scenario_round_trips(path):
    scenario = Scenario.from_json(path.read_text())
    # Lossless dict and JSON round-trips through the strict decoder.
    assert Scenario.from_dict(scenario.to_dict()) == scenario
    assert Scenario.from_json(scenario.to_json()) == scenario
    # The canonical re-encoding is stable (a second pass is a fixpoint).
    assert Scenario.from_json(scenario.to_json()).to_json() == \
        scenario.to_json()
    # Committed files carry an explicit schema_version and a name, so
    # results stay attributable.
    data = json.loads(path.read_text())
    assert "schema_version" in data
    assert scenario.name


@pytest.mark.parametrize("path", SCENARIO_FILES,
                         ids=lambda p: p.name)
def test_example_scenario_spec_hash_is_stable(path):
    scenario = Scenario.from_json(path.read_text())
    assert scenario.spec_hash() == \
        Scenario.from_json(scenario.to_json()).spec_hash()


@pytest.mark.parametrize("path", CAMPAIGN_FILES,
                         ids=lambda p: p.name)
def test_example_campaign_round_trips(path):
    campaign = CampaignSpec.from_json(path.read_text())
    assert CampaignSpec.from_dict(campaign.to_dict()) == campaign
    assert CampaignSpec.from_json(campaign.to_json()) == campaign
    assert CampaignSpec.from_json(campaign.to_json()).to_json() == \
        campaign.to_json()
    data = json.loads(path.read_text())
    assert "schema_version" in data
    assert campaign.name
    assert campaign.spec_hash() == \
        CampaignSpec.from_json(campaign.to_json()).spec_hash()

"""TelemetrySpec schema + end-to-end determinism of telemetry.

The two contracts this file pins:

* **Identity** — telemetry is observation, never computation: a
  scenario's ``spec_hash`` and its canonical result JSON are
  byte-identical with telemetry off vs any kind, at workers 1 and 4,
  for every committed fleet example (and with speculation ``full``
  layered on top).
* **Determinism of the observations themselves** — the trace event
  stream and the metrics registry snapshot are worker-count-invariant:
  ``--workers 1`` and ``--workers 4`` record byte-identical JSONL
  traces and equal ``to_dict()`` registries.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.api import (ExecutionSpec, Scenario, SpeculationSpec,
                       TelemetrySpec, run_scenario)
from repro.obs import export_jsonl, make_telemetry

SCENARIO_DIR = (pathlib.Path(__file__).resolve().parents[2]
                / "examples" / "scenarios")

FLEET_EXAMPLES = ["fleet_small.json", "fleet_hetero.json",
                  "fleet_faults.json"]


def load(name):
    return Scenario.from_json((SCENARIO_DIR / name).read_text())


def with_workers(scenario, workers, speculation=None):
    execution = dataclasses.replace(scenario.execution, workers=workers,
                                    speculation=speculation)
    return dataclasses.replace(scenario, execution=execution)


class TestTelemetrySpecSchema:
    def test_none_kind_canonicalizes_away(self):
        execution = ExecutionSpec(telemetry=TelemetrySpec(kind="none"))
        assert execution.telemetry is None
        assert execution == ExecutionSpec()
        assert "telemetry" not in execution.to_dict()

    def test_none_kind_serializes_byte_identically(self):
        given = ExecutionSpec.from_dict(
            {"workers": 2, "telemetry": {"kind": "none"}})
        absent = ExecutionSpec.from_dict({"workers": 2})
        assert json.dumps(given.to_dict()) == json.dumps(absent.to_dict())

    def test_full_spec_round_trips_losslessly(self):
        spec = TelemetrySpec(kind="full", sinks=("jsonl", "chrome"),
                             path="/tmp/run")
        execution = ExecutionSpec(telemetry=spec)
        decoded = ExecutionSpec.from_dict(execution.to_dict())
        assert decoded == execution
        assert decoded.telemetry == spec

    def test_unknown_kind_rejected_with_choices(self):
        with pytest.raises(ValueError, match="full"):
            TelemetrySpec(kind="x-ray")

    def test_unknown_sink_rejected(self):
        with pytest.raises(ValueError, match="sink"):
            TelemetrySpec(kind="trace", sinks=("xml",), path="/tmp/x")

    def test_sinks_require_path_and_vice_versa(self):
        with pytest.raises(ValueError, match="path"):
            TelemetrySpec(kind="trace", sinks=("jsonl",))
        with pytest.raises(ValueError, match="sink"):
            TelemetrySpec(kind="trace", path="/tmp/x")

    def test_sinks_require_a_tracing_kind(self):
        with pytest.raises(ValueError, match="trac"):
            TelemetrySpec(kind="metrics", sinks=("jsonl",), path="/tmp/x")

    def test_spec_hash_ignores_telemetry(self):
        scenario = load("fleet_small.json")
        traced = dataclasses.replace(
            scenario, execution=dataclasses.replace(
                scenario.execution,
                telemetry=TelemetrySpec(kind="metrics")))
        assert traced.spec_hash() == scenario.spec_hash()


class TestResultByteIdentity:
    """Telemetry on vs off never changes the canonical result JSON."""

    @pytest.mark.parametrize("name", FLEET_EXAMPLES)
    def test_fleet_examples_identical_on_off_w1_w4(self, name):
        scenario = load(name)
        baseline = run_scenario(with_workers(scenario, 1)).to_json()
        for workers in (1, 4):
            result = run_scenario(with_workers(scenario, workers),
                                  telemetry=make_telemetry("full"))
            assert result.to_json() == baseline, (name, workers)
            # The snapshot rides next to the result, never inside it.
            assert "telemetry" not in json.loads(result.to_json())
            assert result.telemetry is not None
            assert result.telemetry["events"] > 0

    def test_scenario_declared_telemetry_is_identical_too(self, tmp_path):
        scenario = load("fleet_faults.json")
        baseline = run_scenario(scenario).to_json()
        traced = dataclasses.replace(
            scenario, execution=dataclasses.replace(
                scenario.execution,
                telemetry=TelemetrySpec(kind="trace", sinks=("jsonl",),
                                        path=str(tmp_path / "t.jsonl"))))
        result = run_scenario(traced)
        assert result.to_json() == baseline
        assert (tmp_path / "t.jsonl").exists()
        # The embedded scenario never records the telemetry block (a
        # traced result file is byte-identical to a plain one).
        assert "telemetry" not in result.scenario["execution"]


class TestObservationDeterminism:
    """Traces and metrics are worker-count-invariant."""

    @pytest.mark.parametrize("name", FLEET_EXAMPLES)
    def test_trace_and_metrics_equal_w1_w4(self, name):
        scenario = load(name)
        snapshots = []
        for workers in (1, 4):
            telemetry = make_telemetry("full")
            run_scenario(with_workers(scenario, workers),
                         telemetry=telemetry)
            snapshots.append((export_jsonl(telemetry.events),
                              telemetry.metrics.to_dict()))
        assert snapshots[0][0] == snapshots[1][0], name
        assert snapshots[0][1] == snapshots[1][1], name

    def test_trace_equal_w1_w4_with_speculation_full(self):
        scenario = load("fleet_faults.json")
        spec = SpeculationSpec(kind="full", commit_check=True)
        plain = run_scenario(with_workers(scenario, 1)).to_json()
        traces = []
        for workers in (1, 4):
            telemetry = make_telemetry("full")
            result = run_scenario(
                with_workers(scenario, workers, speculation=spec),
                telemetry=telemetry)
            assert result.to_json() == plain, workers
            traces.append((export_jsonl(telemetry.events),
                           telemetry.metrics.to_dict()))
        assert traces[0] == traces[1]

    def test_metrics_count_what_the_run_did(self):
        scenario = load("fleet_small.json")
        telemetry = make_telemetry("metrics")
        result = run_scenario(scenario, telemetry=telemetry)
        metrics = telemetry.metrics.to_dict()
        assert metrics["fleet.arrivals"] == len(result.apps)
        assert metrics["fleet.launches"] == len(result.groups)
        assert metrics["device.groups"] == len(result.groups)
        assert metrics["fleet.makespan"]["value"] \
            == result.metrics["makespan"]

    def test_profile_snapshot_has_simulate_phase(self):
        scenario = load("fleet_small.json")
        telemetry = make_telemetry("profile")
        result = run_scenario(scenario, telemetry=telemetry)
        assert "simulate" in result.telemetry["profile"]
        assert result.telemetry["profile"]["simulate"]["calls"] > 0


class TestCommittedTrace:
    """The committed example trace is a golden: a fresh run reproduces
    it byte-for-byte and it lints clean."""

    TRACE = (pathlib.Path(__file__).resolve().parents[2]
             / "examples" / "traces" / "fleet_faults_trace.jsonl")

    def test_fresh_run_reproduces_committed_trace(self):
        telemetry = make_telemetry("trace")
        run_scenario(load("fleet_faults.json"), telemetry=telemetry)
        assert export_jsonl(telemetry.events) == self.TRACE.read_text()

    def test_committed_trace_lints_clean(self):
        import importlib.util
        tool = (pathlib.Path(__file__).resolve().parents[2]
                / "tools" / "validate_trace.py")
        spec = importlib.util.spec_from_file_location("validate_trace",
                                                      tool)
        lint = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(lint)
        assert lint.validate_file(str(self.TRACE)) == []

"""The ``engine-backends`` registry kind and ``ExecutionSpec.backend``.

Backend is resources-not-identity, like ``workers``: the vector backend
must produce byte-identical results to the event backend for every
scenario kind, ``spec_hash`` normalizes it away, and the default
``"event"`` serializes to no key so pre-backend scenario files
round-trip byte-identically.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.api import RunResult, Scenario, run_scenario
from repro.api.engines import engine_class
from repro.api.registry import REGISTRY, RegistryError
from repro.api.scenario import (DeviceSpec, ExecutionSpec, PlacementSpec,
                                PolicySpec, WorkloadSpec)

SCENARIO_DIR = (pathlib.Path(__file__).resolve().parents[2]
                / "examples" / "scenarios")


def _tiny_stream(**execution):
    return Scenario(
        kind="stream",
        workload=WorkloadSpec(source="stream", apps=6, scale=0.1,
                              synthetic_fraction=0.0, seed=3,
                              arrival="poisson", mean_gap=2000.0),
        policy=PolicySpec(name="fcfs", nc=2),
        execution=ExecutionSpec(**execution))


def _tiny_fleet(**execution):
    return Scenario(
        kind="fleet",
        workload=WorkloadSpec(source="stream", apps=8, scale=0.1,
                              synthetic_fraction=0.0, seed=5,
                              arrival="poisson", mean_gap=1500.0),
        policy=PolicySpec(name="fcfs", nc=2),
        placement=PlacementSpec(name="least-loaded"),
        devices=DeviceSpec(count=2),
        execution=ExecutionSpec(**execution))


def _tiny_queue(**execution):
    return Scenario(
        kind="queue",
        workload=WorkloadSpec(source="distribution", distribution="equal",
                              length=6, seed=9, scale=0.1),
        policy=PolicySpec(name="fcfs", nc=2),
        execution=ExecutionSpec(**execution))


def _strip_backend(result: RunResult) -> dict:
    """Result dict minus the one deliberate difference: provenance
    records the backend actually used (absent for the default)."""
    data = result.to_dict()
    data["provenance"].pop("backend", None)
    return data


class TestRegistry:
    def test_both_backends_registered(self):
        assert REGISTRY.names("engine-backends") == ["event", "vector"]

    def test_factories_return_engine_classes(self):
        from repro.gpusim import GPU
        from repro.gpusim.vector import VectorGPU
        assert engine_class("event") is GPU
        assert engine_class("vector") is VectorGPU

    def test_engine_class_is_memoized(self):
        assert engine_class("vector") is engine_class("vector")

    def test_did_you_mean(self):
        with pytest.raises(RegistryError, match="did you mean 'vector'"):
            REGISTRY.get("engine-backends", "vectr")

    def test_cli_lists_the_kind(self, capsys):
        from repro.cli import main
        assert main(["list", "--kind", "engine-backends"]) == 0
        out = capsys.readouterr().out
        assert "event" in out and "vector" in out


class TestExecutionSpecBackend:
    def test_default_serializes_to_no_key(self):
        assert "backend" not in ExecutionSpec().to_dict()
        assert "backend" not in ExecutionSpec(backend="event").to_dict()

    def test_non_default_round_trips(self):
        spec = ExecutionSpec(backend="vector")
        data = spec.to_dict()
        assert data["backend"] == "vector"
        assert ExecutionSpec.from_dict(data) == spec

    def test_unknown_backend_rejected_with_hint(self):
        with pytest.raises(ValueError, match="did you mean 'event'"):
            ExecutionSpec(backend="even")

    def test_backend_must_be_a_string(self):
        with pytest.raises(ValueError, match="backend"):
            ExecutionSpec(backend=1)

    def test_spec_hash_normalizes_backend_away(self):
        event = _tiny_stream()
        vector = _tiny_stream(backend="vector")
        assert event.spec_hash() == vector.spec_hash()

    def test_committed_scenarios_round_trip_byte_identically(self):
        # The canonical serialization (and hash) of every committed
        # scenario must not change because the backend field exists.
        seen = 0
        for path in sorted(SCENARIO_DIR.glob("*.json")):
            data = json.loads(path.read_text())
            if "base" in data and "grid" in data:
                continue  # a campaign spec, not a Scenario
            scenario = Scenario.from_json(path.read_text())
            assert "backend" not in scenario.to_dict()["execution"]
            assert Scenario.from_json(scenario.to_json()) == scenario
            assert scenario.to_json() == (
                Scenario.from_json(scenario.to_json()).to_json())
            seen += 1
        assert seen >= 4


class TestBackendParity:
    """Event and vector compute byte-identical results end to end."""

    @pytest.mark.parametrize("build", [_tiny_queue, _tiny_stream,
                                       _tiny_fleet])
    def test_run_results_byte_identical(self, build):
        event = run_scenario(build())
        vector = run_scenario(build(backend="vector"))
        assert vector.provenance["backend"] == "vector"
        assert "backend" not in event.provenance
        assert _strip_backend(event) == _strip_backend(vector)
        # The embedded scenario drops the backend, so even to_json of
        # the stripped dicts compares byte-equal.
        assert json.dumps(_strip_backend(event), sort_keys=True) == \
            json.dumps(_strip_backend(vector), sort_keys=True)

    def test_campaign_scenario_parity(self):
        # One committed-scenario-shaped fleet run through the campaign
        # entry scenario (fleet_small) on both backends.
        text = (SCENARIO_DIR / "fleet_small.json").read_text()
        base = Scenario.from_json(text)
        vector = dataclasses.replace(
            base, execution=dataclasses.replace(base.execution,
                                                backend="vector"))
        assert _strip_backend(run_scenario(base)) == \
            _strip_backend(run_scenario(vector))

    def test_workers_1_vs_4_byte_identical_on_vector(self):
        serial = run_scenario(_tiny_fleet(backend="vector", workers=1))
        parallel = run_scenario(_tiny_fleet(backend="vector", workers=4))
        assert serial.to_json() == parallel.to_json()

    def test_stream_workers_1_vs_4_byte_identical_on_vector(self):
        serial = run_scenario(_tiny_stream(backend="vector", workers=1))
        parallel = run_scenario(_tiny_stream(backend="vector", workers=4))
        assert serial.to_json() == parallel.to_json()

    def test_speculative_vector_matches_serial_event(self):
        from repro.api.scenario import SpeculationSpec
        spec = SpeculationSpec(kind="groups")
        event = run_scenario(_tiny_stream())
        vector = run_scenario(_tiny_stream(backend="vector",
                                           speculation=spec))
        assert _strip_backend(event) == _strip_backend(vector)


class TestProvenance:
    def test_event_backend_not_recorded(self):
        result = run_scenario(_tiny_queue())
        assert "backend" not in result.provenance
        assert "backend" not in result.scenario["execution"]

    def test_vector_backend_recorded(self):
        result = run_scenario(_tiny_queue(backend="vector"))
        assert result.provenance["backend"] == "vector"
        # The embedded scenario stays backend-free (identity, not
        # resources), so result files differ only in provenance.
        assert "backend" not in result.scenario["execution"]

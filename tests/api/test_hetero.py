"""Heterogeneous-fleet scenarios end to end: the DeviceSpec.per_device
hook drives genuinely mixed fleets through run_scenario.

Runs use the ``small-test`` / ``small-test-half`` configurations so the
suite stays fast; the dispatch path is the same one ``repro run`` takes
for a gtx480 / gtx480-half fleet.
"""

import pytest

from repro.api import (REGISTRY, DeviceSpec, PlacementSpec, PolicySpec,
                       Scenario, WorkloadSpec, run_scenario)
from repro.runtime import ParallelExecutor


def hetero_scenario(per_device=("small-test", "small-test-half"), seed=5):
    return Scenario(
        kind="fleet",
        workload=WorkloadSpec(source="stream", apps=5,
                              synthetic_fraction=0.0, scale=0.1,
                              seed=seed, arrival="poisson",
                              mean_gap=400.0),
        policy=PolicySpec(name="fcfs", nc=2),
        placement=PlacementSpec(name="least-loaded"),
        devices=DeviceSpec(count=len(per_device),
                           config=per_device[0],
                           per_device=list(per_device)))


class TestHeterogeneousDispatch:
    def test_runs_end_to_end_with_per_device_configs(self):
        result = run_scenario(hetero_scenario())
        assert result.kind == "fleet"
        assert [d["config"] for d in result.devices] == \
            ["small-test", "small-test-half"]
        assert sum(d["apps_served"] for d in result.devices) == 5
        # One identifier domain per result: the metrics join directly
        # against provenance.device_configs and devices[].config.
        assert result.metrics["per_device_config"] == \
            ["small-test", "small-test-half"]
        assert set(result.metrics["per_config_utilization"]) == \
            {"small-test", "small-test-half"}
        assert set(result.metrics["per_config_imbalance"]) == \
            {"small-test", "small-test-half"}

    def test_provenance_records_per_device_config_list(self):
        result = run_scenario(hetero_scenario())
        assert result.provenance["device_configs"] == \
            ["small-test", "small-test-half"]
        # Homogeneous runs record the broadcast list the same way.
        homo = Scenario(
            kind="fleet",
            workload=hetero_scenario().workload,
            policy=PolicySpec(name="fcfs", nc=2),
            placement=PlacementSpec(name="least-loaded"),
            devices=DeviceSpec(count=2, config="small-test"))
        assert run_scenario(homo).provenance["device_configs"] == \
            ["small-test", "small-test"]

    def test_solo_denominators_use_the_serving_devices_config(self):
        from repro.api.runner import build_arrivals
        from repro.core import shared_profiler
        scenario = hetero_scenario()
        result = run_scenario(scenario)
        specs = {a.name: a.spec for a in build_arrivals(scenario)}
        names = scenario.devices.config_names()
        for rec in result.apps:
            config = REGISTRY.create("gpu-configs", names[rec["device"]])
            expected = shared_profiler(config).profile(
                rec["name"], specs[rec["name"]]).solo_cycles
            assert rec["solo_cycles"] == expected

    def test_half_device_is_slower_on_the_same_work(self):
        # The denominators must actually differ across configs, or the
        # per-device profiling is vacuous.
        from repro.core import shared_profiler
        from ..conftest import make_tiny_spec
        spec = make_tiny_spec("probe")
        full = shared_profiler(
            REGISTRY.create("gpu-configs", "small-test"))
        half = shared_profiler(
            REGISTRY.create("gpu-configs", "small-test-half"))
        assert half.profile("probe", spec).solo_cycles > \
            full.profile("probe", spec).solo_cycles


class TestHeterogeneousDeterminism:
    def test_workers_1_vs_4_byte_identical_on_a_mixed_fleet(self):
        scenario = hetero_scenario()
        serial = run_scenario(scenario).to_json()
        with ParallelExecutor(4) as executor:
            parallel = run_scenario(scenario, executor=executor).to_json()
        assert serial == parallel

    def test_rerun_is_byte_identical(self):
        scenario = hetero_scenario(seed=8)
        assert run_scenario(scenario).to_json() == \
            run_scenario(scenario).to_json()

    def test_homogeneous_per_device_byte_equals_plain_config(self):
        # Spelling the fleet as a homogeneous per_device list must be
        # indistinguishable from the plain config path, bytes included.
        listed = hetero_scenario(per_device=("small-test", "small-test"))
        plain = Scenario(
            kind="fleet",
            workload=listed.workload,
            policy=PolicySpec(name="fcfs", nc=2),
            placement=PlacementSpec(name="least-loaded"),
            devices=DeviceSpec(count=2, config="small-test"))
        assert listed.spec_hash() == plain.spec_hash()
        assert run_scenario(listed).to_json() == \
            run_scenario(plain).to_json()

    def test_device_order_changes_results_identity(self):
        flipped = hetero_scenario(
            per_device=("small-test-half", "small-test"))
        assert flipped.spec_hash() != hetero_scenario().spec_hash()


class TestRegisteredDerivedConfigs:
    def test_gtx480_siblings_scale_sms_only(self):
        base = REGISTRY.create("gpu-configs", "gtx480")
        half = REGISTRY.create("gpu-configs", "gtx480-half")
        double = REGISTRY.create("gpu-configs", "gtx480-double")
        assert (half.num_sms, double.num_sms) == (30, 120)
        assert half.name != base.name != double.name
        for sibling in (half, double):
            assert sibling.num_partitions == base.num_partitions
            assert sibling.l2_size_kb == base.l2_size_kb
            assert sibling.dram == base.dram

    def test_small_test_half(self):
        half = REGISTRY.create("gpu-configs", "small-test-half")
        assert half.num_sms == 2
        assert half.name == "TestGPU-half"

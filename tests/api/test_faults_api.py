"""FaultSpec/AdmissionSpec and the fault path of ``run_scenario``.

The contract under test: a fault-free scenario (no spec, or the
canonicalized ``kind="none"``) serializes byte-identically to the
pre-fault engine, and a faulted scenario keeps the accounting books
balanced and stays bit-identical for any worker count.
"""

import json

import pytest

from repro.api import (AdmissionSpec, DeviceSpec, FaultSpec,
                       PlacementSpec, PolicySpec, Scenario,
                       WorkloadSpec, run_scenario)
from repro.runtime import ParallelExecutor


def fleet_scenario(faults=None, admission=None, seed=5):
    return Scenario(
        kind="fleet",
        workload=WorkloadSpec(source="stream", apps=6,
                              synthetic_fraction=0.0, scale=0.1,
                              seed=seed, arrival="poisson",
                              mean_gap=500.0),
        policy=PolicySpec(name="fcfs", nc=2),
        placement=PlacementSpec(name="least-loaded"),
        devices=DeviceSpec(count=2, config="small-test"),
        faults=faults, admission=admission)


OUTAGE = FaultSpec(kind="scheduled",
                   events=((2_000, 0, "down"), (8_000, 0, "up")))
QUEUE_CAP = AdmissionSpec(kind="queue-cap", queue_cap=2)


class TestSpecValidation:
    def test_fault_spec_round_trip(self):
        spec = FaultSpec(kind="scheduled",
                         events=[[100, 0, "down"], [200, 0, "up"]],
                         fail_prob=0.25, seed=3)
        assert spec.events == ((100, 0, "down"), (200, 0, "up"))
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()

    def test_admission_spec_round_trip(self):
        spec = AdmissionSpec(kind="queue-cap", queue_cap=4, mode="defer",
                             defer_gap=100, max_defers=1)
        assert AdmissionSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="mtbf"):
            FaultSpec(kind="mtfb")

    def test_scheduled_needs_events(self):
        with pytest.raises(ValueError, match="at least one"):
            FaultSpec(kind="scheduled")

    def test_events_only_valid_for_scheduled(self):
        with pytest.raises(ValueError, match="only valid"):
            FaultSpec(kind="mtbf", events=[[100, 0, "down"]])

    def test_transient_needs_positive_fail_prob(self):
        with pytest.raises(ValueError, match="fail_prob"):
            FaultSpec(kind="transient", fail_prob=0.0)

    def test_faults_rejected_on_non_fleet_scenario(self):
        with pytest.raises(ValueError, match="fleet"):
            Scenario(
                kind="stream",
                workload=WorkloadSpec(source="stream", apps=4,
                                      synthetic_fraction=0.0, scale=0.1,
                                      seed=3, arrival="poisson",
                                      mean_gap=800.0),
                policy=PolicySpec(name="fcfs", nc=2),
                devices=DeviceSpec(config="small-test"),
                faults=OUTAGE)

    def test_all_down_at_zero_rejected_at_load_time(self):
        bad = FaultSpec(kind="scheduled",
                        events=((0, 0, "down"), (0, 1, "down")))
        with pytest.raises(ValueError, match="DOWN at cycle 0"):
            fleet_scenario(faults=bad)

    def test_out_of_range_device_rejected_at_load_time(self):
        bad = FaultSpec(kind="scheduled", events=((100, 7, "down"),))
        with pytest.raises(ValueError, match="did you mean device 1"):
            fleet_scenario(faults=bad)


class TestNoneCanonicalization:
    def test_kind_none_canonicalizes_to_absent(self):
        plain = fleet_scenario()
        armed = fleet_scenario(faults=FaultSpec(kind="none"),
                               admission=AdmissionSpec(kind="none"))
        assert armed.faults is None and armed.admission is None
        assert armed == plain
        assert armed.to_json() == plain.to_json()
        assert armed.spec_hash() == plain.spec_hash()
        assert "faults" not in json.loads(plain.to_json())

    def test_round_trip_keeps_fault_specs(self):
        scenario = fleet_scenario(faults=OUTAGE, admission=QUEUE_CAP)
        again = Scenario.from_json(scenario.to_json())
        assert again == scenario
        assert again.faults == OUTAGE
        assert again.admission == QUEUE_CAP


class TestFaultRuns:
    def test_none_specs_do_not_change_the_result(self):
        plain = run_scenario(fleet_scenario()).to_json()
        armed = run_scenario(fleet_scenario(
            faults=FaultSpec(kind="none"),
            admission=AdmissionSpec(kind="none"))).to_json()
        assert armed == plain
        data = json.loads(plain)
        assert "availability" not in data["metrics"]
        assert "retries" not in data["apps"][0]
        assert "lost_cycles" not in data["devices"][0]

    def test_outage_run_accounting_and_shape(self):
        result = run_scenario(fleet_scenario(faults=OUTAGE,
                                             admission=QUEUE_CAP))
        m = result.metrics
        assert m["served"] + m["rejected"] == m["arrivals"] == 6
        assert m["served"] == len(result.apps)
        assert m["fault_events"] == 2
        assert m["availability_timeline"] == [[0, 2], [2_000, 1],
                                              [8_000, 2]]
        assert 0.0 < m["availability"] < 1.0
        assert m["goodput_cycles"] == sum(
            d["busy_cycles"] - d["lost_cycles"] for d in result.devices)
        assert m["retries_total"] >= 1
        assert any(a["retries"] > 0 for a in result.apps)
        assert result.provenance["faults"] == "scheduled"
        assert result.provenance["admission"] == "queue-cap"
        assert sum(d["failed_groups"] for d in result.devices) \
            == m["failed_groups"]

    def test_deadline_admission_reports_attainment(self):
        result = run_scenario(fleet_scenario(
            admission=AdmissionSpec(kind="deadline",
                                    deadline_cycles=60_000)))
        assert 0.0 <= result.metrics["deadline_attainment"] <= 1.0
        assert result.provenance["admission"] == "deadline"

    def test_total_degradation_drains_gracefully(self):
        dead = FaultSpec(kind="scheduled",
                         events=((10, 0, "down"), (10, 1, "down")))
        result = run_scenario(fleet_scenario(faults=dead))
        m = result.metrics
        assert not result.apps
        assert m["served"] == 0 and m["rejected"] == m["arrivals"] == 6
        assert m["rejected_by_reason"] == {"no-device": 6}
        assert m["goodput_cycles"] == 0
        assert m["availability_timeline"][-1] == [10, 0]

    def test_workers_1_vs_4_byte_identical(self):
        scenario = fleet_scenario(
            faults=FaultSpec(kind="mtbf", mtbf=20_000.0, mttr=5_000.0,
                             horizon=40_000, seed=6),
            admission=QUEUE_CAP)
        serial = run_scenario(scenario).to_json()
        with ParallelExecutor(4) as executor:
            parallel = run_scenario(scenario,
                                    executor=executor).to_json()
        assert serial == parallel

    def test_faulted_run_is_reproducible(self):
        scenario = fleet_scenario(faults=OUTAGE, admission=QUEUE_CAP)
        assert run_scenario(scenario).to_json() == \
            run_scenario(Scenario.from_json(scenario.to_json())).to_json()

"""Sweep expansion tests: grids, dotted paths, determinism."""

import pytest

from repro.api import Scenario, expand_grid, load_sweep, point_filename


def base_dict():
    return {
        "kind": "stream",
        "name": "sweep-base",
        "workload": {"source": "stream", "apps": 3,
                     "synthetic_fraction": 0.0, "scale": 0.1,
                     "seed": 1, "arrival": "batch"},
        "policy": {"name": "fcfs", "nc": 2},
    }


class TestExpandGrid:
    def test_empty_grid_yields_base(self):
        points = expand_grid(base_dict(), {})
        assert len(points) == 1
        overrides, scenario = points[0]
        assert overrides == {}
        assert scenario == Scenario.from_dict(base_dict())

    def test_cartesian_product_in_sorted_key_order(self):
        points = expand_grid(base_dict(), {
            "workload.seed": [1, 2],
            "policy.name": ["fcfs", "serial"],
        })
        assert len(points) == 4
        # Keys sorted ("policy.name" < "workload.seed"), last varies
        # fastest.
        assert [p[0] for p in points] == [
            {"policy.name": "fcfs", "workload.seed": 1},
            {"policy.name": "fcfs", "workload.seed": 2},
            {"policy.name": "serial", "workload.seed": 1},
            {"policy.name": "serial", "workload.seed": 2},
        ]
        assert points[3][1].policy.name == "serial"
        assert points[3][1].workload.seed == 2

    def test_dotted_path_overrides_nested_value(self):
        (_, scenario), = expand_grid(base_dict(),
                                     {"workload.scale": [0.5]})
        assert scenario.workload.scale == 0.5

    def test_invalid_point_fails_like_a_scenario(self):
        with pytest.raises(ValueError, match="seed"):
            expand_grid(base_dict(), {"workload.seed": [-1]})

    def test_bad_grid_shapes_rejected(self):
        with pytest.raises(ValueError, match="list"):
            expand_grid(base_dict(), {"workload.seed": 3})
        with pytest.raises(ValueError, match="list"):
            expand_grid(base_dict(), {"workload.seed": "abc"})
        with pytest.raises(ValueError, match="empty"):
            expand_grid(base_dict(), {"workload.seed": []})
        with pytest.raises(ValueError, match="non-object"):
            expand_grid(base_dict(), {"kind.sub": [1]})


class TestLoadSweep:
    def test_parses_base_and_grid(self):
        import json
        points = load_sweep(json.dumps(
            {"base": base_dict(), "grid": {"workload.seed": [4, 5]}}))
        assert [p[1].workload.seed for p in points] == [4, 5]

    def test_requires_base(self):
        with pytest.raises(ValueError, match="base"):
            load_sweep("{}")

    def test_rejects_unknown_keys_and_bad_json(self):
        with pytest.raises(ValueError, match="grids"):
            load_sweep('{"base": {}, "grids": {}}')
        with pytest.raises(ValueError, match="JSON"):
            load_sweep("not json")


class TestPointFilename:
    def test_deterministic_and_sanitized(self):
        scenario = Scenario.from_dict(
            {**base_dict(), "name": "weird name/with:chars"})
        name = point_filename(scenario, 3)
        assert name == point_filename(scenario, 3)
        assert name.startswith("weird-name-with-chars_0003_")
        assert name.endswith(".json")
        assert "/" not in name and ":" not in name

    def test_falls_back_to_kind(self):
        scenario = Scenario.from_dict({**base_dict(), "name": ""})
        assert point_filename(scenario, 0).startswith("stream_0000_")

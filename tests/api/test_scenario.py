"""Scenario tree tests: validation, round-trip, identity."""

import json

import pytest

from repro.api import (SCHEMA_VERSION, DeviceSpec, ExecutionSpec,
                       PlacementSpec, PolicySpec, Scenario, WorkloadSpec)


def queue_scenario(**overrides):
    base = dict(kind="queue",
                workload=WorkloadSpec(source="distribution",
                                      distribution="M", length=8, seed=7),
                policy=PolicySpec(name="ilp", nc=2),
                execution=ExecutionSpec(samples_per_pair=2))
    base.update(overrides)
    return Scenario(**base)


def stream_scenario(**workload_overrides):
    workload = dict(source="stream", apps=5, synthetic_fraction=0.5,
                    scale=0.2, seed=3, arrival="poisson", mean_gap=900.0)
    workload.update(workload_overrides)
    return Scenario(kind="stream", workload=WorkloadSpec(**workload),
                    policy=PolicySpec(name="backfill", nc=2))


def fleet_scenario():
    return Scenario(kind="fleet",
                    workload=WorkloadSpec(source="stream", apps=6,
                                          scale=0.1, seed=5,
                                          arrival="bursty", burst_size=3),
                    policy=PolicySpec(name="fcfs", nc=2),
                    placement=PlacementSpec(name="interference"),
                    devices=DeviceSpec(count=3),
                    name="round trip me")


class TestRoundTrip:
    @pytest.mark.parametrize("make", [queue_scenario, stream_scenario,
                                      fleet_scenario])
    def test_dict_round_trip_is_lossless(self, make):
        scenario = make()
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_json_round_trip_is_lossless(self):
        scenario = fleet_scenario()
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_to_dict_carries_schema_version(self):
        assert queue_scenario().to_dict()["schema_version"] == \
            SCHEMA_VERSION

    def test_per_device_list_normalizes_to_tuple(self):
        spec = DeviceSpec(count=2, config="gtx480",
                          per_device=["gtx480", "gtx480-half"])
        assert spec.per_device == ("gtx480", "gtx480-half")
        assert DeviceSpec.from_dict(spec.to_dict()) == spec

    def test_homogeneous_per_device_canonicalizes_to_config(self):
        # The two spellings of a homogeneous fleet are one spec: same
        # equality, same serialization, same spec_hash downstream.
        listed = DeviceSpec(count=2, config="gtx480",
                            per_device=["gtx480", "gtx480"])
        plain = DeviceSpec(count=2, config="gtx480")
        assert listed == plain
        assert listed.per_device is None
        assert listed.to_dict() == plain.to_dict()
        # ... even when the list disagrees with the config field.
        relabeled = DeviceSpec(count=2, config="gtx480",
                               per_device=["gtx480-half", "gtx480-half"])
        assert relabeled.config == "gtx480-half"
        assert relabeled.per_device is None

    def test_mixed_per_device_round_trips(self):
        scenario = Scenario(
            kind="fleet",
            workload=WorkloadSpec(source="stream", apps=4),
            policy=PolicySpec("fcfs"),
            devices=DeviceSpec(count=3, config="gtx480",
                               per_device=["gtx480", "gtx480-half",
                                           "gtx480-double"]))
        assert Scenario.from_dict(scenario.to_dict()) == scenario
        assert scenario.devices.heterogeneous
        assert scenario.devices.config_names() == \
            ("gtx480", "gtx480-half", "gtx480-double")

    def test_fleet_default_placement_round_trips(self):
        scenario = Scenario(kind="fleet",
                            workload=WorkloadSpec(source="stream", apps=4),
                            policy=PolicySpec("fcfs"))
        assert scenario.placement == PlacementSpec()
        assert Scenario.from_dict(scenario.to_dict()) == scenario


class TestSchemaVersion:
    def test_future_version_rejected(self):
        data = queue_scenario().to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            Scenario.from_dict(data)

    def test_garbage_version_rejected(self):
        data = queue_scenario().to_dict()
        data["schema_version"] = "one"
        with pytest.raises(ValueError, match="schema_version"):
            Scenario.from_dict(data)

    def test_missing_version_defaults_to_current(self):
        data = queue_scenario().to_dict()
        del data["schema_version"]
        assert Scenario.from_dict(data) == queue_scenario()


class TestStrictDecoding:
    def test_unknown_top_level_key_rejected(self):
        data = queue_scenario().to_dict()
        data["wokload"] = {}
        with pytest.raises(ValueError, match="wokload"):
            Scenario.from_dict(data)

    def test_unknown_nested_key_rejected(self):
        data = queue_scenario().to_dict()
        data["workload"]["sedd"] = 1
        with pytest.raises(ValueError, match="sedd"):
            Scenario.from_dict(data)

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Scenario.from_dict({"policy": {"name": "fcfs"}})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="object"):
            Scenario.from_dict([1, 2, 3])
        with pytest.raises(ValueError, match="object"):
            Scenario.from_dict({"kind": "queue", "workload": "paper"})

    def test_invalid_json_rejected(self):
        with pytest.raises(ValueError, match="JSON"):
            Scenario.from_json("{not json")

    def test_typod_policy_name_suggests_nearest(self):
        # Golden error message: the typo fails at decode time with a
        # did-you-mean naming the nearest registered policy.
        data = stream_scenario().to_dict()
        data["policy"]["name"] = "backfil"
        with pytest.raises(ValueError) as err:
            Scenario.from_dict(data)
        assert str(err.value).startswith(
            "unknown online-policy 'backfil'; did you mean 'backfill'?")

    def test_queue_policy_resolves_in_batch_kind(self):
        # "backfill" exists online-only: a queue scenario must reject it.
        with pytest.raises(ValueError, match="unknown policy"):
            queue_scenario(policy=PolicySpec(name="backfill"))


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            Scenario(kind="cluster", policy=PolicySpec("fcfs"))

    def test_unknown_source(self):
        with pytest.raises(ValueError, match="workload source"):
            WorkloadSpec(source="magic")

    def test_unknown_distribution(self):
        with pytest.raises(ValueError, match="distribution"):
            WorkloadSpec(source="distribution", distribution="X")

    def test_unknown_arrival(self):
        with pytest.raises(ValueError, match="unknown stream"):
            WorkloadSpec(source="stream", arrival="uniform")

    def test_negative_seed(self):
        with pytest.raises(ValueError, match="seed"):
            WorkloadSpec(seed=-1)

    def test_bad_rates(self):
        with pytest.raises(ValueError, match="mean_gap"):
            WorkloadSpec(mean_gap=0.0)
        with pytest.raises(ValueError, match="burst_gap"):
            WorkloadSpec(burst_gap=-2.0)
        with pytest.raises(ValueError, match="burst_size"):
            WorkloadSpec(burst_size=0)
        with pytest.raises(ValueError, match="synthetic_fraction"):
            WorkloadSpec(synthetic_fraction=1.5)
        with pytest.raises(ValueError, match="scale"):
            WorkloadSpec(scale=0.0)

    def test_trace_needs_path_and_vice_versa(self):
        with pytest.raises(ValueError, match="trace"):
            WorkloadSpec(source="trace")
        with pytest.raises(ValueError, match="trace"):
            WorkloadSpec(source="stream", trace="/tmp/t.txt")

    def test_queue_rejects_timed_arrivals(self):
        with pytest.raises(ValueError, match="batch"):
            Scenario(kind="queue",
                     workload=WorkloadSpec(source="stream",
                                           arrival="poisson"),
                     policy=PolicySpec("fcfs"))

    def test_queue_rejects_trace_source(self):
        with pytest.raises(ValueError, match="trace"):
            Scenario(kind="queue",
                     workload=WorkloadSpec(source="trace", trace="t.txt"),
                     policy=PolicySpec("fcfs"))

    def test_placement_only_for_fleets(self):
        with pytest.raises(ValueError, match="placement"):
            Scenario(kind="stream",
                     workload=WorkloadSpec(source="stream"),
                     policy=PolicySpec("fcfs"),
                     placement=PlacementSpec())

    def test_multi_device_needs_fleet_kind(self):
        with pytest.raises(ValueError, match="fleet"):
            Scenario(kind="stream",
                     workload=WorkloadSpec(source="stream"),
                     policy=PolicySpec("fcfs"),
                     devices=DeviceSpec(count=2))

    def test_per_device_length_must_match_count(self):
        with pytest.raises(ValueError, match="per_device"):
            DeviceSpec(count=3, per_device=["gtx480", "gtx480"])

    def test_mixed_per_device_accepted_with_first_as_primary(self):
        spec = DeviceSpec(count=2, config="gtx480",
                          per_device=["small-test", "gtx480"])
        assert spec.config == "small-test"
        assert spec.config_names() == ("small-test", "gtx480")

    def test_unknown_per_device_config_suggests_nearest(self):
        with pytest.raises(ValueError) as err:
            DeviceSpec(count=2, per_device=["gtx480", "gtx48O"])
        assert "did you mean 'gtx480'?" in str(err.value)

    def test_execution_bounds(self):
        with pytest.raises(ValueError, match="workers"):
            ExecutionSpec(workers=0)
        with pytest.raises(ValueError, match="max_cycles"):
            ExecutionSpec(max_cycles=0)
        with pytest.raises(ValueError, match="samples_per_pair"):
            ExecutionSpec(samples_per_pair=0)


class TestSpecHash:
    def test_stable_across_encodings(self):
        scenario = fleet_scenario()
        rebuilt = Scenario.from_json(scenario.to_json())
        assert scenario.spec_hash() == rebuilt.spec_hash()

    def test_workers_do_not_change_identity(self):
        serial = stream_scenario()
        parallel = Scenario.from_dict(
            {**serial.to_dict(),
             "execution": {**serial.to_dict()["execution"], "workers": 4}})
        assert serial.spec_hash() == parallel.spec_hash()

    def test_seed_changes_identity(self):
        assert stream_scenario(seed=1).spec_hash() != \
            stream_scenario(seed=2).spec_hash()

    def test_hash_is_canonical_json_sha256(self):
        scenario = queue_scenario()
        assert len(scenario.spec_hash()) == 64
        assert json.loads(scenario.to_json())  # sanity: valid JSON doc


class TestWorkloadSlice:
    """WorkloadSpec.slice — the campaign by-trace-slice handle."""

    def test_round_trip(self):
        scenario = stream_scenario(slice=(1, 3))
        rebuilt = Scenario.from_json(scenario.to_json())
        assert rebuilt.workload.slice == (1, 3)
        assert rebuilt == scenario

    def test_list_normalized_to_tuple(self):
        scenario = stream_scenario(slice=[0, 2])
        assert scenario.workload.slice == (0, 2)

    def test_absent_when_none(self):
        # Hash/golden stability: an unsliced workload serializes with
        # no "slice" key at all, byte-identical to pre-campaign repos.
        assert "slice" not in stream_scenario().to_dict()["workload"]

    def test_slice_changes_spec_hash(self):
        # Unlike workers, a slice changes the simulated arrivals, so
        # it IS part of the scenario's identity.
        assert stream_scenario(slice=(0, 2)).spec_hash() != \
            stream_scenario().spec_hash()
        assert stream_scenario(slice=(0, 2)).spec_hash() != \
            stream_scenario(slice=(1, 2)).spec_hash()

    def test_validation(self):
        with pytest.raises(ValueError, match="slice"):
            stream_scenario(slice=(0,))
        with pytest.raises(ValueError, match="slice"):
            stream_scenario(slice=(2, 2))
        with pytest.raises(ValueError, match="slice"):
            stream_scenario(slice=(-1, 2))
        with pytest.raises(ValueError, match="slice"):
            stream_scenario(slice=(0, 0))
        with pytest.raises(ValueError, match="slice"):
            stream_scenario(slice=(True, 2))

    def test_queue_scenarios_reject_slices(self):
        workload = WorkloadSpec(source="distribution", distribution="M",
                                length=8, seed=7, slice=(0, 2))
        with pytest.raises(ValueError, match="slice"):
            Scenario(kind="queue", workload=workload,
                     policy=PolicySpec(name="ilp", nc=2))

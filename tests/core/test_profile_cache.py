"""Tests for the persistent (on-disk) profile and interference caches."""

import dataclasses
import json

import pytest

from repro.core.interference import (interference_cache_key,
                                     measure_interference)
from repro.core.profiling import (Profiler, default_cache_dir, fingerprint,
                                  profile_cache_key)
from repro.gpusim import small_test_config

from ..conftest import make_tiny_spec


class TestCacheKey:
    def test_identical_inputs_identical_key(self, small_cfg):
        spec = make_tiny_spec()
        assert (profile_cache_key(small_cfg, spec)
                == profile_cache_key(small_test_config(), make_tiny_spec()))

    @pytest.mark.parametrize("override", [
        dict(seed=8), dict(instr_per_warp=61), dict(mem_fraction=0.16),
        dict(pattern="random"), dict(working_set_kb=65),
        dict(kernel_launches=2), dict(name="other"),
    ])
    def test_any_spec_field_change_changes_key(self, small_cfg, override):
        base = profile_cache_key(small_cfg, make_tiny_spec())
        assert profile_cache_key(small_cfg,
                                 make_tiny_spec(**override)) != base

    def test_config_change_changes_key(self, small_cfg):
        spec = make_tiny_spec()
        assert (profile_cache_key(small_cfg, spec)
                != profile_cache_key(small_test_config(scheduler="lrr"),
                                     spec))

    def test_nested_dram_timing_is_keyed(self, small_cfg):
        import dataclasses as dc
        from repro.gpusim import DramTiming
        spec = make_tiny_spec()
        tweaked = dc.replace(small_cfg,
                             dram=DramTiming(row_hit=4))
        assert (profile_cache_key(small_cfg, spec)
                != profile_cache_key(tweaked, spec))

    def test_fingerprint_stable_across_processes(self):
        # Pure content hash: no id()/hash() randomness may leak in.
        assert fingerprint({"a": 1}, [2, 3]) == fingerprint({"a": 1}, [2, 3])


class TestProfilerDiskCache:
    def test_miss_then_hit(self, small_cfg, tmp_path):
        spec = make_tiny_spec()
        p1 = Profiler(small_cfg, cache_dir=tmp_path)
        m1 = p1.profile("tiny", spec)
        assert p1.simulations_run == 1
        files = list(tmp_path.glob("profile_*.json"))
        assert len(files) == 1

        # A fresh profiler (fresh process, conceptually) hits the disk.
        p2 = Profiler(small_cfg, cache_dir=tmp_path)
        m2 = p2.profile("tiny", spec)
        assert p2.simulations_run == 0
        assert m2 == m1

    def test_spec_change_misses(self, small_cfg, tmp_path):
        p = Profiler(small_cfg, cache_dir=tmp_path)
        p.profile("tiny", make_tiny_spec())
        p.profile("tiny", make_tiny_spec(seed=8))
        assert p.simulations_run == 2
        assert len(list(tmp_path.glob("profile_*.json"))) == 2

    def test_corrupt_cache_entry_is_remeasured(self, small_cfg, tmp_path):
        spec = make_tiny_spec()
        p1 = Profiler(small_cfg, cache_dir=tmp_path)
        m1 = p1.profile("tiny", spec)
        (path,) = tmp_path.glob("profile_*.json")
        path.write_text("{not json")
        p2 = Profiler(small_cfg, cache_dir=tmp_path)
        assert p2.profile("tiny", spec) == m1
        assert p2.simulations_run == 1
        # The corrupt file was rewritten with valid content.
        assert json.loads(path.read_text())["solo_cycles"] == m1.solo_cycles

    def test_no_cache_dir_still_works(self, small_cfg):
        p = Profiler(small_cfg)
        m = p.profile("tiny", make_tiny_spec())
        assert m.solo_cycles > 0

    def test_in_memory_memoization_unchanged(self, small_cfg, tmp_path):
        p = Profiler(small_cfg, cache_dir=tmp_path)
        spec = make_tiny_spec()
        assert p.profile("tiny", spec) is p.profile("tiny", spec)
        assert p.simulations_run == 1


class TestInterferenceDiskCache:
    def _suite(self):
        return {
            "a": make_tiny_spec("a", seed=1),
            "b": make_tiny_spec("b", seed=2, pattern="random",
                                working_set_kb=2048, mem_fraction=0.3),
        }

    def test_roundtrip_and_hit(self, small_cfg, tmp_path):
        suite = self._suite()
        m1 = measure_interference(small_cfg, suite, samples_per_pair=1,
                                  cache_dir=tmp_path)
        files = list(tmp_path.glob("interference_*.json"))
        assert len(files) == 1
        m2 = measure_interference(small_cfg, suite, samples_per_pair=1,
                                  cache_dir=tmp_path)
        assert m2.slowdown == m1.slowdown
        assert m2.samples == m1.samples

    def test_key_depends_on_sampling(self, small_cfg):
        from repro.core import ClassificationThresholds
        suite = self._suite()
        thresholds = ClassificationThresholds.for_device(small_cfg)
        assert (interference_cache_key(small_cfg, suite, thresholds, 1)
                != interference_cache_key(small_cfg, suite, thresholds, 2))


class TestDefaultCacheDir:
    def test_env_off_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_CACHE", "off")
        assert default_cache_dir() is None

    def test_env_path_overrides(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PROFILE_CACHE", str(tmp_path))
        assert default_cache_dir() == tmp_path

    def test_default_points_into_benchmarks(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE_CACHE", raising=False)
        d = default_cache_dir()
        assert d is not None and d.parts[-3:] == ("benchmarks", "results",
                                                  "cache")

"""Tests for solo profiling and the process-wide profiler cache."""

import pytest

from repro.core import Profiler, metrics_from_result, shared_profiler
from repro.gpusim import Application, simulate, small_test_config

from ..conftest import make_tiny_spec


class TestProfiler:
    def test_profile_produces_metrics(self, small_cfg, tiny_spec):
        p = Profiler(small_cfg)
        m = p.profile("tiny", tiny_spec)
        assert m.solo_cycles > 0
        assert m.ipc > 0
        assert 0 <= m.utilization <= 1
        assert m.thread_instructions == (
            tiny_spec.total_warp_instructions * small_cfg.warp_size)

    def test_cache_hit_returns_same_object(self, small_cfg, tiny_spec):
        p = Profiler(small_cfg)
        assert p.profile("tiny", tiny_spec) is p.profile("tiny", tiny_spec)

    def test_invalidate_clears_cache(self, small_cfg, tiny_spec):
        p = Profiler(small_cfg)
        first = p.profile("tiny", tiny_spec)
        p.invalidate()
        second = p.profile("tiny", tiny_spec)
        assert first is not second
        assert first.solo_cycles == second.solo_cycles  # deterministic

    def test_different_specs_profiled_separately(self, small_cfg):
        p = Profiler(small_cfg)
        a = p.profile("a", make_tiny_spec(mem_fraction=0.0))
        b = p.profile("b", make_tiny_spec(mem_fraction=0.4,
                                          working_set_kb=4096,
                                          pattern="random"))
        assert a.memory_bandwidth_gbps < b.memory_bandwidth_gbps

    def test_solo_cycles_shortcut(self, small_cfg, tiny_spec):
        p = Profiler(small_cfg)
        assert p.solo_cycles("tiny", tiny_spec) == \
            p.profile("tiny", tiny_spec).solo_cycles


class TestSharedProfiler:
    def test_shared_per_config(self):
        cfg = small_test_config()
        assert shared_profiler(cfg) is shared_profiler(cfg)

    def test_distinct_configs_distinct_profilers(self):
        a = shared_profiler(small_test_config())
        b = shared_profiler(small_test_config(num_sms=2))
        assert a is not b


class TestMetricsFromResult:
    def test_columns_tuple(self, small_cfg, tiny_spec):
        res = simulate(small_cfg, [Application("x", tiny_spec)])
        m = metrics_from_result(res)
        mb, l2l1, ipc, r = m.columns
        assert mb == m.memory_bandwidth_gbps
        assert l2l1 == m.l2_to_l1_gbps
        assert ipc == m.ipc
        assert r == m.mem_compute_ratio

    def test_metrics_use_finish_cycle(self, small_cfg):
        short = make_tiny_spec("short", blocks=2, instr_per_warp=30)
        long_ = make_tiny_spec("long", blocks=8, instr_per_warp=600)
        res = simulate(small_cfg, [Application("short", short),
                                   Application("long", long_)])
        m = metrics_from_result(res, app_id=0)
        assert m.solo_cycles == res.app_stats[0].finish_cycle
        assert m.solo_cycles < res.cycles

"""Tests for the contention-minimization ILP (§3.2.3, Appendix A)."""

import pytest

from repro.core import (AppClass, PAPER_APPENDIX_E, InterferenceModel,
                        Pattern, build_grouping_model, class_counts,
                        enumerate_patterns, optimize_grouping, realize_groups)
from repro.ilp import solve_all_optima

APPENDIX_QUEUE_CLASSES = (
    [AppClass.M] * 2 + [AppClass.MC] * 5 + [AppClass.C] * 2 + [AppClass.A] * 5)


class TestAppendixA:
    """The worked example of Appendix A must be reproduced exactly."""

    def test_solution_vector(self):
        model, patterns = build_grouping_model(
            APPENDIX_QUEUE_CLASSES, 2, PAPER_APPENDIX_E)
        sol = model.solve()
        assert sol.is_optimal
        counts = {patterns[i].label: round(sol[f"L{i}"])
                  for i in range(len(patterns)) if round(sol[f"L{i}"]) > 0}
        # Eq. 5.7: 2×p3 (M-C), 2×p5 (MC-MC), 1×p7 (MC-A), 2×p10 (A-A).
        assert counts == {"M-C": 2, "MC-MC": 2, "MC-A": 1, "A-A": 2}

    def test_objective_value(self):
        model, _ = build_grouping_model(
            APPENDIX_QUEUE_CLASSES, 2, PAPER_APPENDIX_E)
        sol = model.solve()
        expected = 2 * 0.0146 + 2 * 0.0204 + 0.0698 + 2 * 0.166
        assert sol.objective == pytest.approx(expected)

    def test_solution_unique(self):
        model, _ = build_grouping_model(
            APPENDIX_QUEUE_CLASSES, 2, PAPER_APPENDIX_E)
        assert len(solve_all_optima(model)) == 1

    def test_total_groups_equals_seven(self):
        model, _ = build_grouping_model(
            APPENDIX_QUEUE_CLASSES, 2, PAPER_APPENDIX_E)
        sol = model.solve()
        assert sum(sol.values.values()) == pytest.approx(7)  # Eq. 5.6


class TestModelConstruction:
    def test_class_counts(self):
        counts = class_counts(APPENDIX_QUEUE_CLASSES)
        assert counts == [2, 5, 2, 5]  # Eq. 5.3

    def test_coefficient_length_validated(self):
        with pytest.raises(ValueError):
            build_grouping_model(APPENDIX_QUEUE_CLASSES, 2, [1.0, 2.0])

    def test_class_constraints_are_inequalities(self):
        model, _ = build_grouping_model(
            APPENDIX_QUEUE_CLASSES, 2, PAPER_APPENDIX_E)
        senses = [c.sense for c in model.constraints]
        assert senses.count("<=") == 4  # one per class (Eq. 5.5)
        assert senses.count("==") == 1  # total groups (Eq. 5.6)


class TestRealizeGroups:
    def test_fcfs_within_class(self):
        queue = [("m1", AppClass.M), ("a1", AppClass.A),
                 ("m2", AppClass.M), ("a2", AppClass.A)]
        pattern = Pattern.from_classes([AppClass.M, AppClass.A])
        groups, leftovers = realize_groups(queue, {pattern: 2}, 2)
        assert groups == [["m1", "a1"], ["m2", "a2"]]
        assert leftovers == []

    def test_leftovers_preserved(self):
        queue = [("m1", AppClass.M), ("a1", AppClass.A),
                 ("c1", AppClass.C)]
        pattern = Pattern.from_classes([AppClass.M, AppClass.A])
        groups, leftovers = realize_groups(queue, {pattern: 1}, 2)
        assert groups == [["m1", "a1"]]
        assert leftovers == ["c1"]

    def test_missing_class_raises(self):
        queue = [("a1", AppClass.A), ("a2", AppClass.A)]
        pattern = Pattern.from_classes([AppClass.M, AppClass.A])
        with pytest.raises(ValueError):
            realize_groups(queue, {pattern: 1}, 2)


def uniform_interference(value: float = 2.0) -> InterferenceModel:
    return InterferenceModel(tuple(tuple(value for _ in range(4))
                                   for _ in range(4)))


class TestOptimizeGrouping:
    def _queue(self):
        names = [f"app{i}" for i in range(len(APPENDIX_QUEUE_CLASSES))]
        return list(zip(names, APPENDIX_QUEUE_CLASSES))

    def test_full_pipeline_with_fig3_4_style_matrix(self):
        """With a matrix structured like Fig. 3.4 (M hurts everyone, A is
        benign), the optimizer must return the true optimum (checked
        against exhaustive enumeration) and never pick the worst pairing
        (M with MC — the paper's most destructive combination)."""
        matrix = (
            (3.0, 2.2, 2.0, 1.3),
            (3.5, 2.4, 2.1, 1.2),
            (3.2, 2.1, 1.9, 1.1),
            (2.0, 1.4, 1.2, 1.05),
        )
        interference = InterferenceModel(matrix)
        plan = optimize_grouping(self._queue(), 2, interference)
        assert len(plan.groups) == 7
        used = [name for g in plan.groups for name in g]
        assert len(used) == len(set(used))  # each app scheduled once
        assert "M-MC" not in {p.label for p in plan.pattern_counts}
        # The branch-and-bound optimum must match brute-force enumeration.
        model, _ = build_grouping_model(
            APPENDIX_QUEUE_CLASSES, 2,
            interference.coefficients(enumerate_patterns(2)))
        optima = solve_all_optima(model)
        assert plan.objective == pytest.approx(optima[0][1])

    def test_all_groups_include_leftovers(self):
        queue = self._queue()[:5]  # 5 apps, NC=2 → one leftover
        plan = optimize_grouping(queue, 2, uniform_interference())
        assert len(plan.groups) == 2
        assert len(plan.leftovers) == 1
        assert len(plan.all_groups) == 3

    def test_nc3_grouping(self):
        plan = optimize_grouping(self._queue()[:12], 3,
                                 uniform_interference())
        assert len(plan.groups) == 4
        assert all(len(g) == 3 for g in plan.groups)

    def test_nc1_rejected(self):
        with pytest.raises(ValueError):
            optimize_grouping(self._queue(), 1, uniform_interference())

    def test_uniform_matrix_any_grouping_same_objective(self):
        plan = optimize_grouping(self._queue(), 2, uniform_interference(2.0))
        # e = 1/2 for every pattern → objective = 7 * 0.5.
        assert plan.objective == pytest.approx(3.5)

"""Integration tests: queue execution under every policy (small device)."""

import pytest

from repro.core import (EvenPolicy, ILPPolicy, ILPSMRAPolicy, SerialPolicy,
                        ProfileBasedPolicy, SMRAParams, make_context,
                        run_queue)
from repro.gpusim import small_test_config

from ..conftest import make_tiny_spec


def toy_suite():
    return {
        "mem": make_tiny_spec("mem", mem_fraction=0.4, blocks=8,
                              working_set_kb=8192, pattern="random",
                              tx_per_access=8, seed=1),
        "comp": make_tiny_spec("comp", mem_fraction=0.01, blocks=8, seed=2),
        "cache": make_tiny_spec("cache", mem_fraction=0.3, blocks=4,
                                working_set_kb=48, pattern="random",
                                tx_per_access=4, dep_gap=4.0, seed=3),
        "small": make_tiny_spec("small", blocks=2, instr_per_warp=40, seed=4),
    }


@pytest.fixture(scope="module")
def ctx():
    return make_context(small_test_config(), suite=toy_suite(),
                        need_interference=True, samples_per_pair=1,
                        smra_params=SMRAParams(interval=500))


@pytest.fixture
def queue():
    return list(toy_suite().items())


class TestRunQueue:
    @pytest.mark.parametrize("policy_cls", [
        SerialPolicy, lambda: EvenPolicy(2), lambda: ProfileBasedPolicy(2),
        lambda: ILPPolicy(2), lambda: ILPSMRAPolicy(2)])
    def test_every_policy_drains_queue(self, ctx, queue, policy_cls):
        policy = policy_cls()
        outcome = run_queue(queue, policy, ctx)
        assert outcome.total_cycles > 0
        ran = sorted(n for g in outcome.groups for n in g.members)
        assert ran == sorted(n for n, _ in queue)

    def test_total_instructions_conserved(self, ctx, queue):
        serial = run_queue(queue, SerialPolicy(), ctx)
        even = run_queue(queue, EvenPolicy(2), ctx)
        assert serial.total_instructions == even.total_instructions

    def test_device_throughput_definition(self, ctx, queue):
        out = run_queue(queue, EvenPolicy(2), ctx)
        assert out.device_throughput == pytest.approx(
            out.total_instructions / out.total_cycles)

    def test_app_accessors(self, ctx, queue):
        out = run_queue(queue, EvenPolicy(2), ctx)
        for name, _spec in queue:
            assert out.app_throughput(name) > 0
            assert out.app_finish_cycles(name) > 0
            assert name in out.group_of(name).members
        with pytest.raises(KeyError):
            out.app_throughput("ghost")
        with pytest.raises(KeyError):
            out.app_finish_cycles("ghost")
        with pytest.raises(KeyError):
            out.group_of("ghost")

    def test_smra_controller_attached(self, ctx, queue):
        out = run_queue(queue, ILPSMRAPolicy(2), ctx)
        multi = [g for g in out.groups if len(g.members) > 1]
        assert multi and all(g.smra is not None for g in multi)

    def test_plain_ilp_has_no_controller(self, ctx, queue):
        out = run_queue(queue, ILPPolicy(2), ctx)
        assert all(g.smra is None for g in out.groups)

    def test_policy_name_recorded(self, ctx, queue):
        assert run_queue(queue, SerialPolicy(), ctx).policy == "Serial"


class TestGroupIndex:
    """The name → group index must behave exactly like the old scans."""

    def test_index_consistent_with_groups(self, ctx, queue):
        out = run_queue(queue, EvenPolicy(2), ctx)
        for group in out.groups:
            for name in group.members:
                assert out.group_of(name) is group

    def test_index_built_lazily_once(self, ctx, queue):
        out = run_queue(queue, EvenPolicy(2), ctx)
        assert out._group_index is None
        out.group_of(queue[0][0])
        index = out._group_index
        assert index is not None
        out.app_finish_cycles(queue[1][0])
        assert out._group_index is index  # not rebuilt

    def test_repeated_lookups_stable(self, ctx, queue):
        out = run_queue(queue, EvenPolicy(2), ctx)
        first = [out.app_throughput(n) for n, _ in queue]
        second = [out.app_throughput(n) for n, _ in queue]
        assert first == second


class TestMakeContext:
    def test_interference_requires_suite(self):
        with pytest.raises(ValueError):
            make_context(small_test_config(), need_interference=True)

    def test_interference_cached(self):
        cfg = small_test_config()
        a = make_context(cfg, suite=toy_suite(), need_interference=True,
                         samples_per_pair=1)
        b = make_context(cfg, suite=toy_suite(), need_interference=True,
                         samples_per_pair=1)
        assert a.interference is b.interference

    def test_interference_cache_ignores_suite_order(self):
        """The cache keys by content hash, so a re-ordered (but equal)
        suite dict must hit the same entry."""
        cfg = small_test_config()
        suite = toy_suite()
        reordered = dict(reversed(list(suite.items())))
        assert list(reordered) != list(suite)
        a = make_context(cfg, suite=suite, need_interference=True,
                         samples_per_pair=1)
        b = make_context(cfg, suite=reordered, need_interference=True,
                         samples_per_pair=1)
        assert a.interference is b.interference

    def test_context_without_interference(self):
        ctx = make_context(small_test_config())
        assert ctx.interference is None

    def test_classify_queue(self, ctx, queue):
        classified = ctx.classify_queue(queue)
        assert len(classified) == len(queue)
        assert all(cls is not None for _n, cls in classified)

"""Tests for application classification (Tables 3.1/3.2)."""

import pytest

from repro.core import (CLASS_ORDER, AppClass, ClassificationThresholds,
                        class_index, classify)
from repro.core.profiling import ProfileMetrics


def metrics(name, mb, l2l1, ipc, r):
    return ProfileMetrics(name=name, memory_bandwidth_gbps=mb,
                          l2_to_l1_gbps=l2l1, ipc=ipc, mem_compute_ratio=r,
                          solo_cycles=1000, thread_instructions=1000,
                          utilization=0.5)


#: The paper's Table 3.2 rows: (MB, L2→L1, IPC, R) → class.  Classified
#: with the paper's GTX-480 thresholds (α=107, β=50, γ=100, ε=200; SPMV's
#: IPC of 208.7 sits above the stated ε — the known Table 3.1/3.2
#: inconsistency — so it is listed separately below).
TABLE_3_2 = [
    ("BFS2", 35.5, 132.9, 19.4, 0.19, AppClass.C),
    ("BLK", 116.2, 83.13, 577.1, 0.05, AppClass.M),
    ("BP", 84.06, 142.7, 808.3, 0.06, AppClass.MC),
    ("LUD", 0.19, 8.14, 40.1, 0.03, AppClass.A),
    ("FFT", 105.8, 122.8, 405.7, 0.08, AppClass.MC),
    ("JPEG", 47.2, 77.7, 386.4, 0.07, AppClass.A),
    ("3DS", 81.4, 102.75, 533.9, 0.11, AppClass.MC),
    ("HS", 43.93, 97.3, 984.0, 0.01, AppClass.A),
    ("LPS", 80.6, 115.4, 540.9, 0.03, AppClass.MC),
    ("RAY", 59.7, 69.1, 523.9, 0.1, AppClass.MC),
    ("GUPS", 108.75, 97.1, 10.61, 0.1, AppClass.M),
    ("SAD", 57.35, 46.1, 781.9, 0.01, AppClass.MC),  # see note below
    ("NN", 1.3, 35.3, 56.8, 0.15, AppClass.A),
]

PAPER_THRESHOLDS = ClassificationThresholds(
    alpha_gbps=107.0, beta_gbps=50.0, gamma_gbps=100.0, epsilon_ipc=200.0)


class TestPaperTable32:
    @pytest.mark.parametrize(
        "name,mb,l2l1,ipc,r,expected",
        [row for row in TABLE_3_2 if row[0] != "SAD"])
    def test_row_classifies_as_table(self, name, mb, l2l1, ipc, r, expected):
        assert classify(metrics(name, mb, l2l1, ipc, r),
                        PAPER_THRESHOLDS) == expected

    def test_sad_inconsistency_documented(self):
        """Table 3.2 labels SAD class A although its MB (57.35) exceeds
        the stated β=50 — a known internal inconsistency of the thesis
        (DESIGN.md §6).  The rule tree classifies by the printed
        thresholds, hence MC here; the calibrated SAD model in
        repro.workloads sits below β so the suite-level class is A."""
        row = next(r for r in TABLE_3_2 if r[0] == "SAD")
        assert classify(metrics(*row[:5]), PAPER_THRESHOLDS) == AppClass.MC

    def test_spmv_with_relaxed_epsilon(self):
        """SPMV (IPC 208.7, ε=200) is another off-by-a-hair row; with ε
        at 210 the paper's label (C) is reproduced."""
        relaxed = ClassificationThresholds(107.0, 50.0, 100.0, 210.0)
        m = metrics("SPMV", 48.1, 121.3, 208.7, 0.07)
        assert classify(m, relaxed) == AppClass.C
        assert classify(m, PAPER_THRESHOLDS) == AppClass.A


class TestRuleTree:
    def test_m_checked_first(self):
        # Very high MB wins even with class-A-looking IPC.
        assert classify(metrics("x", 150, 0, 900, 0.01),
                        PAPER_THRESHOLDS) == AppClass.M

    def test_mc_band(self):
        assert classify(metrics("x", 75, 0, 900, 0.01),
                        PAPER_THRESHOLDS) == AppClass.MC

    def test_c_requires_low_ipc(self):
        high_ipc = metrics("x", 10, 150, 500, 0.01)
        assert classify(high_ipc, PAPER_THRESHOLDS) == AppClass.A
        low_ipc = metrics("x", 10, 150, 50, 0.01)
        assert classify(low_ipc, PAPER_THRESHOLDS) == AppClass.C

    def test_c_via_ratio_branch(self):
        # Low L2→L1 but high memory-to-compute ratio also qualifies as C.
        m = metrics("x", 10, 20, 50, 0.3)
        assert classify(m, PAPER_THRESHOLDS) == AppClass.C

    def test_a_fallthrough(self):
        m = metrics("x", 5, 20, 50, 0.05)
        assert classify(m, PAPER_THRESHOLDS) == AppClass.A

    def test_boundaries_are_strict(self):
        at_alpha = metrics("x", 107.0, 0, 900, 0.01)
        assert classify(at_alpha, PAPER_THRESHOLDS) == AppClass.MC
        at_beta = metrics("x", 50.0, 0, 900, 0.01)
        assert classify(at_beta, PAPER_THRESHOLDS) == AppClass.A


class TestThresholds:
    def test_for_device_scales_with_peak(self, gtx_cfg):
        t = ClassificationThresholds.for_device(gtx_cfg)
        peak = gtx_cfg.peak_dram_bandwidth_gbps
        assert t.alpha_gbps == pytest.approx(0.55 * peak)
        assert t.beta_gbps == pytest.approx(0.30 * peak)

    def test_alpha_must_exceed_beta(self):
        with pytest.raises(ValueError):
            ClassificationThresholds(alpha_gbps=50, beta_gbps=107)

    def test_class_order_and_index(self):
        assert len(CLASS_ORDER) == 4
        assert class_index(AppClass.M) == 0
        assert class_index(AppClass.A) == 3

    def test_appclass_str(self):
        assert str(AppClass.MC) == "MC"

"""Tests for the scheduling policies (plan shapes and SM partitioning)."""

import pytest

from repro.core import (EvenPolicy, FCFSPolicy, ILPPolicy, ILPSMRAPolicy,
                        InterferenceModel, PolicyContext, ProfileBasedPolicy,
                        Profiler, SerialPolicy, ClassificationThresholds,
                        default_policies, sm_demand)
from repro.gpusim import small_test_config

from ..conftest import make_tiny_spec


@pytest.fixture
def ctx(small_cfg):
    matrix = tuple(tuple(1.5 for _ in range(4)) for _ in range(4))
    return PolicyContext(
        config=small_cfg,
        profiler=Profiler(small_cfg),
        thresholds=ClassificationThresholds.for_device(small_cfg),
        interference=InterferenceModel(matrix))


@pytest.fixture
def queue():
    return [(f"app{i}", make_tiny_spec(f"app{i}", seed=i)) for i in range(6)]


class TestSerialPolicy:
    def test_one_group_per_app(self, ctx, queue):
        groups = SerialPolicy().plan(queue, ctx)
        assert len(groups) == 6
        assert all(len(g.members) == 1 for g in groups)
        assert all(g.partitions is None for g in groups)
        assert not any(g.use_smra for g in groups)


class TestEvenAndFCFS:
    def test_chunks_in_arrival_order(self, ctx, queue):
        groups = EvenPolicy(2).plan(queue, ctx)
        assert [m[0] for g in groups for m in g.members] == [
            f"app{i}" for i in range(6)]
        assert all(len(g.members) == 2 for g in groups)

    def test_nc3(self, ctx, queue):
        groups = EvenPolicy(3).plan(queue, ctx)
        assert [len(g.members) for g in groups] == [3, 3]

    def test_ragged_tail(self, ctx, queue):
        groups = EvenPolicy(4).plan(queue, ctx)
        assert [len(g.members) for g in groups] == [4, 2]

    def test_fcfs_is_even(self, ctx, queue):
        even = EvenPolicy(2).plan(queue, ctx)
        fcfs = FCFSPolicy(2).plan(queue, ctx)
        assert [[m[0] for m in g.members] for g in even] == \
               [[m[0] for m in g.members] for g in fcfs]
        assert FCFSPolicy(2).name == "FCFS"

    def test_bad_nc(self):
        with pytest.raises(ValueError):
            EvenPolicy(0)


class TestProfileBased:
    def test_partitions_proportional_to_demand(self, ctx, small_cfg):
        wide = ("wide", make_tiny_spec("wide", blocks=64))
        narrow = ("narrow", make_tiny_spec("narrow", blocks=1))
        groups = ProfileBasedPolicy(2).plan([wide, narrow], ctx)
        parts = groups[0].partitions
        assert parts is not None
        assert len(parts[0]) > len(parts[1])
        assert len(parts[0]) + len(parts[1]) == small_cfg.num_sms

    def test_sm_demand_caps(self, small_cfg):
        assert sm_demand(make_tiny_spec(blocks=1), small_cfg) == 1
        assert sm_demand(make_tiny_spec(blocks=1000), small_cfg) == \
            small_cfg.num_sms

    def test_single_member_group_gets_full_device(self, ctx, queue):
        groups = ProfileBasedPolicy(4).plan(queue[:5], ctx)
        assert groups[-1].partitions is None  # lone tail app


class TestILPPolicies:
    def test_groups_cover_queue(self, ctx, queue):
        groups = ILPPolicy(2).plan(queue, ctx)
        names = sorted(m[0] for g in groups for m in g.members)
        assert names == sorted(name for name, _ in queue)

    def test_requires_interference(self, small_cfg, queue):
        bare = PolicyContext(
            config=small_cfg, profiler=Profiler(small_cfg),
            thresholds=ClassificationThresholds.for_device(small_cfg))
        with pytest.raises(ValueError):
            ILPPolicy(2).plan(queue, bare)

    def test_nc1_rejected(self):
        with pytest.raises(ValueError):
            ILPPolicy(1)

    def test_smra_flag_only_on_multi_member_groups(self, ctx, queue):
        groups = ILPSMRAPolicy(2).plan(queue[:5], ctx)
        for g in groups:
            assert g.use_smra == (len(g.members) > 1)

    def test_plain_ilp_never_uses_smra(self, ctx, queue):
        assert not any(g.use_smra for g in ILPPolicy(2).plan(queue, ctx))


class TestDefaults:
    def test_default_policies_roster(self):
        names = [p.name for p in default_policies(2)]
        assert names == ["Even", "Profile-based", "ILP", "ILP-SMRA"]
        assert all(p.nc == 2 for p in default_policies(2))
        assert all(p.nc == 3 for p in default_policies(3))

"""Tests for class-pattern enumeration (Eq. 3.1/3.2, Appendix A)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (AppClass, Pattern, enumerate_patterns, num_patterns,
                        pattern_matrix)


class TestPatternCounts:
    def test_np_formula_nc2(self):
        # NP = C(NT + NC - 1, NC) = C(5, 2) = 10 (Appendix A).
        assert num_patterns(2) == 10

    def test_np_formula_nc3(self):
        assert num_patterns(3) == math.comb(6, 3) == 20

    @pytest.mark.parametrize("nc", [1, 2, 3, 4, 5])
    def test_enumeration_matches_formula(self, nc):
        assert len(enumerate_patterns(nc)) == num_patterns(nc)

    def test_nc_zero_rejected(self):
        with pytest.raises(ValueError):
            enumerate_patterns(0)


class TestAppendixAListing:
    def test_nc2_pattern_order(self):
        """The Appendix A listing: M-M, M-MC, M-C, M-A, MC-MC, MC-C,
        MC-A, C-C, C-A, A-A."""
        labels = [p.label for p in enumerate_patterns(2)]
        assert labels == [
            "M-M", "M-MC", "M-C", "M-A", "MC-MC", "MC-C", "MC-A",
            "C-C", "C-A", "A-A",
        ]

    def test_pattern_matrix_matches_eq_5_2(self):
        """The [P1 .. P10] matrix of Eq. 5.2."""
        matrix = pattern_matrix(enumerate_patterns(2))
        assert matrix == [
            [2, 1, 1, 1, 0, 0, 0, 0, 0, 0],
            [0, 1, 0, 0, 2, 1, 1, 0, 0, 0],
            [0, 0, 1, 0, 0, 1, 0, 2, 1, 0],
            [0, 0, 0, 1, 0, 0, 1, 0, 1, 2],
        ]


class TestPattern:
    def test_from_classes_roundtrip(self):
        p = Pattern.from_classes([AppClass.MC, AppClass.MC])
        assert p.counts == (0, 2, 0, 0)  # Eq. 3.1's example
        assert p.classes == (AppClass.MC, AppClass.MC)

    def test_size(self):
        p = Pattern.from_classes([AppClass.M, AppClass.A, AppClass.A])
        assert p.size == 3

    def test_count_of(self):
        p = Pattern.from_classes([AppClass.M, AppClass.A])
        assert p.count_of(AppClass.M) == 1
        assert p.count_of(AppClass.C) == 0

    def test_label(self):
        p = Pattern.from_classes([AppClass.A, AppClass.M])
        assert p.label == "M-A"  # canonical class order

    def test_hashable(self):
        a = Pattern.from_classes([AppClass.M, AppClass.A])
        b = Pattern.from_classes([AppClass.A, AppClass.M])
        assert a == b and hash(a) == hash(b)

    def test_validation(self):
        with pytest.raises(ValueError):
            Pattern((1, 2))
        with pytest.raises(ValueError):
            Pattern((1, -1, 0, 0))


class TestPatternProperties:
    @given(nc=st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_all_patterns_have_size_nc(self, nc):
        assert all(p.size == nc for p in enumerate_patterns(nc))

    @given(nc=st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_patterns_unique(self, nc):
        patterns = enumerate_patterns(nc)
        assert len(set(patterns)) == len(patterns)

    @given(nc=st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_classes_expansion_consistent(self, nc):
        for p in enumerate_patterns(nc):
            assert Pattern.from_classes(p.classes) == p

"""Tests for the interference model (§3.2.2, Fig. 3.4)."""

import pytest

from repro.core import (AppClass, InterferenceModel, Pattern,
                        enumerate_patterns, measure_interference)
from repro.gpusim import small_test_config

from ..conftest import make_tiny_spec


def model(matrix):
    return InterferenceModel(tuple(tuple(row) for row in matrix))


SAMPLE = model([
    [2.0, 1.8, 1.6, 1.2],
    [2.5, 1.9, 1.7, 1.3],
    [2.2, 1.7, 1.8, 1.1],
    [1.5, 1.3, 1.2, 1.05],
])


class TestInterferenceModel:
    def test_matrix_shape_validated(self):
        with pytest.raises(ValueError):
            model([[1.0, 1.0], [1.0, 1.0]])

    def test_slowdowns_below_one_rejected(self):
        bad = [[1.0] * 4 for _ in range(4)]
        bad[2][1] = 0.5
        with pytest.raises(ValueError):
            model(bad)

    def test_pair_slowdown_lookup(self):
        assert SAMPLE.pair_slowdown(AppClass.MC, AppClass.M) == 2.5
        assert SAMPLE.pair_slowdown(AppClass.M, AppClass.MC) == 1.8

    def test_group_slowdown_single_partner(self):
        assert SAMPLE.group_slowdown(AppClass.C, [AppClass.M]) == 2.2

    def test_group_slowdown_additive(self):
        # S(a|{b,c}) = S(a|b) + S(a|c) - 1.
        s = SAMPLE.group_slowdown(AppClass.A, [AppClass.M, AppClass.MC])
        assert s == pytest.approx(1.5 + 1.3 - 1.0)

    def test_group_slowdown_empty(self):
        assert SAMPLE.group_slowdown(AppClass.A, []) == 1.0

    def test_pattern_coefficient_eq_3_4(self):
        p = Pattern.from_classes([AppClass.M, AppClass.A])
        e = SAMPLE.pattern_coefficient(p)
        expected = 0.5 * (1 / SAMPLE.pair_slowdown(AppClass.M, AppClass.A)
                          + 1 / SAMPLE.pair_slowdown(AppClass.A, AppClass.M))
        assert e == pytest.approx(expected)

    def test_same_class_pattern_coefficient(self):
        p = Pattern.from_classes([AppClass.MC, AppClass.MC])
        assert SAMPLE.pattern_coefficient(p) == pytest.approx(1 / 1.9)

    def test_coefficients_align_with_patterns(self):
        patterns = enumerate_patterns(2)
        coeffs = SAMPLE.coefficients(patterns)
        assert len(coeffs) == len(patterns)
        assert all(0 < e <= 1.0 for e in coeffs)

    def test_benign_pairs_score_higher(self):
        patterns = enumerate_patterns(2)
        coeffs = dict(zip([p.label for p in patterns],
                          SAMPLE.coefficients(patterns)))
        assert coeffs["A-A"] > coeffs["M-M"]
        assert coeffs["M-A"] > coeffs["M-MC"]


class TestMeasurement:
    @pytest.fixture(scope="class")
    def measured(self):
        """A measured matrix from a 4-benchmark toy suite on the small
        device (one benchmark per class region is not guaranteed at this
        scale; the test only checks mechanics and invariants)."""
        cfg = small_test_config()
        suite = {
            "mem": make_tiny_spec("mem", mem_fraction=0.4, blocks=8,
                                  working_set_kb=8192, pattern="random",
                                  tx_per_access=8),
            "comp": make_tiny_spec("comp", mem_fraction=0.01, blocks=8),
            "cache": make_tiny_spec("cache", mem_fraction=0.3, blocks=4,
                                    working_set_kb=48, pattern="random",
                                    tx_per_access=4, dep_gap=4.0),
        }
        return measure_interference(cfg, suite, samples_per_pair=1)

    def test_matrix_is_complete(self, measured):
        assert len(measured.slowdown) == 4
        assert all(len(row) == 4 for row in measured.slowdown)

    def test_all_slowdowns_at_least_one(self, measured):
        assert all(s >= 1.0 for row in measured.slowdown for s in row)

    def test_unmeasured_cells_default_to_one(self, measured):
        # The toy suite cannot populate every class; empty cells are 1.0.
        flat = [s for row in measured.slowdown for s in row]
        assert any(s == 1.0 for s in flat)

    def test_samples_recorded(self, measured):
        assert measured.samples
        for (_a, _b), (s_a, s_b) in measured.samples.items():
            assert s_a >= 1.0 and s_b >= 1.0

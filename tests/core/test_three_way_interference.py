"""Validate the additive 3-way slowdown composition against direct
3-way co-runs (the NC=3 modeling assumption of DESIGN.md §4/§6).

The additive model ``S(a|{b,c}) = S(a|b) + S(a|c) − 1`` is a first-order
approximation; these tests check it is *predictive* (correlated and
within a tolerance band) on the small device, not exact.
"""

import pytest

from repro.gpusim import Application, simulate, small_test_config

from ..conftest import make_tiny_spec


@pytest.fixture(scope="module")
def cfg():
    return small_test_config(num_sms=6)


@pytest.fixture(scope="module")
def specs():
    return {
        "mem": make_tiny_spec("mem", mem_fraction=0.4, blocks=6,
                              working_set_kb=8192, pattern="random",
                              tx_per_access=8, seed=11),
        "comp": make_tiny_spec("comp", mem_fraction=0.01, blocks=6,
                               seed=12),
        "cache": make_tiny_spec("cache", mem_fraction=0.3, blocks=6,
                                working_set_kb=48, pattern="random",
                                tx_per_access=4, seed=13),
    }


def solo_cycles(cfg, spec):
    return simulate(cfg, [Application(spec.name, spec)]).app_stats[0] \
        .finish_cycle


def pair_slowdown(cfg, victim, other, solo):
    res = simulate(cfg, [Application("v", victim), Application("o", other)])
    return max(1.0, res.app_stats[0].finish_cycle / solo)


class TestAdditiveComposition:
    def test_three_way_slowdown_within_band(self, cfg, specs):
        """Predicted 3-way slowdown from pairwise data must land within
        a generous band of the direct measurement."""
        victim = specs["comp"]
        others = [specs["mem"], specs["cache"]]
        solo = solo_cycles(cfg, victim)
        s_pair = [pair_slowdown(cfg, victim, o, solo) for o in others]
        predicted = 1.0 + sum(s - 1.0 for s in s_pair)

        res = simulate(cfg, [Application("v", victim),
                             Application("o1", others[0]),
                             Application("o2", others[1])])
        measured = max(1.0, res.app_stats[0].finish_cycle / solo)
        assert measured == pytest.approx(predicted, rel=0.6), (
            f"additive model predicted {predicted:.2f}, "
            f"measured {measured:.2f}")

    def test_more_aggressors_never_speed_up(self, cfg, specs):
        victim = specs["cache"]
        solo = solo_cycles(cfg, victim)
        one = pair_slowdown(cfg, victim, specs["mem"], solo)
        res = simulate(cfg, [Application("v", victim),
                             Application("o1", specs["mem"]),
                             Application("o2", specs["comp"])])
        two = max(1.0, res.app_stats[0].finish_cycle / solo)
        # Partition shrinks from 1/2 to 1/3 of the device and a second
        # aggressor joins: the victim cannot get faster (small slack for
        # dispatch/partition rounding).
        assert two >= one * 0.9

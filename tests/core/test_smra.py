"""Tests for the SMRA controller (Algorithm 1, §3.2.4)."""

import pytest

from repro.core import SMRAController, SMRAParams
from repro.gpusim import (Application, GPU, WindowSample,
                          small_test_config)

from ..conftest import make_tiny_spec


def run_with_smra(cfg, specs, params):
    gpu = GPU(cfg)
    gpu.launch([Application(f"a{i}", s) for i, s in enumerate(specs)])
    controller = SMRAController(params)
    result = gpu.run(callbacks=(controller.callback(),))
    return gpu, result, controller


class TestParams:
    def test_defaults_sane(self):
        p = SMRAParams()
        assert p.interval >= 1 and p.nr >= 1 and p.r_min >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SMRAParams(interval=0)
        with pytest.raises(ValueError):
            SMRAParams(nr=0)
        with pytest.raises(ValueError):
            SMRAParams(r_min=0)


class TestScoringAndMigration:
    def test_donor_is_low_ipc_app(self, small_cfg):
        """A low-IPC app (score 1) donates SMs to a high-IPC app
        (score 0) — the core of Algorithm 1."""
        slow = make_tiny_spec("slow", blocks=2, warps_per_block=1,
                              dep_gap=12.0, mem_fraction=0.0,
                              instr_per_warp=2000, kernel_launches=2)
        fast = make_tiny_spec("fast", blocks=12, warps_per_block=2,
                              dep_gap=1.0, mem_fraction=0.0,
                              instr_per_warp=2000, kernel_launches=4)
        params = SMRAParams(interval=300, ipc_thr=40.0, bw_thr=0.9,
                            nr=1, r_min=1)
        _gpu, _res, ctl = run_with_smra(
            small_cfg, [slow, fast], params)
        moves = [d for d in ctl.decisions if d.moved_sms]
        assert moves, "expected at least one migration"
        assert moves[0].moved_from == 0  # the slow app donates
        assert moves[0].moved_to == 1

    def test_r_min_floor_respected(self, small_cfg):
        slow = make_tiny_spec("slow", blocks=2, warps_per_block=1,
                              dep_gap=12.0, mem_fraction=0.0,
                              instr_per_warp=3000, kernel_launches=2)
        fast = make_tiny_spec("fast", blocks=12, warps_per_block=2,
                              dep_gap=1.0, instr_per_warp=2000,
                              mem_fraction=0.0, kernel_launches=4)
        params = SMRAParams(interval=200, ipc_thr=40.0, bw_thr=0.9,
                            nr=4, r_min=1)
        gpu, _res, _ctl = run_with_smra(small_cfg, [slow, fast], params)
        # Post-run the donor may be finished; check the controller never
        # pushed it below r_min while it ran.
        history_min = min(
            (len(gpu.distributor.sms_of(0)) for _ in [0]), default=0)
        assert history_min >= 0  # structural sanity
        # The decision log never records a move that empties the donor:
        for d in _ctl.decisions:
            if d.moved_from == 0:
                assert d.moved_sms <= 4

    def test_no_migration_when_scores_equal(self, small_cfg):
        same = make_tiny_spec("same", blocks=6, warps_per_block=2,
                              mem_fraction=0.0, dep_gap=2.0,
                              instr_per_warp=1500)
        params = SMRAParams(interval=300, ipc_thr=1.0, bw_thr=0.99,
                            nr=1, r_min=1)
        _gpu, _res, ctl = run_with_smra(small_cfg, [same, same], params)
        assert ctl.total_migrations == 0

    def test_single_app_never_migrates(self, small_cfg, tiny_spec):
        params = SMRAParams(interval=200)
        _gpu, _res, ctl = run_with_smra(small_cfg, [tiny_spec], params)
        assert ctl.total_migrations == 0

    def test_decisions_recorded_every_interval(self, small_cfg):
        spec = make_tiny_spec(instr_per_warp=600)
        params = SMRAParams(interval=250)
        _gpu, res, ctl = run_with_smra(small_cfg, [spec, spec], params)
        assert len(ctl.decisions) >= res.cycles // 250 - 1
        cycles = [d.cycle for d in ctl.decisions]
        assert cycles == sorted(cycles)

    def test_memory_hog_scores_high(self, small_cfg):
        """An app with low IPC *and* high bandwidth utilization scores 3
        and becomes the donor even against another low-IPC app."""
        hog = make_tiny_spec("hog", blocks=8, warps_per_block=2,
                             mem_fraction=0.6, tx_per_access=8,
                             working_set_kb=8192, pattern="random",
                             instr_per_warp=400, kernel_launches=2)
        quiet = make_tiny_spec("quiet", blocks=2, warps_per_block=1,
                               dep_gap=10.0, mem_fraction=0.0,
                               instr_per_warp=2500, kernel_launches=2)
        params = SMRAParams(interval=300, ipc_thr=1000.0, bw_thr=0.05,
                            nr=1, r_min=1)
        _gpu, _res, ctl = run_with_smra(small_cfg, [hog, quiet], params)
        scored = [d for d in ctl.decisions if d.scores]
        assert scored
        hog_scores = [d.scores.get(0) for d in scored if 0 in d.scores]
        assert max(hog_scores) >= 3


class _StubApp:
    finished = False


class _StubSM:
    idle = True


class _StubDistributor:
    """Minimal WorkDistributor stand-in: SM index → owning app."""

    def __init__(self, owners):
        self._owners = dict(owners)

    def sms_of(self, app_id):
        return [i for i, o in sorted(self._owners.items()) if o == app_id]

    def set_sm_owner(self, index, app_id):
        self._owners[index] = app_id


class _StubBoard:
    """Scripted window samples, one dict per controller tick."""

    def __init__(self, ticks):
        self._ticks = list(ticks)
        self._tick = 0
        self.marks = []

    def window_delta(self, app_id, now):
        return self._ticks[self._tick][app_id]

    def mark_window(self, now):
        self.marks.append(now)
        self._tick += 1


class _StubGPU:
    """Just enough device surface for SMRAController._tick."""

    def __init__(self, config, ticks, sms_per_app=4):
        self.config = config
        self.stats = _StubBoard(ticks)
        self.apps = {0: _StubApp(), 1: _StubApp()}
        owners = {i: 0 for i in range(sms_per_app)}
        owners.update({sms_per_app + i: 1 for i in range(sms_per_app)})
        self.distributor = _StubDistributor(owners)
        self.sms = [_StubSM() for _ in range(2 * sms_per_app)]


class TestForcedRollback:
    """Deterministic unit coverage of the rollback path: a migration
    followed by a window-throughput drop must be reverted exactly."""

    def _controller_and_gpu(self, ticks):
        params = SMRAParams(interval=100, ipc_thr=50.0, bw_thr=0.99,
                            nr=2, r_min=1)
        return SMRAController(params), _StubGPU(small_test_config(), ticks)

    def _sample(self, instructions, cycles=100):
        return WindowSample(thread_instructions=instructions, dram_bytes=0,
                            cycles=cycles)

    def test_migration_then_drop_is_reverted(self):
        ticks = [
            # Tick 1: app0 IPC 1 (score 1) donates to app1 IPC 1000.
            {0: self._sample(100), 1: self._sample(100_000)},
            # Tick 2: device throughput collapses → rollback.
            {0: self._sample(50), 1: self._sample(500)},
        ]
        ctl, gpu = self._controller_and_gpu(ticks)
        ctl._tick(gpu, 100)
        assert ctl.decisions[0].moved_from == 0
        assert ctl.decisions[0].moved_to == 1
        assert ctl.decisions[0].moved_sms == 2
        assert len(gpu.distributor.sms_of(0)) == 2
        assert len(gpu.distributor.sms_of(1)) == 6

        ctl._tick(gpu, 200)
        assert ctl.decisions[1].reverted
        assert ctl.total_rollbacks == 1
        # The migrated SMs went back: the original 4/4 split is restored.
        assert len(gpu.distributor.sms_of(0)) == 4
        assert len(gpu.distributor.sms_of(1)) == 4

    def test_rollback_consumes_the_move(self):
        """After a rollback the controller must not revert again on the
        next drop — the move record is cleared."""
        ticks = [
            {0: self._sample(100), 1: self._sample(100_000)},
            {0: self._sample(50), 1: self._sample(500)},      # rollback
            {0: self._sample(40), 1: self._sample(40_000)},   # re-score
        ]
        ctl, gpu = self._controller_and_gpu(ticks)
        ctl._tick(gpu, 100)
        ctl._tick(gpu, 200)
        ctl._tick(gpu, 300)
        assert ctl.total_rollbacks == 1
        # The third tick re-scores instead of reverting: app0 (low IPC)
        # donates again.
        assert ctl.decisions[2].moved_from == 0

    def test_improved_throughput_keeps_migration(self):
        ticks = [
            {0: self._sample(100), 1: self._sample(100_000)},
            # Throughput improves → keep the new allocation.
            {0: self._sample(100), 1: self._sample(150_000)},
        ]
        ctl, gpu = self._controller_and_gpu(ticks)
        ctl._tick(gpu, 100)
        ctl._tick(gpu, 200)
        assert ctl.total_rollbacks == 0
        assert not ctl.decisions[1].reverted
        # app0 keeps donating: allocation stays at (or moves past) 2/6.
        assert len(gpu.distributor.sms_of(0)) <= 2


class TestRollback:
    def test_rollback_restores_after_throughput_drop(self, small_cfg):
        """Decisions that reduce window throughput are undone (the
        paper's 'previous configuration is restored')."""
        a = make_tiny_spec("a", blocks=8, warps_per_block=2,
                           mem_fraction=0.1, instr_per_warp=800,
                           kernel_launches=3)
        b = make_tiny_spec("b", blocks=8, warps_per_block=2,
                           mem_fraction=0.1, instr_per_warp=800,
                           dep_gap=6.0, kernel_launches=3)
        params = SMRAParams(interval=200, ipc_thr=500.0, bw_thr=0.9,
                            nr=2, r_min=1)
        _gpu, _res, ctl = run_with_smra(small_cfg, [a, b], params)
        if ctl.total_migrations:
            # Rollbacks are possible but not mandatory; the mechanism
            # must at least keep bookkeeping consistent.
            assert ctl.total_rollbacks <= len(ctl.decisions)

    def test_controller_counters(self, small_cfg, tiny_spec):
        ctl = SMRAController(SMRAParams(interval=100))
        assert ctl.total_migrations == 0
        assert ctl.total_rollbacks == 0

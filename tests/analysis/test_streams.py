"""Tests for stream metrics (analysis/streams.py)."""

import pytest

from repro.analysis import (StreamSummary, per_app_slowdown, percentile,
                            summarize_stream)
from repro.runtime import AppRecord


class TestPercentile:
    def test_median_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_endpoints(self):
        values = [5, 1, 3]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 5

    def test_single_value(self):
        assert percentile([7.5], 90) == 7.5

    def test_unsorted_input(self):
        assert percentile([9, 1, 5], 50) == 5

    def test_p90_interpolation(self):
        # rank = 0.9 * 4 = 3.6 → 0.4*4 + 0.6*5
        assert percentile([1, 2, 3, 4, 5], 90) == pytest.approx(4.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class _FakeOutcome:
    """Duck-typed StreamOutcome: just the fields the metrics read."""

    def __init__(self, records, makespan, instructions=1000):
        self.policy = "Fake"
        self.records = records
        self.makespan = makespan
        self.device_throughput = instructions / max(1, makespan)
        self.utilization = 0.5


def two_app_outcome():
    records = {
        "a": AppRecord(name="a", arrival_cycle=0, start_cycle=0,
                       finish_cycle=100, group_index=0),
        "b": AppRecord(name="b", arrival_cycle=0, start_cycle=100,
                       finish_cycle=300, group_index=1),
    }
    return _FakeOutcome(records, makespan=300)


class TestSummarizeStream:
    def test_antt_and_stp(self):
        solo = {"a": 100, "b": 100}
        s = summarize_stream(two_app_outcome(), solo)
        # a: turnaround 100 / solo 100 = 1; b: 300 / 100 = 3.
        assert s.antt == pytest.approx(2.0)
        assert s.stp == pytest.approx(1.0 + 1.0 / 3.0)
        # Service slowdown ignores the wait: a → 1.0, b → 2.0.
        assert s.service_slowdown == pytest.approx(1.5)

    def test_wait_and_latency_percentiles(self):
        s = summarize_stream(two_app_outcome(), {"a": 100, "b": 100})
        assert s.wait_p50 == pytest.approx(50.0)     # waits [0, 100]
        assert s.latency_p50 == pytest.approx(200.0)  # latencies [100, 300]
        assert s.wait_p99 <= 100.0
        assert s.latency_p99 <= 300.0

    def test_carries_outcome_fields(self):
        s = summarize_stream(two_app_outcome(), {"a": 100, "b": 100})
        assert isinstance(s, StreamSummary)
        assert s.policy == "Fake"
        assert s.apps == 2
        assert s.makespan == 300
        assert s.utilization == 0.5

    def test_per_app_slowdown(self):
        out = two_app_outcome()
        slow = per_app_slowdown(out, {"a": 100, "b": 100})
        assert slow == {"a": pytest.approx(1.0), "b": pytest.approx(3.0)}

    def test_missing_solo_rejected(self):
        with pytest.raises(ValueError, match="missing solo"):
            summarize_stream(two_app_outcome(), {"a": 100})

    def test_empty_is_all_zero_summary(self):
        # Zero completions (e.g. admission control rejected every
        # arrival) must not crash in percentile(): defined semantics
        # are an all-zero scorecard with apps == 0 as the flag.
        s = summarize_stream(_FakeOutcome({}, 0), {})
        assert s.apps == 0
        assert s.antt == 0.0
        assert s.stp == 0.0
        assert s.wait_p99 == 0.0
        assert s.latency_p50 == 0.0
        assert s.policy == "Fake"

    def test_empty_streaming_matches_in_memory(self):
        exact = summarize_stream(_FakeOutcome({}, 0), {})
        stream = summarize_stream(_FakeOutcome({}, 0), {},
                                  streaming=True)
        assert stream == exact

    def test_streaming_matches_exact_small_n(self):
        solo = {"a": 100, "b": 100}
        exact = summarize_stream(two_app_outcome(), solo)
        stream = summarize_stream(two_app_outcome(), solo,
                                  streaming=True)
        # Below exact_limit the estimators buffer raw values, so the
        # streaming path is bit-identical, not just approximate.
        assert stream == exact

"""Fleet metric tests on handcrafted outcomes (no simulation)."""

import pytest

from repro.analysis import (load_imbalance, queue_depth_timeline,
                            summarize_fleet)
from repro.cluster import DeviceOutcome, FleetAppRecord


def record(name, arrival, start, finish, device):
    return FleetAppRecord(name=name, arrival_cycle=arrival,
                          start_cycle=start, finish_cycle=finish,
                          group_index=0, device=device)


class FakeFleetOutcome:
    """The duck type summarize_fleet/summarize_stream read."""

    def __init__(self, records, devices, makespan):
        self.placement = "least-loaded"
        self.policy = "FCFS"
        self.records = {r.name: r for r in records}
        self.devices = devices
        self.makespan = makespan
        self.device_throughput = 10.0
        self.utilization = 0.5


def two_device_outcome():
    records = [
        record("a", 0, 0, 100, 0),     # no wait, solo 100 → slowdown 1
        record("b", 0, 100, 300, 0),   # waits 100, runs 200
        record("c", 50, 50, 150, 1),   # no wait
    ]
    devices = [
        DeviceOutcome(device_id=0, policy="FCFS", groups=[],
                      busy_cycles=300),
        DeviceOutcome(device_id=1, policy="FCFS", groups=[],
                      busy_cycles=100),
    ]
    return FakeFleetOutcome(records, devices, makespan=400)


class TestLoadImbalance:
    def test_balanced_fleet_is_one(self):
        assert load_imbalance([100, 100, 100]) == 1.0

    def test_hot_device_raises_ratio(self):
        assert load_imbalance([300, 100]) == pytest.approx(1.5)

    def test_idle_fleet_is_balanced(self):
        assert load_imbalance([0, 0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            load_imbalance([])


class TestSummarizeFleet:
    def test_fleet_numbers(self):
        solo = {"a": 100, "b": 200, "c": 100}
        s = summarize_fleet(two_device_outcome(), solo)
        assert s.placement == "least-loaded"
        assert s.policy == "FCFS"
        assert s.devices == 2
        assert s.apps == 3
        assert s.makespan == 400
        assert s.fleet_throughput == 10.0
        # Turnarounds: a=100/100=1, b=300/200=1.5, c=100/100=1.
        assert s.antt == pytest.approx((1 + 1.5 + 1) / 3)
        assert s.stp == pytest.approx(1 + 200 / 300 + 1)
        assert s.per_device_utilization == (pytest.approx(300 / 400),
                                            pytest.approx(100 / 400))
        assert s.utilization == pytest.approx((300 + 100) / (2 * 400))
        assert s.per_device_apps == (2, 1)
        assert s.load_imbalance == pytest.approx(300 / 200)
        assert s.wait_p50 == 0.0

    def test_missing_solo_rejected(self):
        with pytest.raises(ValueError, match="missing solo"):
            summarize_fleet(two_device_outcome(), {"a": 100})


class TestQueueDepthTimeline:
    def test_per_device_depth(self):
        out = two_device_outcome()
        # Device 0: a arrives+starts at 0, b arrives at 0 and starts at
        # 100 → depth 1 after cycle 0, 0 after cycle 100.
        assert queue_depth_timeline(out, device=0) == [(0, 1), (100, 0)]
        # Device 1: c arrives and starts at 50 → net zero.
        assert queue_depth_timeline(out, device=1) == [(50, 0)]

    def test_fleet_wide_depth(self):
        assert queue_depth_timeline(two_device_outcome()) == \
            [(0, 1), (50, 1), (100, 0)]

    def test_empty_outcome(self):
        assert queue_depth_timeline(
            FakeFleetOutcome([], [], makespan=0)) == []

"""Tests for the evaluation metrics."""

import pytest

from repro.analysis import (average_normalized_turnaround, fairness,
                            geometric_mean, harmonic_mean, normalize,
                            slowdown, speedup, throughput, utilization,
                            weighted_speedup)


class TestBasicMetrics:
    def test_throughput(self):
        assert throughput(1000, 100) == pytest.approx(10.0)

    def test_throughput_zero_cycles_guarded(self):
        assert throughput(100, 0) == pytest.approx(100.0)

    def test_utilization(self):
        assert utilization(960.0, 1920.0) == pytest.approx(0.5)

    def test_utilization_validation(self):
        with pytest.raises(ValueError):
            utilization(1.0, 0.0)

    def test_speedup_and_slowdown_inverse(self):
        assert speedup(200, 100) == pytest.approx(2.0)
        assert slowdown(100, 200) == pytest.approx(2.0)


class TestMultiProgramMetrics:
    SOLO = {"a": 100, "b": 200}
    SHARED = {"a": 150, "b": 250}

    def test_weighted_speedup(self):
        ws = weighted_speedup(self.SOLO, self.SHARED)
        assert ws == pytest.approx(100 / 150 + 200 / 250)

    def test_antt(self):
        antt = average_normalized_turnaround(self.SOLO, self.SHARED)
        assert antt == pytest.approx((150 / 100 + 250 / 200) / 2)

    def test_fairness_bounds(self):
        f = fairness(self.SOLO, self.SHARED)
        assert 0 < f <= 1.0

    def test_perfect_fairness(self):
        assert fairness({"a": 10, "b": 20},
                        {"a": 20, "b": 40}) == pytest.approx(1.0)

    def test_mismatched_sets_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup({"a": 1}, {"b": 1})
        with pytest.raises(ValueError):
            average_normalized_turnaround({"a": 1}, {"b": 1})

    def test_empty_sets_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup({}, {})
        with pytest.raises(ValueError):
            fairness({}, {})


class TestMeans:
    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4 / 3)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([0.0])
        with pytest.raises(ValueError):
            geometric_mean([-1.0])


class TestNormalize:
    def test_normalize_to_baseline(self):
        values = {"Even": 2.0, "ILP": 3.0}
        normed = normalize(values, "Even")
        assert normed == {"Even": 1.0, "ILP": 1.5}

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalize({"Even": 0.0, "ILP": 1.0}, "Even")

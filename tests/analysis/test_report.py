"""Tests for the markdown report builder."""

import pytest

from repro.analysis.report import (Report, Section, load_results_dir,
                                   write_report)


class TestSection:
    def test_markdown_structure(self):
        s = Section("Fig 4.1", "throughput", "Serial 1.0\nILP 1.3",
                    commentary="shape holds", verdict="reproduced")
        md = s.to_markdown()
        assert md.startswith("## Fig 4.1 — throughput")
        assert "```text" in md
        assert "Serial 1.0" in md
        assert "**Verdict:** reproduced" in md
        assert "shape holds" in md

    def test_minimal_section(self):
        md = Section("T1", "x", "body").to_markdown()
        assert "Verdict" not in md


class TestReport:
    def test_add_and_get(self):
        r = Report()
        r.add("Fig 1", "one", "a")
        r.add("Fig 2", "two", "b")
        assert r.section_ids() == ["Fig 1", "Fig 2"]
        assert r.get("Fig 2").body == "b"
        with pytest.raises(KeyError):
            r.get("Fig 3")

    def test_markdown_contains_toc(self):
        r = Report(title="T", preamble="intro")
        r.add("Fig 1", "one", "a")
        md = r.to_markdown()
        assert md.startswith("# T")
        assert "intro" in md
        assert "- Fig 1 — one" in md

    def test_empty_report(self):
        md = Report(title="empty").to_markdown()
        assert "Contents" not in md


class TestFilesystem:
    def test_load_results_dir(self, tmp_path):
        (tmp_path / "fig1_x.txt").write_text("table one\n")
        (tmp_path / "fig2_y.txt").write_text("table two\n")
        report = load_results_dir(tmp_path, titles={"fig1_x": "First"})
        assert report.section_ids() == ["fig1_x", "fig2_y"]
        assert report.get("fig1_x").title == "First"
        assert report.get("fig2_y").title == "fig2 y"

    def test_load_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_results_dir(tmp_path / "nope")

    def test_write_report_roundtrip(self, tmp_path):
        r = Report(title="T")
        r.add("A", "a", "body")
        out = write_report(r, tmp_path / "report.md")
        text = out.read_text()
        assert text.startswith("# T")
        assert "body" in text

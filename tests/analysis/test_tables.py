"""Tests for the plain-text table and bar chart renderers."""

import pytest

from repro.analysis import render_bars, render_grouped_bars, render_table


class TestRenderTable:
    def test_basic_table(self):
        out = render_table(["name", "value"], [["a", 1.234], ["bb", 5]])
        lines = out.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert lines[1].startswith("-")
        assert "1.23" in out and "5" in out

    def test_title(self):
        out = render_table(["x"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_ndigits(self):
        out = render_table(["x"], [[1.23456]], ndigits=4)
        assert "1.2346" in out

    def test_row_width_validation(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_alignment(self):
        out = render_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert len(lines[2]) <= len(lines[1]) + 2


class TestRenderBars:
    def test_bars_scale_to_max(self):
        out = render_bars({"a": 1.0, "b": 2.0}, width=10)
        a_line, b_line = out.splitlines()
        assert b_line.count("#") == 10
        assert a_line.count("#") == 5

    def test_baseline_marker(self):
        out = render_bars({"a": 0.5, "b": 2.0}, width=20, baseline=1.0)
        assert "|" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_bars({})

    def test_title_included(self):
        out = render_bars({"a": 1.0}, title="Fig 4.1")
        assert out.splitlines()[0] == "Fig 4.1"

    def test_zero_values_handled(self):
        out = render_bars({"a": 0.0})
        assert "a" in out


class TestRenderGroupedBars:
    def test_grouped(self):
        groups = {"BLK": {"Even": 1.0, "ILP": 1.2},
                  "HS": {"Even": 1.0, "ILP": 1.4}}
        out = render_grouped_bars(groups, series_order=["Even", "ILP"])
        assert "BLK" in out and "HS" in out
        assert "Even" in out and "ILP" in out

    def test_missing_series_nan(self):
        groups = {"X": {"Even": 1.0}}
        out = render_grouped_bars(groups, series_order=["Even", "ILP"])
        assert "nan" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_grouped_bars({})

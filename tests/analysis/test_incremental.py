"""Tests for the bounded-memory estimators (analysis/incremental.py).

Property-style coverage: in the exact region (N <= exact_limit) the
estimators must agree bit-for-bit with the in-memory ``percentile()``
and mean; above it, within the documented P² tolerance (<= 5% of the
value range on well-behaved distributions); and shard folds must merge
associatively.
"""

import random

import pytest

from repro.analysis import (DEFAULT_EXACT_LIMIT, BoundedTimeline,
                            OnlineMoments, P2Quantile, StreamAccumulator,
                            percentile)


def _uniform(n, seed):
    rng = random.Random(seed)
    return [rng.uniform(0.0, 1000.0) for _ in range(n)]


def _exponential(n, seed):
    rng = random.Random(seed)
    return [rng.expovariate(1.0 / 250.0) for _ in range(n)]


def _bimodal(n, seed):
    # 30/70 mix: keeps the tested quantiles (p50/p90/p99) inside the
    # upper mode.  A quantile that lands in the density *gap* between
    # modes is a documented P² limitation (see docs/campaign.md and
    # TestP2QuantileLargeN.test_median_in_density_gap_is_unreliable).
    rng = random.Random(seed)
    return [rng.gauss(100.0, 10.0) if rng.random() < 0.3
            else rng.gauss(900.0, 25.0) for _ in range(n)]


class TestOnlineMoments:
    def test_mean_bit_equal_to_sum_over_len(self):
        for seed in (1, 2, 3):
            xs = _uniform(257, seed)
            m = OnlineMoments()
            for x in xs:
                m.push(x)
            # Plain running total, so exactly sum(xs) / len(xs) — the
            # merged campaign figures match the monolithic ones.
            assert m.mean == sum(xs) / len(xs)

    def test_variance_population(self):
        m = OnlineMoments()
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            m.push(x)
        assert m.variance == pytest.approx(4.0)

    def test_min_max_count(self):
        m = OnlineMoments()
        for x in [3.0, -1.0, 7.0]:
            m.push(x)
        assert (m.count, m.minimum, m.maximum) == (3, -1.0, 7.0)

    def test_empty_rejects_mean_and_variance(self):
        m = OnlineMoments()
        assert m.count == 0
        with pytest.raises(ValueError):
            m.mean
        with pytest.raises(ValueError):
            m.variance

    def test_merge_matches_single_pass(self):
        xs = _exponential(400, 7)
        whole = OnlineMoments()
        for x in xs:
            whole.push(x)
        a, b = OnlineMoments(), OnlineMoments()
        for x in xs[:150]:
            a.push(x)
        for x in xs[150:]:
            b.push(x)
        merged = a.merge(b)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
        assert merged.variance == pytest.approx(whole.variance,
                                                rel=1e-9)
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum

    def test_merge_associative(self):
        chunks = [_uniform(50, s) for s in (1, 2, 3)]
        parts = []
        for chunk in chunks:
            m = OnlineMoments()
            for x in chunk:
                m.push(x)
            parts.append(m)
        a, b, c = parts
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.count == right.count
        assert left.mean == pytest.approx(right.mean, rel=1e-12)
        assert left.variance == pytest.approx(right.variance, rel=1e-9)

    def test_merge_empty_identity(self):
        m = OnlineMoments()
        for x in [1.0, 2.0]:
            m.push(x)
        assert m.merge(OnlineMoments()).to_dict() == m.to_dict()
        assert OnlineMoments().merge(m).to_dict() == m.to_dict()


class TestP2QuantileExactRegion:
    @pytest.mark.parametrize("n", [1, 2, 5, 17, DEFAULT_EXACT_LIMIT])
    @pytest.mark.parametrize("q", [50, 90, 99])
    def test_bit_identical_below_limit(self, n, q):
        xs = _uniform(n, seed=n * 100 + q)
        est = P2Quantile(q)
        for x in xs:
            est.push(x)
        assert est.exact
        assert est.value() == percentile(xs, q)

    def test_empty_rejects_value(self):
        with pytest.raises(ValueError):
            P2Quantile(50).value()

    def test_promotes_past_limit(self):
        est = P2Quantile(50, exact_limit=5)
        for x in [1.0, 2.0, 3.0, 4.0, 5.0]:
            est.push(x)
        assert est.exact
        est.push(6.0)
        assert not est.exact
        assert est.count == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            P2Quantile(101)
        with pytest.raises(ValueError):
            P2Quantile(-1)
        with pytest.raises(ValueError):
            P2Quantile(50, exact_limit=4)


class TestP2QuantileLargeN:
    """Documented tolerance: within 5% of the value range at large N
    on well-behaved distributions (see docs/campaign.md)."""

    @pytest.mark.parametrize("dist", [_uniform, _exponential, _bimodal])
    @pytest.mark.parametrize("q", [50, 90, 99])
    def test_within_documented_tolerance(self, dist, q):
        xs = dist(5000, seed=q)
        est = P2Quantile(q)
        for x in xs:
            est.push(x)
        exact = percentile(xs, q)
        span = max(xs) - min(xs)
        assert abs(est.value() - exact) <= 0.05 * span

    def test_median_in_density_gap_is_unreliable(self):
        # Documented limitation: on a symmetric bimodal the p50 marker
        # sits in the empty region between modes, where the parabolic
        # update has no data to anchor to — the estimate can land
        # anywhere in the gap.  The campaign docs tell users to prefer
        # p90/p99 (tail quantiles) for multi-modal latency data.
        rng = random.Random(50)
        xs = [rng.gauss(100.0, 10.0) if rng.random() < 0.5
              else rng.gauss(900.0, 25.0) for _ in range(5000)]
        est = P2Quantile(50)
        for x in xs:
            est.push(x)
        # Still bounded by the observed range — just not sharp.
        assert min(xs) <= est.value() <= max(xs)

    def test_deterministic(self):
        xs = _exponential(2000, 11)
        a, b = P2Quantile(90), P2Quantile(90)
        for x in xs:
            a.push(x)
            b.push(x)
        assert a.value() == b.value()
        assert a.to_dict() == b.to_dict()


class TestP2QuantileMerge:
    def test_exact_merge_is_concatenation(self):
        xs = _uniform(40, 3)
        a, b = P2Quantile(90), P2Quantile(90)
        for x in xs[:20]:
            a.push(x)
        for x in xs[20:]:
            b.push(x)
        merged = a.merge(b)
        assert merged.exact
        assert merged.value() == percentile(xs, 90)

    def test_merge_within_tolerance_large_n(self):
        xs = _exponential(8000, 5)
        a, b = P2Quantile(99), P2Quantile(99)
        for x in xs[:4000]:
            a.push(x)
        for x in xs[4000:]:
            b.push(x)
        merged = a.merge(b)
        exact = percentile(xs, 99)
        span = max(xs) - min(xs)
        assert abs(merged.value() - exact) <= 0.05 * span

    def test_merge_associative_exact_region(self):
        chunks = [_uniform(10, s) for s in (4, 5, 6)]
        parts = []
        for chunk in chunks:
            est = P2Quantile(50)
            for x in chunk:
                est.push(x)
            parts.append(est)
        a, b, c = parts
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        # Exact-region merges concatenate buffers, so associativity is
        # bit-exact — the property that makes shard fold order safe.
        assert left.value() == right.value()
        assert left.value() == percentile(sum(chunks, []), 50)

    def test_merge_does_not_mutate_inputs(self):
        a, b = P2Quantile(50), P2Quantile(50)
        for x in [1.0, 2.0]:
            a.push(x)
        for x in [3.0, 4.0]:
            b.push(x)
        before_a, before_b = a.to_dict(), b.to_dict()
        a.merge(b)
        assert a.to_dict() == before_a
        assert b.to_dict() == before_b


class TestBoundedTimeline:
    def test_bounded_memory(self):
        tl = BoundedTimeline(max_points=16)
        for i in range(10000):
            tl.push(i, i % 7)
        assert len(tl.points()) <= 16

    def test_exact_below_bound(self):
        tl = BoundedTimeline(max_points=8)
        for i in range(5):
            tl.push(i * 10, i)
        assert tl.points() == [[0, 0], [10, 1], [20, 2], [30, 3],
                               [40, 4]]

    def test_deterministic_decimation(self):
        a, b = BoundedTimeline(max_points=8), BoundedTimeline(max_points=8)
        for i in range(100):
            a.push(i, i * 2)
            b.push(i, i * 2)
        assert a.points() == b.points()
        assert a.stride == b.stride > 1


class TestStreamAccumulator:
    def _rows(self, n, seed):
        rng = random.Random(seed)
        rows = []
        cycle = 0
        for i in range(n):
            arrival = cycle
            start = arrival + rng.randrange(0, 500)
            finish = start + rng.randrange(100, 5000)
            rows.append({"name": f"app{i}", "arrival_cycle": arrival,
                         "start_cycle": start, "finish_cycle": finish,
                         "group_index": 0,
                         "solo_cycles": rng.randrange(100, 4000)})
            cycle += rng.randrange(0, 800)
        return rows

    def test_merge_matches_single_accumulator(self):
        rows = self._rows(40, 9)
        whole = StreamAccumulator()
        for r in rows:
            whole.push_app(r)
        a, b = StreamAccumulator(), StreamAccumulator()
        for r in rows[:17]:
            a.push_app(r)
        for r in rows[17:]:
            b.push_app(r)
        merged = a.merge(b).metrics()
        exact = whole.metrics()
        assert merged["apps"] == exact["apps"]
        # 40 apps sit inside the exact region, so the quantile fold is
        # a buffer concatenation — bit-identical to the monolithic
        # pass.  The running sums behind the means regroup across the
        # split (float addition is not associative), so those match to
        # ulp-level relative tolerance rather than bit-for-bit.
        for key in ("wait_p50", "wait_p90", "wait_p99",
                    "latency_p50", "latency_p90", "latency_p99"):
            assert merged[key] == exact[key]
        for key in ("antt", "antt_variance", "stp", "service_slowdown"):
            assert merged[key] == pytest.approx(exact[key], rel=1e-12)

    def test_merge_associative(self):
        chunks = [self._rows(15, s) for s in (1, 2, 3)]
        parts = []
        for chunk in chunks:
            acc = StreamAccumulator()
            for r in chunk:
                acc.push_app(r)
            parts.append(acc)
        a, b, c = parts
        left = a.merge(b).merge(c).metrics()
        right = a.merge(b.merge(c)).metrics()
        for key, value in left.items():
            if key.startswith(("wait_", "latency_")) or key == "apps":
                assert right[key] == value
            else:
                assert right[key] == pytest.approx(value, rel=1e-12)

    def test_empty_metrics_all_zero(self):
        m = StreamAccumulator().metrics()
        assert m["apps"] == 0
        assert all(v == 0.0 for k, v in m.items() if k != "apps")

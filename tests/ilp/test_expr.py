"""Unit tests for the linear expression / constraint layer."""

import pytest

from repro.ilp import Constraint, LinExpr, Variable, linear_sum


class TestVariable:
    def test_defaults(self):
        v = Variable("x")
        assert v.lb == 0.0 and v.ub is None and not v.integer

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Variable("x", lb=5, ub=3)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_integer_flag(self):
        assert Variable("x", integer=True).integer

    def test_repr_mentions_name(self):
        assert "x" in repr(Variable("x"))


class TestLinExprArithmetic:
    def test_add_variables(self):
        x, y = Variable("x"), Variable("y")
        e = x + y
        assert e.coeffs == {"x": 1.0, "y": 1.0}

    def test_add_constant(self):
        x = Variable("x")
        e = x + 5
        assert e.constant == 5.0

    def test_radd(self):
        x = Variable("x")
        e = 5 + x
        assert e.constant == 5.0 and e.coeffs == {"x": 1.0}

    def test_sub(self):
        x, y = Variable("x"), Variable("y")
        e = x - y
        assert e.coeffs == {"x": 1.0, "y": -1.0}

    def test_rsub(self):
        x = Variable("x")
        e = 10 - x
        assert e.constant == 10.0 and e.coeffs == {"x": -1.0}

    def test_scalar_multiplication(self):
        x = Variable("x")
        e = 3 * x
        assert e.coeffs == {"x": 3.0}

    def test_negation(self):
        x = Variable("x")
        assert (-x).coeffs == {"x": -1.0}

    def test_cancellation_drops_zero_coeff(self):
        x = Variable("x")
        e = (x + 2) - x
        assert "x" not in LinExpr(e.coeffs, e.constant).coeffs or \
            e.coeffs.get("x", 0.0) == 0.0

    def test_combined_expression(self):
        x, y = Variable("x"), Variable("y")
        e = 2 * x + 3 * y - 4
        assert e.coeffs == {"x": 2.0, "y": 3.0}
        assert e.constant == -4.0

    def test_mul_by_expr_rejected(self):
        x, y = Variable("x"), Variable("y")
        with pytest.raises(TypeError):
            (x + 1) * (y + 1)

    def test_value_evaluation(self):
        x, y = Variable("x"), Variable("y")
        e = 2 * x + 3 * y + 1
        assert e.value({"x": 2, "y": 3}) == pytest.approx(14.0)

    def test_value_missing_var_is_zero(self):
        x = Variable("x")
        assert (x + 1).value({}) == pytest.approx(1.0)

    def test_linear_sum(self):
        xs = [Variable(f"x{i}") for i in range(4)]
        e = linear_sum(2 * x for x in xs)
        assert all(e.coeffs[f"x{i}"] == 2.0 for i in range(4))

    def test_linear_sum_with_numbers(self):
        e = linear_sum([Variable("x"), 3, 4])
        assert e.constant == 7.0


class TestConstraint:
    def test_le_constraint(self):
        x = Variable("x")
        c = x <= 5
        assert isinstance(c, Constraint)
        assert c.sense == "<="
        assert c.rhs == pytest.approx(5.0)

    def test_ge_constraint(self):
        x = Variable("x")
        c = x >= 2
        assert c.sense == ">=" and c.rhs == pytest.approx(2.0)

    def test_eq_constraint(self):
        x, y = Variable("x"), Variable("y")
        c = x + y == 7
        assert c.sense == "==" and c.rhs == pytest.approx(7.0)

    def test_satisfied_le(self):
        x = Variable("x")
        c = x <= 5
        assert c.satisfied({"x": 4})
        assert c.satisfied({"x": 5})
        assert not c.satisfied({"x": 6})

    def test_satisfied_ge(self):
        x = Variable("x")
        c = x >= 5
        assert c.satisfied({"x": 6})
        assert not c.satisfied({"x": 4})

    def test_satisfied_eq(self):
        x = Variable("x")
        c = x == 5
        assert c.satisfied({"x": 5})
        assert not c.satisfied({"x": 5.1})

    def test_violation_magnitude(self):
        x = Variable("x")
        assert (x <= 5).violation({"x": 8}) == pytest.approx(3.0)
        assert (x >= 5).violation({"x": 3}) == pytest.approx(2.0)
        assert (x == 5).violation({"x": 3}) == pytest.approx(2.0)
        assert (x <= 5).violation({"x": 2}) == 0.0

    def test_expr_on_both_sides(self):
        x, y = Variable("x"), Variable("y")
        c = 2 * x + 1 <= y + 4
        # 2x + 1 - y - 4 <= 0  =>  2x - y <= 3
        assert c.coefficients() == {"x": 2.0, "y": -1.0}
        assert c.rhs == pytest.approx(3.0)

    def test_bad_sense_rejected(self):
        x = Variable("x")
        with pytest.raises(ValueError):
            Constraint((x + 0), "<")

"""Property-based tests for the ILP stack (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.ilp import (INFEASIBLE, Model, linear_sum, solve_enumerate,
                       solve_lp, solve_milp)


@st.composite
def bounded_ilp(draw):
    """A random small bounded integer program (maximization)."""
    n = draw(st.integers(2, 4))
    ubs = [draw(st.integers(1, 4)) for _ in range(n)]
    n_cons = draw(st.integers(1, 3))
    cons = []
    for _ in range(n_cons):
        coeffs = [draw(st.integers(-2, 3)) for _ in range(n)]
        rhs = draw(st.integers(0, 10))
        cons.append((coeffs, rhs))
    obj = [draw(st.floats(-4, 4, allow_nan=False, allow_infinity=False))
           for _ in range(n)]
    return n, ubs, cons, obj


def build(n, ubs, cons, obj):
    m = Model("prop")
    xs = [m.add_var(f"x{i}", lb=0, ub=ubs[i], integer=True)
          for i in range(n)]
    for coeffs, rhs in cons:
        m.add_constraint(
            linear_sum(c * x for c, x in zip(coeffs, xs)) <= rhs)
    m.maximize(linear_sum(c * x for c, x in zip(obj, xs)))
    return m


class TestMilpProperties:
    @given(data=bounded_ilp())
    @settings(max_examples=40, deadline=None)
    def test_branch_bound_matches_enumeration(self, data):
        model = build(*data)
        bb = solve_milp(model)
        enum = solve_enumerate(model)
        assert bb.status == enum.status
        if bb.is_optimal:
            assert bb.objective == pytest.approx(enum.objective, abs=1e-6)

    @given(data=bounded_ilp())
    @settings(max_examples=40, deadline=None)
    def test_solution_is_feasible(self, data):
        model = build(*data)
        sol = solve_milp(model)
        if sol.is_optimal:
            assert model.is_feasible(sol.values)

    @given(data=bounded_ilp())
    @settings(max_examples=25, deadline=None)
    def test_lp_relaxation_is_upper_bound(self, data):
        n, ubs, cons, obj = data
        model = build(n, ubs, cons, obj)
        sol = solve_milp(model)
        assume(sol.is_optimal)
        c, A_ub, b_ub, A_eq, b_eq, bounds = model.to_arrays()
        lp = solve_lp(c, A_ub if A_ub.size else None,
                      b_ub if b_ub.size else None,
                      None, None, bounds)
        assume(lp.is_optimal)
        # to_arrays negates the objective for maximization.
        assert -lp.objective >= sol.objective - 1e-6


class TestLpProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_optimum_satisfies_constraints(self, seed):
        rng = np.random.default_rng(seed)
        n, m = int(rng.integers(2, 5)), int(rng.integers(1, 4))
        c = rng.uniform(-3, 3, n)
        A = rng.uniform(-2, 2, (m, n))
        b = A @ rng.uniform(0, 2, n) + rng.uniform(0.2, 1.5, m)
        res = solve_lp(c, A_ub=A, b_ub=b, bounds=[(0, 6)] * n)
        if res.is_optimal:
            assert np.all(A @ res.x <= b + 1e-6)
            assert np.all(res.x >= -1e-9)
            assert np.all(res.x <= 6 + 1e-9)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_tightening_bounds_never_improves(self, seed):
        rng = np.random.default_rng(seed)
        n = 3
        c = rng.uniform(-3, 0, n)  # minimize a nonpositive objective
        loose = solve_lp(c, bounds=[(0, 5)] * n)
        tight = solve_lp(c, bounds=[(0, 2)] * n)
        assert loose.is_optimal and tight.is_optimal
        assert loose.objective <= tight.objective + 1e-9

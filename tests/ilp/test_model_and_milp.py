"""Tests for the Model layer and branch-and-bound MILP solver."""

import numpy as np
import pytest

from repro.ilp import (INFEASIBLE, MAXIMIZE, OPTIMAL, UNBOUNDED, Model,
                       linear_sum, solve_enumerate, solve_milp)


def knapsack_model(values, weights, capacity):
    m = Model("knapsack")
    xs = [m.add_var(f"x{i}", lb=0, ub=1, integer=True)
          for i in range(len(values))]
    m.add_constraint(linear_sum(w * x for w, x in zip(weights, xs)) <= capacity)
    m.maximize(linear_sum(v * x for v, x in zip(values, xs)))
    return m, xs


class TestModel:
    def test_duplicate_variable_rejected(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(ValueError):
            m.add_var("x")

    def test_unknown_variable_in_constraint_rejected(self):
        m = Model()
        from repro.ilp import Variable
        foreign = Variable("zz")
        with pytest.raises(ValueError):
            m.add_constraint(foreign <= 1)

    def test_unknown_variable_in_objective_rejected(self):
        m = Model()
        from repro.ilp import Variable
        with pytest.raises(ValueError):
            m.maximize(Variable("zz") + 0)

    def test_non_constraint_rejected(self):
        m = Model()
        with pytest.raises(TypeError):
            m.add_constraint("x <= 1")

    def test_to_arrays_senses(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constraint(x + y <= 4)
        m.add_constraint(x - y >= 1)
        m.add_constraint(x + 2 * y == 3)
        m.maximize(2 * x + y)
        c, A_ub, b_ub, A_eq, b_eq, bounds = m.to_arrays()
        np.testing.assert_allclose(c, [-2, -1])  # negated for maximize
        assert A_ub.shape == (2, 2)
        np.testing.assert_allclose(A_ub[1], [-1, 1])  # >= flipped
        np.testing.assert_allclose(b_ub, [4, -1])
        np.testing.assert_allclose(A_eq, [[1, 2]])
        np.testing.assert_allclose(b_eq, [3])

    def test_is_feasible_checks_bounds_and_integrality(self):
        m = Model()
        m.add_var("x", lb=0, ub=3, integer=True)
        assert m.is_feasible({"x": 2})
        assert not m.is_feasible({"x": 2.5})
        assert not m.is_feasible({"x": 4})
        assert not m.is_feasible({"x": -1})

    def test_add_vars_bulk(self):
        m = Model()
        xs = m.add_vars(["a", "b", "c"], ub=1, integer=True)
        assert len(xs) == 3 and m.num_vars == 3


class TestMILP:
    def test_pure_lp_passthrough(self):
        m = Model()
        x = m.add_var("x", ub=4)
        y = m.add_var("y", ub=4)
        m.add_constraint(x + y <= 6)
        m.maximize(x + 2 * y)
        sol = m.solve()
        assert sol.is_optimal
        assert sol.objective == pytest.approx(10.0)  # x=2, y=4

    def test_simple_knapsack(self):
        m, _ = knapsack_model([10, 13, 7], [3, 4, 2], 6)
        sol = m.solve()
        assert sol.is_optimal
        assert sol.objective == pytest.approx(20.0)  # items 1 and 2 (13+7)

    def test_integer_rounding_matters(self):
        # LP relaxation gives x=2.5; ILP must give 2.
        m = Model()
        x = m.add_var("x", integer=True)
        m.add_constraint(2 * x <= 5)
        m.maximize(x)
        sol = m.solve()
        assert sol.is_optimal
        assert sol["x"] == pytest.approx(2.0)

    def test_infeasible_ilp(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=1, integer=True)
        m.add_constraint(2 * x == 1)  # x = 0.5 impossible for integer
        m.maximize(x)
        sol = m.solve()
        assert sol.status == INFEASIBLE

    def test_unbounded_ilp(self):
        m = Model()
        x = m.add_var("x", integer=True)
        m.maximize(x)
        sol = m.solve()
        assert sol.status == UNBOUNDED

    def test_minimize_sense(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=10, integer=True)
        y = m.add_var("y", lb=0, ub=10, integer=True)
        m.add_constraint(x + y >= 7)
        m.minimize(3 * x + 5 * y)
        sol = m.solve()
        assert sol.is_optimal
        assert sol.objective == pytest.approx(21.0)  # x=7, y=0

    def test_mixed_integer_continuous(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=10, integer=True)
        y = m.add_var("y", lb=0, ub=10)  # continuous
        m.add_constraint(x + y <= 7.5)
        m.maximize(2 * x + y)
        sol = m.solve()
        assert sol.is_optimal
        assert sol["x"] == pytest.approx(7.0)
        assert sol["y"] == pytest.approx(0.5)

    def test_solution_satisfies_model(self):
        m, _ = knapsack_model([4, 5, 6, 7], [2, 3, 4, 5], 8)
        sol = m.solve()
        assert sol.is_optimal
        assert m.is_feasible(sol.values)


class TestBranchBoundVsEnumeration:
    """Differential testing: B&B must agree with exhaustive enumeration."""

    @pytest.mark.parametrize("seed", range(15))
    def test_random_bounded_ilps(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        m = Model(f"rand{seed}")
        xs = [m.add_var(f"x{i}", lb=0, ub=int(rng.integers(1, 5)),
                        integer=True) for i in range(n)]
        for _ in range(int(rng.integers(1, 4))):
            coeffs = rng.integers(-3, 4, n)
            rhs = int(rng.integers(1, 12))
            m.add_constraint(
                linear_sum(int(c) * x for c, x in zip(coeffs, xs)) <= rhs)
        obj_coeffs = rng.uniform(-5, 5, n)
        m.maximize(linear_sum(float(c) * x for c, x in zip(obj_coeffs, xs)))

        bb = solve_milp(m)
        enum = solve_enumerate(m)
        assert bb.status == enum.status
        if bb.is_optimal:
            assert bb.objective == pytest.approx(enum.objective, abs=1e-6)
            assert m.is_feasible(bb.values)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_ilps_with_equality(self, seed):
        rng = np.random.default_rng(500 + seed)
        n = 3
        m = Model(f"eq{seed}")
        xs = [m.add_var(f"x{i}", lb=0, ub=4, integer=True) for i in range(n)]
        total = int(rng.integers(2, 9))
        m.add_constraint(linear_sum(xs) == total)
        obj = rng.uniform(0.1, 3, n)
        m.maximize(linear_sum(float(c) * x for c, x in zip(obj, xs)))
        bb = solve_milp(m)
        enum = solve_enumerate(m)
        assert bb.status == enum.status
        if bb.is_optimal:
            assert bb.objective == pytest.approx(enum.objective, abs=1e-6)


class TestScipyMilpCrossCheck:
    def test_against_scipy_milp(self):
        milp_mod = pytest.importorskip("scipy.optimize")
        if not hasattr(milp_mod, "milp"):
            pytest.skip("scipy.optimize.milp unavailable")
        m, xs = knapsack_model([10, 13, 7, 4, 9], [3, 4, 2, 1, 3], 8)
        sol = m.solve()
        c, A_ub, b_ub, _, _, bounds = m.to_arrays()
        lc = milp_mod.LinearConstraint(A_ub, -np.inf, b_ub)
        res = milp_mod.milp(
            c, constraints=[lc],
            integrality=np.ones(len(c)),
            bounds=milp_mod.Bounds([b[0] for b in bounds],
                                   [b[1] for b in bounds]))
        assert sol.objective == pytest.approx(-res.fun, abs=1e-6)

"""Tests for the two-phase primal simplex LP solver, cross-checked vs scipy."""

import numpy as np
import pytest

from repro.ilp import INFEASIBLE, OPTIMAL, UNBOUNDED, solve_lp

scipy_opt = pytest.importorskip("scipy.optimize")


def scipy_check(c, A_ub=None, b_ub=None, A_eq=None, b_eq=None, bounds=None):
    res = scipy_opt.linprog(c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq,
                            bounds=bounds, method="highs")
    return res


class TestBasicLPs:
    def test_textbook_max(self):
        # max 3x + 2y st x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12
        res = solve_lp([-3, -2], A_ub=[[1, 1], [1, 3]], b_ub=[4, 6])
        assert res.is_optimal
        assert res.objective == pytest.approx(-12.0)
        assert res.x[0] == pytest.approx(4.0)
        assert res.x[1] == pytest.approx(0.0, abs=1e-9)

    def test_min_with_ge(self):
        # min x + y st x + 2y >= 4, 3x + y >= 6  (>= rows as negated <=)
        res = solve_lp([1, 1], A_ub=[[-1, -2], [-3, -1]], b_ub=[-4, -6])
        assert res.is_optimal
        ref = scipy_check([1, 1], A_ub=[[-1, -2], [-3, -1]], b_ub=[-4, -6])
        assert res.objective == pytest.approx(ref.fun)

    def test_equality_constraint(self):
        # min x + 2y st x + y == 3, x <= 2
        res = solve_lp([1, 2], A_ub=[[1, 0]], b_ub=[2],
                       A_eq=[[1, 1]], b_eq=[3])
        assert res.is_optimal
        assert res.objective == pytest.approx(4.0)  # x=2, y=1
        assert res.x[0] == pytest.approx(2.0)

    def test_unbounded(self):
        res = solve_lp([-1, 0], A_ub=[[0, 1]], b_ub=[1])
        assert res.status == UNBOUNDED

    def test_infeasible(self):
        res = solve_lp([1], A_ub=[[1], [-1]], b_ub=[1, -3])  # x<=1 and x>=3
        assert res.status == INFEASIBLE

    def test_infeasible_equalities(self):
        res = solve_lp([1, 1], A_eq=[[1, 1], [1, 1]], b_eq=[2, 3])
        assert res.status == INFEASIBLE

    def test_degenerate_lp_terminates(self):
        # Classic degeneracy: multiple constraints tight at the optimum.
        res = solve_lp([-1, -1], A_ub=[[1, 0], [0, 1], [1, 1]],
                       b_ub=[1, 1, 1])
        assert res.is_optimal
        assert res.objective == pytest.approx(-1.0)


class TestBounds:
    def test_upper_bounds(self):
        res = solve_lp([-1, -1], bounds=[(0, 3), (0, 4)])
        assert res.is_optimal
        assert res.objective == pytest.approx(-7.0)
        np.testing.assert_allclose(res.x, [3, 4])

    def test_nonzero_lower_bounds(self):
        # min x + y with x >= 2, y >= 3
        res = solve_lp([1, 1], bounds=[(2, None), (3, None)])
        assert res.is_optimal
        assert res.objective == pytest.approx(5.0)
        np.testing.assert_allclose(res.x, [2, 3])

    def test_negative_lower_bounds(self):
        # min x st x >= -5  ->  x = -5
        res = solve_lp([1], bounds=[(-5, None)])
        assert res.is_optimal
        assert res.x[0] == pytest.approx(-5.0)

    def test_bounds_with_constraints(self):
        # max x + y st x + y <= 10, 1 <= x <= 4, 2 <= y <= 5
        res = solve_lp([-1, -1], A_ub=[[1, 1]], b_ub=[10],
                       bounds=[(1, 4), (2, 5)])
        assert res.is_optimal
        assert res.objective == pytest.approx(-9.0)

    def test_fixed_variable(self):
        res = solve_lp([1, 1], A_eq=[[1, 1]], b_eq=[5], bounds=[(2, 2), (0, None)])
        assert res.is_optimal
        assert res.x[0] == pytest.approx(2.0)
        assert res.x[1] == pytest.approx(3.0)

    def test_infinite_lower_bound_rejected(self):
        with pytest.raises(ValueError):
            solve_lp([1], bounds=[(float("-inf"), None)])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            solve_lp([1, 2], A_ub=[[1]], b_ub=[1])
        with pytest.raises(ValueError):
            solve_lp([1], bounds=[(0, 1), (0, 1)])


class TestAgainstScipy:
    """Randomized differential testing against scipy.optimize.linprog."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_feasible_lps(self, seed):
        rng = np.random.default_rng(seed)
        n, m = rng.integers(2, 6), rng.integers(1, 5)
        c = rng.uniform(-5, 5, n)
        A = rng.uniform(-3, 3, (m, n))
        # Build b so x = |random| is feasible -> LP is feasible.
        x0 = rng.uniform(0, 2, n)
        b = A @ x0 + rng.uniform(0.1, 2, m)
        bounds = [(0, float(u)) for u in rng.uniform(3, 8, n)]
        mine = solve_lp(c, A_ub=A, b_ub=b, bounds=bounds)
        ref = scipy_check(c, A_ub=A, b_ub=b, bounds=bounds)
        assert mine.is_optimal == (ref.status == 0)
        if mine.is_optimal:
            assert mine.objective == pytest.approx(ref.fun, abs=1e-6)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_lps_with_equalities(self, seed):
        rng = np.random.default_rng(1000 + seed)
        n = int(rng.integers(3, 6))
        c = rng.uniform(-5, 5, n)
        x0 = rng.uniform(0, 2, n)
        A_eq = rng.uniform(-2, 2, (1, n))
        b_eq = A_eq @ x0
        A_ub = rng.uniform(-2, 2, (2, n))
        b_ub = A_ub @ x0 + rng.uniform(0.5, 2, 2)
        bounds = [(0, 10)] * n
        mine = solve_lp(c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq,
                        bounds=bounds)
        ref = scipy_check(c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq,
                          bounds=bounds)
        assert mine.is_optimal == (ref.status == 0)
        if mine.is_optimal:
            assert mine.objective == pytest.approx(ref.fun, abs=1e-6)

    def test_solution_is_feasible(self):
        rng = np.random.default_rng(7)
        c = rng.uniform(-5, 5, 4)
        A = rng.uniform(-3, 3, (3, 4))
        b = A @ rng.uniform(0, 2, 4) + 1.0
        res = solve_lp(c, A_ub=A, b_ub=b, bounds=[(0, 5)] * 4)
        assert res.is_optimal
        assert np.all(A @ res.x <= b + 1e-7)
        assert np.all(res.x >= -1e-9) and np.all(res.x <= 5 + 1e-9)

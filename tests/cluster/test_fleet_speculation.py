"""Fleet run-ahead tests: windows, rollback × requeue, determinism.

Every test compares a speculative fleet run against the plain serial
run with the full result fingerprint — speculation must be invisible
in results while its counters prove the optimistic paths actually ran.
"""

import pytest

from repro.api.registry import REGISTRY
from repro.core import make_context
from repro.cluster import (LeastLoadedPlacement, RoundRobinPlacement,
                           run_fleet, transient_plan)
from repro.runtime import (Arrival, OnlineFCFS, ParallelExecutor,
                           SerialExecutor, make_speculation)

from ..conftest import make_tiny_spec


@pytest.fixture
def ctx(small_cfg):
    return make_context(small_cfg)


def fcfs_factory(nc=2):
    return lambda _i: OnlineFCFS(nc)


def bursty_arrivals(n, burst, gap):
    """`n` apps in bursts of `burst`, one burst every `gap` cycles —
    enough backlog per device that run-ahead windows open."""
    return [Arrival((i // burst) * gap, f"app{i}",
                    make_tiny_spec(f"app{i}", seed=i)) for i in range(n)]


def fingerprint(outcome):
    return {
        "assignments": dict(outcome.assignments),
        "makespan": outcome.makespan,
        "busy": [d.busy_cycles for d in outcome.devices],
        "lost": [d.lost_cycles for d in outcome.devices],
        "failed": [[(f.start_cycle, f.members, f.reason)
                    for f in d.failed_groups] for d in outcome.devices],
        "groups": [[(g.start_cycle, tuple(g.outcome.members),
                     g.outcome.cycles) for g in d.groups]
                   for d in outcome.devices],
        "records": {n: (r.arrival_cycle, r.start_cycle, r.finish_cycle,
                        r.device, r.retries)
                    for n, r in outcome.records.items()},
        "rejected": [(r.name, r.cycle, r.reason, r.retries)
                     for r in outcome.rejected],
    }


def speculation(executor, kind="full", **params):
    params.setdefault("commit_check", True)
    return make_speculation(REGISTRY.create("speculation", kind, **params),
                            executor)


class TestRunAheadEquality:
    def test_full_matches_plain_with_windows(self, ctx):
        arrivals = bursty_arrivals(16, burst=8, gap=6000)
        plain = run_fleet(arrivals, LeastLoadedPlacement(),
                          fcfs_factory(), ctx, num_devices=3)
        sim = speculation(SerialExecutor())
        spec = run_fleet(arrivals, LeastLoadedPlacement(),
                         fcfs_factory(), ctx, num_devices=3,
                         speculation=sim)
        assert fingerprint(spec) == fingerprint(plain)
        assert sim.counters.windows > 0
        assert sim.counters.ahead_events > 0
        assert sim.counters.hits > 0

    def test_devices_only_kind_never_touches_the_store(self, ctx):
        arrivals = bursty_arrivals(12, burst=6, gap=6000)
        plain = run_fleet(arrivals, RoundRobinPlacement(),
                          fcfs_factory(), ctx, num_devices=2)
        sim = speculation(SerialExecutor(), kind="devices")
        spec = run_fleet(arrivals, RoundRobinPlacement(),
                         fcfs_factory(), ctx, num_devices=2,
                         speculation=sim)
        assert fingerprint(spec) == fingerprint(plain)
        assert sim.counters.windows > 0
        assert sim.counters.submitted == 0
        assert sim.counters.hits == 0

    def test_groups_only_kind_never_opens_windows(self, ctx):
        arrivals = bursty_arrivals(12, burst=6, gap=6000)
        plain = run_fleet(arrivals, RoundRobinPlacement(),
                          fcfs_factory(), ctx, num_devices=2)
        sim = speculation(SerialExecutor(), kind="groups")
        spec = run_fleet(arrivals, RoundRobinPlacement(),
                         fcfs_factory(), ctx, num_devices=2,
                         speculation=sim)
        assert fingerprint(spec) == fingerprint(plain)
        assert sim.counters.windows == 0
        assert sim.counters.rollbacks == 0
        assert sim.counters.hits > 0


class TestRollbackRequeue:
    def scenario(self, ctx, sim=None):
        arrivals = bursty_arrivals(24, burst=12, gap=8000)
        # seed 11 is chosen so a transient failure lands *inside* a
        # run-ahead window while the other device has run past it —
        # the rollback + replay path, not just barrier truncation.
        faults = transient_plan(2, fail_prob=0.3, max_retries=4, seed=11)
        return run_fleet(arrivals, LeastLoadedPlacement(),
                         fcfs_factory(), ctx, num_devices=2,
                         faults=faults, speculation=sim)

    def test_rollback_replays_to_the_serial_schedule(self, ctx):
        """Transient failures inside a run-ahead window force rollbacks;
        the replayed timeline (including fault requeues and retry
        accounting) must equal the plain serial run exactly."""
        plain = self.scenario(ctx)
        assert any(r.retries for r in plain.records.values())
        sim = speculation(SerialExecutor())
        spec = self.scenario(ctx, sim)
        assert fingerprint(spec) == fingerprint(plain)
        assert sim.counters.rollbacks >= 1
        assert sim.counters.windows > 0

    def test_counters_identical_for_any_worker_count(self, ctx):
        serial_sim = speculation(SerialExecutor())
        serial = self.scenario(ctx, serial_sim)
        with ParallelExecutor(2) as pool:
            pool_sim = speculation(pool)
            parallel = self.scenario(ctx, pool_sim)
        assert serial_sim.counters.to_dict() == pool_sim.counters.to_dict()
        assert fingerprint(serial) == fingerprint(parallel)
